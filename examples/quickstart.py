"""Quickstart: one database, every classical query language.

The guided tour of the MetatheoryWorkbench: load a toy genealogy, query
it in SQL, relational algebra, safe relational calculus, and Datalog, and
watch Codd's Theorem hold on live data.

Run:  python examples/quickstart.py
"""

from repro import MetatheoryWorkbench
from repro.relational import (
    AndF,
    Exists,
    NaturalJoin,
    NotF,
    Projection,
    Query,
    RelAtom,
    RelationRef,
    Rename,
    Var,
)


def main():
    workbench = MetatheoryWorkbench.from_dict(
        {
            "parent": (
                ("parent", "child"),
                [
                    ("alice", "bob"),
                    ("alice", "carol"),
                    ("bob", "dave"),
                    ("carol", "erin"),
                    ("dave", "fay"),
                ],
            ),
            "person": (
                ("name",),
                [
                    ("alice",),
                    ("bob",),
                    ("carol",),
                    ("dave",),
                    ("erin",),
                    ("fay",),
                ],
            ),
        }
    )

    print("=== SQL: grandparents ===")
    grandparents = workbench.sql(
        "SELECT p1.parent AS grandparent, p2.child AS grandchild "
        "FROM parent p1, parent p2 WHERE p1.child = p2.parent"
    )
    print(grandparents.pretty())

    print("\n=== Compiled execution: the same SQL as a fused kernel ===")
    compiled = workbench.sql(
        "SELECT p1.parent AS grandparent, p2.child AS grandchild "
        "FROM parent p1, parent p2 WHERE p1.child = p2.parent",
        executor="compiled",
    )
    print("compiled kernel agrees with the interpreter:",
          compiled == grandparents)
    print("kernel cache:", workbench.kernel_cache.stats())

    print("\n=== Relational algebra: the same query ===")
    expr = Projection(
        NaturalJoin(
            Rename(
                RelationRef("parent"),
                {"parent": "grandparent", "child": "parent"},
            ),
            RelationRef("parent"),
        ),
        ("grandparent", "child"),
    )
    print(workbench.algebra(expr).pretty())

    print("\n=== Safe relational calculus: leaves of the family tree ===")
    leaves = Query(
        ["x"],
        AndF(
            RelAtom("person", [Var("x")]),
            NotF(Exists("y", RelAtom("parent", [Var("x"), Var("y")]))),
        ),
    )
    print("query:", leaves)
    print(workbench.calculus(leaves).pretty())

    print("\n=== Codd's Theorem, checked on this database ===")
    calculus_answer, algebra_answer, equal = workbench.codd_check(leaves)
    print(
        "calculus semantics and translated algebra agree:", equal,
        "(%d tuples)" % len(algebra_answer),
    )

    print("\n=== Datalog: ancestors, four evaluation strategies ===")
    engine = workbench.datalog(
        """
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
        """
    )
    for strategy in ("naive", "seminaive", "magic", "topdown"):
        answers = engine.query("ancestor(alice, X)", strategy=strategy)
        print("%-10s -> %s" % (strategy, sorted(t[1] for t in answers)))

    print("\n=== Schema analysis ===")
    print("schema hypergraph acyclic:", workbench.is_acyclic())
    tool = workbench.design("name parent child", "child -> parent")
    print("normal form of (name, parent, child) under child->parent:",
          tool.normal_form())


if __name__ == "__main__":
    main()
