"""Live transactions: the scheduler theory running a real database.

The mutation pipeline end to end: MVCC snapshots, DML through the
shared plan pipeline, concurrent ``wb.begin()`` transactions under both
concurrency controls, a conflict and a rollback, and the recorded
history verified against the theory's own serializability and
recoverability predicates — plus the ``sys_`` relations watching all of
it from inside SQL.

Run:  python examples/transactions_live.py
"""

from repro.core.workbench import MetatheoryWorkbench
from repro.obs.metrics import MetricsRegistry
from repro.storage.txn import TransactionConflict


def make_workbench():
    return MetatheoryWorkbench.from_dict(
        {
            "account": (
                ("owner", "branch", "balance"),
                [
                    ("ann", "sd", 120),
                    ("bob", "sd", 80),
                    ("cal", "la", 200),
                ],
            ),
            "branch": (("branch", "city"), [("sd", "sandiego"),
                                            ("la", "losangeles")]),
        }
    )


def main():
    wb = make_workbench()
    wb.metrics = MetricsRegistry()

    print("=== Autocommit DML through the plan pipeline ===")
    result = wb.sql("INSERT INTO account VALUES ('dee', 'la', 50)")
    print("insert:", result)
    result = wb.sql(
        "UPDATE account SET balance = 0 WHERE owner = 'bob'",
        executor="compiled",
    )
    print("update (compiled):", result)
    print("accounts:", sorted(wb.db["account"].tuples))

    print("\n=== A snapshot pins the past while writers move on ===")
    snap = wb.snapshot()
    reader = MetatheoryWorkbench(snap.db)
    wb.sql("DELETE FROM account WHERE balance = 0")
    print("live rows:    ", len(wb.db["account"]))
    print("snapshot rows:", len(reader.db["account"]),
          "(pinned at v%d)" % snap.vid)

    print("\n=== Interleaved transactions under no-wait strict 2PL ===")
    t1 = wb.begin()
    t2 = wb.begin()
    t1.sql("UPDATE account SET balance = 110 WHERE owner = 'ann'")
    try:
        t2.sql("DELETE FROM account WHERE owner = 'ann'")
    except TransactionConflict as exc:
        print("t2 aborted by the lock table:", exc)
    t2b = wb.begin()
    t2b.sql("INSERT INTO branch VALUES ('sf', 'sanfrancisco')")
    t2b.commit()
    t1.commit()
    print("after commits:", sorted(wb.db["account"].tuples))

    print("\n=== Timestamp ordering: first committer wins ===")
    older = wb.begin(cc="timestamp")
    newer = wb.begin(cc="timestamp")
    older.sql("SELECT * FROM account")
    newer.sql("INSERT INTO account VALUES ('eve', 'sf', 10)")
    newer.commit()
    older.sql("INSERT INTO branch VALUES ('ny', 'newyork')")
    try:
        older.commit()
    except TransactionConflict as exc:
        print("older txn failed validation:", exc)

    print("\n=== Rollback restores from journal undo images ===")
    with_rollback = wb.begin()
    with_rollback.sql("DELETE FROM account WHERE balance > 0")
    print("staged view rows:", len(with_rollback.view()["account"]))
    with_rollback.rollback()
    print("after rollback:  ", len(wb.db["account"]))

    print("\n=== The theory as oracle ===")
    report = wb.txns.verify()
    for key in sorted(report):
        print("  %-24s %s" % (key, report[key]))

    print("\n=== The runtime, introspected from SQL ===")
    for row in sorted(wb.sql("SELECT * FROM sys_transactions").tuples):
        print("  txn", row)
    versions = wb.sql(
        "SELECT * FROM sys_versions WHERE relation = 'account'"
    )
    print("  journal entries touching 'account':", len(versions))
    print("\nhistory:", wb.txns.schedule())


if __name__ == "__main__":
    main()
