"""Database design studio: the normalization pipeline on a real schema.

The paper counts normalization as the theory that reached practice
("more than twenty database design tools").  This example is such a
tool's session: a university registrar's universal scheme, its FDs,
the full diagnosis, both classical decompositions, and a live
losslessness check on actual data — including the spurious tuples you
get from the *wrong* decomposition.

Run:  python examples/database_design_studio.py
"""

from repro.dependencies import (
    DesignTool,
    FD,
    armstrong_relation,
    chase_implies_fd,
    derive,
    is_lossless_join,
    parse_fds,
    verify_armstrong,
)
from repro.relational import Relation, RelationSchema, same_content

SCHEME = "student course section instructor room grade"

FDS = parse_fds(
    """
    student course -> grade
    course section -> instructor
    course section -> room
    instructor -> course
    """
)


def main():
    print("=== The registrar's universal scheme ===")
    tool = DesignTool(SCHEME, FDS)
    print(tool.report())

    print("\n=== Armstrong derivation: why course+section determines room ===")
    goal = FD("course section", "room")
    for index, step in enumerate(derive(FDS, goal)):
        print("%2d. %s" % (index, step))

    print("\n=== Chase-checked implication ===")
    candidate = FD("instructor section", "room")
    implied = chase_implies_fd(FDS, candidate, scheme=SCHEME)
    print("%s implied by the registrar FDs: %s" % (candidate, implied))

    print("\n=== An Armstrong relation for the FD set ===")
    witness = armstrong_relation(FDS, SCHEME)
    satisfied, violated = verify_armstrong(witness, FDS)
    print(
        "witness with %d tuples: satisfies exactly F+ (%s, %s)"
        % (len(witness), satisfied, violated)
    )

    print("\n=== Losslessness, demonstrated on data ===")
    schema = RelationSchema("registrar", tuple(sorted(SCHEME.split())))
    # attribute order: course, grade, instructor, room, section, student
    instance = Relation(
        schema,
        [
            ("db", "A", "codd", "r1", "s1", "ann"),
            ("db", "B", "codd", "r1", "s1", "bob"),
            ("logic", "A", "kowalski", "r1", "s2", "ann"),
        ],
    )
    report = tool.third_normal_form()
    fragments = [tuple(sorted(f)) for f in report["fragments"]]
    print("3NF fragments:", fragments)
    projections = [instance.project(f) for f in fragments]
    rejoined = projections[0]
    for projection in projections[1:]:
        rejoined = rejoined.natural_join(projection)
    rejoined = rejoined.project(schema.attributes)
    print(
        "project-then-join reconstructs the instance:",
        same_content(rejoined, instance),
    )

    print("\n=== And the wrong split, for contrast ===")
    bad = [("course", "room"), ("room", "student", "grade")]
    print(
        "lossless?",
        is_lossless_join(SCHEME, [set(f) for f in bad], FDS),
    )
    left = instance.project(bad[0])
    right = instance.project(bad[1])
    spurious = left.natural_join(right)
    print(
        "rejoining those fragments yields %d tuples from a %d-tuple "
        "instance — the classic spurious-tuple disaster."
        % (len(spurious), len(instance))
    )


if __name__ == "__main__":
    main()
