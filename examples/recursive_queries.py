"""Recursive queries: the "beautiful ideas" on a flight network.

§6's lament made concrete: reachability over a hub-and-spoke flight
network, evaluated naively, semi-naively, with magic sets, and top-down
— with wall-clock numbers, derived-fact counts, and the magic-sets
rewriting shown in full.

Run:  python examples/recursive_queries.py
"""

import time

from repro.datalog import (
    DatalogEngine,
    FactStore,
    magic_transform,
    parse_program,
    parse_query,
    seminaive_evaluate,
    stratify,
)


def flight_network(hubs=4, spokes_per_hub=12):
    """A layered hub network (eastbound only, so queries are selective).

    Hubs form a one-way chain hub0 -> hub1 -> ...; each hub serves its
    spoke cities with outbound flights, and spokes feed their own hub.
    Reachability from a westerly city covers only airports to its east —
    which is what makes goal-directed evaluation worthwhile.
    """
    flights = []
    for hub in range(hubs):
        if hub + 1 < hubs:
            flights.append(("hub%d" % hub, "hub%d" % (hub + 1)))
        for spoke in range(spokes_per_hub):
            city = "city_%d_%d" % (hub, spoke)
            flights.append((city, "hub%d" % hub))
            flights.append(("hub%d" % hub, city))
    return flights


PROGRAM_TEXT = """
    reachable(X, Y) :- flight(X, Y).
    reachable(X, Z) :- flight(X, Y), reachable(Y, Z).
    connected(X, Y) :- reachable(X, Y), reachable(Y, X).
    stranded(X, Y) :- airport(X), airport(Y), not reachable(X, Y).
"""


def main():
    flights = flight_network()
    airports = sorted({a for f in flights for a in f})
    edb = FactStore(
        {"flight": flights, "airport": [(a,) for a in airports]}
    )
    program, _ = parse_program(PROGRAM_TEXT)

    print("=== The program ===")
    print(PROGRAM_TEXT.strip())
    print(
        "\n%d airports, %d flights; strata: %s"
        % (len(airports), len(flights), stratify(program))
    )

    print("\n=== Full evaluation: naive vs semi-naive ===")
    engine = DatalogEngine(program, edb)
    for strategy in ("naive", "seminaive"):
        start = time.perf_counter()
        model = engine.evaluate(strategy) if strategy != "naive" else None
        # naive is not cached together with seminaive; call directly:
        if strategy == "naive":
            from repro.datalog import naive_evaluate

            model = naive_evaluate(program, edb)
        elapsed = time.perf_counter() - start
        print(
            "%-10s %6.1f ms   reachable=%d connected=%d stranded=%d"
            % (
                strategy,
                elapsed * 1000,
                model.count("reachable"),
                model.count("connected"),
                model.count("stranded"),
            )
        )

    print("\n=== A bound query: where can easterly city_3_0 fly? ===")
    positive_program, _ = parse_program(
        """
        reachable(X, Y) :- flight(X, Y).
        reachable(X, Z) :- flight(X, Y), reachable(Y, Z).
        """
    )
    query = parse_query("reachable(city_3_0, X)")
    pos_engine = DatalogEngine(positive_program, edb)
    for strategy in ("seminaive", "magic", "topdown"):
        start = time.perf_counter()
        answers = pos_engine.query(query, strategy=strategy)
        elapsed = time.perf_counter() - start
        print(
            "%-10s %6.1f ms   %d destinations"
            % (strategy, elapsed * 1000, len(answers))
        )

    print("\n=== The magic-sets rewriting, in full ===")
    transform = magic_transform(positive_program, query)
    print(transform.program)
    print(
        "\n(%d adorned rules, %d magic rules; answers live in %s)"
        % (
            transform.adorned_rule_count,
            transform.magic_rule_count,
            transform.query_predicate,
        )
    )

    print("\n=== How much work did magic save? ===")
    full_model = seminaive_evaluate(positive_program, edb)
    magic_model = seminaive_evaluate(transform.program, edb)
    print(
        "facts derived: full evaluation %d, magic evaluation %d"
        % (
            full_model.count("reachable"),
            magic_model.count(transform.query_predicate),
        )
    )


if __name__ == "__main__":
    main()
