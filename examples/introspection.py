"""Introspection tour: the workbench queries itself.

The paper's metatheory program — study databases *with* database tools —
made literal: the runtime's own state (metrics, spans, the query log,
the plan cache, catalog statistics) lives in queryable ``sys_``
relations, and the flight recorder keeps a bounded history of every
query, errors and slow queries included.  So "which of my queries were
slow, and what did their plans do?" is itself just a query:

* a mixed SQL/calculus/Datalog workload runs with recording on (one
  query deliberately fails, one is deliberately "slow");
* SQL over ``sys_query_log`` reads the history back, and a join with
  ``sys_plan_cache`` finds each query's cached plan and its hit count;
* Datalog over the same system tables derives the hot-query report;
* the slow query's attached OpReport tree prints, straight from the
  recorder.

Run:  python examples/introspection.py
"""

from repro import MetatheoryWorkbench
from repro.errors import SchemaError
from repro.obs.metrics import MetricsRegistry


def build_workbench():
    return MetatheoryWorkbench(
        MetatheoryWorkbench.from_dict(
            {
                "emp": (
                    ("eid", "dept"),
                    [(1, 10), (2, 10), (3, 20), (4, 20), (5, 30)],
                ),
                "dept": (
                    ("dept", "loc"), [(10, 100), (20, 200), (30, 100)]
                ),
                "loc": (
                    ("loc", "city"), [(100, "athens"), (200, "berlin")]
                ),
            }
        ).db,
        metrics=MetricsRegistry(),  # private registry: a clean dump
        slow_query_ms=0.0,  # flight recorder armed; everything is "slow"
    )


def run_workload(wb):
    wb.sql("SELECT eid FROM emp")
    wb.sql(
        "SELECT emp.eid, loc.city FROM emp, dept, loc "
        "WHERE emp.dept = dept.dept AND dept.loc = loc.loc"
    )
    wb.sql("SELECT eid FROM emp")  # warm plan + parse caches
    wb.calculus("{(x) | exists d . emp(x, d)}")
    wb.run("colleagues(X, Y) :- emp(X, D), emp(Y, D).")
    try:
        wb.sql("SELECT eid FROM emmp")  # deliberate typo
    except SchemaError:
        pass  # recorded anyway: the tape matters most on a crash


def main():
    wb = build_workbench()
    run_workload(wb)

    print("=== The query log, read back in SQL ===")
    log = wb.sql(
        "SELECT qid, kind, status, rows, route FROM sys_query_log"
    )
    for row in sorted(log.tuples):
        print("  qid=%s kind=%-8s status=%-5s rows=%-4s route=%s" % row)

    print("\n=== Query log x plan cache (join on the fingerprint) ===")
    joined = wb.sql(
        "SELECT log.qid, log.plan_fingerprint, cache.hits"
        " FROM sys_query_log log, sys_plan_cache cache"
        " WHERE log.plan_fingerprint = cache.plan_fingerprint"
    )
    for qid, fingerprint, hits in sorted(joined.tuples):
        print("  qid=%s plan=%s cache_hits=%d" % (qid, fingerprint, hits))

    print("\n=== The same questions in Datalog ===")
    model = wb.run(
        'failed(Q, E) :- sys_query_log(Q, K, "error", H, T, W, R, TM,'
        " RF, PCH, PRH, PF, RO, SL, E).\n"
        'counted(N, V) :- sys_metrics(N, K, L, "value", V).'
    )
    for qid, error in sorted(model.get("failed")):
        print("  failed qid=%s: %s" % (qid, error))
    for name, value in sorted(model.get("counted")):
        if name.startswith("quer"):
            print("  %s = %s" % (name, value))

    print("\n=== Catalog statistics, as a relation ===")
    census = wb.sql(
        "SELECT relation, attribute, rows, distinct_values"
        " FROM sys_catalog_stats WHERE relation = 'emp'"
    )
    for row in sorted(census.tuples):
        print("  %s.%s: %d rows, %d distinct" % row)

    print("\n=== The flight recorder's slowest query ===")
    # Reports exist on the instrumented streaming path (relational
    # queries); fixpoint/parallel routes record wall time only.
    slow = max(wb.history.slow_queries(), key=lambda r: r.wall_ms)
    print("  %r" % slow)

    print("\n=== ... and it can explain the introspection queries too ===")
    # The log x plan-cache join above went through the ordinary
    # pipeline, so its own OpReport is on the tape - sys_ scans and all.
    meta = next(
        r for r in wb.history.records()
        if r.report is not None and "sys_plan_cache" in r.text
    )
    print("  %r" % meta)
    print("\n".join("  " + line for line in
                    meta.report.render().splitlines()))


if __name__ == "__main__":
    main()
