"""Observability tour: EXPLAIN ANALYZE, traces, and metrics.

The paper judges a field by measuring it; this example applies the same
discipline to the engines themselves.  One workbench, four front-ends,
and every layer reporting what it actually did:

* ``wb.explain_analyze(sql)`` — the annotated operator tree (rows,
  inclusive wall-clock time, scan/probe/build counters, peak buffers)
  plus plan/parse cache outcomes;
* a traced Datalog fixpoint — per-stratum, per-round spans with delta
  sizes and counter deltas;
* a traced transaction schedule — lock waits and aborts as events;
* a :class:`MetricsRegistry` dump — the flat, machine-readable view the
  benchmarks derive their tables from.

Run:  python examples/observability.py
"""

from repro import MetatheoryWorkbench
from repro.datalog import EngineStatistics, seminaive_evaluate
from repro.datalog.facts import FactStore
from repro.datalog.parser import parse_program
from repro.obs import MetricsRegistry, Tracer, render_metrics, render_trace
from repro.transactions import (
    WorkloadConfig,
    generate_schedule,
    two_phase_lock,
)


def build_workbench():
    return MetatheoryWorkbench.from_dict(
        {
            "emp": (
                ("eid", "dept"),
                [(1, 10), (2, 10), (3, 20), (4, 20), (5, 30)],
            ),
            "dept": (("dept", "loc"), [(10, 100), (20, 200), (30, 100)]),
            "loc": (("loc", "city"), [(100, "athens"), (200, "berlin")]),
        }
    )


def main():
    wb = build_workbench()
    sql = (
        "SELECT emp.eid, loc.city FROM emp, dept, loc "
        "WHERE emp.dept = dept.dept AND dept.loc = loc.loc"
    )

    print("=== EXPLAIN ANALYZE: a three-table SQL join ===")
    print(wb.explain_analyze(sql).render())

    print("\n=== Second run: the caches warm up ===")
    print(wb.explain_analyze(sql).render().splitlines()[0])

    print("\n=== Same data, other front-ends ===")
    for query in (
        "{(x) | exists d . emp(x, d)}",
        "colleagues(X, Y) :- emp(X, D), emp(Y, D).",
    ):
        result = wb.explain_analyze(query)
        print(
            "%-8s -> %d rows via %s"
            % (result.kind, result.report.rows, ", ".join(
                sorted({op.split("[")[0] for op in result.operators()[:4]})
            ))
        )

    print("\n=== A traced semi-naive fixpoint (transitive closure) ===")
    tracer = Tracer()
    program, _ = parse_program(
        "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."
    )
    edb = FactStore({"edge": [(i, i + 1) for i in range(8)]})
    seminaive_evaluate(
        program, edb, stats=EngineStatistics(), tracer=tracer
    )
    print(render_trace(tracer))

    print("\n=== A traced 2PL run under contention ===")
    tracer = Tracer()
    schedule = generate_schedule(
        WorkloadConfig(
            num_transactions=6,
            ops_per_transaction=4,
            num_items=10,
            hot_fraction=0.2,
            hot_access_probability=0.9,
            seed=2,
        )
    )
    two_phase_lock(schedule, tracer=tracer)
    print(render_trace(tracer))

    print("\n=== The metrics registry: one source of truth ===")
    registry = MetricsRegistry()
    wb.plan_cache.publish(registry)
    stats = EngineStatistics()
    wb.sql(sql, stats=stats)
    for field, value in stats.as_dict().items():
        registry.gauge("executor_%s" % field).set(value)
    print(render_metrics(registry))


if __name__ == "__main__":
    main()
