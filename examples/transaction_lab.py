"""Transaction lab: the "simplest solutions" on a banking workload.

The transaction-processing tradition in one session: hand-built
schedules through the serializability and recoverability tests, then the
three classical schedulers racing on a contended transfer workload —
the experiment behind §6's observation that products adopted 2PL.

Run:  python examples/transaction_lab.py
"""

from repro.transactions import (
    WorkloadConfig,
    equivalent_serial_schedule,
    generate_schedule,
    is_conflict_serializable,
    is_view_serializable,
    optimistic,
    parse_schedule,
    precedence_graph,
    recovery_class,
    timestamp_order,
    two_phase_lock,
)


def main():
    print("=== Anatomy of a schedule ===")
    transfer = parse_schedule(
        "r1(checking) r2(savings) w1(checking) r1(savings) "
        "w2(savings) w1(savings) c1 c2"
    )
    print("history:     ", transfer)
    print("precedence:  ", {
        t: sorted(s) for t, s in precedence_graph(transfer).items()
    })
    print("conflict serializable:", is_conflict_serializable(transfer))
    if is_conflict_serializable(transfer):
        print("equivalent serial:", equivalent_serial_schedule(transfer))
    print("recovery class:", recovery_class(transfer))

    print("\n=== The classical separating examples ===")
    examples = {
        "lost update (not CSR)": "r1(x) r2(x) w1(x) w2(x) c1 c2",
        "VSR but not CSR (blind writes)":
            "w1(x) w2(x) w2(y) c2 w1(y) w3(x) w3(y) c3 c1",
        "dirty read, unrecoverable": "w1(x) r2(x) c2 c1",
        "cascading but recoverable": "w1(x) r2(x) c1 c2",
        "strict": "w1(x) c1 r2(x) c2",
    }
    for label, text in examples.items():
        schedule = parse_schedule(text)
        print(
            "%-32s CSR=%-5s VSR=%-5s recovery=%s"
            % (
                label,
                is_conflict_serializable(schedule),
                is_view_serializable(schedule),
                recovery_class(schedule),
            )
        )

    print("\n=== Scheduler race on a contended transfer workload ===")
    print(
        "%6s  %12s %12s %12s"
        % ("hot%", "2PL c/a/w", "TO c/a", "OCC c/a")
    )
    for contention in (0.0, 0.3, 0.6, 0.9):
        totals = {"2pl": [0, 0, 0], "to": [0, 0], "occ": [0, 0]}
        for seed in range(5):
            config = WorkloadConfig(
                num_transactions=12,
                ops_per_transaction=4,
                num_items=20,
                write_ratio=0.6,
                hot_fraction=0.1,
                hot_access_probability=contention,
                seed=seed,
            )
            schedule = generate_schedule(config)
            out, stats = two_phase_lock(schedule)
            assert is_conflict_serializable(out)
            totals["2pl"][0] += len(out.committed())
            totals["2pl"][1] += len(stats["aborted"])
            totals["2pl"][2] += stats["wait_events"]
            out, stats = timestamp_order(schedule)
            totals["to"][0] += len(out.committed())
            totals["to"][1] += len(stats["aborted"])
            out, stats = optimistic(schedule)
            totals["occ"][0] += len(out.committed())
            totals["occ"][1] += len(stats["aborted"])
        print(
            "%6.1f  %4d/%2d/%3d  %6d/%2d  %7d/%2d"
            % (
                contention * 100,
                totals["2pl"][0],
                totals["2pl"][1],
                totals["2pl"][2],
                totals["to"][0],
                totals["to"][1],
                totals["occ"][0],
                totals["occ"][1],
            )
        )
    print(
        "\nReading: 2PL converts contention into waiting and keeps"
        "\ncommitting; the abort-based schemes shed work instead —"
        "\nwhy 'most database products adopted the simplest solutions'."
    )


if __name__ == "__main__":
    main()
