"""Metatheory experiments: "positive results are invitations to experiment".

§3's thesis applied to this library itself: every positive theorem we
implement is validated empirically, on randomized instances, against an
independent semantics — Codd's Theorem against the active-domain oracle,
the four Datalog engines against each other, the optimizer against the
unoptimized evaluator, the chase against Armstrong closure.

The paper: "I am aware that not all positive results are followed up by
such experimental validation, but I think that such absence should be
considered as a form of falsification. … I highly recommend the obvious
prevention: doing your own experiments."  This script does ours.

Run:  python examples/metatheory_experiments.py
"""

import time

from repro.core import run_all
from repro.metascience import KuhnProcess, figure2_comparison


def main():
    print("=== The library's own Berkeley-IBM moment ===\n")
    start = time.perf_counter()
    reports = run_all(seed=2026)
    elapsed = time.perf_counter() - start
    for report in reports:
        status = "CONFIRMED" if report.confirmed else "FALSIFIED"
        print(
            "%-20s %3d randomized trials  ->  %s"
            % (report.name, report.trials, status)
        )
        for failure in report.failures:
            print("    counterexample:", failure)
    print("\n(%d experiments in %.2f s)" % (len(reports), elapsed))

    print("\n=== And the metascience, on ourselves ===")
    print(
        "If a counterexample ever appears above, that is an anomaly in"
        "\nKuhn's sense: it accumulates against the implementation's"
        "\nparadigm until something gives.  The stage machine, for scale:"
    )
    process = KuhnProcess(anomaly_rate=0.05, tolerance=3, seed=1)
    process.run(600)
    durations = process.stage_durations()
    print(
        "over 600 steps: %d revolutions; mean normal-science episode %.1f"
        % (
            process.revolutions(),
            sum(durations["normal science"])
            / max(len(durations["normal science"]), 1),
        )
    )

    print("\n=== Is this research graph healthy? ===")
    comparison = figure2_comparison(n=250, seed=11)
    for regime, report in comparison.items():
        print(
            "%-8s giant=%.2f diameter=%d theory->practice=%s hops"
            % (
                regime,
                report["giant_fraction"],
                report["giant_diameter"],
                report["theory_practice_median_distance"],
            )
        )
    print(
        "\nA library whose theory modules are all a few imports from its"
        "\nexecutable benchmarks is, by Figure 2's standard, healthy."
    )


if __name__ == "__main__":
    main()
