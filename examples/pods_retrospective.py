"""The PODS retrospective: regenerate and analyze the paper's Figure 3.

Reproduces §6 end to end: the five-area two-year-average curves, the
dominance shifts, footnote 10's two-year harmonic and its
program-committee model, the Lotka-Volterra ecosystem reading, and
footnote 11's Kitcher diversity model.

Run:  python examples/pods_retrospective.py
"""

from repro.metascience import (
    AREAS,
    AREA_LABELS,
    LOGIC_DB_ANCHOR,
    RAW_COUNTS,
    alternation_score,
    diversity_experiment,
    dominant_area,
    figure3_series,
    has_two_year_harmonic,
    pc_memory_series,
    peak_year,
    render_figure3,
    succession_fit,
    succession_order,
    totals,
    trend,
    two_year_harmonic_strength,
)


def ascii_chart(series, width=52, height=10):
    """A tiny ASCII line chart of one (year, value) series."""
    values = [v for _, v in series]
    top = max(values)
    rows = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        line = "".join(
            "*" if value >= threshold else " "
            for value in values
            for _ in (0,)
        )
        rows.append("%5.1f |%s" % (threshold, line))
    rows.append("      +" + "-" * len(values))
    rows.append("       " + "".join(str(year)[-1] for year, _ in series))
    return "\n".join(rows)


def main():
    print("=== Figure 3: PODS papers, two-year averages, 1983-1995 ===\n")
    print(render_figure3())

    print("\n=== The curves, sketched ===")
    for area in AREAS:
        print("\n%s:" % AREA_LABELS[area])
        print(ascii_chart(figure3_series(area)))

    print("\n=== Section 6's observations, recomputed ===")
    print("dominant area 1982:", AREA_LABELS[dominant_area(1982)])
    print("dominant area 1989:", AREA_LABELS[dominant_area(1989)])
    print("dominant area 1995:", AREA_LABELS[dominant_area(1995)])
    volume = totals()
    largest = max(volume, key=volume.get)
    print(
        "largest tradition by volume:", AREA_LABELS[largest],
        "(%d papers)" % volume[largest],
    )
    for area in AREAS:
        print(
            "%-32s trend=%-10s peak=%d"
            % (AREA_LABELS[area], trend(area), peak_year(area))
        )

    print("\n=== Footnote 10: the two-year harmonic ===")
    print(
        "logic databases 1986-92 (verbatim):", list(LOGIC_DB_ANCHOR),
        " alternation score:", alternation_score(LOGIC_DB_ANCHOR),
    )
    for area in AREAS:
        strength = two_year_harmonic_strength(RAW_COUNTS[area])
        marker = "<- strong" if has_two_year_harmonic(RAW_COUNTS[area]) else ""
        print("%-32s harmonic strength %.3f %s" % (
            AREA_LABELS[area], strength, marker))
    simulated = pc_memory_series(target=12, correction=0.8, drift=-0.6)
    print(
        "\nprogram-committee memory model (over-correcting AR(1)):",
        [round(v, 1) for v in simulated],
    )
    print("model alternation score:", alternation_score(simulated))

    print("\n=== The Volterra ecosystem reading ===")
    data = figure3_series()
    order = [a for a in succession_order() if a != "access_methods"]
    ordered = {a: [v for _, v in data[a]] for a in order}
    fit = succession_fit(ordered)
    print("succession (peak order):", " -> ".join(
        AREA_LABELS[a] for a in order))
    for area, correlation in fit.items():
        print(
            "%-32s shape correlation with its chain species: %.3f"
            % (AREA_LABELS[area], correlation)
        )

    print("\n=== Footnote 11: Kitcher's diversity model ===")
    for sharing, shares, diversity in diversity_experiment([3.0, 2.0, 1.0]):
        print(
            "payoff sharing %.1f -> shares %s, diversity H=%.3f"
            % (sharing, [round(s, 3) for s in shares], diversity)
        )
    print(
        "\nReading: with credit-sharing, the community divides across"
        "\ntraditions in proportion to their quality — diversity is the"
        "\nequilibrium, exactly Kitcher's point about paradigm loyalty."
    )


if __name__ == "__main__":
    main()
