"""Tree walk vs streaming executor: the cost of materializing everything.

The shared pipeline's claim (DESIGN.md §4b.1) is about *intermediates*:
a Volcano-style executor only buffers what an operator genuinely has to
hold (hash build sides, dedup sets, the result), while the legacy tree
walk materializes every node's full output.  This bench measures both
cost models on the *same optimized logical plan* — star and chain SQL
joins, a selective theta join, and a lowered non-recursive Datalog
program — using the same EngineStatistics counters, and asserts the
executor materializes strictly fewer tuples on every workload.

Every measured number is recorded into a MetricsRegistry; the printed
table, the assertions, and the JSON artifact all derive from the
registry dump.  Table in results/query_pipeline.txt, raw metrics in
results/query_pipeline_metrics.json.
"""

import random

import pytest

from repro.datalog.facts import FactStore
from repro.datalog.lowering import lower_program
from repro.datalog.parser import parse_program
from repro.datalog.stats import EngineStatistics
from repro.obs import MetricsRegistry
from repro.plan import canonicalize, execute_physical, measure_treewalk
from repro.relational import (
    Database,
    Relation,
    RelationRef,
    RelationSchema,
    Selection,
    ThetaJoin,
    gt,
    lt,
)
from repro.relational.optimizer import optimize
from repro.relational.sql_frontend import parse_sql

from .conftest import format_table, write_artifact, write_metrics

pytestmark = pytest.mark.slow


def star_database(fact_rows=1200, dim_rows=40, seed=0):
    rng = random.Random(seed)
    fact = {
        (rng.randrange(300), rng.randrange(dim_rows), rng.randrange(dim_rows))
        for _ in range(fact_rows)
    }
    d1 = {(i, "cat%d" % (i % 6)) for i in range(dim_rows)}
    d2 = {(i, "reg%d" % (i % 4)) for i in range(dim_rows)}
    return Database(
        [
            Relation(RelationSchema("fact", ("k", "b", "c")), fact),
            Relation(RelationSchema("dim1", ("b", "cat")), d1),
            Relation(RelationSchema("dim2", ("c", "reg")), d2),
        ]
    )


def chain_database(rows=400, seed=1):
    rng = random.Random(seed)

    def rel(name, attrs):
        return Relation(
            RelationSchema(name, attrs),
            {(rng.randrange(60), rng.randrange(60)) for _ in range(rows)},
        )

    return Database(
        [rel("r0", ("a", "b")), rel("r1", ("b", "c")), rel("r2", ("c", "d"))]
    )


STAR_SQL = (
    "SELECT f.k, d1.cat, d2.reg FROM fact f, dim1 d1, dim2 d2 "
    "WHERE f.b = d1.b AND f.c = d2.c AND d1.cat = 'cat0'"
)

CHAIN_SQL = (
    "SELECT x.a, z.d FROM r0 x, r1 y, r2 z "
    "WHERE x.b = y.b AND y.c = z.c AND z.d = 7"
)

DATALOG_PROGRAM = """
reach2(X, Z) :- edge(X, Y), edge(Y, Z).
popular(Y) :- edge(X, Y), edge(Z, Y), X != Z.
isolated_pair(X, Z) :- reach2(X, Z), not edge(X, Z).
"""


def measure_sql(db, sql_text):
    """(result_size, treewalk stats, executor stats) on one optimized plan."""
    plan = canonicalize(
        optimize(canonicalize(parse_sql(sql_text), db.schema()), db),
        db.schema(),
    )
    tw_result, tw_stats, tw_peak = measure_treewalk(plan, db)
    ex_stats = EngineStatistics()
    ex_result, tally = execute_physical(plan, db, ex_stats)
    assert ex_result == tw_result
    return len(tw_result), (tw_stats, tw_peak), (ex_stats, tally.peak_buffer)


def measure_datalog(program_text, edge_facts):
    """Sum both cost models across a lowered program's predicate plans."""
    program, _ = parse_program(program_text)
    store = FactStore({"edge": edge_facts})
    db = store.to_database()
    tw_total, ex_total = EngineStatistics(), EngineStatistics()
    tw_peak_max = ex_peak_max = 0
    result_size = 0
    for predicate, expr in lower_program(program):
        plan = canonicalize(expr, db.schema())
        tw_result, tw_stats, tw_peak = measure_treewalk(plan, db)
        ex_stats = EngineStatistics()
        ex_result, tally = execute_physical(plan, db, ex_stats)
        assert ex_result == tw_result
        tw_total.merge(tw_stats)
        ex_total.merge(ex_stats)
        tw_peak_max = max(tw_peak_max, tw_peak)
        ex_peak_max = max(ex_peak_max, tally.peak_buffer)
        result_size += len(ex_result)
        db.replace(
            Relation(
                RelationSchema(
                    predicate,
                    tuple("c%d" % i for i in range(ex_result.schema.arity)),
                ),
                ex_result.tuples,
                validate=False,
            )
        )
    return result_size, (tw_total, tw_peak_max), (ex_total, ex_peak_max)


def test_pipeline_materialization(capsys):
    rows = []

    star = star_database()
    n, tw, ex = measure_sql(star, STAR_SQL)
    rows.append(("star SQL", n, tw, ex))

    chain = chain_database()
    n, tw, ex = measure_sql(chain, CHAIN_SQL)
    rows.append(("chain SQL", n, tw, ex))

    # A selective filter sitting above a big inequality join: the tree
    # walk materializes the full join output before the filter sees it;
    # the executor streams tuples through, buffering only the loop
    # join's right side and the final result.
    theta_db = Database(
        [
            Relation(
                RelationSchema("l", ("a",)), [(i,) for i in range(300)]
            ),
            Relation(
                RelationSchema("r", ("b",)), [(i,) for i in range(300)]
            ),
        ]
    )
    theta_plan = Selection(
        ThetaJoin(RelationRef("l"), RelationRef("r"), lt("a", "b")),
        gt("a", 290),
    )
    tw_result, tw_stats, tw_peak = measure_treewalk(theta_plan, theta_db)
    ex_stats = EngineStatistics()
    ex_result, tally = execute_physical(
        canonicalize(theta_plan, theta_db.schema()), theta_db, ex_stats
    )
    assert ex_result == tw_result
    rows.append(
        (
            "filtered theta join",
            len(tw_result),
            (tw_stats, tw_peak),
            (ex_stats, tally.peak_buffer),
        )
    )

    rng = random.Random(3)
    edges = {
        (rng.randrange(80), rng.randrange(80)) for _ in range(400)
    }
    n, tw, ex = measure_datalog(DATALOG_PROGRAM, edges)
    rows.append(("datalog (lowered)", n, tw, ex))

    # Record every measurement into the registry; everything below —
    # assertions, the printed table, the JSON artifact — reads it back.
    registry = MetricsRegistry()
    workload_names = []
    for name, n, (tw_stats, tw_peak), (ex_stats, ex_peak) in rows:
        workload_names.append(name)
        for metric, value in (
            ("pipeline_result_rows", n),
            ("pipeline_treewalk_materialized", tw_stats.tuples_materialized),
            ("pipeline_treewalk_peak", tw_peak),
            ("pipeline_executor_materialized", ex_stats.tuples_materialized),
            ("pipeline_executor_peak", ex_peak),
            ("pipeline_executor_probes", ex_stats.index_probes),
        ):
            registry.gauge(metric, workload=name).set(value)

    table_rows = []
    for name in workload_names:
        value = lambda metric: registry.value(metric, workload=name)
        tw_mat = value("pipeline_treewalk_materialized")
        ex_mat = value("pipeline_executor_materialized")
        # The acceptance criterion: strictly fewer materialized tuples.
        assert ex_mat < tw_mat, name
        ratio = tw_mat / ex_mat if ex_mat else float("inf")
        table_rows.append(
            (
                name,
                value("pipeline_result_rows"),
                tw_mat,
                value("pipeline_treewalk_peak"),
                ex_mat,
                value("pipeline_executor_peak"),
                value("pipeline_executor_probes"),
                "%.1fx" % ratio,
            )
        )

    table = format_table(
        (
            "workload",
            "result",
            "treewalk_mat",
            "treewalk_peak",
            "executor_mat",
            "executor_peak",
            "probes",
            "mat_ratio",
        ),
        table_rows,
    )
    text = (
        "Tree walk vs streaming executor on identical optimized plans\n"
        "(tuples_materialized: every node's output for the tree walk;\n"
        "operator buffers only — build sides, dedup sets, result — for\n"
        "the executor)\n\n" + table
    )
    write_artifact("query_pipeline.txt", text)
    write_metrics("query_pipeline_metrics.json", registry)
    with capsys.disabled():
        print("\n" + text)
