"""Cook/Fagin bench: the metatheorems, executed.

§3 calls Cook's Theorem "positive as a metatheorem" — it reduces the
complexity "of the mathematical landscape".  We execute the landscape:

* **Cook**: NTM bounded acceptance -> CNF -> DPLL, round-tripped against
  the configuration-BFS oracle, with reduction sizes (the polynomial
  blowup) tabulated;
* **Fagin**: 3-colorability as an ESO sentence vs direct backtracking;
* **data vs combined complexity** (Vardi's taxonomy): fixed query /
  growing data vs fixed data / growing query, on the k-path FO query.

Paper claims (shape): the reductions agree with the semantics
everywhere; the combined-complexity curve blows up qualitatively faster
than the data-complexity curve.  Tables in results/cook_fagin.txt.
"""

import itertools

from repro.complexity import (
    accepts,
    accepts_via_sat,
    combined_complexity_curve,
    cook_reduction,
    data_complexity_curve,
    growth_ratio,
    is_three_colorable,
    machine_guess_equal_ends,
    solve,
    three_colorable_via_fagin,
)

from .conftest import format_table, write_artifact


def cook_rows():
    machine = machine_guess_equal_ends()
    rows = []
    agreements = 0
    total = 0
    for length in (1, 2, 3):
        for bits in itertools.product("01", repeat=length):
            word = "".join(bits)
            bound = length + 2
            total += 1
            if accepts(machine, word, bound) == accepts_via_sat(
                machine, word, bound
            ):
                agreements += 1
    for bound in (3, 5, 7):
        reduction = cook_reduction(machine, "010", bound)
        variables, clauses, literals = reduction.cnf.stats()
        result = solve(reduction.cnf)
        rows.append(
            (bound, variables, clauses, literals, result.satisfiable)
        )
    return rows, agreements, total


def fagin_rows():
    graphs = {
        "triangle": [(1, 2), (2, 3), (1, 3)],
        "k4": [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        "path4": [(1, 2), (2, 3), (3, 4)],
        "odd_cycle5": [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)],
    }
    rows = []
    for name, edges in graphs.items():
        via_logic = three_colorable_via_fagin(edges)
        via_search = is_three_colorable(edges)
        rows.append((name, len(edges), via_logic, via_search))
    return rows


def test_cook_fagin_connection(benchmark):
    (cook_table, agreements, total) = benchmark.pedantic(
        cook_rows, rounds=1, iterations=1
    )
    fagin_table = fagin_rows()
    data_curve = data_complexity_curve([6, 12, 24], k=3)
    combined_curve = combined_complexity_curve([1, 2, 3, 4], n=10)

    # Shape: the Cook reduction agrees with the oracle on every word.
    assert agreements == total
    # Shape: reduction size grows polynomially with the time bound.
    variables = [row[1] for row in cook_table]
    assert variables == sorted(variables)
    assert variables[-1] < variables[0] * 16  # no exponential blowup
    # Shape: logic and search agree on 3-colorability.
    assert all(row[2] == row[3] for row in fagin_table)
    # Shape: combined complexity blows up faster than data complexity.
    assert growth_ratio(combined_curve) > growth_ratio(data_curve)

    sections = [
        "cook reduction round-trip: %d/%d words agree with the BFS oracle"
        % (agreements, total),
        "",
        format_table(
            ("time_bound", "variables", "clauses", "literals", "sat"),
            cook_table,
        ),
        "",
        "fagin: 3-colorability, ESO model checking vs backtracking",
        format_table(
            ("graph", "edges", "via_eso", "via_search"), fagin_table
        ),
        "",
        "data complexity (k=3 fixed, database grows)",
        format_table(
            ("n", "seconds", "answers"),
            [(n, "%.5f" % s, a) for n, s, a in data_curve],
        ),
        "",
        "combined complexity (n=10 fixed, query grows)",
        format_table(
            ("k", "seconds", "answers"),
            [(k, "%.5f" % s, a) for k, s, a in combined_curve],
        ),
        "",
        "growth ratios: data %.1fx vs combined %.1fx"
        % (growth_ratio(data_curve), growth_ratio(combined_curve)),
    ]
    write_artifact("cook_fagin.txt", "\n".join(sections))
