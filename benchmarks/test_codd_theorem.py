"""Codd's Theorem bench: "positive results are invitations to experiment".

The paper's §2(b)/§3 thesis, applied to its own favourite theorem: we
*run the experiment*.  Random safe calculus queries over random databases
are evaluated two ways — the active-domain semantics oracle and the
translated algebra — and timed.

Paper claim (shape): the two agree everywhere (that is the theorem), and
the algebra path is the implementable one — it scales with the database
while the naive semantics enumerates |adom|^k assignments.  Measured:
100% agreement; algebra faster by a growing factor as the domain grows
(table in results/codd_theorem.txt).
"""

import time

from repro.core.equivalence import codd_experiment, random_safe_query
from repro.core.random_instances import random_database
from repro.relational import calculus_to_algebra, evaluate, evaluate_query

from .conftest import format_table, write_artifact

SIZES = (8, 16, 32)


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


def scaling_rows():
    rows = []
    for rows_per_relation in SIZES:
        db = random_database(
            num_relations=2, rows=rows_per_relation, domain_size=12, seed=1
        )
        query = random_safe_query(db, seed=4, allow_negation=False)
        calc_seconds, reference = timed(evaluate_query, query, db)
        expr = calculus_to_algebra(query, db.schema())
        alg_seconds, translated = timed(evaluate, expr, db)
        agree = set(reference.tuples) == set(translated.tuples)
        rows.append(
            (
                rows_per_relation,
                len(reference),
                round(calc_seconds * 1000, 2),
                round(alg_seconds * 1000, 2),
                round(calc_seconds / max(alg_seconds, 1e-9), 1),
                agree,
            )
        )
    return rows


def test_codd_theorem_experiment(benchmark):
    report = benchmark.pedantic(
        codd_experiment, kwargs={"trials": 30, "seed": 0},
        rounds=1, iterations=1,
    )
    assert report.confirmed, report.failures

    rows = scaling_rows()
    assert all(row[-1] for row in rows)  # agreement everywhere
    # The algebra path wins at every size (timing noise makes the exact
    # speedup non-monotone; the win itself is the claim).
    speedups = [row[4] for row in rows]
    assert all(s > 1.0 for s in speedups), rows

    table = format_table(
        (
            "rows/rel",
            "answers",
            "calculus_ms",
            "algebra_ms",
            "speedup",
            "agree",
        ),
        rows,
    )
    header = "codd equivalence: %d random trials, %d failures\n\n" % (
        report.trials,
        len(report.failures),
    )
    write_artifact("codd_theorem.txt", header + table)
