"""Figure 2 bench: normal applied science vs applied science in crisis.

Regenerates the paper's two research-graph snapshots at *matched average
degree* and measures the global statistics the figure contrasts:

* healthy: "a giant component (in fact, one with reasonably small
  diameter) that spans most of the practical-theoretical spectrum …
  most of theory is within a few hops from practice";
* crisis: "although the local situation seems unchanged (say, the
  average degree is the same as before), connectivity is low …
  the little connectivity that exists is via long paths".

Measured shape: giant fraction high in both here (crisis keeps a big
band-component), but diameter and theory->practice distance blow up and
introversion rises in the crisis regime — which is exactly the figure's
visual claim.  Table in results/fig2_research_graph.txt.
"""

from repro.metascience import figure2_comparison

from .conftest import format_table, write_artifact

N = 400
DEGREE = 4.0

METRICS = (
    "units",
    "average_degree",
    "giant_fraction",
    "giant_diameter",
    "theory_practice_median_distance",
    "theory_practice_unreachable",
    "introversion_index",
)


def test_fig2_research_graph(benchmark):
    reports = benchmark.pedantic(
        figure2_comparison,
        kwargs={"n": N, "average_degree": DEGREE, "seed": 0},
        rounds=1,
        iterations=1,
    )
    healthy = reports["healthy"]
    crisis = reports["crisis"]

    # Matched local statistics.
    assert abs(healthy["average_degree"] - crisis["average_degree"]) < 1.0
    # Global statistics diverge exactly as the figure shows.
    assert healthy["giant_fraction"] > 0.9
    assert crisis["giant_diameter"] > healthy["giant_diameter"]
    assert (
        crisis["theory_practice_median_distance"]
        > healthy["theory_practice_median_distance"]
    )
    assert crisis["introversion_index"] >= healthy["introversion_index"]
    assert healthy["theory_practice_median_distance"] <= 3  # "a few hops"

    table = format_table(
        ("metric", "healthy", "crisis"),
        [(m, healthy[m], crisis[m]) for m in METRICS],
    )
    write_artifact("fig2_research_graph.txt", table)


def test_fig2_crisis_onset_sweep(benchmark):
    """Ablation: how narrow must mixing get before the field is 'in crisis'?

    Sweeps the crisis band width from open (0.5) to introverted (0.05)
    at fixed degree, measuring when the theory->practice distance and
    diameter take off — the model's 'onset of crisis' curve.
    """
    from repro.metascience import ResearchGraph

    def sweep():
        rows = []
        for band in (0.5, 0.3, 0.2, 0.12, 0.05):
            graph = ResearchGraph.generate(
                n=N, average_degree=DEGREE, regime="crisis", band=band,
                seed=1,
            )
            report = graph.health_report()
            rows.append(
                (
                    band,
                    report["giant_fraction"],
                    report["giant_diameter"],
                    report["theory_practice_median_distance"],
                    report["introversion_index"],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    distances = [row[3] for row in rows]
    # Shape: narrowing the band lengthens the theory->practice path.
    assert distances[-1] > distances[0]
    diameters = [row[2] for row in rows]
    assert diameters[-1] > diameters[0]

    table = format_table(
        (
            "band",
            "giant_fraction",
            "diameter",
            "theory_practice_dist",
            "introversion",
        ),
        rows,
    )
    write_artifact("fig2_crisis_onset.txt", table)
