"""Parallel partitioned execution bench: multicore joins and fixpoints.

The tentpole perf claim: hash-partitioning a large equi-join (and the
per-round deltas of a large semi-naive fixpoint) across ``N`` worker
processes cuts wall-clock time roughly by the number of *physical
cores* — ≥2x with 4 workers on a machine with ≥2 cores.  Correctness is
asserted unconditionally: the parallel answers must equal the serial
answers tuple for tuple, whatever the hardware.

Honesty note: the speedup assertion is gated on
``len(os.sched_getaffinity(0)) >= 2``.  On a single-core container
fork/pickle/IPC overhead makes parallel execution *slower* — there is
no second core to win on — so the bench records the measured numbers
(including the CPU count) in the artifacts and skips the speedup
assertion rather than fake it.  Artifacts land in
``results/parallel_execution.txt`` + ``_metrics.json`` and, as a
machine-readable summary, ``BENCH_parallel.json`` at the repo root.
"""

import os
import random
import time

import pytest

from repro.core.random_instances import chain_edges, random_graph_edges
from repro.core.workbench import MetatheoryWorkbench
from repro.datalog import FactStore, seminaive_evaluate
from repro.datalog.parser import parse_program
from repro.obs import MetricsRegistry
from repro.parallel import ParallelBackend
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

from .conftest import format_table, write_artifact, write_json, write_metrics

pytestmark = pytest.mark.slow

WORKERS = 4
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def visible_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def timed(fn, repeats=3):
    """Best-of-N wall clock (seconds) plus the last result."""
    best, result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def join_database(rows=60_000, seed=23):
    rng = random.Random(seed)
    db = Database()
    db.add(Relation(
        RelationSchema("r", ("a", "b")),
        [(rng.randrange(2_000), rng.randrange(20_000))
         for _ in range(rows)],
        validate=False,
    ))
    db.add(Relation(
        RelationSchema("s", ("b", "c")),
        [(rng.randrange(20_000), rng.randrange(2_000))
         for _ in range(rows)],
        validate=False,
    ))
    return db


def layered_dag(layers=9, width=70, fan=10, seed=5):
    """A layered DAG: few, fat semi-naive rounds — the sharding regime."""
    rng = random.Random(seed)
    edges = set()
    for layer in range(layers - 1):
        for node in range(width):
            for _ in range(fan):
                edges.add((
                    layer * width + node,
                    (layer + 1) * width + rng.randrange(width),
                ))
    return FactStore({"edge": list(edges)})


TC = "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."


def run_join_workload():
    db = join_database()
    wb = MetatheoryWorkbench(db)
    sql = "SELECT a, c FROM r, s WHERE r.b = s.b"
    try:
        serial_seconds, serial = timed(lambda: wb.sql(sql))
        backend = wb.parallel_backend(WORKERS)
        parallel_seconds, parallel = timed(
            lambda: wb.run(sql, executor="parallel", workers=WORKERS)
        )
        assert backend.parallel_runs > 0, "join must take the parallel path"
        assert set(parallel.tuples) == set(serial.tuples)
        return {
            "rows": len(serial),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": serial_seconds / parallel_seconds,
            "serial_retries": backend.pool.serial_retries,
        }
    finally:
        wb.close()


def run_fixpoint_workload():
    program, _ = parse_program(TC)
    edb = layered_dag()
    serial_seconds, serial = timed(
        lambda: seminaive_evaluate(program, edb), repeats=2
    )
    backend = ParallelBackend(workers=WORKERS, timeout=600.0)
    try:
        parallel_seconds, parallel = timed(
            lambda: seminaive_evaluate(program, edb, backend=backend),
            repeats=2,
        )
        assert backend.pool.tasks_dispatched > 0, (
            "fixpoint must shard at least one round"
        )
        assert parallel.get("path") == serial.get("path")
        return {
            "rows": parallel.count("path"),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": serial_seconds / parallel_seconds,
            "serial_retries": backend.pool.serial_retries,
        }
    finally:
        backend.close()


def test_parallel_execution_speedup(benchmark):
    cpus = visible_cpus()

    def run_all():
        return {
            "hash join 60k x 60k": run_join_workload(),
            "tc fixpoint layered-dag": run_fixpoint_workload(),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    registry = MetricsRegistry()
    registry.gauge("parallel_visible_cpus").set(cpus)
    registry.gauge("parallel_workers").set(WORKERS)
    for label, outcome in results.items():
        for metric, value in (
            ("parallel_result_rows", outcome["rows"]),
            ("parallel_serial_seconds", outcome["serial_seconds"]),
            ("parallel_parallel_seconds", outcome["parallel_seconds"]),
            ("parallel_speedup", outcome["speedup"]),
            ("parallel_serial_retries", outcome["serial_retries"]),
        ):
            registry.gauge(metric, workload=label).set(value)

    rows = [
        (
            label,
            outcome["rows"],
            "%.3fs" % outcome["serial_seconds"],
            "%.3fs" % outcome["parallel_seconds"],
            "%.2fx" % outcome["speedup"],
        )
        for label, outcome in results.items()
    ]
    table = format_table(
        ("workload", "result rows", "serial", "parallel-%d" % WORKERS,
         "speedup"),
        rows,
    )
    note = (
        "visible CPUs: %d — %s" % (
            cpus,
            "speedup asserted (>=2 cores)" if cpus >= 2 else
            "single core: IPC overhead only, speedup NOT asserted "
            "(see EXPERIMENTS.md)",
        )
    )
    write_artifact("parallel_execution.txt", table + "\n\n" + note)
    write_metrics("parallel_execution_metrics.json", registry)

    summary = {
        "bench": "parallel_execution",
        "visible_cpus": cpus,
        "workers": WORKERS,
        "speedup_asserted": cpus >= 2,
        "workloads": results,
    }
    with open(os.path.join(ROOT, "BENCH_parallel.json"), "w") as handle:
        import json

        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if cpus >= 2:
        # The headline claim, on hardware that can exhibit it: 4 workers
        # on >=2 cores beat serial by >=2x on both workloads.
        assert results["hash join 60k x 60k"]["speedup"] >= 2.0, results
        assert results["tc fixpoint layered-dag"]["speedup"] >= 2.0, results
    else:
        pytest.skip(
            "only %d CPU visible: parallel speedup is physically "
            "unattainable here; correctness asserted, timings recorded in "
            "BENCH_parallel.json" % cpus
        )
