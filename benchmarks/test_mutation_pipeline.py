"""The mutation pipeline, measured: bulk DML, MVCC overhead, rollback.

Three questions the storage tentpole raises, answered with numbers:

* **Bulk vs per-row** — ``INSERT INTO … SELECT`` plans its source once
  and commits one version; a per-row autocommit loop pays a plan-cache
  hit, a copy-on-write bindings swap, and a journal entry per row.  The
  bench reports both throughputs; the gate only asserts bulk wins (the
  measured gap is large, see EXPERIMENTS.md).
* **Snapshot and journal overhead** — a snapshot is a pinned dict
  reference and must stay O(1) regardless of database size; the
  journaled, versioned commit path costs something over raw relation
  construction, and the bench measures exactly how much instead of
  pretending it is free.
* **Abort cost** — rolling a transaction back restores journal undo
  images; the bench compares commit vs rollback per-transaction cost on
  identical write sets.

Artifacts: ``benchmarks/results/mutation_pipeline*`` and
``BENCH_txn.json`` at the repo root.
"""

import json
import os
import time

from repro.core.workbench import MetatheoryWorkbench
from repro.obs import MetricsRegistry
from repro.relational.database import Database
from repro.relational.relation import Relation

from .conftest import format_table, write_artifact, write_metrics

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SOURCE_ROWS = 50000
PERROW_ROWS = 2000
SNAPSHOTS = 10000
TXNS = 150
TXN_DELTA = 100


def timed(fn, repeats=3):
    best, result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def make_wb():
    return MetatheoryWorkbench(
        Database.from_dict(
            {
                "source": (
                    ("sid", "kind", "val"),
                    [(i, i % 7, i % 997) for i in range(SOURCE_ROWS)],
                ),
                "sink": (("sid", "kind", "val"), []),
            }
        ),
        metrics=MetricsRegistry(),
    )


def bench_bulk_vs_per_row():
    """One INSERT…SELECT against a per-row autocommit loop."""
    def bulk():
        wb = make_wb()
        wb.sql(
            "INSERT INTO sink SELECT sid, kind, val FROM source "
            "WHERE kind = 3"
        )
        return wb

    bulk_seconds, wb = timed(bulk)
    bulk_rows = len(wb.db["sink"])
    assert bulk_rows == SOURCE_ROWS // 7 + (1 if SOURCE_ROWS % 7 > 3 else 0)

    def per_row():
        wb = make_wb()
        for i in range(PERROW_ROWS):
            wb.sql("INSERT INTO sink VALUES (%d, 3, %d)" % (i, i % 997))
        return wb

    per_row_seconds, wb2 = timed(per_row, repeats=1)
    assert len(wb2.db["sink"]) == PERROW_ROWS

    return {
        "bulk": {
            "rows": bulk_rows,
            "seconds": bulk_seconds,
            "rows_per_second": bulk_rows / bulk_seconds,
        },
        "per_row": {
            "rows": PERROW_ROWS,
            "seconds": per_row_seconds,
            "rows_per_second": PERROW_ROWS / per_row_seconds,
        },
        "throughput_ratio": (bulk_rows / bulk_seconds)
        / (PERROW_ROWS / per_row_seconds),
    }


def bench_snapshot_and_journal():
    """Snapshot pinning cost and the versioned-commit overhead."""
    wb = make_wb()

    def pin():
        for _ in range(SNAPSHOTS):
            wb.snapshot()

    snap_seconds, _ = timed(pin)

    # The journaled, versioned delta commit vs raw Relation
    # construction over the same tuples — the honest price of MVCC.
    batch = [(SOURCE_ROWS + i, 9, i) for i in range(10000)]

    def versioned():
        fresh = make_wb()
        fresh.db.apply_delta("sink", insert_rows=batch)
        return fresh

    versioned_seconds, fresh = timed(versioned)
    assert len(fresh.db["sink"]) == len(batch)

    schema = fresh.db["sink"].schema

    def raw():
        return Relation(schema, set(batch))

    raw_seconds, _ = timed(raw)

    return {
        "snapshot_microseconds": snap_seconds / SNAPSHOTS * 1e6,
        "versioned_commit_seconds": versioned_seconds,
        "raw_relation_seconds": raw_seconds,
        "journal_overhead_ratio": versioned_seconds / raw_seconds,
    }


def bench_commit_vs_rollback():
    """Identical write sets, opposite terminals.

    Committing under the default configuration re-verifies the whole
    recorded history against the theory predicates on *every* commit,
    so its per-transaction cost grows with session length; the
    ``verify=off`` leg isolates that oracle cost from the raw
    overlay-apply commit path.
    """
    rows_for = lambda t: [
        (10**6 + t * TXN_DELTA + i, 5, i) for i in range(TXN_DELTA)
    ]

    def committing(verify):
        def run():
            wb = make_wb()
            wb.txns.verify_on_commit = verify
            for t in range(TXNS):
                with wb.begin() as txn:
                    txn.sql(
                        "INSERT INTO sink VALUES %s"
                        % ", ".join(str(r) for r in rows_for(t))
                    )
            return wb
        return run

    commit_seconds, wb = timed(committing(True), repeats=1)
    assert len(wb.db["sink"]) == TXNS * TXN_DELTA
    assert wb.txns.commits == TXNS
    unverified_seconds, _ = timed(committing(False), repeats=1)

    def aborting():
        wb = make_wb()
        for t in range(TXNS):
            txn = wb.begin()
            txn.sql(
                "INSERT INTO sink VALUES %s"
                % ", ".join(str(r) for r in rows_for(t))
            )
            txn.rollback()
        return wb

    rollback_seconds, wb2 = timed(aborting, repeats=1)
    assert len(wb2.db["sink"]) == 0  # every write undone
    assert wb2.txns.aborts == TXNS
    staged = [
        e for e in wb2.db.store().journal.entries()
        if e.status == "staged"
    ]
    assert staged == []

    return {
        "commit_ms_per_txn": commit_seconds / TXNS * 1e3,
        "commit_no_verify_ms_per_txn": unverified_seconds / TXNS * 1e3,
        "rollback_ms_per_txn": rollback_seconds / TXNS * 1e3,
        "rollback_vs_commit": rollback_seconds / commit_seconds,
    }


def test_mutation_pipeline(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "bulk_vs_per_row": bench_bulk_vs_per_row(),
            "mvcc_overhead": bench_snapshot_and_journal(),
            "commit_vs_rollback": bench_commit_vs_rollback(),
        },
        rounds=1,
        iterations=1,
    )

    registry = MetricsRegistry()
    bulk = results["bulk_vs_per_row"]
    for leg in ("bulk", "per_row"):
        registry.gauge(
            "mutation_insert_rows_per_second", leg=leg
        ).set(bulk[leg]["rows_per_second"])
    registry.gauge("mutation_insert_throughput_ratio").set(
        bulk["throughput_ratio"]
    )
    overhead = results["mvcc_overhead"]
    registry.gauge("mutation_snapshot_microseconds").set(
        overhead["snapshot_microseconds"]
    )
    registry.gauge("mutation_journal_overhead_ratio").set(
        overhead["journal_overhead_ratio"]
    )
    terminal = results["commit_vs_rollback"]
    registry.gauge("mutation_commit_ms_per_txn").set(
        terminal["commit_ms_per_txn"]
    )
    registry.gauge("mutation_commit_no_verify_ms_per_txn").set(
        terminal["commit_no_verify_ms_per_txn"]
    )
    registry.gauge("mutation_rollback_ms_per_txn").set(
        terminal["rollback_ms_per_txn"]
    )

    table = format_table(
        ("measure", "value"),
        [
            (
                "bulk INSERT..SELECT rows/s",
                "%.0f" % bulk["bulk"]["rows_per_second"],
            ),
            (
                "per-row autocommit rows/s",
                "%.0f" % bulk["per_row"]["rows_per_second"],
            ),
            ("throughput ratio", "%.1fx" % bulk["throughput_ratio"]),
            (
                "snapshot pin",
                "%.2fus" % overhead["snapshot_microseconds"],
            ),
            (
                "versioned commit vs raw relation",
                "%.2fx" % overhead["journal_overhead_ratio"],
            ),
            (
                "commit per txn (verify on, default)",
                "%.3fms" % terminal["commit_ms_per_txn"],
            ),
            (
                "commit per txn (verify off)",
                "%.3fms" % terminal["commit_no_verify_ms_per_txn"],
            ),
            (
                "rollback per txn",
                "%.3fms" % terminal["rollback_ms_per_txn"],
            ),
        ],
    )
    write_artifact("mutation_pipeline.txt", table)
    write_metrics("mutation_pipeline_metrics.json", registry)

    summary = {"bench": "txn", "results": results}
    with open(os.path.join(ROOT, "BENCH_txn.json"), "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Honest gates only: direction, not magnitude.
    assert bulk["throughput_ratio"] > 1.0
    assert overhead["snapshot_microseconds"] < 50.0  # O(1), no copying
