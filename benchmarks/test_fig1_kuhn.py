"""Figure 1 bench: Kuhn's stages of the scientific process.

Regenerates the executable version of the paper's Figure 1: the
normal-science -> crisis -> revolution cycle, plus the paper's two
structural comments — stages are *accelerated* in computer science, and
the closed-loop artifact (drift) shortens paradigms further.

Paper claim (shape): the cycle exists and repeats; acceleration shortens
it.  Measured: cycle lengths fall monotonically as the acceleration
factor rises (table in results/fig1_kuhn.txt).
"""

from repro.metascience import CRISIS, NORMAL, REVOLUTION, KuhnProcess
from repro.metascience.kuhn import acceleration_experiment

from .conftest import format_table, write_artifact

FACTORS = (0.5, 1.0, 2.0, 4.0)
STEPS = 4000


def run_experiment():
    rows = acceleration_experiment(FACTORS, steps=STEPS, seed=7)
    drift_process = KuhnProcess(seed=7, artifact_drift=0.01)
    drift_process.run(STEPS)
    calm_process = KuhnProcess(seed=7, artifact_drift=0.0)
    calm_process.run(STEPS)
    return rows, calm_process, drift_process


def test_fig1_kuhn_stage_cycle(benchmark):
    rows, calm, drifty = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    # Shape assertions: the cycle accelerates with the factor.
    revolutions = [r[1] for r in rows]
    cycles = [r[2] for r in rows]
    assert revolutions == sorted(revolutions)
    assert all(
        a > b for a, b in zip(cycles, cycles[1:]) if a and b
    ), cycles
    # The closed-loop artifact (drift) produces at least as many
    # revolutions as the static one.
    assert drifty.revolutions() >= calm.revolutions()
    # All three stages occur.
    stages = {entry[1] for entry in drifty.history}
    assert {NORMAL, CRISIS, REVOLUTION} <= stages

    table = format_table(
        ("acceleration", "revolutions", "mean_cycle_length"),
        [
            (factor, revs, round(cycle, 1) if cycle else "-")
            for factor, revs, cycle in rows
        ],
    )
    extra = (
        "\nclosed-loop artifact (anomaly drift 0.01/step): "
        "%d revolutions vs %d static\n"
        % (drifty.revolutions(), calm.revolutions())
    )
    write_artifact("fig1_kuhn.txt", table + extra)
