"""Concurrency-control bench: "a few simple algorithms" under contention.

§3/§6: "the prevalence of a few simple algorithms in concurrency control
is supported by negative results severely delimiting the feasibly
implementable solutions", and "most database products seem to have
adopted the simplest solutions (two-phase locking, and occasionally
optimistic methods)".

The experiment: a hot-set contention sweep, the three classical
schedulers side by side, measuring committed transactions, aborts, and
waits.  Every output history is verified conflict-serializable — the
safety property is asserted, not assumed.

Paper claim (shape): 2PL degrades gracefully (waits, few aborts) while
OCC's abort rate climbs with contention, and timestamp ordering sits in
between — the classical reading of why locking won in products.
Table in results/concurrency_control.txt.
"""

from repro.transactions import (
    WorkloadConfig,
    generate_schedule,
    is_conflict_serializable,
    optimistic,
    timestamp_order,
    two_phase_lock,
)

from .conftest import format_table, write_artifact

CONTENTION_LEVELS = (0.0, 0.5, 0.9)
SEEDS = range(6)
BASE = dict(
    num_transactions=10,
    ops_per_transaction=5,
    num_items=30,
    write_ratio=0.5,
    hot_fraction=0.1,
)


def run_sweep():
    rows = []
    for level in CONTENTION_LEVELS:
        tallies = {
            "2pl": [0, 0, 0],  # committed, aborted, waits
            "to": [0, 0, 0],
            "occ": [0, 0, 0],
        }
        for seed in SEEDS:
            config = WorkloadConfig(
                hot_access_probability=level, seed=seed, **BASE
            )
            schedule = generate_schedule(config)

            out, stats = two_phase_lock(schedule)
            assert is_conflict_serializable(out)
            tallies["2pl"][0] += len(out.committed())
            tallies["2pl"][1] += len(stats["aborted"])
            tallies["2pl"][2] += stats["wait_events"]

            out, stats = timestamp_order(schedule)
            assert is_conflict_serializable(out)
            tallies["to"][0] += len(out.committed())
            tallies["to"][1] += len(stats["aborted"])

            out, stats = optimistic(schedule)
            assert is_conflict_serializable(out)
            tallies["occ"][0] += len(out.committed())
            tallies["occ"][1] += len(stats["aborted"])
        total_txns = BASE["num_transactions"] * len(SEEDS)
        rows.append(
            (
                level,
                total_txns,
                tallies["2pl"][0],
                tallies["2pl"][1],
                tallies["2pl"][2],
                tallies["to"][0],
                tallies["to"][1],
                tallies["occ"][0],
                tallies["occ"][1],
            )
        )
    return rows


def test_concurrency_control_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    low, high = rows[0], rows[-1]
    # Shape: contention raises abort rates for the abort-based schemes.
    assert high[6] >= low[6]  # timestamp ordering
    assert high[8] >= low[8]  # OCC
    # Shape: OCC and TO abort more than 2PL at high contention — 2PL
    # degrades gracefully (it waits instead), the classical reading.
    assert high[3] <= high[8]  # 2PL aborts <= OCC aborts
    assert high[3] <= high[6]  # 2PL aborts <= TO aborts
    assert high[4] > low[4]    # 2PL pays in waits
    # Shape: 2PL commits the most transactions under contention.
    assert high[2] >= high[7] and high[2] >= high[5]

    table = format_table(
        (
            "hot_prob",
            "txns",
            "2pl_commit",
            "2pl_abort",
            "2pl_waits",
            "to_commit",
            "to_abort",
            "occ_commit",
            "occ_abort",
        ),
        rows,
    )
    write_artifact("concurrency_control.txt", table)
