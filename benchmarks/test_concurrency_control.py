"""Concurrency-control bench: "a few simple algorithms" under contention.

§3/§6: "the prevalence of a few simple algorithms in concurrency control
is supported by negative results severely delimiting the feasibly
implementable solutions", and "most database products seem to have
adopted the simplest solutions (two-phase locking, and occasionally
optimistic methods)".

The experiment: a hot-set contention sweep, the three classical
schedulers side by side, measuring committed transactions, aborts, and
waits.  Every output history is verified conflict-serializable — the
safety property is asserted, not assumed.

Paper claim (shape): 2PL degrades gracefully (waits, few aborts) while
OCC's abort rate climbs with contention, and timestamp ordering sits in
between — the classical reading of why locking won in products.

The sweep records every tally into a MetricsRegistry (the table derives
from it; raw dump in results/concurrency_control_metrics.json), and one
high-contention workload runs under a real tracer so the lock-wait /
validation / abort event stream lands in
results/concurrency_control_trace.txt.  Table in
results/concurrency_control.txt.
"""

from repro.obs import MetricsRegistry, Tracer
from repro.transactions import (
    WorkloadConfig,
    generate_schedule,
    is_conflict_serializable,
    optimistic,
    timestamp_order,
    two_phase_lock,
)

from .conftest import format_table, write_artifact, write_metrics, write_trace

CONTENTION_LEVELS = (0.0, 0.5, 0.9)
SEEDS = range(6)
BASE = dict(
    num_transactions=10,
    ops_per_transaction=5,
    num_items=30,
    write_ratio=0.5,
    hot_fraction=0.1,
)


def run_sweep():
    """Run the sweep, recording every tally into a MetricsRegistry."""
    registry = MetricsRegistry()
    for level in CONTENTION_LEVELS:
        label = "%.1f" % level
        for seed in SEEDS:
            config = WorkloadConfig(
                hot_access_probability=level, seed=seed, **BASE
            )
            schedule = generate_schedule(config)

            out, stats = two_phase_lock(schedule)
            assert is_conflict_serializable(out)
            registry.counter(
                "cc_committed", scheduler="2pl", hot=label
            ).inc(len(out.committed()))
            registry.counter(
                "cc_aborted", scheduler="2pl", hot=label
            ).inc(len(stats["aborted"]))
            registry.counter(
                "cc_waits", scheduler="2pl", hot=label
            ).inc(stats["wait_events"])

            out, stats = timestamp_order(schedule)
            assert is_conflict_serializable(out)
            registry.counter(
                "cc_committed", scheduler="to", hot=label
            ).inc(len(out.committed()))
            registry.counter(
                "cc_aborted", scheduler="to", hot=label
            ).inc(len(stats["aborted"]))

            out, stats = optimistic(schedule)
            assert is_conflict_serializable(out)
            registry.counter(
                "cc_committed", scheduler="occ", hot=label
            ).inc(len(out.committed()))
            registry.counter(
                "cc_aborted", scheduler="occ", hot=label
            ).inc(len(stats["aborted"]))
    return registry


def sweep_rows(registry):
    """The printed table's rows, derived from the registry dump."""
    total_txns = BASE["num_transactions"] * len(SEEDS)
    rows = []
    for level in CONTENTION_LEVELS:
        label = "%.1f" % level
        value = lambda metric, scheduler: registry.value(
            metric, scheduler=scheduler, hot=label
        )
        rows.append(
            (
                level,
                total_txns,
                value("cc_committed", "2pl"),
                value("cc_aborted", "2pl"),
                value("cc_waits", "2pl"),
                value("cc_committed", "to"),
                value("cc_aborted", "to"),
                value("cc_committed", "occ"),
                value("cc_aborted", "occ"),
            )
        )
    return rows


def trace_one_contended_run():
    """One high-contention workload under a real tracer, all schedulers."""
    tracer = Tracer()
    config = WorkloadConfig(
        hot_access_probability=CONTENTION_LEVELS[-1], seed=0, **BASE
    )
    schedule = generate_schedule(config)
    two_phase_lock(schedule, tracer=tracer)
    timestamp_order(schedule, tracer=tracer)
    optimistic(schedule, tracer=tracer)
    return tracer


def test_concurrency_control_sweep(benchmark):
    registry = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = sweep_rows(registry)

    low, high = rows[0], rows[-1]
    # Shape: contention raises abort rates for the abort-based schemes.
    assert high[6] >= low[6]  # timestamp ordering
    assert high[8] >= low[8]  # OCC
    # Shape: OCC and TO abort more than 2PL at high contention — 2PL
    # degrades gracefully (it waits instead), the classical reading.
    assert high[3] <= high[8]  # 2PL aborts <= OCC aborts
    assert high[3] <= high[6]  # 2PL aborts <= TO aborts
    assert high[4] > low[4]    # 2PL pays in waits
    # Shape: 2PL commits the most transactions under contention.
    assert high[2] >= high[7] and high[2] >= high[5]

    table = format_table(
        (
            "hot_prob",
            "txns",
            "2pl_commit",
            "2pl_abort",
            "2pl_waits",
            "to_commit",
            "to_abort",
            "occ_commit",
            "occ_abort",
        ),
        rows,
    )
    write_artifact("concurrency_control.txt", table)
    write_metrics("concurrency_control_metrics.json", registry)
    write_trace("concurrency_control_trace.txt", trace_one_contended_run())
