"""Normalization bench: the theory that "reached practice as design tools".

§6's success story, run as a tool: random FD sets over growing schemes,
through the full design-tool pipeline — closure, candidate keys, minimal
cover, BCNF decomposition, 3NF synthesis — with the classical quality
guarantees checked on every output (BCNF: lossless, sometimes not
preserving; 3NF: lossless *and* preserving).

Paper claim (shape): the algorithms are practical (polynomial pieces
dominate; key enumeration is the exponential corner) and the BCNF/3NF
trade-off is real — some instances lose preservation under BCNF, none
under 3NF.  Table in results/normalization_tools.txt.
"""

import time

from repro.core.random_instances import random_fds
from repro.dependencies import (
    bcnf_decompose,
    candidate_keys,
    is_lossless_join,
    minimal_cover,
    preserves_dependencies,
    synthesize_3nf,
)

from .conftest import format_table, write_artifact

SCHEME_SIZES = (4, 5, 6)
TRIALS_PER_SIZE = 8


def run_sweep():
    rows = []
    bcnf_preservation_failures = 0
    three_nf_failures = 0
    for size in SCHEME_SIZES:
        attributes = [chr(ord("A") + i) for i in range(size)]
        total = {"keys": 0.0, "cover": 0.0, "bcnf": 0.0, "3nf": 0.0}
        for trial in range(TRIALS_PER_SIZE):
            fds = random_fds(attributes, count=size, seed=size * 100 + trial)

            start = time.perf_counter()
            keys = candidate_keys(attributes, fds)
            total["keys"] += time.perf_counter() - start

            start = time.perf_counter()
            minimal_cover(fds)
            total["cover"] += time.perf_counter() - start

            start = time.perf_counter()
            bcnf = bcnf_decompose(attributes, fds)
            total["bcnf"] += time.perf_counter() - start
            assert is_lossless_join(attributes, bcnf, fds)
            if not preserves_dependencies(attributes, bcnf, fds):
                bcnf_preservation_failures += 1

            start = time.perf_counter()
            three_nf = synthesize_3nf(attributes, fds)
            total["3nf"] += time.perf_counter() - start
            assert is_lossless_join(attributes, three_nf, fds)
            if not preserves_dependencies(attributes, three_nf, fds):
                three_nf_failures += 1

            assert keys  # every scheme has at least one key
        rows.append(
            (
                size,
                TRIALS_PER_SIZE,
                round(total["keys"] * 1000 / TRIALS_PER_SIZE, 2),
                round(total["cover"] * 1000 / TRIALS_PER_SIZE, 2),
                round(total["bcnf"] * 1000 / TRIALS_PER_SIZE, 2),
                round(total["3nf"] * 1000 / TRIALS_PER_SIZE, 2),
            )
        )
    return rows, bcnf_preservation_failures, three_nf_failures


def test_normalization_design_tools(benchmark):
    rows, bcnf_failures, three_nf_failures = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )

    # The classical trade-off: 3NF synthesis never loses dependencies.
    assert three_nf_failures == 0
    # (BCNF may or may not, depending on the random draw — we report it.)

    table = format_table(
        (
            "attrs",
            "trials",
            "keys_ms",
            "mincover_ms",
            "bcnf_ms",
            "3nf_ms",
        ),
        rows,
    )
    footer = (
        "\nBCNF dependency-preservation failures: %d/%d instances"
        "\n3NF synthesis preservation failures:   %d/%d (theorem: always 0)\n"
        % (
            bcnf_failures,
            len(SCHEME_SIZES) * TRIALS_PER_SIZE,
            three_nf_failures,
            len(SCHEME_SIZES) * TRIALS_PER_SIZE,
        )
    )
    write_artifact("normalization_tools.txt", table + footer)
