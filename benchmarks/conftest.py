"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures or one of the
classical experiments its survey rests on (see DESIGN.md's
per-experiment index).  Because ``pytest --benchmark-only`` captures
stdout, each bench also writes its table to
``benchmarks/results/<name>.txt`` so the regenerated figures survive the
run as artifacts; EXPERIMENTS.md records the paper-vs-measured reading.

Measurement discipline (the observability layer's contract): a bench
records every number it measures into a
:class:`~repro.obs.metrics.MetricsRegistry` and derives its printed
table *from the registry* — so the human-readable table and the
machine-readable ``*_metrics.json`` artifact cannot drift apart.
Trace-producing benches write rendered span trees via
:func:`write_trace`.
"""

from __future__ import annotations

import json
import os

from repro.obs import render_trace

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_artifact(name, text):
    """Write a regenerated table/figure to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return path


def write_stats(name, sections):
    """Write labelled engine-statistics dumps to benchmarks/results/.

    Args:
        name: artifact file name.
        sections: iterable of ``(label, EngineStatistics)`` pairs; each is
            rendered via :meth:`EngineStatistics.format`.
    """
    blocks = [
        "%s\n%s" % (label, stats.format()) for label, stats in sections
    ]
    return write_artifact(name, "\n\n".join(blocks))


def write_json(name, payload):
    """Write a JSON artifact (machine-readable twin of a table)."""
    return write_artifact(
        name, json.dumps(payload, indent=2, sort_keys=True)
    )


def write_metrics(name, registry):
    """Write a registry's canonical flat dump as a JSON artifact.

    This is the single source of truth a bench's printed table is
    derived from; committing it makes the raw measurements diffable.
    """
    return write_json(name, registry.dump())


def write_trace(name, tracer):
    """Write a tracer's rendered span forest to benchmarks/results/."""
    return write_artifact(name, render_trace(tracer))


def format_table(header, rows):
    """Plain-text table with aligned columns."""
    rendered = [tuple(str(v) for v in row) for row in rows]
    header = tuple(str(h) for h in header)
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rendered), default=0))
        for i in range(len(header))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
