"""Optimizer ablation: which rewrite earns the speedup?

§2(c): "the difficulty of query optimization … came as a surprise, and
necessitated new model development, synthesis, analysis, and
experiments."  This bench is the analysis-by-experiment for our own
optimizer's design choices (DESIGN.md backlog): the same query evaluated
under none / cascade+pushdown / +join formation / +greedy reordering.

Shape claims asserted: every stage preserves results; selection pushdown
delivers the dominant win on the select-over-product query; reordering
helps the chain join.  Table in results/optimizer_ablation.txt.
"""

import random
import time

from repro.relational import (
    Database,
    NaturalJoin,
    Projection,
    Relation,
    RelationRef,
    RelationSchema,
    Selection,
    evaluate,
    same_content,
)
from repro.relational.algebra import And, Attr, Comparison, Const
from repro.relational.optimizer import (
    form_joins,
    push_selections,
    reorder_joins,
)

from .conftest import format_table, write_artifact


def star_database(fact_rows=1500, dim_rows=40, seed=0):
    rng = random.Random(seed)
    fact = {
        (rng.randrange(200), rng.randrange(dim_rows))
        for _ in range(fact_rows)
    }
    dim = {(i, "cat%d" % (i % 5)) for i in range(dim_rows)}
    return Database(
        [
            Relation(RelationSchema("fact", ("a", "b")), fact),
            Relation(RelationSchema("dim", ("b", "c")), dim),
        ]
    )


def chain_database(rows=250, seed=1):
    rng = random.Random(seed)
    def rel(name, attrs, n):
        return Relation(
            RelationSchema(name, attrs),
            {(rng.randrange(40), rng.randrange(40)) for _ in range(n)},
        )
    return Database(
        [
            rel("r1", ("a", "b"), rows),
            rel("r2", ("b", "c"), rows),
            rel("r3", ("c", "d"), 5),  # the selective relation
        ]
    )


def timed(fn, *args, repeat=3):
    best = None
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best or 1e9, time.perf_counter() - start)
    return best, result


def ablation_rows():
    rows = []

    # Query 1: selection over a product (the pushdown showcase).
    star = star_database()
    query1 = Projection(
        Selection(
            NaturalJoin(RelationRef("fact"), RelationRef("dim")),
            And(
                Comparison(Attr("c"), "=", Const("cat1")),
                Comparison(Attr("a"), "<", Const(10)),
            ),
        ),
        ("a", "c"),
    )
    schema = star.schema()
    variants1 = [
        ("star/none", query1),
        ("star/pushdown", push_selections(query1, schema)),
        ("star/pushdown+joins", form_joins(push_selections(query1, schema), schema)),
    ]
    reference = evaluate(query1, star)
    for label, expr in variants1:
        seconds, result = timed(evaluate, expr, star)
        assert same_content(result, reference), label
        rows.append((label, round(seconds * 1000, 2)))

    # Query 2: a 3-way chain join (the reordering showcase).
    chain = chain_database()
    query2 = NaturalJoin(
        NaturalJoin(RelationRef("r1"), RelationRef("r2")),
        RelationRef("r3"),
    )
    reference2 = evaluate(query2, chain)
    variants2 = [
        ("chain/none", query2),
        ("chain/reordered", reorder_joins(query2, chain)),
    ]
    for label, expr in variants2:
        seconds, result = timed(evaluate, expr, chain)
        assert same_content(result, reference2), label
        rows.append((label, round(seconds * 1000, 2)))
    return rows


def test_optimizer_ablation(benchmark):
    rows = benchmark.pedantic(ablation_rows, rounds=1, iterations=1)
    by_label = dict(rows)

    # Pushdown is the dominant win on the star query.
    assert by_label["star/pushdown"] < by_label["star/none"]
    # Join formation must not regress pushdown's result materially.
    assert (
        by_label["star/pushdown+joins"] < by_label["star/none"]
    )
    # Reordering must not lose the chain (r3 is tiny and joins first);
    # the win is workload-dependent, so allow timing jitter.
    assert by_label["chain/reordered"] <= by_label["chain/none"] * 1.5

    table = format_table(("variant", "ms"), rows)
    write_artifact("optimizer_ablation.txt", table)
