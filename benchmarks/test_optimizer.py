"""Unified optimizer bench: optimized vs unoptimized, measured.

The claim for ``repro.opt``: on acyclic multi-joins, ``wb.run`` picks a
plan that materializes fewer tuples than the unoptimized run, at equal
results.  Three workloads exercise the acyclic shapes — a star, a
3-relation chain, and a 4-relation path — and each records tuples
materialized and best-of-N wall clock for both runs.

The Yannakakis routing is cost-gated: the star and chain workloads are
small enough that the semijoin program's own sweeps would cost more
wall time than the tuples they save (earlier revisions of
``BENCH_optimizer.json`` recorded exactly that regression), so the gate
keeps them on cost-ordered hash joins and only the path-4 workload —
whose intermediates dwarf its inputs — routes through Yannakakis.  The
bench pins both sides of that decision.

Honesty note on the metric: the streaming executor charges
``tuples_materialized`` only for tuples an operator *buffers* (hash-join
build sides, dedup sets, the final result) — streamed-through tuples
are free.  A left-deep join over base relations therefore buffers almost
nothing regardless of how bad its intermediates are, and no optimizer
can beat it on this counter.  The bench poses each query in the
association a user might naturally write (right-deep), where the
unoptimized executor must materialize every derived build side; the
optimizer is free to pick any shape.  Wall time is recorded but not
gated — these inputs are sized for CI, where timing noise would
dominate.

Artifacts: ``results/optimizer_pipeline.txt`` + ``_metrics.json`` and,
as a machine-readable summary, ``BENCH_optimizer.json`` at the repo
root.
"""

import json
import os
import time

from repro.core.workbench import MetatheoryWorkbench
from repro.datalog.stats import EngineStatistics
from repro.obs import MetricsRegistry
from repro.relational import Database, NaturalJoin, RelationRef

from .conftest import format_table, write_artifact, write_metrics

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def timed(fn, repeats=5):
    """Best-of-N wall clock (seconds) plus the last result."""
    best, result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def star_workload():
    """fact(k1,k2) with two selective dimensions: dim1 ⋈ (fact ⋈ dim2)."""
    db = Database.from_dict(
        {
            "fact": (
                ("k1", "k2"),
                [(a, b) for a in range(100) for b in range(100)],
            ),
            "dim1": (("k1", "x"), [(i, i) for i in range(10)]),
            "dim2": (("k2", "y"), [(i, i) for i in range(10)]),
        }
    )
    expr = NaturalJoin(
        RelationRef("dim1"),
        NaturalJoin(RelationRef("fact"), RelationRef("dim2")),
    )
    return db, expr


def chain_workload():
    """r(a,b) ⋈ (s(b,c) ⋈ t(c,d)) with a mostly-dangling middle."""
    db = Database.from_dict(
        {
            "r": (("a", "b"), [(i, i) for i in range(10)]),
            "s": (
                ("b", "c"),
                [(b, c) for b in range(100) for c in range(100)],
            ),
            "t": (("c", "d"), [(i, i) for i in range(10)]),
        }
    )
    expr = NaturalJoin(
        RelationRef("r"),
        NaturalJoin(RelationRef("s"), RelationRef("t")),
    )
    return db, expr


def path4_workload():
    """A 4-relation path with selective endpoints, right-deep."""
    db = Database.from_dict(
        {
            "r1": (("a", "b"), [(i, i) for i in range(10)]),
            "r2": (
                ("b", "c"),
                [(b, c) for b in range(60) for c in range(60)],
            ),
            "r3": (
                ("c", "d"),
                [(c, d) for c in range(60) for d in range(60)],
            ),
            "r4": (("d", "e"), [(i, i) for i in range(10)]),
        }
    )
    expr = NaturalJoin(
        RelationRef("r1"),
        NaturalJoin(
            RelationRef("r2"),
            NaturalJoin(RelationRef("r3"), RelationRef("r4")),
        ),
    )
    return db, expr


#: (label, builder, expected join methods under the routing cost gate).
WORKLOADS = (
    ("star fact 10k", star_workload, ("dp", "greedy")),
    ("chain dangling middle", chain_workload, ("dp", "greedy")),
    ("path-4 selective ends", path4_workload, ("yannakakis",)),
)


def run_workload(build):
    db, expr = build()
    wb = MetatheoryWorkbench(db)

    explained = wb.explain_analyze(expr)
    join_method = explained.optimizer.join_method

    optimized_stats = EngineStatistics()
    unoptimized_stats = EngineStatistics()
    # Warm the plan cache first so wall time measures execution, not
    # the one-off optimization pass.
    optimized_seconds, optimized = timed(
        lambda: wb.run(expr, stats=optimized_stats)
    )
    unoptimized_seconds, unoptimized = timed(
        lambda: wb.run(expr, optimized=False, stats=unoptimized_stats)
    )
    assert optimized == unoptimized
    repeats = 5  # stats accumulate across the timing repeats
    return {
        "rows": len(optimized),
        "join_method": join_method,
        "optimized": {
            "tuples_materialized": optimized_stats.tuples_materialized
            // repeats,
            "seconds": optimized_seconds,
        },
        "unoptimized": {
            "tuples_materialized": unoptimized_stats.tuples_materialized
            // repeats,
            "seconds": unoptimized_seconds,
        },
    }


def test_optimizer_materialization(benchmark):
    results = benchmark.pedantic(
        lambda: {
            label: run_workload(build)
            for label, build, _expected in WORKLOADS
        },
        rounds=1,
        iterations=1,
    )

    registry = MetricsRegistry()
    for label, outcome in results.items():
        for profile in ("optimized", "unoptimized"):
            registry.gauge(
                "optimizer_tuples_materialized",
                workload=label, profile=profile,
            ).set(outcome[profile]["tuples_materialized"])
            registry.gauge(
                "optimizer_seconds", workload=label, profile=profile,
            ).set(outcome[profile]["seconds"])
        registry.gauge("optimizer_result_rows", workload=label).set(
            outcome["rows"]
        )

    rows = [
        (
            label,
            outcome["join_method"],
            outcome["rows"],
            outcome["unoptimized"]["tuples_materialized"],
            outcome["optimized"]["tuples_materialized"],
            "%.3fms" % (outcome["unoptimized"]["seconds"] * 1e3),
            "%.3fms" % (outcome["optimized"]["seconds"] * 1e3),
        )
        for label, outcome in results.items()
    ]
    table = format_table(
        ("workload", "join method", "rows", "materialized (plain)",
         "materialized (opt)", "plain", "optimized"),
        rows,
    )
    write_artifact("optimizer_pipeline.txt", table)
    write_metrics("optimizer_pipeline_metrics.json", registry)

    summary = {"bench": "optimizer", "workloads": results}
    with open(os.path.join(ROOT, "BENCH_optimizer.json"), "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The headline gates: the cost gate keeps the small star/chain on
    # ordered hash joins, path-4 still routes through Yannakakis, and
    # the optimized run always materializes fewer tuples.
    expected_methods = {
        label: expected for label, _build, expected in WORKLOADS
    }
    for label, outcome in results.items():
        assert outcome["join_method"] in expected_methods[label], (
            label, outcome,
        )
        assert (
            outcome["optimized"]["tuples_materialized"]
            < outcome["unoptimized"]["tuples_materialized"]
        ), (label, outcome)


def test_yannakakis_routing_smoke():
    """Fast standalone smoke: the gated routing is visible end to end.

    The large path-4 workload clears the cost gate and shows up as
    Yannakakis in EXPLAIN; the small chain stays on ordered hash joins.
    """
    db, expr = path4_workload()
    wb = MetatheoryWorkbench(db)
    explained = wb.explain_analyze(expr)
    assert explained.optimizer.join_method == "yannakakis"
    assert "route-yannakakis" in explained.optimizer.fired
    assert "yannakakis" in explained.render()
    assert explained.result == wb.run(expr, optimized=False)

    db, expr = chain_workload()
    wb = MetatheoryWorkbench(db)
    explained = wb.explain_analyze(expr)
    assert explained.optimizer.join_method in ("dp", "greedy")
    assert "route-yannakakis" not in explained.optimizer.fired
    assert explained.result == wb.run(expr, optimized=False)
