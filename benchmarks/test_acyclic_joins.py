"""Acyclic-join bench: Yannakakis vs the naive join plan.

The universal-relation era's flagship positive result (filed under
"relational theory" in Figure 3): joins over alpha-acyclic schemes are
computable in input+output-polynomial time via the full-reducer semijoin
program.  The baseline folds natural joins with no reduction and can
build intermediate results that dwarf the output.

Workload: chain schemes whose middle relations are dense (every pair of
consecutive relations joins richly) but whose final relation keeps only
one tuple — so the naive plan's intermediates grow geometrically before
collapsing, while the full reducer propagates the collapse backward
first.  This is the classical dangling-tuple blowup.

Paper claim (shape): Yannakakis wins, increasingly with chain length;
after reduction the inputs shrink to the join support.  Table in
results/acyclic_joins.txt.
"""

import time

from repro.acyclic import (
    chain_scheme,
    full_reducer,
    naive_join,
    semijoin_program_size,
    yannakakis_join,
)
from repro.relational import Database, Relation, RelationSchema

from .conftest import format_table, write_artifact

CHAIN_LENGTHS = (3, 4, 5)
FANOUT = 8  # each middle relation is the complete FANOUT x FANOUT bipartite


def dangling_chain_db(length):
    """Dense chain with a selective tail.

    Relations R0..R(length-2) are complete bipartite over a FANOUT-value
    domain (every tuple joins with FANOUT tuples of the next relation,
    so the unreduced left-to-right join grows by a factor of FANOUT per
    step); the final relation holds a single tuple, so almost everything
    eventually dangles.
    """
    db = Database()
    hypergraph = chain_scheme(length)
    names = hypergraph.names()
    for index, name in enumerate(names):
        attrs = sorted(hypergraph[name])
        if index == len(names) - 1:
            rows = {(0, 0)}
        else:
            rows = {
                (a, b) for a in range(FANOUT) for b in range(FANOUT)
            }
        db.add(Relation(RelationSchema(name, attrs), rows))
    return hypergraph, db


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


def run_sweep():
    rows = []
    for length in CHAIN_LENGTHS:
        hypergraph, db = dangling_chain_db(length)
        input_size = db.total_tuples()
        fast_s, fast = timed(yannakakis_join, hypergraph, db)
        slow_s, slow = timed(naive_join, hypergraph, db)
        assert fast == slow
        reduced, _tree = full_reducer(hypergraph, db)
        reduced_size = sum(len(r) for r in reduced.values())
        rows.append(
            (
                length,
                input_size,
                len(fast),
                reduced_size,
                semijoin_program_size(hypergraph),
                round(slow_s * 1000, 2),
                round(fast_s * 1000, 2),
                round(slow_s / max(fast_s, 1e-9), 1),
            )
        )
    return rows


def test_acyclic_joins(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # Shape: the reducer strips dangling tuples down to the join support.
    for row in rows:
        length, input_size, output_size, reduced_size = row[:4]
        assert reduced_size <= input_size
        assert reduced_size < input_size  # dangling tuples removed
    # Shape: Yannakakis wins and the advantage does not shrink with size.
    speedups = [row[7] for row in rows]
    assert speedups[-1] > 1.0, rows

    table = format_table(
        (
            "chain",
            "input_tuples",
            "output_tuples",
            "after_reduction",
            "semijoins",
            "naive_ms",
            "yannakakis_ms",
            "speedup",
        ),
        rows,
    )
    write_artifact("acyclic_joins.txt", table)
