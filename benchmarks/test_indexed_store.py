"""Indexed-store bench: persistent indexes + planner vs the seed path.

The tentpole physical-layer claim, measured: keeping per-predicate,
per-position hash indexes *incrementally maintained* across semi-naive
deltas (instead of rebuilding a transient index per rule firing) cuts
the facts scanned by the engine by large constant factors — ≥5x on
transitive closure over a mixed 1k-edge graph and on same-generation,
~3x on the pure 1k chain (where the irreducible delta enumeration
dominates; the table shows why).

Methodology: both configurations run the same semi-naive engine on the
same EDB and must produce *identical fixpoints*; the only difference is
physical (``indexed``/``planned`` off = the seed path).  "Facts scanned"
counts every tuple iterated out of a fact collection, including
persistent-index build scans; O(1) probes into a maintained index are
counted separately as probes.  Full counter tables land in
``results/indexed_store.txt``; the raw per-workload measurements (the
source the table is printed from) in
``results/indexed_store_metrics.json``.
"""

import pytest

from repro.core.random_instances import (
    chain_edges,
    edge_store,
    random_graph_edges,
    same_generation_program,
    same_generation_store,
    transitive_closure_program,
)
from repro.datalog import EngineStatistics, seminaive_evaluate
from repro.obs import MetricsRegistry

from .conftest import format_table, write_artifact, write_metrics, write_stats

pytestmark = pytest.mark.slow


def hybrid_edges(chain_n=400, random_m=600, seed=7):
    """A 1k-edge graph: a 400-chain plus 600 disjoint random edges.

    The random component (on its own node set) keeps the edge relation
    large while contributing few long paths — the regime where the seed
    path's per-firing rescans of ``edge`` dominate and indexing pays off
    most.
    """
    shifted = [
        (a + 10_000, b + 10_000)
        for a, b in random_graph_edges(random_m, random_m, seed=seed)
    ]
    return chain_edges(chain_n) + shifted


def run_config(program, edb, indexed, planned):
    stats = EngineStatistics()
    store = seminaive_evaluate(
        program, edb, stats=stats, indexed=indexed, planned=planned
    )
    return stats, store


def compare(program, edb, result_predicate):
    """Seed path vs indexed+planned on one workload; fixpoints must match."""
    new_stats, new_store = run_config(program, edb, True, True)
    old_stats, old_store = run_config(program, edb, False, False)
    assert new_store == old_store, "physical change must not change answers"
    ratio = old_stats.facts_scanned / max(new_stats.facts_scanned, 1)
    return {
        "facts": new_store.count(result_predicate),
        "old": old_stats,
        "new": new_stats,
        "ratio": ratio,
    }


def test_indexed_store_scan_reduction(benchmark):
    tc = transitive_closure_program()
    sg_edb = same_generation_store(30, 6, seed=1)
    workloads = [
        ("tc chain-1000", tc, edge_store(chain_edges(1000)), "path"),
        ("tc hybrid-1000", tc, edge_store(hybrid_edges()), "path"),
        (
            "tc random-1000",
            tc,
            edge_store(random_graph_edges(1500, 1000, seed=11)),
            "path",
        ),
        ("sg depth=30 width=6", same_generation_program(), sg_edb, "sg"),
        (
            "sg depth=40 width=8",
            same_generation_program(),
            same_generation_store(40, 8, seed=1),
            "sg",
        ),
    ]

    def run_all():
        return {
            label: compare(program, edb, predicate)
            for label, program, edb, predicate in workloads
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The headline claims: >=5x fewer tuples scanned on the mixed
    # 1k-edge transitive closure and on same-generation...
    assert results["tc hybrid-1000"]["ratio"] >= 5.0, results
    assert results["sg depth=30 width=6"]["ratio"] >= 5.0, results
    assert results["sg depth=40 width=8"]["ratio"] >= 5.0, results
    # ...and the honest footnote: the pure chain is bounded by its own
    # delta enumeration (about two thirds of the seed's scans there were
    # index rebuilds; the remaining third is the differential itself).
    assert results["tc chain-1000"]["ratio"] >= 2.5, results
    assert results["tc random-1000"]["ratio"] >= 2.0, results
    # Indexing must also strictly reduce materialized intermediates via
    # the planner's bound-first ordering -- never increase them.
    for label, outcome in results.items():
        assert (
            outcome["new"].tuples_materialized
            <= outcome["old"].tuples_materialized
        ), label

    # Record into a registry; the printed table derives from it.
    registry = MetricsRegistry()
    for label, outcome in results.items():
        for metric, value in (
            ("indexed_store_derived_facts", outcome["facts"]),
            ("indexed_store_seed_scans", outcome["old"].facts_scanned),
            ("indexed_store_indexed_scans", outcome["new"].facts_scanned),
            ("indexed_store_probes", outcome["new"].index_probes),
            ("indexed_store_index_builds", outcome["new"].index_builds),
            ("indexed_store_scan_ratio", outcome["ratio"]),
        ):
            registry.gauge(metric, workload=label).set(value)

    rows = []
    for label in results:
        value = lambda metric: registry.value(metric, workload=label)
        rows.append(
            (
                label,
                value("indexed_store_derived_facts"),
                value("indexed_store_seed_scans"),
                value("indexed_store_indexed_scans"),
                value("indexed_store_probes"),
                value("indexed_store_index_builds"),
                "%.2fx" % value("indexed_store_scan_ratio"),
            )
        )
    table = format_table(
        (
            "workload",
            "derived facts",
            "seed scans",
            "indexed scans",
            "probes",
            "index builds",
            "scan reduction",
        ),
        rows,
    )
    write_artifact(
        "indexed_store.txt",
        "semi-naive engine, seed path (no indexes, no planner) vs "
        "indexed+planned\nfixpoints verified identical per workload\n\n"
        + table,
    )
    write_metrics("indexed_store_metrics.json", registry)
    # Full counter dumps for the two headline workloads.
    write_stats(
        "indexed_store_counters.txt",
        [
            ("tc hybrid-1000 / seed path", results["tc hybrid-1000"]["old"]),
            ("tc hybrid-1000 / indexed+planned", results["tc hybrid-1000"]["new"]),
            ("sg depth=30 width=6 / seed path", results["sg depth=30 width=6"]["old"]),
            (
                "sg depth=30 width=6 / indexed+planned",
                results["sg depth=30 width=6"]["new"],
            ),
        ],
    )


def test_ablation_knobs_compose(benchmark):
    """One knob at a time on the hybrid workload.

    The measured (and initially surprising) interaction: *neither* knob
    helps alone on linear transitive closure.  Without the planner, the
    in-order pipeline reads ``edge`` before anything is bound, so the
    indexed store has nothing to probe; without the indexes, the
    planner's bound-first order still ends in transient-index scans.
    Only the composition — delta literal first, remaining literals
    probing persistent indexes on the variables the delta just bound —
    turns per-round rescans into O(1) probes.
    """
    tc = transitive_closure_program()
    edb = edge_store(hybrid_edges())

    def run_all():
        out = {}
        for indexed, planned in [
            (False, False),
            (True, False),
            (False, True),
            (True, True),
        ]:
            stats, store = run_config(tc, edb, indexed, planned)
            out[(indexed, planned)] = (stats, store)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    stores = [store for _, store in results.values()]
    assert all(store == stores[0] for store in stores[1:])
    baseline = results[(False, False)][0].facts_scanned
    # No configuration may scan more than the seed path.
    for (indexed, planned), (stats, _) in results.items():
        assert stats.facts_scanned <= baseline, (indexed, planned)
    # Indexing without planning never gets a bound literal to probe.
    assert results[(True, False)][0].index_probes == 0
    # The composition is where the reduction lives.
    combined = results[(True, True)][0]
    assert combined.index_probes > 0
    assert combined.facts_scanned * 5 <= baseline
    assert combined.facts_scanned < results[(True, False)][0].facts_scanned
    assert combined.facts_scanned < results[(False, True)][0].facts_scanned
