"""Datalog strategy bench: the era's two big optimizations, measured.

§6: logic databases' "two main issues of query optimization and
negation took the field by storm" — and "the major disappointment is
perhaps the absence of database products that incorporate some of the
beautiful ideas our community has developed for the implementation of
recursive queries".  The beautiful ideas, raced:

* naive vs **semi-naive** on full transitive closure (chain/cycle/random);
* semi-naive vs **magic sets** on bound queries (path(c, X));
* the [Ra2] aside — "recursive query evaluation methods … useful for
  non-recursive query optimization": magic sets on a non-recursive
  join chain with a bound argument.

Paper claims (shape): semi-naive beats naive, increasingly with size;
magic beats computing the full closure when the query is bound; the
non-recursive rewrite also wins.  Tables in results/datalog_strategies.txt,
raw measurements in results/datalog_strategies_metrics.json, and a traced
semi-naive + magic fixpoint (per-stratum, per-round spans with delta
sizes and counter deltas) in results/datalog_fixpoint_trace.txt.
"""

import time

from repro.core.random_instances import (
    chain_edges,
    cycle_edges,
    edge_store,
    random_graph_edges,
    transitive_closure_program,
)
from repro.datalog import (
    EngineStatistics,
    magic_evaluate,
    match_query,
    naive_evaluate,
    parse_program,
    parse_query,
    seminaive_evaluate,
)
from repro.obs import MetricsRegistry, Tracer

from .conftest import format_table, write_artifact, write_metrics, write_trace

SIZES = (20, 40, 80)


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result


GRAPHS = ("chain", "cycle", "random")


def full_closure_measure(registry):
    program = transitive_closure_program()
    factories = {
        "chain": chain_edges,
        "cycle": cycle_edges,
        "random": lambda n: random_graph_edges(n, 2 * n, seed=3),
    }
    for label in GRAPHS:
        for n in SIZES:
            edb = edge_store(factories[label](n))
            naive_s, naive_model = timed(naive_evaluate, program, edb)
            semi_s, semi_model = timed(seminaive_evaluate, program, edb)
            assert naive_model == semi_model
            for metric, value in (
                ("closure_path_facts", naive_model.count("path")),
                ("closure_naive_ms", round(naive_s * 1000, 1)),
                ("closure_seminaive_ms", round(semi_s * 1000, 1)),
                ("closure_speedup", round(naive_s / max(semi_s, 1e-9), 1)),
            ):
                registry.gauge(metric, graph=label, n=n).set(value)


def full_closure_rows(registry):
    rows = []
    for label in GRAPHS:
        for n in SIZES:
            value = lambda metric: registry.value(metric, graph=label, n=n)
            rows.append(
                (
                    label,
                    n,
                    value("closure_path_facts"),
                    value("closure_naive_ms"),
                    value("closure_seminaive_ms"),
                    value("closure_speedup"),
                )
            )
    return rows


def bound_query_measure(registry):
    from repro.datalog import topdown_query

    program = transitive_closure_program()
    for n in SIZES:
        edb = edge_store(chain_edges(n))
        query = parse_query("path(%d, X)" % (n - 5))
        semi_s, model = timed(seminaive_evaluate, program, edb)
        reference = match_query(model, query)
        magic_s, answers = timed(magic_evaluate, program, edb, query)
        td_s, td_answers = timed(topdown_query, program, edb, query)
        assert answers == reference
        assert td_answers == reference
        for metric, value in (
            ("bound_answers", len(answers)),
            ("bound_seminaive_ms", round(semi_s * 1000, 1)),
            ("bound_magic_ms", round(magic_s * 1000, 1)),
            ("bound_topdown_ms", round(td_s * 1000, 1)),
            ("bound_magic_speedup", round(semi_s / max(magic_s, 1e-9), 1)),
        ):
            registry.gauge(metric, n=n).set(value)


def bound_query_rows(registry):
    return [
        (
            n,
            registry.value("bound_answers", n=n),
            registry.value("bound_seminaive_ms", n=n),
            registry.value("bound_magic_ms", n=n),
            registry.value("bound_topdown_ms", n=n),
            registry.value("bound_magic_speedup", n=n),
        )
        for n in SIZES
    ]


def nonrecursive_measure(registry):
    """[Ra2]: magic on a non-recursive bound query (4-way join chain)."""
    program, _ = parse_program(
        """
        j(A, D) :- e1(A, B), e2(B, C), e3(C, D).
        """
    )
    for n in SIZES:
        edb = edge_store(chain_edges(n), predicate="e1")
        edb.add_all("e2", chain_edges(n))
        edb.add_all("e3", chain_edges(n))
        query = parse_query("j(3, X)")
        semi_s, model = timed(seminaive_evaluate, program, edb)
        reference = match_query(model, query)
        magic_s, answers = timed(magic_evaluate, program, edb, query)
        assert answers == reference
        for metric, value in (
            ("nonrec_answers", len(answers)),
            ("nonrec_full_ms", round(semi_s * 1000, 2)),
            ("nonrec_magic_ms", round(magic_s * 1000, 2)),
            ("nonrec_speedup", round(semi_s / max(magic_s, 1e-9), 1)),
        ):
            registry.gauge(metric, n=n).set(value)


def nonrecursive_rows(registry):
    return [
        (
            n,
            registry.value("nonrec_answers", n=n),
            registry.value("nonrec_full_ms", n=n),
            registry.value("nonrec_magic_ms", n=n),
            registry.value("nonrec_speedup", n=n),
        )
        for n in SIZES
    ]


def trace_fixpoints():
    """Trace one semi-naive closure and one magic query (mid size)."""
    tracer = Tracer()
    stats = EngineStatistics()
    program = transitive_closure_program()
    n = SIZES[1]
    edb = edge_store(chain_edges(n))
    seminaive_evaluate(program, edb, stats=stats, tracer=tracer)
    magic_evaluate(
        program, edb, parse_query("path(%d, X)" % (n - 5)),
        stats=EngineStatistics(), tracer=tracer,
    )
    return tracer


def test_datalog_strategies(benchmark):
    registry = MetricsRegistry()
    benchmark.pedantic(
        full_closure_measure, args=(registry,), rounds=1, iterations=1
    )
    bound_query_measure(registry)
    nonrecursive_measure(registry)
    closure_rows = full_closure_rows(registry)
    bound_rows = bound_query_rows(registry)
    nonrec_rows = nonrecursive_rows(registry)

    # Shape: semi-naive wins the full closure, more so at larger n.
    chain_speedups = [r[5] for r in closure_rows if r[0] == "chain"]
    assert chain_speedups[-1] > 1.0
    assert chain_speedups[-1] >= chain_speedups[0]
    # Shape: magic wins bound queries at every size.
    assert all(r[5] > 1.0 for r in bound_rows), bound_rows
    # Shape: the non-recursive rewrite also wins.
    assert nonrec_rows[-1][4] > 1.0, nonrec_rows

    sections = [
        "full transitive closure: naive vs semi-naive",
        format_table(
            ("graph", "n", "path facts", "naive_ms", "seminaive_ms", "speedup"),
            closure_rows,
        ),
        "",
        "bound query path(n-5, X): full closure vs goal-directed methods",
        format_table(
            (
                "n",
                "answers",
                "seminaive_ms",
                "magic_ms",
                "topdown_ms",
                "magic_speedup",
            ),
            bound_rows,
        ),
        "",
        "non-recursive bound join ([Ra2]): full evaluation vs magic",
        format_table(
            ("n", "answers", "full_ms", "magic_ms", "speedup"),
            nonrec_rows,
        ),
    ]
    write_artifact("datalog_strategies.txt", "\n".join(sections))
    write_metrics("datalog_strategies_metrics.json", registry)
    write_trace("datalog_fixpoint_trace.txt", trace_fixpoints())
