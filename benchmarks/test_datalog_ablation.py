"""Datalog ablation: where does semi-naive's win come from, and what does
rule shape cost?

Two deterministic work metrics (no timing noise):

* **rounds** — fixpoint iterations for naive vs semi-naive (they take
  the same number of rounds; the saving is *within* a round, which the
  derived-work proxy below exposes);
* **linear vs nonlinear** transitive closure — the nonlinear variant
  reaches the fixpoint in O(log n) rounds but each round joins the whole
  `path` relation with itself, the classical trade-off.

Shape claims asserted: nonlinear needs far fewer rounds; semi-naive
rounds equal naive rounds while wall-clock (measured in the strategies
bench) diverges; results identical everywhere.
Table in results/datalog_ablation.txt.
"""

import time

from repro.core.random_instances import (
    chain_edges,
    edge_store,
    transitive_closure_program,
)
from repro.datalog import naive_iterations, seminaive_iterations

from .conftest import format_table, write_artifact

SIZES = (16, 32, 64)


def run_ablation():
    rows = []
    linear = transitive_closure_program(linear=True)
    nonlinear = transitive_closure_program(linear=False)
    for n in SIZES:
        edb = edge_store(chain_edges(n))

        start = time.perf_counter()
        naive_model, naive_rounds = naive_iterations(linear, edb)
        naive_seconds = time.perf_counter() - start

        start = time.perf_counter()
        semi_model, semi_rounds = seminaive_iterations(linear, edb)
        semi_seconds = time.perf_counter() - start
        assert naive_model == semi_model

        start = time.perf_counter()
        nl_model, nl_rounds = seminaive_iterations(nonlinear, edb)
        nl_seconds = time.perf_counter() - start
        assert nl_model.get("path") == semi_model.get("path")

        rows.append(
            (
                n,
                naive_rounds,
                round(naive_seconds * 1000, 1),
                semi_rounds,
                round(semi_seconds * 1000, 1),
                nl_rounds,
                round(nl_seconds * 1000, 1),
            )
        )
    return rows


def test_datalog_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    for n, naive_rounds, _nt, semi_rounds, _st, nl_rounds, _nlt in rows:
        # Linear TC needs ~n rounds either way: the semi-naive saving is
        # intra-round, not fewer rounds.
        assert abs(naive_rounds - semi_rounds) <= 1
        assert naive_rounds >= n - 2
        # Nonlinear TC squares the frontier: logarithmic rounds.
        assert nl_rounds <= naive_rounds // 2
    # Rounds grow linearly with n for the linear program...
    linear_rounds = [r[1] for r in rows]
    assert linear_rounds[-1] >= 2 * linear_rounds[0] - 4
    # ...but only logarithmically for the nonlinear one.
    nonlinear_rounds = [r[5] for r in rows]
    assert nonlinear_rounds[-1] <= nonlinear_rounds[0] + 3

    table = format_table(
        (
            "n",
            "naive_rounds",
            "naive_ms",
            "semi_rounds",
            "semi_ms",
            "nonlinear_rounds",
            "nonlinear_ms",
        ),
        rows,
    )
    write_artifact("datalog_ablation.txt", table)
