"""Flight-recorder overhead and system-relation materialization cost.

The introspection subsystem's contract (DESIGN.md §4g) is layered: a
*disabled* recorder costs one attribute check per query; an *enabled*
recorder costs one bounded record append; an *armed* slow-query
threshold switches execution to the instrumented twin and pays the
per-operator accounting price.  This bench measures all three modes on
the same mixed workload (SQL point lookups, a three-way join, a lowered
Datalog program) plus the cost of materializing each ``sys_`` table,
and pins the semantics: identical query results in every mode, one
record per run, reports only above the threshold.

The whole bench runs inside ``REGISTRY.scoped()``: workbenches default
their metrics to the process-global registry, so isolation is what
keeps repeated runs (and neighboring benches) from seeing each other's
accumulated counters.  Table in results/introspection.txt, raw metrics
in results/introspection_metrics.json, and the recorder's own tape in
results/introspection_flight_recorder.json.
"""

import random
import time

import pytest

from repro.core.workbench import MetatheoryWorkbench
from repro.obs import QueryHistory, REGISTRY
from repro.relational import Database, Relation, RelationSchema

from .conftest import format_table, write_artifact, write_json, write_metrics

pytestmark = pytest.mark.slow

QUERIES = (
    "SELECT f.k, d1.cat FROM fact f, dim1 d1 WHERE f.b = d1.b",
    "SELECT f.k, d1.cat, d2.reg FROM fact f, dim1 d1, dim2 d2 "
    "WHERE f.b = d1.b AND f.c = d2.c AND d1.cat = 'cat0'",
    "SELECT k FROM fact WHERE k < 10",
    "twin(X, Y) :- fact(X, B, C), fact(Y, B, C), X != Y.",
)
ROUNDS = 25


def build_database(fact_rows=600, dim_rows=30, seed=0):
    rng = random.Random(seed)
    fact = {
        (rng.randrange(200), rng.randrange(dim_rows), rng.randrange(dim_rows))
        for _ in range(fact_rows)
    }
    return Database(
        [
            Relation(RelationSchema("fact", ("k", "b", "c")), fact),
            Relation(
                RelationSchema("dim1", ("b", "cat")),
                {(i, "cat%d" % (i % 6)) for i in range(dim_rows)},
            ),
            Relation(
                RelationSchema("dim2", ("c", "reg")),
                {(i, "reg%d" % (i % 4)) for i in range(dim_rows)},
            ),
        ]
    )


def run_workload(wb):
    """ROUNDS passes over the mixed workload; returns results + seconds."""
    results = []
    start = time.perf_counter()
    for _ in range(ROUNDS):
        results = [wb.run(query) for query in QUERIES]
    return results, time.perf_counter() - start


def cardinalities(results):
    return [
        result.count() if hasattr(result, "count") and callable(result.count)
        else len(result)
        for result in results
    ]


def test_introspection_overhead(capsys):
    with REGISTRY.scoped():
        queries_per_run = ROUNDS * len(QUERIES)
        modes = []
        baselines = None
        recorder = None
        for mode, kwargs in (
            ("history off", {"history": None}),
            (
                "history on",
                {"history": QueryHistory(capacity=queries_per_run)},
            ),
            (
                "armed (slow_ms=1e9)",
                {
                    "history": QueryHistory(capacity=queries_per_run),
                    "slow_query_ms": 1e9,
                },
            ),
        ):
            wb = MetatheoryWorkbench(build_database(), **kwargs)
            results, elapsed = run_workload(wb)
            if baselines is None:
                baselines = cardinalities(results)
            # The semantics pin: recording never changes answers.
            assert cardinalities(results) == baselines
            expected = 0 if not wb.history.enabled else queries_per_run
            assert len(wb.history) == expected
            if kwargs.get("slow_query_ms") is not None:
                assert wb.history.slow_queries() == []  # under threshold
            if mode == "history on":
                recorder = wb.history
            modes.append((mode, elapsed))
            REGISTRY.gauge(
                "introspection_wall_us_per_query", mode=mode
            ).set(elapsed / queries_per_run * 1e6)

        # A recording run with slow_ms=0: every record keeps its report.
        wb = MetatheoryWorkbench(build_database(), slow_query_ms=0.0)
        for query in QUERIES[:3]:
            wb.run(query)
        assert all(r.report is not None for r in wb.history.records())

        # Materialization cost of each system table, measured by query.
        sys_rows = []
        for name in (
            "sys_metrics", "sys_query_log", "sys_plan_cache",
            "sys_catalog_stats",
        ):
            start = time.perf_counter()
            relation = wb.sql("SELECT * FROM %s" % name)
            micros = (time.perf_counter() - start) * 1e6
            sys_rows.append((name, len(relation)))
            REGISTRY.gauge(
                "introspection_materialize_us", table=name
            ).set(micros)
            REGISTRY.gauge(
                "introspection_table_rows", table=name
            ).set(len(relation))

        base_us = REGISTRY.value(
            "introspection_wall_us_per_query", mode="history off"
        )
        table = format_table(
            ("mode", "us/query", "vs off"),
            [
                (
                    mode,
                    "%.1f" % REGISTRY.value(
                        "introspection_wall_us_per_query", mode=mode
                    ),
                    "%.2fx" % (
                        REGISTRY.value(
                            "introspection_wall_us_per_query", mode=mode
                        ) / base_us
                    ),
                )
                for mode, _elapsed in modes
            ],
        )
        sys_table = format_table(
            ("system table", "rows", "materialize_us"),
            [
                (
                    name,
                    rows,
                    "%.1f" % REGISTRY.value(
                        "introspection_materialize_us", table=name
                    ),
                )
                for name, rows in sys_rows
            ],
        )
        text = (
            "Flight-recorder overhead on a mixed workload (%d queries)\n"
            "and on-demand sys_ table materialization cost\n\n%s\n\n%s"
            % (queries_per_run, table, sys_table)
        )
        write_artifact("introspection.txt", text)
        write_metrics("introspection_metrics.json", REGISTRY)
        write_json(
            "introspection_flight_recorder.json", recorder.as_dicts()
        )
    with capsys.disabled():
        print("\n" + text)
