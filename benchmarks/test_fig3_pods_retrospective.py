"""Figure 3 bench: PODS papers in five areas, two-year averages, 1982-95.

Regenerates the figure's series from the anchored dataset and runs the
three analyses §6 and footnote 10 perform on it:

* the two-year-average curves themselves (who rises/falls when);
* the **two-year harmonic** and its program-committee memory model;
* the **Lotka-Volterra ecosystem** reading (succession of rise-and-fall
  waves; best-lag shape correlations between chain species and areas);
* **Kitcher's diversity model** (footnote 11): why several traditions
  coexist at equilibrium.

Artifacts: results/fig3_pods_retrospective.txt.
"""

from repro.metascience import (
    AREAS,
    LOGIC_DB_ANCHOR,
    RAW_COUNTS,
    alternation_score,
    diversity_experiment,
    figure3_series,
    pc_memory_series,
    render_figure3,
    succession_fit,
    succession_order,
    totals,
    two_year_harmonic_strength,
)

from .conftest import format_table, write_artifact


def build_everything():
    figure = render_figure3()
    harmonics = {
        area: two_year_harmonic_strength(RAW_COUNTS[area]) for area in AREAS
    }
    data = figure3_series()
    order = [a for a in succession_order() if a != "access_methods"]
    ordered = {a: [v for _, v in data[a]] for a in order}
    volterra = succession_fit(ordered)
    kitcher = diversity_experiment([3.0, 2.0, 1.0])
    return figure, harmonics, volterra, kitcher


def test_fig3_pods_retrospective(benchmark):
    figure, harmonics, volterra, kitcher = benchmark.pedantic(
        build_everything, rounds=1, iterations=1
    )

    # Anchor: the verbatim footnote-10 series.
    start = 1986 - 1982
    assert RAW_COUNTS["logic_databases"][start:start + 7] == LOGIC_DB_ANCHOR
    # Shape: logic databases the largest tradition by volume.
    volume = totals()
    assert volume["logic_databases"] == max(volume.values())
    # Footnote 10: strong two-year harmonic in transaction processing,
    # alternation in the logic-database window; none in the smooth riser.
    assert harmonics["transaction_processing"] > 0.5
    assert alternation_score(LOGIC_DB_ANCHOR) == 1.0
    assert harmonics["complex_objects"] < 0.25
    # PC memory model reproduces the alternation mechanism.
    assert alternation_score(pc_memory_series(drift=-0.5)) == 1.0
    # §6: "the graphs very much recall solutions to Volterra equations".
    assert all(corr > 0.8 for corr in volterra.values()), volterra
    # Footnote 11: payoff sharing sustains diversity.
    by_sharing = {sharing: div for sharing, _s, div in kitcher}
    assert by_sharing[1.0] > by_sharing[0.0]

    sections = [figure, ""]
    sections.append(
        format_table(
            ("area", "total_papers", "two_year_harmonic"),
            [
                (area, totals()[area], round(harmonics[area], 3))
                for area in AREAS
            ],
        )
    )
    sections.append("")
    sections.append(
        format_table(
            ("area (succession order)", "volterra_shape_correlation"),
            [(a, round(c, 3)) for a, c in volterra.items()],
        )
    )
    sections.append("")
    sections.append(
        format_table(
            ("payoff_sharing", "equilibrium_shares", "diversity_H"),
            [
                (s, [round(x, 3) for x in shares], round(d, 3))
                for s, shares, d in kitcher
            ],
        )
    )
    write_artifact("fig3_pods_retrospective.txt", "\n".join(sections))
