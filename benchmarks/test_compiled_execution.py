"""Compiled kernels vs the interpreted streaming executor, measured.

The tentpole claim for ``repro.compile``: fusing a physical plan into
one specialized Python function — scan, filter, and projection inlined
into a single loop; join probes inlined around a prebuilt index —
removes the per-tuple generator suspensions and dynamic condition
dispatch the Volcano-style executor pays, at **identical** results and
identical work counters.  Two workloads pin the claim where it matters:

* ``filter-project 200k`` — a selective predicate over 200k rows, the
  pure pipeline case (one fused loop, no indexes);
* ``star join 100k`` — a 100k-row fact relation joined with two
  selective dimensions, the probe-heavy case (two fused pipelines over
  cached base indexes).

Both legs run the *same* unoptimized canonical plan, warmed first (the
shared ``Relation._key_index`` caches make cold counters depend on run
order), best-of-5.  The acceptance gate asserts the compiled leg is at
least 2x faster on both, with equal results and equal
``tuples_materialized``; measured speedups land well above (see
EXPERIMENTS.md).  Artifacts: ``benchmarks/results/compiled_execution*``
and ``BENCH_compile.json`` at the repo root.
"""

import json
import os
import time

from repro.compile import KernelCache
from repro.datalog.stats import EngineStatistics
from repro.obs import MetricsRegistry
from repro.plan import canonicalize
from repro.plan.executor import execute_physical
from repro.relational import algebra as ra
from repro.relational.database import Database

from .conftest import format_table, write_artifact, write_metrics

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The acceptance gate: compiled wall clock beats interpreted by this
#: factor on every workload (measured headroom is ~2x beyond it).
MIN_SPEEDUP = 2.0


def timed(fn, repeats=5):
    """Best-of-N wall clock (seconds) plus the last result."""
    best, result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def filter_project_workload():
    """Selective filter + projection over 200k rows (one pipeline)."""
    db = Database.from_dict(
        {
            "events": (
                ("eid", "kind", "val"),
                [(i, i % 50, i % 997) for i in range(200000)],
            ),
        }
    )
    expr = ra.Projection(
        ra.Selection(
            ra.RelationRef("events"),
            ra.Comparison(ra.Attr("kind"), "=", ra.Const(7)),
        ),
        ("eid", "val"),
    )
    return db, expr


def star_join_workload():
    """100k-row fact with two selective dimensions (probe-heavy)."""
    db = Database.from_dict(
        {
            "fact": (
                ("k1", "k2", "m"),
                [(a % 320, a % 310, a) for a in range(100000)],
            ),
            "dim1": (("k1", "x"), [(i, i) for i in range(0, 320, 10)]),
            "dim2": (("k2", "y"), [(i, i) for i in range(0, 310, 10)]),
        }
    )
    expr = ra.Projection(
        ra.NaturalJoin(
            ra.RelationRef("dim1"),
            ra.NaturalJoin(ra.RelationRef("fact"), ra.RelationRef("dim2")),
        ),
        ("k1", "k2", "x", "y", "m"),
    )
    return db, expr


WORKLOADS = (
    ("filter-project 200k", filter_project_workload),
    ("star join 100k", star_join_workload),
)


def run_workload(build, cache):
    db, expr = build()
    plan = canonicalize(expr, db.schema())
    kernel, reason = cache.resolve(plan, db)
    assert kernel is not None, reason

    # Warm both legs: first touches build the shared base-relation key
    # indexes, so the measured runs (and their counters) are
    # steady-state on both sides.
    execute_physical(plan, db, EngineStatistics())
    kernel.execute(db)

    interp_seconds, interp = timed(
        lambda: execute_physical(plan, db, EngineStatistics())[0]
    )
    compiled_seconds, compiled = timed(lambda: kernel.execute(db)[0])

    interp_stats = EngineStatistics()
    interp_again, _ = execute_physical(plan, db, interp_stats)
    compiled_stats = EngineStatistics()
    compiled_again, _ = kernel.execute(db, compiled_stats)

    # Identical results and identical work accounting, asserted on the
    # very runs this bench reports.
    assert compiled == interp == compiled_again == interp_again
    assert (
        compiled_stats.tuples_materialized
        == interp_stats.tuples_materialized
    )
    assert compiled_stats.as_dict() == interp_stats.as_dict()

    return {
        "rows": len(compiled),
        "pipelines": kernel.pipelines,
        "tuples_materialized": compiled_stats.tuples_materialized,
        "interpreted": {"seconds": interp_seconds},
        "compiled": {"seconds": compiled_seconds},
        "speedup": interp_seconds / compiled_seconds,
    }


def test_compiled_execution(benchmark):
    cache = KernelCache()
    results = benchmark.pedantic(
        lambda: {
            label: run_workload(build, cache) for label, build in WORKLOADS
        },
        rounds=1,
        iterations=1,
    )

    registry = MetricsRegistry()
    for label, outcome in results.items():
        for leg in ("interpreted", "compiled"):
            registry.gauge(
                "compiled_execution_seconds", workload=label, leg=leg,
            ).set(outcome[leg]["seconds"])
        registry.gauge("compiled_execution_speedup", workload=label).set(
            outcome["speedup"]
        )
        registry.gauge("compiled_execution_rows", workload=label).set(
            outcome["rows"]
        )
    for field, value in cache.stats().items():
        registry.gauge("compiled_execution_cache_%s" % field).set(value)

    rows = [
        (
            label,
            outcome["rows"],
            outcome["pipelines"],
            outcome["tuples_materialized"],
            "%.3fms" % (outcome["interpreted"]["seconds"] * 1e3),
            "%.3fms" % (outcome["compiled"]["seconds"] * 1e3),
            "%.2fx" % outcome["speedup"],
        )
        for label, outcome in results.items()
    ]
    table = format_table(
        ("workload", "rows", "pipelines", "materialized", "interpreted",
         "compiled", "speedup"),
        rows,
    )
    write_artifact("compiled_execution.txt", table)
    write_metrics("compiled_execution_metrics.json", registry)

    summary = {"bench": "compile", "workloads": results}
    with open(os.path.join(ROOT, "BENCH_compile.json"), "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The headline gate: every workload clears the 2x bar.
    for label, outcome in results.items():
        assert outcome["speedup"] >= MIN_SPEEDUP, (label, outcome)
    # Each workload compiled exactly once; the rest were cache hits.
    assert cache.stats()["codegens"] == len(WORKLOADS)
