"""Tests for the workbench facade, equivalence harness, and generators."""

import pytest

from repro import MetatheoryWorkbench
from repro.core import (
    chain_edges,
    chase_vs_armstrong,
    codd_experiment,
    cycle_edges,
    datalog_experiment,
    edge_database,
    edge_store,
    optimizer_experiment,
    random_database,
    random_edb,
    random_fds,
    random_graph_edges,
    random_positive_program,
    random_safe_query,
    same_generation_program,
    same_generation_store,
    transitive_closure_program,
    tree_edges,
)
from repro.relational import Query, RelAtom, Var, is_safe_range


@pytest.fixture
def workbench():
    return MetatheoryWorkbench.from_dict(
        {
            "parent": (
                ("p", "c"),
                [("ann", "bob"), ("bob", "cal"), ("ann", "dee")],
            ),
        }
    )


class TestWorkbench:
    def test_sql(self, workbench):
        out = workbench.sql(
            "SELECT p1.p FROM parent p1, parent p2 WHERE p1.c = p2.p"
        )
        assert set(out.tuples) == {("ann",)}

    def test_algebra(self, workbench):
        from repro.relational import RelationRef

        assert len(workbench.algebra(RelationRef("parent"))) == 3

    def test_calculus_both_paths_agree(self, workbench):
        q = Query(["p", "c"], RelAtom("parent", [Var("p"), Var("c")]))
        via_algebra = workbench.calculus(q)
        direct = workbench.calculus(q, via="direct")
        assert set(via_algebra.tuples) == set(direct.tuples)

    def test_codd_check(self, workbench):
        q = Query(["p", "c"], RelAtom("parent", [Var("p"), Var("c")]))
        _, _, equal = workbench.codd_check(q)
        assert equal

    def test_to_calculus(self, workbench):
        from repro.relational import RelationRef

        q = workbench.to_calculus(RelationRef("parent"))
        assert tuple(q.head) == ("p", "c")

    def test_datalog(self, workbench):
        engine = workbench.datalog(
            "anc(X,Y) :- parent(X,Y). anc(X,Z) :- parent(X,Y), anc(Y,Z)."
        )
        assert engine.query("anc(ann, X)") == {
            ("ann", "bob"),
            ("ann", "cal"),
            ("ann", "dee"),
        }

    def test_design(self, workbench):
        tool = workbench.design("A B C", "A -> B")
        assert tool.normal_form() in ("1NF", "2NF", "3NF", "BCNF")

    def test_acyclicity_and_join(self):
        wb = MetatheoryWorkbench.from_dict(
            {
                "r": (("a", "b"), [(1, 2), (3, 4)]),
                "s": (("b", "c"), [(2, 5)]),
            }
        )
        assert wb.is_acyclic()
        assert wb.full_join() == wb.full_join(method="naive")


class TestEquivalenceHarness:
    def test_codd_experiment_confirms(self):
        report = codd_experiment(trials=15, seed=3)
        assert report.confirmed, report.failures

    def test_datalog_experiment_confirms(self):
        report = datalog_experiment(trials=8, seed=3)
        assert report.confirmed, report.failures

    def test_optimizer_experiment_confirms(self):
        report = optimizer_experiment(trials=15, seed=3)
        assert report.confirmed, report.failures

    def test_chase_experiment_confirms(self):
        report = chase_vs_armstrong(trials=20, seed=3)
        assert report.confirmed, report.failures

    def test_random_safe_queries_are_safe(self):
        db = random_database(seed=5)
        for seed in range(10):
            query = random_safe_query(db, seed=seed)
            assert is_safe_range(query.formula), str(query)


class TestGenerators:
    def test_graph_shapes(self):
        assert chain_edges(3) == [(0, 1), (1, 2), (2, 3)]
        assert cycle_edges(3) == [(0, 1), (1, 2), (2, 0)]
        assert len(tree_edges(7)) == 6
        edges = random_graph_edges(10, 15, seed=1)
        assert len(edges) == 15
        assert all(a != b for a, b in edges)

    def test_edge_containers(self):
        edges = chain_edges(2)
        store = edge_store(edges)
        db = edge_database(edges)
        assert store.count("edge") == 2
        assert len(db["edge"]) == 2

    def test_tc_programs(self):
        from repro.datalog import is_linear

        assert is_linear(transitive_closure_program(linear=True), "path")
        assert not is_linear(transitive_closure_program(linear=False), "path")

    def test_sg_workload(self):
        from repro.datalog import seminaive_evaluate

        store = same_generation_store(depth=3, width=3, seed=1)
        model = seminaive_evaluate(same_generation_program(), store)
        assert model.count("sg") >= model.count("flat")

    def test_random_program_is_stratifiable_and_terminates(self):
        from repro.datalog import seminaive_evaluate, stratify

        for seed in range(5):
            program = random_positive_program(seed=seed)
            stratify(program)  # must not raise
            edb = random_edb(sorted(program.edb_predicates()), seed=seed)
            seminaive_evaluate(program, edb)  # must terminate

    def test_random_database_joinable(self):
        db = random_database(seed=2)
        names = db.names()
        shared = set(db[names[0]].schema.attributes) & set(
            db[names[1]].schema.attributes
        )
        assert shared  # attribute overlap makes joins meaningful

    def test_random_fds_within_attributes(self):
        fds = random_fds(["A", "B", "C"], count=5, seed=3)
        for fd in fds:
            assert fd.attributes() <= {"A", "B", "C"}
