"""Seed determinism of every random_* workload generator.

Every generator must be a pure function of its arguments: the same
seed regenerates the identical instance (that is what makes a recorded
conformance seed a repro), and nearby seeds must actually vary (a
generator that ignores its seed silently collapses a fuzz sweep to one
case).
"""

import pytest

from repro.core.equivalence import random_safe_query
from repro.core.random_instances import (
    random_algebra_expression,
    random_database,
    random_edb,
    random_fds,
    random_graph_edges,
    random_positive_program,
    same_generation_store,
)

SEEDS = range(8)


def databases(seed):
    return random_database(num_relations=3, rows=6, seed=seed)


class TestSameSeedSameInstance:
    def test_random_graph_edges(self):
        for seed in SEEDS:
            assert random_graph_edges(12, 20, seed=seed) == random_graph_edges(
                12, 20, seed=seed
            )

    def test_same_generation_store(self):
        for seed in SEEDS:
            assert same_generation_store(3, 3, seed=seed) == (
                same_generation_store(3, 3, seed=seed)
            )

    def test_random_positive_program(self):
        for seed in SEEDS:
            first = random_positive_program(seed=seed)
            second = random_positive_program(seed=seed)
            assert first == second

    def test_random_edb(self):
        for seed in SEEDS:
            assert random_edb(["e0", "e1"], seed=seed) == random_edb(
                ["e0", "e1"], seed=seed
            )

    def test_random_database(self):
        for seed in SEEDS:
            assert databases(seed) == databases(seed)

    def test_random_algebra_expression(self):
        for seed in SEEDS:
            db = databases(0)
            first = random_algebra_expression(db, seed=seed, size=5)
            second = random_algebra_expression(db, seed=seed, size=5)
            assert str(first) == str(second)

    def test_random_safe_query(self):
        for seed in SEEDS:
            db = databases(0)
            first = random_safe_query(db, seed=seed)
            second = random_safe_query(db, seed=seed)
            assert str(first) == str(second)

    def test_random_fds(self):
        attributes = tuple("ABCDE")
        for seed in SEEDS:
            assert random_fds(attributes, seed=seed) == random_fds(
                attributes, seed=seed
            )


class TestSeedsActuallyVary:
    """At least two of a handful of consecutive seeds must differ."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda seed: random_graph_edges(12, 20, seed=seed),
            lambda seed: same_generation_store(3, 3, seed=seed),
            lambda seed: str(random_positive_program(seed=seed)),
            lambda seed: random_edb(["e0"], seed=seed),
            lambda seed: repr(databases(seed).relations()),
            lambda seed: str(
                random_algebra_expression(databases(0), seed=seed, size=5)
            ),
            lambda seed: str(random_safe_query(databases(0), seed=seed)),
            lambda seed: random_fds(tuple("ABCDE"), seed=seed),
        ],
        ids=[
            "random_graph_edges",
            "same_generation_store",
            "random_positive_program",
            "random_edb",
            "random_database",
            "random_algebra_expression",
            "random_safe_query",
            "random_fds",
        ],
    )
    def test_variation(self, make):
        outputs = {repr(make(seed)) for seed in SEEDS}
        assert len(outputs) > 1
