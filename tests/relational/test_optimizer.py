"""Tests for the algebraic optimizer."""

import pytest

from repro.relational import (
    Database,
    NaturalJoin,
    Product,
    Projection,
    RelationRef,
    Rename,
    Selection,
    ThetaJoin,
    Union,
    eq,
    evaluate,
    gt,
)
from repro.relational.algebra import And, Attr, Comparison, Const
from repro.relational.optimizer import (
    cascade_selections,
    estimate_cardinality,
    form_joins,
    optimize,
    push_selections,
    reorder_joins,
)


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "big": (
                ("a", "b"),
                [(i, i % 10) for i in range(50)],
            ),
            "small": (("b", "c"), [(1, "x"), (2, "y")]),
            "tiny": (("c", "d"), [("x", 0)]),
        }
    )


class TestCascade:
    def test_and_splits(self, db):
        expr = Selection(
            RelationRef("big"), And(eq("a", 1), gt("b", 0))
        )
        cascaded = cascade_selections(expr)
        assert isinstance(cascaded, Selection)
        assert isinstance(cascaded.child, Selection)
        assert evaluate(cascaded, db) == evaluate(expr, db)


class TestPushdown:
    def test_through_union(self, db):
        expr = Selection(
            Union(RelationRef("big"), RelationRef("big")), eq("a", 1)
        )
        pushed = push_selections(expr, db.schema())
        assert isinstance(pushed, Union)
        assert evaluate(pushed, db) == evaluate(expr, db)

    def test_through_projection_when_covered(self, db):
        expr = Selection(
            Projection(RelationRef("big"), ("a",)), eq("a", 1)
        )
        pushed = push_selections(expr, db.schema())
        assert isinstance(pushed, Projection)
        assert evaluate(pushed, db) == evaluate(expr, db)

    def test_blocked_by_projection_when_not_covered(self, db):
        expr = Selection(
            Projection(RelationRef("big"), ("a",)), eq("a", 1)
        )
        # Condition on a projected-away attribute can't be pushed.
        blocked = Selection(Projection(RelationRef("big"), ("b",)), eq("b", 1))
        pushed = push_selections(blocked, db.schema())
        assert evaluate(pushed, db) == evaluate(blocked, db)

    def test_through_rename_rewrites_attrs(self, db):
        expr = Selection(
            Rename(RelationRef("big"), {"a": "x"}), eq("x", 1)
        )
        pushed = push_selections(expr, db.schema())
        assert isinstance(pushed, Rename)
        assert evaluate(pushed, db) == evaluate(expr, db)

    def test_into_join_side(self, db):
        expr = Selection(
            NaturalJoin(RelationRef("big"), RelationRef("small")),
            eq("a", 1),
        )
        pushed = push_selections(expr, db.schema())
        assert isinstance(pushed, NaturalJoin)
        assert isinstance(pushed.left, Selection)
        assert evaluate(pushed, db) == evaluate(expr, db)

    def test_cross_side_condition_stays(self, db):
        expr = Selection(
            Product(
                Rename(RelationRef("big"), {"b": "bb"}),
                RelationRef("small"),
            ),
            eq("bb", "b"),
        )
        pushed = push_selections(expr, db.schema())
        assert isinstance(pushed, Selection)  # cannot sink: spans sides
        assert evaluate(pushed, db) == evaluate(expr, db)

    def test_through_difference_left_only(self, db):
        expr = Selection(
            __import__("repro.relational", fromlist=["Difference"]).Difference(
                RelationRef("big"), RelationRef("big")
            ),
            eq("a", 1),
        )
        pushed = push_selections(expr, db.schema())
        assert evaluate(pushed, db) == evaluate(expr, db)


class TestJoinFormation:
    def test_product_plus_eq_becomes_theta(self, db):
        expr = Selection(
            Product(
                Rename(RelationRef("big"), {"b": "bb"}),
                RelationRef("small"),
            ),
            Comparison(Attr("bb"), "=", Attr("b")),
        )
        formed = form_joins(expr, db.schema())
        assert isinstance(formed, ThetaJoin)
        assert evaluate(formed, db) == evaluate(expr, db)

    def test_same_side_condition_not_converted(self, db):
        expr = Selection(
            Product(
                Rename(RelationRef("big"), {"b": "bb"}),
                RelationRef("small"),
            ),
            Comparison(Attr("a"), "=", Attr("bb")),
        )
        formed = form_joins(expr, db.schema())
        assert isinstance(formed, Selection)


class TestEstimation:
    def test_base_relation(self, db):
        assert estimate_cardinality(RelationRef("big"), db) == 50.0

    def test_selection_reduces(self, db):
        expr = Selection(RelationRef("big"), eq("a", 1))
        assert estimate_cardinality(expr, db) == pytest.approx(5.0)

    def test_range_selection(self, db):
        expr = Selection(RelationRef("big"), gt("a", 1))
        assert estimate_cardinality(expr, db) == pytest.approx(50 / 3)

    def test_join_estimate(self, db):
        expr = NaturalJoin(RelationRef("big"), RelationRef("small"))
        est = estimate_cardinality(expr, db)
        assert est == pytest.approx(50 * 2 / 50)

    def test_product_estimate(self, db):
        expr = Product(
            Rename(RelationRef("big"), {"b": "bb", "a": "aa"}),
            RelationRef("small"),
        )
        assert estimate_cardinality(expr, db) == 100.0


class TestReordering:
    def test_three_way_join_reordered_and_equal(self, db):
        expr = NaturalJoin(
            NaturalJoin(RelationRef("big"), RelationRef("small")),
            RelationRef("tiny"),
        )
        reordered = reorder_joins(expr, db)
        from repro.relational import same_content

        assert same_content(evaluate(reordered, db), evaluate(expr, db))

    def test_reordering_preserves_column_order(self, db):
        # Conformance-fuzzer regression: the greedy order permutes the
        # natural-join output columns, and under a set operation that
        # broke union compatibility.  Reordering must restore the
        # original attribute order (a permutation projection).
        expr = NaturalJoin(
            NaturalJoin(RelationRef("big"), RelationRef("small")),
            RelationRef("tiny"),
        )
        reordered = reorder_joins(expr, db)
        assert (
            reordered.schema(db.schema()).attributes
            == expr.schema(db.schema()).attributes
        )
        assert evaluate(reordered, db) == evaluate(expr, db)

    def test_reordered_join_stays_union_compatible(self, db):
        from repro.relational import Difference
        from repro.plan import canonicalize, execute

        join = NaturalJoin(
            NaturalJoin(RelationRef("big"), RelationRef("small")),
            RelationRef("tiny"),
        )
        expr = Difference(join, Selection(join, eq("a", 1)))
        optimized = optimize(expr, db)
        # The executor enforces identical attribute lists on set
        # operations; this raised SchemaError before the fix.
        result = execute(canonicalize(optimized, db.schema()), db)
        assert result == evaluate(expr, db)


class TestPipeline:
    def test_optimize_preserves_semantics(self, db):
        expr = Selection(
            NaturalJoin(
                NaturalJoin(RelationRef("big"), RelationRef("small")),
                RelationRef("tiny"),
            ),
            And(eq("a", 1), eq("d", 0)),
        )
        optimized = optimize(expr, db)
        from repro.relational import same_content

        assert same_content(evaluate(optimized, db), evaluate(expr, db))

    def test_optimize_without_db_still_safe(self, db):
        expr = Selection(RelationRef("big"), And(eq("a", 1), gt("b", 0)))
        optimized = optimize(expr)
        assert evaluate(optimized, db) == evaluate(expr, db)
