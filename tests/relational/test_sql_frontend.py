"""Tests for the SQL frontend."""

import pytest

from repro.errors import ParseError
from repro.relational import Database
from repro.relational.sql_frontend import parse_sql, run_sql


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "emp": (
                ("name", "dept", "salary"),
                [("ann", "cs", 100), ("bob", "cs", 80), ("cal", "ee", 90)],
            ),
            "dept": (("dept", "head"), [("cs", "ann"), ("ee", "cal")]),
        }
    )


class TestBasics:
    def test_select_star(self, db):
        out = run_sql("SELECT * FROM emp", db)
        assert len(out) == 3
        assert out.schema.attributes == ("name", "dept", "salary")

    def test_column_list(self, db):
        out = run_sql("SELECT e.name FROM emp e", db)
        assert {t[0] for t in out} == {"ann", "bob", "cal"}

    def test_bare_columns_when_unambiguous(self, db):
        out = run_sql("SELECT name FROM emp WHERE salary > 85", db)
        assert {t[0] for t in out} == {"ann", "cal"}

    def test_string_literal(self, db):
        out = run_sql("SELECT name FROM emp WHERE dept = 'cs'", db)
        assert len(out) == 2

    def test_string_literal_with_quote_escape(self, db):
        out = run_sql("SELECT name FROM emp WHERE dept = 'it''s'", db)
        assert len(out) == 0

    def test_float_literal(self, db):
        out = run_sql("SELECT name FROM emp WHERE salary > 89.5", db)
        assert len(out) == 2

    def test_and_or_not_precedence(self, db):
        out = run_sql(
            "SELECT name FROM emp WHERE dept = 'cs' AND salary > 90 "
            "OR dept = 'ee'",
            db,
        )
        assert {t[0] for t in out} == {"ann", "cal"}

    def test_not(self, db):
        out = run_sql("SELECT name FROM emp WHERE NOT dept = 'cs'", db)
        assert {t[0] for t in out} == {"cal"}

    def test_parentheses(self, db):
        out = run_sql(
            "SELECT name FROM emp WHERE dept = 'cs' AND "
            "(salary > 90 OR salary < 85)",
            db,
        )
        assert {t[0] for t in out} == {"ann", "bob"}

    def test_self_join(self, db):
        out = run_sql(
            "SELECT e1.name FROM emp e1, emp e2 "
            "WHERE e1.dept = e2.dept AND e1.salary > e2.salary",
            db,
        )
        assert {t[0] for t in out} == {"ann"}

    def test_join_two_tables(self, db):
        out = run_sql(
            "SELECT e.name, d.head FROM emp e, dept d WHERE e.dept = d.dept",
            db,
        )
        assert len(out) == 3

    def test_as_alias_output(self, db):
        out = run_sql("SELECT e.name AS who FROM emp e", db)
        assert out.schema.attributes == ("who",)

    def test_distinct_accepted(self, db):
        out = run_sql("SELECT DISTINCT e.dept FROM emp e", db)
        assert len(out) == 2

    def test_case_insensitive_keywords(self, db):
        out = run_sql("select name from emp where salary >= 90", db)
        assert len(out) == 2

    def test_not_equal_both_spellings(self, db):
        a = run_sql("SELECT name FROM emp WHERE dept <> 'cs'", db)
        b = run_sql("SELECT name FROM emp WHERE dept != 'cs'", db)
        assert a == b


class TestSetOperators:
    def test_union(self, db):
        out = run_sql(
            "SELECT e.name AS n FROM emp e UNION SELECT d.head AS n FROM dept d",
            db,
        )
        assert len(out) == 3

    def test_except(self, db):
        out = run_sql(
            "SELECT e.name AS n FROM emp e EXCEPT SELECT d.head AS n FROM dept d",
            db,
        )
        assert {t[0] for t in out} == {"bob"}

    def test_intersect(self, db):
        out = run_sql(
            "SELECT e.name AS n FROM emp e INTERSECT "
            "SELECT d.head AS n FROM dept d",
            db,
        )
        assert {t[0] for t in out} == {"ann", "cal"}


class TestErrors:
    def test_empty_statement(self):
        with pytest.raises(ParseError):
            parse_sql("")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM emp extra stuff ,")

    def test_ambiguous_column(self, db):
        with pytest.raises(ParseError):
            run_sql("SELECT dept FROM emp e, dept d", db)

    def test_unknown_column(self, db):
        with pytest.raises(ParseError):
            run_sql("SELECT nope FROM emp", db)

    def test_duplicate_aliases(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM emp e, dept e")

    def test_output_name_clash(self, db):
        with pytest.raises(ParseError):
            run_sql("SELECT e.dept, d.dept FROM emp e, dept d", db)

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT ; FROM emp")
