"""DML through the shared plan pipeline: semantics and plumbing.

INSERT/DELETE/UPDATE are planned, optimized, cached, and executed like
queries — every executor route produces the same delta — and the
mutation side keeps the rest of the stack honest: lazy key indexes are
not eagerly rebuilt, catalog statistics are maintained incrementally
(no rescans), cache invalidation is surgical, and the flight recorder
and EXPLAIN ANALYZE see DML as first-class citizens.
"""

import pytest

from repro.core.workbench import MetatheoryWorkbench
from repro.errors import ParseError, SchemaError
from repro.obs.metrics import MetricsRegistry
from repro.opt.catalog import TableStats
from repro.relational.database import Database
from repro.relational.dml import (
    DeleteStatement,
    DMLResult,
    InsertStatement,
    UpdateStatement,
)
from repro.relational.sql_frontend import parse_sql


def make_wb(**kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return MetatheoryWorkbench(
        Database.from_dict(
            {
                "emp": (
                    ("name", "dept", "salary"),
                    [
                        ("ann", "cs", 90),
                        ("bob", "cs", 80),
                        ("cal", "it", 70),
                    ],
                ),
                "dept": (("dept", "city"), [("cs", "sd"), ("it", "la")]),
            }
        ),
        **kwargs,
    )


class TestParsing:
    def test_insert_values(self):
        stmt = parse_sql("INSERT INTO emp VALUES ('dee', 'it', 60)")
        assert isinstance(stmt, InsertStatement)
        assert stmt.kind == "insert" and stmt.target == "emp"

    def test_insert_select(self):
        stmt = parse_sql(
            "INSERT INTO emp SELECT name, dept, salary FROM emp "
            "WHERE salary > 80"
        )
        assert isinstance(stmt, InsertStatement)

    def test_delete_and_update(self):
        assert isinstance(
            parse_sql("DELETE FROM emp WHERE dept = 'cs'"), DeleteStatement
        )
        stmt = parse_sql("UPDATE emp SET salary = 95 WHERE name = 'ann'")
        assert isinstance(stmt, UpdateStatement)

    def test_malformed_dml_raises(self):
        with pytest.raises(ParseError):
            parse_sql("INSERT INTO emp")
        with pytest.raises(ParseError):
            parse_sql("UPDATE emp WHERE name = 'ann'")


class TestSemantics:
    def test_insert_values_appends_rows(self):
        wb = make_wb()
        result = wb.sql("INSERT INTO emp VALUES ('dee', 'it', 60)")
        assert isinstance(result, DMLResult)
        assert result.rows_inserted == 1 and result.rows_deleted == 0
        assert result.rows_affected == len(result) == 1
        assert ("dee", "it", 60) in wb.db["emp"].tuples

    def test_insert_duplicate_is_a_set_semantics_noop(self):
        wb = make_wb()
        result = wb.sql("INSERT INTO emp VALUES ('ann', 'cs', 90)")
        assert result.rows_affected == 0
        assert len(wb.db["emp"]) == 3

    def test_insert_select_runs_the_source_query(self):
        # Positional assignment, as in SQL: (name, dept) rows land in
        # dept's (dept, city) columns.
        wb = make_wb()
        result = wb.sql(
            "INSERT INTO dept SELECT name, dept FROM emp WHERE salary > 75"
        )
        assert result.rows_inserted == 2
        assert ("ann", "cs") in wb.db["dept"].tuples
        assert ("bob", "cs") in wb.db["dept"].tuples

    def test_delete_where_removes_matches(self):
        wb = make_wb()
        result = wb.sql("DELETE FROM emp WHERE dept = 'cs'")
        assert result.rows_deleted == 2
        assert result.rows_matched == 2
        assert wb.db["emp"].tuples == {("cal", "it", 70)}

    def test_delete_without_matches_affects_nothing(self):
        wb = make_wb()
        before = wb.db["emp"]
        result = wb.sql("DELETE FROM emp WHERE dept = 'hr'")
        assert result.rows_affected == 0
        assert wb.db["emp"] is before

    def test_update_rewrites_matched_rows(self):
        wb = make_wb()
        result = wb.sql("UPDATE emp SET salary = 99 WHERE dept = 'cs'")
        assert result.rows_matched == 2
        assert result.rows_inserted == 2 and result.rows_deleted == 2
        assert ("ann", "cs", 99) in wb.db["emp"].tuples
        assert ("bob", "cs", 99) in wb.db["emp"].tuples

    def test_identity_update_is_a_noop(self):
        wb = make_wb()
        before = wb.db["emp"]
        result = wb.sql("UPDATE emp SET dept = 'cs' WHERE dept = 'cs'")
        assert result.rows_matched == 2
        assert result.rows_affected == 0
        assert wb.db["emp"] is before

    def test_merging_update_keeps_set_cardinality(self):
        # Both cs rows collapse onto one image: 2 deleted, 1 inserted.
        wb = make_wb()
        result = wb.sql(
            "UPDATE emp SET name = 'x', salary = 0 WHERE dept = 'cs'"
        )
        assert result.rows_deleted == 2 and result.rows_inserted == 1
        assert len(wb.db["emp"]) == 2

    def test_dml_on_system_relations_is_rejected(self):
        wb = make_wb()
        with pytest.raises(SchemaError):
            wb.sql("DELETE FROM sys_tables WHERE rows = 0")

    def test_dml_on_unknown_relation_is_rejected(self):
        wb = make_wb()
        with pytest.raises(SchemaError):
            wb.sql("INSERT INTO ghost VALUES (1)")


class TestExecutorRoutes:
    ROUTES = [
        {"executor": True},
        {"executor": False},
        {"executor": True, "optimized": False},
        {"executor": "compiled"},
        {"executor": "compiled", "optimized": False},
    ]

    @pytest.mark.parametrize("kwargs", ROUTES)
    def test_all_routes_produce_the_same_delta(self, kwargs):
        wb = make_wb()
        result = wb.sql("DELETE FROM emp WHERE salary > 75", **kwargs)
        assert result.rows_deleted == 2
        assert wb.db["emp"].tuples == {("cal", "it", 70)}

    def test_compiled_insert_select_matches_streaming(self):
        streaming, compiled = make_wb(), make_wb()
        text = (
            "INSERT INTO dept SELECT name, dept FROM emp WHERE salary > 75"
        )
        a = streaming.sql(text)
        b = compiled.sql(text, executor="compiled")
        assert (a.rows_inserted, a.rows_deleted) == (
            b.rows_inserted, b.rows_deleted,
        )
        assert streaming.db["dept"].tuples == compiled.db["dept"].tuples
        assert compiled.kernel_cache.stats()["codegens"] >= 1


class TestLazyIndexes:
    """The satellite regression: mutations must not eagerly rebuild
    cached key indexes — the new binding starts cold and rebuilds
    lazily on first use."""

    def test_insert_does_not_eagerly_rebuild_key_indexes(self):
        wb = make_wb()
        old = wb.db["emp"]
        old._key_index((1,))  # warm an index on the current binding
        assert old.cached_index_patterns() == [(1,)]
        wb.db.insert("emp", [("dee", "it", 60)])
        fresh = wb.db["emp"]
        assert fresh is not old
        assert fresh.cached_index_patterns() == []  # lazy, not rebuilt

    def test_dml_statement_leaves_the_new_binding_cold(self):
        wb = make_wb()
        wb.db["emp"]._key_index((0,))
        wb.sql("UPDATE emp SET salary = 99 WHERE name = 'ann'")
        assert wb.db["emp"].cached_index_patterns() == []

    def test_index_rebuilds_lazily_and_correctly_after_delta(self):
        wb = make_wb()
        wb.db["emp"]._key_index((1,))
        wb.sql("INSERT INTO emp VALUES ('dee', 'it', 60)")
        fresh = wb.db["emp"]
        index = fresh._key_index((1,))
        assert {row for row in index[("it",)]} == {
            ("cal", "it", 70), ("dee", "it", 60),
        }
        assert fresh.cached_index_patterns() == [(1,)]


class TestCatalogMaintenance:
    def test_delta_census_equals_fresh_census_without_rescans(self):
        wb = make_wb()
        catalog = wb.db.catalog()
        catalog.stats("emp")
        assert catalog.rescans == 1
        wb.sql("INSERT INTO emp VALUES ('dee', 'it', 60)")
        wb.sql("UPDATE emp SET salary = 99 WHERE dept = 'cs'")
        wb.sql("DELETE FROM emp WHERE name = 'cal'")
        stats = catalog.stats("emp")
        fresh = TableStats.from_relation(wb.db["emp"])
        assert stats.rows == fresh.rows
        assert stats._values == fresh._values
        assert stats.distincts() == fresh.distincts()
        assert catalog.rescans == 1  # never rescanned on the delta path

    def test_transactional_commit_maintains_the_census_too(self):
        wb = make_wb()
        catalog = wb.db.catalog()
        catalog.stats("emp")
        with wb.begin() as txn:
            txn.sql("INSERT INTO emp VALUES ('dee', 'it', 60)")
            txn.sql("DELETE FROM emp WHERE name = 'ann'")
        stats = catalog.stats("emp")
        fresh = TableStats.from_relation(wb.db["emp"])
        assert stats.rows == fresh.rows
        assert stats._values == fresh._values
        assert catalog.rescans == 1


class TestCacheCoherence:
    def test_dml_invalidates_only_plans_touching_the_target(self):
        wb = make_wb()
        wb.sql("SELECT name FROM emp WHERE salary > 75")
        wb.sql("SELECT city FROM dept")
        assert wb.plan_cache.stats()["size"] == 2
        wb.sql("INSERT INTO emp VALUES ('dee', 'it', 60)")
        wb.sql("SELECT city FROM dept")  # untouched relation: still hot
        stats = wb.plan_cache.stats()
        assert stats["hits"] >= 1
        wb.sql("SELECT name FROM emp WHERE salary > 75")  # re-planned
        assert wb.plan_cache.stats()["misses"] > stats["misses"]

    def test_same_shape_dml_keeps_compiled_kernels(self):
        wb = make_wb()
        wb.sql("SELECT name FROM emp WHERE salary > 75",
               executor="compiled")
        codegens = wb.kernel_cache.stats()["codegens"]
        wb.sql("INSERT INTO emp VALUES ('dee', 'it', 99)")
        out = wb.sql("SELECT name FROM emp WHERE salary > 75",
                     executor="compiled")
        assert ("dee",) in out.tuples
        # The insert changed data, not shape: the kernel is reused.
        assert wb.kernel_cache.stats()["codegens"] == codegens

    def test_dml_plans_are_themselves_cached(self):
        wb = make_wb()
        wb.sql("DELETE FROM emp WHERE name = 'nobody'")
        misses = wb.plan_cache.stats()["misses"]
        wb.sql("DELETE FROM emp WHERE name = 'nobody'")
        stats = wb.plan_cache.stats()
        assert stats["misses"] == misses
        assert stats["hits"] >= 1


class TestObservability:
    def test_history_records_dml_with_route_and_fingerprint(self):
        wb = make_wb(history=True)
        wb.sql("INSERT INTO emp VALUES ('dee', 'it', 60)")
        record = wb.history.last()
        assert record.kind == "sql"
        assert record.route == "dml:insert:streaming"
        assert record.plan_fingerprint
        assert record.rows == 1  # rows_affected is the cardinality
        wb.sql("DELETE FROM emp WHERE dept = 'it'", executor="compiled")
        assert wb.history.last().route == "dml:delete:compiled"

    def test_metrics_count_statements_and_rows(self):
        wb = make_wb()
        wb.sql("INSERT INTO emp VALUES ('dee', 'it', 60)")
        wb.sql("DELETE FROM emp WHERE dept = 'it'")
        assert wb.metrics.counter(
            "dml_statements_total", kind="insert"
        ).value == 1
        assert wb.metrics.counter(
            "dml_statements_total", kind="delete"
        ).value == 1

    def test_explain_analyze_applies_the_delta_and_reports(self):
        wb = make_wb()
        explained = wb.explain_analyze("DELETE FROM emp WHERE dept = 'cs'")
        result = explained.result
        assert isinstance(result, DMLResult)
        assert result.rows_deleted == 2
        assert wb.db["emp"].tuples == {("cal", "it", 70)}  # ANALYZE runs
        assert explained.plan_cache_hit is False
        assert explained.kernel["fingerprint"]
        assert explained.kernel["status"] in (
            "cold", "compiled", "fallback",
        )
        assert explained.report is not None

    def test_explain_analyze_sees_warm_caches(self):
        wb = make_wb()
        wb.sql("DELETE FROM emp WHERE name = 'nobody'",
               executor="compiled")
        explained = wb.explain_analyze(
            "DELETE FROM emp WHERE name = 'nobody'"
        )
        assert explained.plan_cache_hit is True
        assert explained.parse_cache_hit is True
        assert explained.kernel["status"] == "compiled"
