"""Property-based tests for the relational substrate (hypothesis).

The algebraic laws every textbook states, checked on random instances:
set-operation algebra, join/product relationships, optimizer soundness,
and Codd-translation roundtrips.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    Database,
    NaturalJoin,
    Projection,
    Relation,
    RelationRef,
    RelationSchema,
    Selection,
    evaluate,
    eq,
    same_content,
)
from repro.relational.algebra import And, Attr, Comparison, Const
from repro.relational.optimizer import optimize, push_selections

values = st.integers(min_value=0, max_value=4)
pairs = st.tuples(values, values)


def rel(name, attrs, rows):
    return Relation(RelationSchema(name, attrs), rows)


@st.composite
def two_compatible_relations(draw):
    rows_a = draw(st.sets(pairs, max_size=8))
    rows_b = draw(st.sets(pairs, max_size=8))
    return (
        rel("r", ("a", "b"), rows_a),
        rel("s", ("a", "b"), rows_b),
    )


class TestSetAlgebra:
    @given(two_compatible_relations())
    def test_union_commutes(self, rs):
        r, s = rs
        assert r.union(s) == s.union(r)

    @given(two_compatible_relations())
    def test_intersection_via_difference(self, rs):
        r, s = rs
        assert r.intersection(s) == r.difference(r.difference(s))

    @given(two_compatible_relations())
    def test_difference_disjoint_from_other(self, rs):
        r, s = rs
        assert not (r.difference(s).tuples & s.tuples)

    @given(two_compatible_relations())
    def test_union_absorbs_intersection(self, rs):
        r, s = rs
        assert r.union(r.intersection(s)) == r

    @given(st.sets(pairs, max_size=8))
    def test_self_difference_empty(self, rows):
        r = rel("r", ("a", "b"), rows)
        assert len(r.difference(r)) == 0


class TestJoins:
    @given(st.sets(pairs, max_size=8), st.sets(pairs, max_size=8))
    def test_join_commutes_up_to_column_order(self, rows_a, rows_b):
        r = rel("r", ("a", "b"), rows_a)
        s = rel("s", ("b", "c"), rows_b)
        assert same_content(r.natural_join(s), s.natural_join(r))

    @given(st.sets(pairs, max_size=8), st.sets(pairs, max_size=8))
    def test_semijoin_is_projected_join(self, rows_a, rows_b):
        r = rel("r", ("a", "b"), rows_a)
        s = rel("s", ("b", "c"), rows_b)
        joined = r.natural_join(s).project(("a", "b"))
        assert r.semijoin(s) == joined

    @given(st.sets(pairs, max_size=8), st.sets(pairs, max_size=8))
    def test_semijoin_antijoin_partition(self, rows_a, rows_b):
        r = rel("r", ("a", "b"), rows_a)
        s = rel("s", ("b", "c"), rows_b)
        semi = r.semijoin(s)
        anti = r.antijoin(s)
        assert semi.union(anti) == r
        assert not (semi.tuples & anti.tuples)

    @given(st.sets(pairs, max_size=6))
    def test_join_idempotent(self, rows):
        r = rel("r", ("a", "b"), rows)
        assert same_content(r.natural_join(r), r)

    @given(st.sets(pairs, max_size=6), st.sets(values.map(lambda v: (v,)), max_size=4))
    def test_division_times_divisor_contained(self, rows, divisor_rows):
        r = rel("r", ("a", "b"), rows)
        d = rel("d", ("b",), divisor_rows)
        quotient = r.divide(d)
        if divisor_rows:
            back = quotient.product(d.rename({}, name="d2")).project(("a", "b"))
            assert back.tuples <= r.tuples


@st.composite
def random_db_and_expr(draw):
    rows_r = draw(st.sets(pairs, max_size=8))
    rows_s = draw(st.sets(pairs, max_size=8))
    db = Database(
        [
            rel("r", ("a", "b"), rows_r),
            rel("s", ("b", "c"), rows_s),
        ]
    )
    expr = NaturalJoin(RelationRef("r"), RelationRef("s"))
    if draw(st.booleans()):
        const = draw(values)
        expr = Selection(expr, Comparison(Attr("a"), "=", Const(const)))
    if draw(st.booleans()):
        expr = Projection(expr, ("a", "c"))
    return db, expr


class TestOptimizerSoundness:
    @settings(max_examples=60)
    @given(random_db_and_expr())
    def test_optimize_preserves_results(self, db_expr):
        db, expr = db_expr
        assert same_content(evaluate(optimize(expr, db), db), evaluate(expr, db))

    @settings(max_examples=60)
    @given(random_db_and_expr())
    def test_pushdown_preserves_results(self, db_expr):
        db, expr = db_expr
        pushed = push_selections(expr, db.schema())
        assert same_content(evaluate(pushed, db), evaluate(expr, db))


class TestCoddRoundtrip:
    @settings(max_examples=30, deadline=None)
    @given(st.sets(pairs, min_size=1, max_size=6), st.sets(pairs, max_size=6))
    def test_algebra_to_calculus_roundtrip(self, rows_r, rows_s):
        from repro.relational import algebra_to_calculus, evaluate_query

        db = Database(
            [
                rel("r", ("a", "b"), rows_r),
                rel("s", ("b", "c"), rows_s),
            ]
        )
        expr = Projection(
            NaturalJoin(RelationRef("r"), RelationRef("s")), ("a", "c")
        )
        query = algebra_to_calculus(expr, db.schema())
        assert set(evaluate_query(query, db).tuples) == set(
            evaluate(expr, db).tuples
        )

    @settings(max_examples=30, deadline=None)
    @given(st.sets(pairs, min_size=1, max_size=6))
    def test_calculus_to_algebra_on_difference_pattern(self, rows):
        from repro.relational import (
            AndF,
            Exists,
            NotF,
            Query,
            RelAtom,
            Var,
            calculus_to_algebra,
            evaluate_query,
        )

        db = Database([rel("r", ("a", "b"), rows)])
        query = Query(
            ["x"],
            AndF(
                Exists("y", RelAtom("r", [Var("x"), Var("y")])),
                NotF(Exists("z", RelAtom("r", [Var("z"), Var("x")]))),
            ),
        )
        expr = calculus_to_algebra(query, db.schema())
        assert set(evaluate(expr, db).tuples) == set(
            evaluate_query(query, db).tuples
        )
