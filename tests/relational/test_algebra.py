"""Tests for the relational-algebra AST, type checking, and evaluation."""

import pytest

from repro.errors import AlgebraError, SchemaError
from repro.relational import (
    And,
    Antijoin,
    Attr,
    Comparison,
    Const,
    ConstantRelation,
    Database,
    Difference,
    Division,
    Intersection,
    NaturalJoin,
    Not,
    Or,
    Product,
    Projection,
    Relation,
    RelationRef,
    RelationSchema,
    Rename,
    Selection,
    Semijoin,
    ThetaJoin,
    Union,
    eq,
    evaluate,
    gt,
    lt,
    neq,
    relation_names,
)


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "emp": (
                ("name", "dept", "salary"),
                [
                    ("ann", "cs", 100),
                    ("bob", "cs", 80),
                    ("cal", "ee", 90),
                ],
            ),
            "dept": (("dept", "head"), [("cs", "ann"), ("ee", "cal")]),
        }
    )


class TestConditions:
    def test_comparison_str_coerces_to_attr(self):
        c = Comparison("salary", ">", 85)
        assert isinstance(c.left, Attr)
        assert isinstance(c.right, Const)

    def test_unknown_operator(self):
        with pytest.raises(AlgebraError):
            Comparison("a", "~", "b")

    def test_condition_sugar(self):
        c = eq("a", 1) & gt("b", 2) | ~lt("c", 3)
        assert isinstance(c, Or)

    def test_and_flattens(self):
        c = And(eq("a", 1), And(eq("b", 2), eq("c", 3)))
        assert len(c.parts) == 3

    def test_attributes_collected(self):
        c = And(eq("a", "b"), Not(gt("c", 1)))
        assert c.attributes() == {"a", "b", "c"}

    def test_mixed_type_order_comparison_is_false(self, db):
        expr = Selection(RelationRef("emp"), gt("name", 5))
        assert len(evaluate(expr, db)) == 0

    def test_neq(self, db):
        expr = Selection(RelationRef("emp"), neq("dept", Const("cs")))
        assert len(evaluate(expr, db)) == 1


class TestEvaluation:
    def test_relation_ref(self, db):
        assert len(evaluate(RelationRef("emp"), db)) == 3

    def test_selection(self, db):
        expr = Selection(RelationRef("emp"), gt("salary", 85))
        assert {t[0] for t in evaluate(expr, db)} == {"ann", "cal"}

    def test_selection_string_const(self, db):
        expr = Selection(RelationRef("emp"), eq("dept", Const("cs")))
        assert len(evaluate(expr, db)) == 2

    def test_projection(self, db):
        out = evaluate(Projection(RelationRef("emp"), ("dept",)), db)
        assert set(out.tuples) == {("cs",), ("ee",)}

    def test_rename_then_join(self, db):
        boss = Rename(RelationRef("dept"), {"head": "name"})
        out = evaluate(NaturalJoin(RelationRef("emp"), boss), db)
        # Heads joined with their own rows.
        assert {t[0] for t in out} == {"ann", "cal"}

    def test_product_requires_disjoint(self, db):
        with pytest.raises(SchemaError):
            Product(RelationRef("emp"), RelationRef("emp")).schema(db.schema())

    def test_union_difference_intersection(self, db):
        cs = Selection(RelationRef("emp"), eq("dept", Const("cs")))
        rich = Selection(RelationRef("emp"), gt("salary", 85))
        assert len(evaluate(Union(cs, rich), db)) == 3
        assert len(evaluate(Difference(cs, rich), db)) == 1
        assert len(evaluate(Intersection(cs, rich), db)) == 1

    def test_theta_join(self, db):
        expr = ThetaJoin(
            RelationRef("emp"),
            Rename(RelationRef("dept"), {"dept": "d2"}),
            eq("dept", "d2"),
        )
        assert len(evaluate(expr, db)) == 3

    def test_theta_join_filters_during_enumeration(self):
        """Regression: evaluate() used to build the full |L|·|R| cross
        product and select afterwards.  On a selective condition the
        materialized work must stay sub-quadratic (output-sized, not
        product-sized)."""
        from repro.plan import measure_treewalk

        n = 40
        db = Database.from_dict(
            {
                "l": (("a",), [(i,) for i in range(n)]),
                "r": (("b",), [(i,) for i in range(n)]),
            }
        )
        expr = ThetaJoin(RelationRef("l"), RelationRef("r"), eq("a", "b"))
        result, stats, peak = measure_treewalk(expr, db)
        assert len(result) == n  # the diagonal
        assert stats.tuples_materialized < n * n
        assert stats.tuples_materialized == n
        assert peak == n

    def test_theta_join_does_not_call_product(self, db, monkeypatch):
        """The legacy evaluator must not route theta joins through
        Relation.product anymore."""

        def boom(self, other):
            raise AssertionError("theta join materialized a product")

        monkeypatch.setattr(Relation, "product", boom)
        expr = ThetaJoin(
            RelationRef("emp"),
            Rename(RelationRef("dept"), {"dept": "d2"}),
            eq("dept", "d2"),
        )
        assert len(evaluate(expr, db)) == 3

    def test_semijoin_antijoin(self, db):
        cs_dept = Selection(RelationRef("dept"), eq("dept", Const("cs")))
        semi = evaluate(Semijoin(RelationRef("emp"), cs_dept), db)
        anti = evaluate(Antijoin(RelationRef("emp"), cs_dept), db)
        assert len(semi) == 2
        assert len(anti) == 1

    def test_division(self, db):
        takes = Database.from_dict(
            {
                "takes": (
                    ("student", "course"),
                    [("s1", "c1"), ("s1", "c2"), ("s2", "c1")],
                ),
                "core": (("course",), [("c1",), ("c2",)]),
            }
        )
        out = evaluate(
            Division(RelationRef("takes"), RelationRef("core")), takes
        )
        assert set(out.tuples) == {("s1",)}

    def test_constant_relation(self, db):
        lit = Relation(RelationSchema("k", ("v",)), [(42,)])
        out = evaluate(ConstantRelation(lit), db)
        assert set(out.tuples) == {(42,)}

    def test_unknown_attribute_in_selection(self, db):
        expr = Selection(RelationRef("emp"), eq("nope", 1))
        with pytest.raises(SchemaError):
            expr.schema(db.schema())

    def test_duplicate_projection_rejected(self):
        with pytest.raises(AlgebraError):
            Projection(RelationRef("emp"), ("a", "a"))

    def test_fluent_builders(self, db):
        out = (
            RelationRef("emp")
            .select(gt("salary", 85))
            .project("name")
        )
        assert {t[0] for t in evaluate(out, db)} == {"ann", "cal"}


class TestIntrospection:
    def test_relation_names(self):
        expr = Union(
            NaturalJoin(RelationRef("a"), RelationRef("b")),
            Projection(RelationRef("c"), ("x",)),
        )
        assert relation_names(expr) == {"a", "b", "c"}

    def test_size(self):
        expr = Selection(RelationRef("a"), eq("x", 1))
        assert expr.size() == 2

    def test_str_rendering(self, db):
        expr = Projection(
            Selection(RelationRef("emp"), gt("salary", 85)), ("name",)
        )
        text = str(expr)
        assert "sigma" in text and "pi" in text

    def test_schema_inference(self, db):
        expr = NaturalJoin(RelationRef("emp"), RelationRef("dept"))
        schema = expr.schema(db.schema())
        assert schema.attributes == ("name", "dept", "salary", "head")
