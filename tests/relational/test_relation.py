"""Tests for Relation: construction and the physical operators."""

import pytest

from repro.errors import RelationError, SchemaError
from repro.relational.relation import Relation, same_content
from repro.relational.schema import RelationSchema


def rel(name, attrs, rows):
    return Relation(RelationSchema(name, attrs), rows)


class TestConstruction:
    def test_basic(self):
        r = rel("r", ("a", "b"), [(1, 2), (3, 4)])
        assert len(r) == 2
        assert (1, 2) in r
        assert (9, 9) not in r

    def test_duplicates_collapse(self):
        r = rel("r", ("a",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_from_dicts(self):
        schema = RelationSchema("r", ("a", "b"))
        r = Relation.from_dicts(schema, [{"a": 1, "b": 2}])
        assert (1, 2) in r

    def test_from_dicts_missing_key(self):
        schema = RelationSchema("r", ("a", "b"))
        with pytest.raises(RelationError):
            Relation.from_dicts(schema, [{"a": 1}])

    def test_empty(self):
        r = Relation.empty(RelationSchema("r", ("a",)))
        assert not r
        assert len(r) == 0

    def test_arity_validation(self):
        with pytest.raises(SchemaError):
            rel("r", ("a", "b"), [(1,)])

    def test_to_dicts_deterministic(self):
        r = rel("r", ("a",), [(3,), (1,), (2,)])
        assert r.to_dicts() == [{"a": 1}, {"a": 2}, {"a": 3}]

    def test_active_domain(self):
        r = rel("r", ("a", "b"), [(1, "x")])
        assert r.active_domain() == {1, "x"}

    def test_pickle_round_trips_without_cached_indexes(self):
        # Plan shards ship Relations to worker processes; the pickle must
        # carry schema + tuples but drop the derived index cache, which
        # rebuilds lazily on the other side.
        import pickle

        r = rel("r", ("a", "b"), [(1, 2), (3, 4)])
        r._key_index((0,))  # warm an index cache
        assert r.cached_index_patterns() == [(0,)]
        clone = pickle.loads(pickle.dumps(r))
        assert clone == r
        assert clone.schema.attributes == r.schema.attributes
        assert clone.cached_index_patterns() == []
        assert clone._key_index((0,)) == r._key_index((0,))


class TestOperators:
    def setup_method(self):
        self.r = rel("r", ("a", "b"), [(1, 10), (2, 20), (3, 30)])
        self.s = rel("s", ("b", "c"), [(10, "x"), (20, "y"), (99, "z")])

    def test_select(self):
        out = self.r.select(lambda t: t[0] > 1)
        assert set(out.tuples) == {(2, 20), (3, 30)}

    def test_project(self):
        out = self.r.project(("b",))
        assert set(out.tuples) == {(10,), (20,), (30,)}
        assert out.schema.attributes == ("b",)

    def test_project_reorder(self):
        out = self.r.project(("b", "a"))
        assert (10, 1) in out

    def test_project_deduplicates(self):
        r = rel("r", ("a", "b"), [(1, 1), (1, 2)])
        assert len(r.project(("a",))) == 1

    def test_rename(self):
        out = self.r.rename({"a": "x"})
        assert out.schema.attributes == ("x", "b")
        assert set(out.tuples) == set(self.r.tuples)

    def test_union_and_difference(self):
        other = rel("r2", ("a", "b"), [(1, 10), (9, 90)])
        assert len(self.r.union(other)) == 4
        assert set(self.r.difference(other).tuples) == {(2, 20), (3, 30)}

    def test_union_incompatible(self):
        with pytest.raises(SchemaError):
            self.r.union(self.s)

    def test_intersection(self):
        other = rel("r2", ("a", "b"), [(1, 10), (9, 90)])
        assert set(self.r.intersection(other).tuples) == {(1, 10)}

    def test_product(self):
        a = rel("a", ("x",), [(1,), (2,)])
        b = rel("b", ("y",), [(3,)])
        out = a.product(b)
        assert set(out.tuples) == {(1, 3), (2, 3)}

    def test_natural_join(self):
        out = self.r.natural_join(self.s)
        assert out.schema.attributes == ("a", "b", "c")
        assert set(out.tuples) == {(1, 10, "x"), (2, 20, "y")}

    def test_join_no_shared_is_product(self):
        a = rel("a", ("x",), [(1,)])
        b = rel("b", ("y",), [(2,)])
        assert set(a.natural_join(b).tuples) == {(1, 2)}

    def test_join_all_shared_is_intersection(self):
        a = rel("a", ("x",), [(1,), (2,)])
        b = rel("b", ("x",), [(2,), (3,)])
        assert set(a.natural_join(b).tuples) == {(2,)}

    def test_semijoin(self):
        out = self.r.semijoin(self.s)
        assert set(out.tuples) == {(1, 10), (2, 20)}
        assert out.schema.attributes == ("a", "b")

    def test_antijoin(self):
        out = self.r.antijoin(self.s)
        assert set(out.tuples) == {(3, 30)}

    def test_semijoin_disjoint_schemas(self):
        a = rel("a", ("x",), [(1,)])
        nonempty = rel("b", ("y",), [(2,)])
        empty = Relation.empty(RelationSchema("b", ("y",)))
        assert a.semijoin(nonempty) == a
        assert len(a.semijoin(empty)) == 0
        assert len(a.antijoin(nonempty)) == 0
        assert a.antijoin(empty) == a

    def test_divide(self):
        r = rel("r", ("a", "b"), [(1, "x"), (1, "y"), (2, "x")])
        d = rel("d", ("b",), [("x",), ("y",)])
        assert set(r.divide(d).tuples) == {(1,)}

    def test_divide_by_empty_returns_all(self):
        r = rel("r", ("a", "b"), [(1, "x")])
        d = Relation.empty(RelationSchema("d", ("b",)))
        assert set(r.divide(d).tuples) == {(1,)}

    def test_divide_requires_proper_subset(self):
        r = rel("r", ("a", "b"), [(1, 2)])
        d = rel("d", ("a", "b"), [(1, 2)])
        with pytest.raises(SchemaError):
            r.divide(d)


class TestEquality:
    def test_equality_ignores_domains_and_name(self):
        a = rel("r", ("a",), [(1,)])
        b = rel("other", ("a",), [(1,)])
        assert a == b

    def test_same_content_ignores_order(self):
        a = rel("r", ("a", "b"), [(1, 2)])
        b = rel("r", ("b", "a"), [(2, 1)])
        assert a != b
        assert same_content(a, b)

    def test_same_content_different_attrs(self):
        a = rel("r", ("a",), [(1,)])
        b = rel("r", ("b",), [(1,)])
        assert not same_content(a, b)

    def test_pretty_renders(self):
        text = rel("r", ("a", "b"), [(1, 2)]).pretty()
        assert "a" in text and "1" in text
