"""Tests for the relational calculus: formulas, safety, evaluation."""

import pytest

from repro.errors import CalculusError
from repro.relational import (
    AndF,
    Compare,
    Cst,
    Database,
    Exists,
    Forall,
    Implies,
    NotF,
    OrF,
    Query,
    RelAtom,
    Var,
    evaluate_query,
    is_safe_range,
)
from repro.relational.calculus import (
    constants_of,
    eliminate_sugar,
    push_negations,
    range_restricted_variables,
    rename_apart,
    satisfies,
    to_srnf,
)


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "parent": (
                ("p", "c"),
                [("ann", "bob"), ("bob", "cal"), ("ann", "dee")],
            ),
            "person": (
                ("name",),
                [("ann",), ("bob",), ("cal",), ("dee",)],
            ),
        }
    )


class TestFormulaBasics:
    def test_free_variables(self):
        f = Exists(
            "m",
            AndF(
                RelAtom("parent", [Var("x"), Var("m")]),
                RelAtom("parent", [Var("m"), Var("y")]),
            ),
        )
        assert f.free_variables() == {"x", "y"}

    def test_query_head_must_match_free(self):
        f = RelAtom("person", [Var("x")])
        with pytest.raises(CalculusError):
            Query(["x", "y"], f)

    def test_duplicate_head_rejected(self):
        f = RelAtom("parent", [Var("x"), Var("x")])
        with pytest.raises(CalculusError):
            Query(["x", "x"], f)

    def test_term_coercion(self):
        atom = RelAtom("p", ["x", 42])
        assert isinstance(atom.terms[0], Var)
        assert isinstance(atom.terms[1], Cst)

    def test_constants_of(self):
        f = AndF(
            RelAtom("p", [Cst(1), Var("x")]), Compare(Var("x"), "<", Cst(5))
        )
        assert constants_of(f) == {1, 5}


class TestNormalization:
    def test_forall_desugars(self):
        f = Forall("x", RelAtom("p", [Var("x")]))
        core = eliminate_sugar(f)
        assert isinstance(core, NotF)
        assert isinstance(core.part, Exists)

    def test_implies_desugars(self):
        f = Implies(RelAtom("p", [Var("x")]), RelAtom("q", [Var("x")]))
        core = eliminate_sugar(f)
        assert isinstance(core, OrF)

    def test_double_negation_cancels(self):
        f = NotF(NotF(RelAtom("p", [Var("x")])))
        assert isinstance(push_negations(f), RelAtom)

    def test_de_morgan(self):
        f = NotF(AndF(RelAtom("p", [Var("x")]), RelAtom("q", [Var("x")])))
        pushed = push_negations(f)
        assert isinstance(pushed, OrF)
        assert all(isinstance(p, NotF) for p in pushed.parts)

    def test_negated_comparison_flips(self):
        f = NotF(Compare(Var("x"), "<", Var("y")))
        pushed = push_negations(f)
        assert isinstance(pushed, Compare)
        assert pushed.op == ">="

    def test_rename_apart_hygiene(self):
        # x is both free and bound: the bound one must be renamed.
        f = AndF(
            RelAtom("p", [Var("x")]),
            Exists("x", RelAtom("q", [Var("x")])),
        )
        renamed = rename_apart(f)
        exists = renamed.parts[1]
        assert exists.variables[0] != "x"
        assert renamed.free_variables() == {"x"}


class TestSafety:
    def test_atom_is_safe(self):
        assert is_safe_range(RelAtom("p", [Var("x"), Var("y")]))

    def test_lone_negation_unsafe(self):
        assert not is_safe_range(NotF(RelAtom("p", [Var("x")])))

    def test_guarded_negation_safe(self):
        f = AndF(
            RelAtom("person", [Var("x")]),
            NotF(RelAtom("q", [Var("x")])),
        )
        assert is_safe_range(f)

    def test_lone_comparison_unsafe(self):
        assert not is_safe_range(Compare(Var("x"), "<", Var("y")))

    def test_equality_to_constant_safe(self):
        assert is_safe_range(Compare(Var("x"), "=", Cst(3)))

    def test_union_needs_both_sides_ranged(self):
        f = OrF(
            RelAtom("p", [Var("x")]),
            Compare(Var("x"), "<", Cst(3)),
        )
        assert not is_safe_range(f)

    def test_equality_propagation(self):
        f = AndF(
            RelAtom("p", [Var("x")]),
            Compare(Var("x"), "=", Var("y")),
        )
        srnf = to_srnf(f)
        assert range_restricted_variables(srnf) == {"x", "y"}

    def test_unsafe_quantification(self):
        # exists x over a variable never ranged.
        f = Exists("x", Compare(Var("x"), "<", Var("y")))
        assert not is_safe_range(f)


class TestEvaluation:
    def test_atom_query(self, db):
        q = Query(["p", "c"], RelAtom("parent", [Var("p"), Var("c")]))
        assert len(evaluate_query(q, db)) == 3

    def test_join_via_exists(self, db):
        q = Query(
            ["g", "c"],
            Exists(
                "m",
                AndF(
                    RelAtom("parent", [Var("g"), Var("m")]),
                    RelAtom("parent", [Var("m"), Var("c")]),
                ),
            ),
        )
        assert set(evaluate_query(q, db).tuples) == {("ann", "cal")}

    def test_negation(self, db):
        q = Query(
            ["x"],
            AndF(
                RelAtom("person", [Var("x")]),
                NotF(Exists("y", RelAtom("parent", [Var("x"), Var("y")]))),
            ),
        )
        assert set(evaluate_query(q, db).tuples) == {("cal",), ("dee",)}

    def test_forall(self, db):
        # People all of whose children are 'cal' (vacuously true for
        # childless people).
        q = Query(
            ["x"],
            AndF(
                RelAtom("person", [Var("x")]),
                Forall(
                    "y",
                    Implies(
                        RelAtom("parent", [Var("x"), Var("y")]),
                        Compare(Var("y"), "=", Cst("cal")),
                    ),
                ),
            ),
        )
        assert set(evaluate_query(q, db).tuples) == {
            ("bob",),
            ("cal",),
            ("dee",),
        }

    def test_boolean_query_yes(self, db):
        q = Query([], Exists(("x",), RelAtom("person", [Var("x")])))
        assert len(evaluate_query(q, db)) == 1  # {()}

    def test_boolean_query_no(self, db):
        q = Query(
            [],
            Exists(("x",), RelAtom("parent", [Var("x"), Var("x")])),
        )
        assert len(evaluate_query(q, db)) == 0

    def test_constants_enter_domain(self, db):
        # A constant not in the database can still be compared.
        q = Query(
            ["x"],
            AndF(
                RelAtom("person", [Var("x")]),
                Compare(Var("x"), "!=", Cst("zed")),
            ),
        )
        assert len(evaluate_query(q, db)) == 4

    def test_satisfies_unbound_raises(self, db):
        with pytest.raises(CalculusError):
            satisfies(
                RelAtom("person", [Var("x")]), {}, db, db.active_domain()
            )
