"""Tests for Codd's Theorem: translations in both directions."""

import pytest

from repro.errors import TranslationError
from repro.relational import (
    AndF,
    Compare,
    Cst,
    Database,
    Difference,
    Division,
    Exists,
    NaturalJoin,
    NotF,
    OrF,
    Projection,
    Query,
    RelAtom,
    RelationRef,
    Rename,
    Selection,
    Semijoin,
    Union,
    Var,
    algebra_to_calculus,
    calculus_to_algebra,
    check_codd_equivalence,
    eq,
    evaluate,
    evaluate_query,
    gt,
)
from repro.relational.algebra import Const


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "parent": (
                ("p", "c"),
                [("ann", "bob"), ("bob", "cal"), ("ann", "dee")],
            ),
            "person": (
                ("name",),
                [("ann",), ("bob",), ("cal",), ("dee",)],
            ),
            "age": (
                ("name", "years"),
                [("ann", 60), ("bob", 35), ("cal", 8), ("dee", 30)],
            ),
        }
    )


def roundtrip_calculus(query, db):
    """calculus -> algebra -> evaluate, compared against the oracle."""
    reference = evaluate_query(query, db)
    expr = calculus_to_algebra(query, db.schema())
    translated = evaluate(expr, db)
    assert set(reference.tuples) == set(translated.tuples), str(query)
    assert translated.schema.attributes == tuple(query.head)
    return translated


class TestCalculusToAlgebra:
    def test_atom(self, db):
        q = Query(["p", "c"], RelAtom("parent", [Var("p"), Var("c")]))
        assert len(roundtrip_calculus(q, db)) == 3

    def test_atom_with_constant(self, db):
        q = Query(["c"], RelAtom("parent", [Cst("ann"), Var("c")]))
        out = roundtrip_calculus(q, db)
        assert set(out.tuples) == {("bob",), ("dee",)}

    def test_atom_with_repeated_variable(self, db):
        q = Query(["x"], RelAtom("parent", [Var("x"), Var("x")]))
        assert len(roundtrip_calculus(q, db)) == 0

    def test_conjunction_join(self, db):
        q = Query(
            ["g", "c"],
            Exists(
                "m",
                AndF(
                    RelAtom("parent", [Var("g"), Var("m")]),
                    RelAtom("parent", [Var("m"), Var("c")]),
                ),
            ),
        )
        out = roundtrip_calculus(q, db)
        assert set(out.tuples) == {("ann", "cal")}

    def test_disjunction(self, db):
        q = Query(
            ["x"],
            OrF(
                Exists("y", RelAtom("parent", [Var("x"), Var("y")])),
                Exists("y", RelAtom("parent", [Var("y"), Var("x")])),
            ),
        )
        assert len(roundtrip_calculus(q, db)) == 4

    def test_negation_antijoin(self, db):
        q = Query(
            ["x"],
            AndF(
                RelAtom("person", [Var("x")]),
                NotF(Exists("y", RelAtom("parent", [Var("x"), Var("y")]))),
            ),
        )
        out = roundtrip_calculus(q, db)
        assert set(out.tuples) == {("cal",), ("dee",)}

    def test_comparison_selection(self, db):
        q = Query(
            ["n"],
            Exists(
                "a",
                AndF(
                    RelAtom("age", [Var("n"), Var("a")]),
                    Compare(Var("a"), ">", Cst(30)),
                ),
            ),
        )
        out = roundtrip_calculus(q, db)
        assert set(out.tuples) == {("ann",), ("bob",)}

    def test_variable_equality_extension(self, db):
        # y ranged only through x = y.
        q = Query(
            ["x", "y"],
            AndF(
                RelAtom("person", [Var("x")]),
                Compare(Var("x"), "=", Var("y")),
            ),
        )
        out = roundtrip_calculus(q, db)
        assert all(a == b for a, b in out.tuples)
        assert len(out) == 4

    def test_constant_equality_singleton(self, db):
        q = Query(
            ["x"],
            AndF(
                RelAtom("person", [Var("x")]),
                Compare(Var("x"), "=", Cst("ann")),
            ),
        )
        assert set(roundtrip_calculus(q, db).tuples) == {("ann",)}

    def test_unsafe_rejected(self, db):
        q = Query(["x"], NotF(RelAtom("person", [Var("x")])))
        with pytest.raises(TranslationError):
            calculus_to_algebra(q, db.schema())

    def test_unsafe_comparison_rejected(self, db):
        q = Query(["x", "y"], Compare(Var("x"), "<", Var("y")))
        with pytest.raises(TranslationError):
            calculus_to_algebra(q, db.schema())

    def test_forall_via_desugaring(self, db):
        # Everyone whose every child is also a parent.
        q = Query(
            ["x"],
            AndF(
                RelAtom("person", [Var("x")]),
                Forall_children_are_parents("x"),
            ),
        )
        roundtrip_calculus(q, db)


def Forall_children_are_parents(var):
    from repro.relational import Forall, Implies

    return Forall(
        "ch",
        Implies(
            RelAtom("parent", [Var(var), Var("ch")]),
            Exists("gc", RelAtom("parent", [Var("ch"), Var("gc")])),
        ),
    )


class TestAlgebraToCalculus:
    def check(self, expr, db):
        query = algebra_to_calculus(expr, db.schema())
        reference = evaluate(expr, db)
        translated = evaluate_query(query, db)
        assert set(reference.tuples) == set(translated.tuples), str(expr)
        return query

    def test_relation_ref(self, db):
        self.check(RelationRef("parent"), db)

    def test_selection(self, db):
        self.check(Selection(RelationRef("age"), gt("years", 30)), db)

    def test_projection(self, db):
        self.check(Projection(RelationRef("parent"), ("c",)), db)

    def test_rename(self, db):
        self.check(Rename(RelationRef("parent"), {"p": "x"}), db)

    def test_natural_join(self, db):
        expr = NaturalJoin(
            Rename(RelationRef("parent"), {"p": "gp", "c": "p"}),
            RelationRef("parent"),
        )
        self.check(expr, db)

    def test_union(self, db):
        expr = Union(
            Projection(RelationRef("parent"), ("p",)).rename({"p": "n"}),
            Projection(RelationRef("parent"), ("c",)).rename({"c": "n"}),
        )
        self.check(expr, db)

    def test_difference(self, db):
        expr = Difference(
            Rename(RelationRef("person"), {"name": "n"}),
            Projection(RelationRef("parent"), ("p",)).rename({"p": "n"}),
        )
        query = self.check(expr, db)
        assert evaluate_query(query, db).tuples == {("cal",), ("dee",)}

    def test_semijoin(self, db):
        expr = Semijoin(
            RelationRef("age"),
            Rename(RelationRef("parent"), {"p": "name", "c": "kid"}),
        )
        self.check(expr, db)

    def test_division(self, db):
        takes = Database.from_dict(
            {
                "takes": (
                    ("student", "course"),
                    [("s1", "c1"), ("s1", "c2"), ("s2", "c1")],
                ),
                "core": (("course",), [("c1",), ("c2",)]),
            }
        )
        expr = Division(RelationRef("takes"), RelationRef("core"))
        self.check(expr, takes)

    def test_selection_with_constant(self, db):
        expr = Selection(RelationRef("parent"), eq("p", Const("ann")))
        self.check(expr, db)

    def test_result_is_safe_range(self, db):
        from repro.relational import is_safe_range

        expr = Difference(
            Rename(RelationRef("person"), {"name": "n"}),
            Projection(RelationRef("parent"), ("p",)).rename({"p": "n"}),
        )
        query = algebra_to_calculus(expr, db.schema())
        assert is_safe_range(query.formula)


class TestCheckEquivalence:
    def test_confirms(self, db):
        q = Query(["p", "c"], RelAtom("parent", [Var("p"), Var("c")]))
        _, _, equal = check_codd_equivalence(q, db)
        assert equal
