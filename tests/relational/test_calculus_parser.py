"""Tests for the calculus text syntax."""

import pytest

from repro.errors import CalculusError, ParseError
from repro.relational import (
    Database,
    evaluate_query,
    is_safe_range,
)
from repro.relational.calculus import (
    AndF,
    Compare,
    Exists,
    Forall,
    Implies,
    NotF,
    OrF,
    RelAtom,
)
from repro.relational.calculus_parser import parse_calculus, parse_formula


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "parent": (
                ("p", "c"),
                [("ann", "bob"), ("bob", "cal"), ("ann", "dee")],
            ),
            "person": (
                ("name",),
                [("ann",), ("bob",), ("cal",), ("dee",)],
            ),
        }
    )


class TestParsing:
    def test_simple_atom_query(self):
        q = parse_calculus("{(x, y) | parent(x, y)}")
        assert tuple(q.head) == ("x", "y")
        assert isinstance(q.formula, RelAtom)

    def test_exists(self):
        q = parse_calculus(
            "{(g) | exists m . exists c . "
            "(parent(g, m) and parent(m, c))}"
        )
        assert isinstance(q.formula, Exists)

    def test_multi_variable_quantifier(self):
        f = parse_formula("exists m, c . (parent(g, m) and parent(m, c))")
        assert isinstance(f, Exists)
        assert f.variables == ("m", "c")

    def test_precedence_and_binds_tighter_than_or(self):
        f = parse_formula("person(x) or person(y) and person(z)")
        assert isinstance(f, OrF)
        assert isinstance(f.parts[1], AndF)

    def test_implication_right_associative(self):
        f = parse_formula("person(x) -> person(y) -> person(z)")
        assert isinstance(f, Implies)
        assert isinstance(f.consequent, Implies)

    def test_implies_keyword(self):
        f = parse_formula("person(x) implies person(y)")
        assert isinstance(f, Implies)

    def test_not_and_parens(self):
        f = parse_formula("not (person(x) or person(y))")
        assert isinstance(f, NotF)
        assert isinstance(f.part, OrF)

    def test_forall(self):
        f = parse_formula("forall y . (parent(x, y) -> person(y))")
        assert isinstance(f, Forall)

    def test_constants(self):
        f = parse_formula("parent('ann', x) and x != 5")
        assert isinstance(f, AndF)
        assert isinstance(f.parts[1], Compare)

    def test_string_escape(self):
        f = parse_formula("name(x, 'O''Hara')")
        assert f.terms[1].value == "O'Hara"

    def test_boolean_query(self):
        q = parse_calculus("{() | exists x . person(x)}")
        assert q.head == ()


class TestSemantics:
    def test_parsed_query_evaluates(self, db):
        q = parse_calculus(
            "{(g, c) | exists m . (parent(g, m) and parent(m, c))}"
        )
        assert set(evaluate_query(q, db).tuples) == {("ann", "cal")}

    def test_childless_query(self, db):
        q = parse_calculus(
            "{(x) | person(x) and not exists y . parent(x, y)}"
        )
        assert is_safe_range(q.formula)
        assert set(evaluate_query(q, db).tuples) == {("cal",), ("dee",)}

    def test_forall_query(self, db):
        q = parse_calculus(
            "{(x) | person(x) and "
            "forall y . (parent(x, y) -> y = 'cal')}"
        )
        assert set(evaluate_query(q, db).tuples) == {
            ("bob",), ("cal",), ("dee",),
        }

    def test_parsed_query_through_codd(self, db):
        from repro.relational import check_codd_equivalence

        q = parse_calculus(
            "{(x) | person(x) and not exists y . parent(x, y)}"
        )
        _, _, equal = check_codd_equivalence(q, db)
        assert equal


class TestErrors:
    def test_empty(self):
        with pytest.raises(ParseError):
            parse_calculus("")

    def test_missing_bar(self):
        with pytest.raises(ParseError):
            parse_calculus("{(x) parent(x, y)}")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_calculus("{(x, y) | parent(x, y)} extra")

    def test_head_free_variable_mismatch(self):
        with pytest.raises(CalculusError):
            parse_calculus("{(x) | parent(x, y)}")

    def test_bad_comparison(self):
        with pytest.raises(ParseError):
            parse_formula("x ~ y")

    def test_missing_dot_after_quantifier(self):
        with pytest.raises(ParseError):
            parse_formula("exists x person(x)")
