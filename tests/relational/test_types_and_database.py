"""Tests for domains and the Database container."""

import pytest

from repro.errors import SchemaError
from repro.relational import (
    ANY,
    BOOLEAN,
    Database,
    FLOAT,
    INTEGER,
    Relation,
    RelationSchema,
    STRING,
)
from repro.relational.types import Domain, domain_by_name


class TestDomains:
    def test_any_accepts_hashables(self):
        assert 1 in ANY
        assert "x" in ANY
        assert (1, 2) in ANY

    def test_any_rejects_unhashable(self):
        assert [1] not in ANY

    def test_integer(self):
        assert 3 in INTEGER
        assert 3.0 not in INTEGER
        assert True not in INTEGER  # bools are not theory integers

    def test_string(self):
        assert "x" in STRING
        assert 1 not in STRING

    def test_float_accepts_ints(self):
        assert 1 in FLOAT
        assert 1.5 in FLOAT
        assert True not in FLOAT

    def test_boolean(self):
        assert True in BOOLEAN
        assert 1 not in BOOLEAN

    def test_validate_raises(self):
        with pytest.raises(SchemaError):
            INTEGER.validate("x")

    def test_custom_domain(self):
        even = Domain("even", lambda v: isinstance(v, int) and v % 2 == 0)
        assert 2 in even
        assert 3 not in even

    def test_domain_identity_by_name(self):
        assert Domain("integer") == INTEGER

    def test_domain_by_name(self):
        assert domain_by_name("string") is STRING
        with pytest.raises(SchemaError):
            domain_by_name("nope")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Domain("")


class TestDatabase:
    def test_from_dict_and_lookup(self):
        db = Database.from_dict({"r": (("a",), [(1,)])})
        assert "r" in db
        assert len(db["r"]) == 1

    def test_duplicate_add_rejected(self):
        db = Database.from_dict({"r": (("a",), [(1,)])})
        with pytest.raises(SchemaError):
            db.add(Relation(RelationSchema("r", ("b",)), [(2,)]))

    def test_replace_allows_overwrite(self):
        db = Database.from_dict({"r": (("a",), [(1,)])})
        db.replace(Relation(RelationSchema("r", ("a",)), [(2,)]))
        assert (2,) in db["r"]

    def test_remove(self):
        db = Database.from_dict({"r": (("a",), [(1,)])})
        db.remove("r")
        assert "r" not in db
        with pytest.raises(SchemaError):
            db.remove("r")

    def test_missing_lookup(self):
        with pytest.raises(SchemaError):
            Database()["nope"]

    def test_active_domain_and_totals(self):
        db = Database.from_dict(
            {"r": (("a", "b"), [(1, "x")]), "s": (("c",), [(2,)])}
        )
        assert db.active_domain() == {1, 2, "x"}
        assert db.total_tuples() == 2

    def test_schema_roundtrip(self):
        db = Database.from_dict({"r": (("a", "b"), [(1, 2)])})
        schema = db.schema()
        assert schema["r"].attributes == ("a", "b")

    def test_copy_is_shallow_but_independent(self):
        db = Database.from_dict({"r": (("a",), [(1,)])})
        copy = db.copy()
        copy.remove("r")
        assert "r" in db

    def test_names_sorted(self):
        db = Database.from_dict(
            {"z": (("a",), []), "a": (("b",), [])}
        )
        assert db.names() == ["a", "z"]
