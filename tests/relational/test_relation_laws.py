"""Algebraic laws of relation operators, and index-cache consistency.

The operators in :mod:`repro.relational.relation` now answer joins and
semijoins from cached per-key hash indexes.  These tests state the
operator laws the cache must preserve — commutativity/associativity of
natural join up to column order, semijoin containment, product
cardinality — and check warm-vs-cold consistency explicitly: a relation
that has already built indexes must answer exactly like a fresh copy.

The empty-relation cases (zero tuples *and* zero attributes) are the
regression net for the degenerate inputs hash-join code paths
classically get wrong.
"""

import pytest

from repro.core.random_instances import random_database
from repro.relational.relation import Relation, same_content
from repro.relational.schema import RelationSchema


def _pair(seed):
    db = random_database(
        num_relations=2, arity=2, rows=12, domain_size=5, seed=seed
    )
    names = db.names()
    return db[names[0]], db[names[1]]


def _triple(seed):
    db = random_database(
        num_relations=3, arity=2, rows=10, domain_size=5, seed=seed
    )
    names = db.names()
    return db[names[0]], db[names[1]], db[names[2]]


SEEDS = range(12)


class TestJoinLaws:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_join_commutes_up_to_column_order(self, seed):
        r, s = _pair(seed)
        assert same_content(r.natural_join(s), s.natural_join(r))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_join_associates_up_to_column_order(self, seed):
        r, s, t = _triple(seed)
        assert same_content(
            r.natural_join(s).natural_join(t),
            r.natural_join(s.natural_join(t)),
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_join_is_idempotent(self, seed):
        r, _ = _pair(seed)
        assert r.natural_join(r) == r

    def test_join_without_shared_attributes_is_product(self):
        r = Relation(RelationSchema("r", ("a", "b")), [(1, 2), (3, 4)])
        s = Relation(RelationSchema("s", ("c",)), [(7,), (8,)])
        assert same_content(r.natural_join(s), r.product(s))


class TestSemijoinLaws:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_semijoin_contained_in_self(self, seed):
        r, s = _pair(seed)
        assert r.semijoin(s).tuples <= r.tuples

    @pytest.mark.parametrize("seed", SEEDS)
    def test_semijoin_is_join_support(self, seed):
        r, s = _pair(seed)
        joined = r.natural_join(s)
        supported = joined.project(r.schema.attributes)
        assert r.semijoin(s) == supported

    @pytest.mark.parametrize("seed", SEEDS)
    def test_semijoin_fully_shared_is_intersection(self, seed):
        r, _ = _pair(seed)
        s = Relation(
            r.schema,
            list(r.tuples)[: len(r.tuples) // 2] + [(99, 99)],
            validate=False,
        )
        assert r.semijoin(s) == r.intersection(s)
        assert r.antijoin(s) == r.difference(s)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_semijoin_antijoin_partition(self, seed):
        r, s = _pair(seed)
        semi = r.semijoin(s)
        anti = r.antijoin(s)
        assert semi.tuples | anti.tuples == r.tuples
        assert not semi.tuples & anti.tuples


class TestProductLaws:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_product_cardinality(self, seed):
        r, s = _pair(seed)
        s = s.rename(dict(zip(s.schema.attributes, ("c", "d"))))
        assert len(r.product(s)) == len(r) * len(s)


class TestIndexCacheConsistency:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_equals_cold(self, seed):
        """A relation with warm index caches answers like a fresh copy."""
        r, s = _pair(seed)
        warm_r = Relation(r.schema, r.tuples, validate=False)
        warm_s = Relation(s.schema, s.tuples, validate=False)
        # Warm up every operator's index pattern.
        warm_r.natural_join(warm_s)
        warm_s.natural_join(warm_r)
        warm_r.semijoin(warm_s)
        warm_r.antijoin(warm_s)
        assert warm_s.cached_index_patterns()
        # Cold relations (no cache) must give identical answers.
        assert warm_r.natural_join(warm_s) == r.natural_join(s)
        assert warm_r.semijoin(warm_s) == r.semijoin(s)
        assert warm_r.antijoin(warm_s) == r.antijoin(s)

    def test_cache_is_per_pattern(self):
        """Indexes live on the probed (right) side, one per key pattern."""
        r = Relation(RelationSchema("r", ("a", "b")), [(1, 2), (1, 3)])
        s = Relation(RelationSchema("s", ("a", "b")), [(1, 2)])
        r.semijoin(s)  # keys (a, b) -> pattern (0, 1) on s
        s.semijoin(r)  # keys (a, b) -> pattern (0, 1) on r
        just_a = Relation(RelationSchema("y", ("a", "c")), [(1, 9)])
        just_a.semijoin(r)  # keys (a,) -> pattern (0,) on r
        assert s.cached_index_patterns() == [(0, 1)]
        assert r.cached_index_patterns() == [(0,), (0, 1)]

    def test_fresh_relation_has_no_cache(self):
        r = Relation(RelationSchema("r", ("a",)), [(1,)])
        assert r.cached_index_patterns() == []


class TestEmptyRelations:
    """Zero-tuple and zero-attribute degenerate cases."""

    def _nonempty(self):
        return Relation(RelationSchema("r", ("a", "b")), [(1, 2), (2, 3)])

    def test_join_with_empty_is_empty(self):
        r = self._nonempty()
        empty = Relation.empty(RelationSchema("s", ("b", "c")))
        assert len(r.natural_join(empty)) == 0
        assert len(empty.natural_join(r)) == 0

    def test_semijoin_with_empty_is_empty(self):
        r = self._nonempty()
        empty = Relation.empty(RelationSchema("s", ("b", "c")))
        assert len(r.semijoin(empty)) == 0
        assert r.antijoin(empty) == r

    def test_product_with_empty_is_empty(self):
        r = self._nonempty()
        empty = Relation.empty(RelationSchema("s", ("c", "d")))
        assert len(r.product(empty)) == 0

    def test_disjoint_semijoin_against_empty(self):
        """No shared attributes: semijoin degenerates to TRUE/FALSE."""
        r = self._nonempty()
        empty = Relation.empty(RelationSchema("s", ("c", "d")))
        assert len(r.semijoin(empty)) == 0
        assert r.antijoin(empty) == r

    def test_zero_attribute_relations(self):
        """The 0-ary relations: DUM (no tuples) and DEE (empty tuple)."""
        dum = Relation.empty(RelationSchema("dum", ()))
        dee = Relation(RelationSchema("dee", ()), [()], validate=False)
        r = self._nonempty()
        # Product with DEE is identity on tuples; with DUM it is empty.
        assert r.product(dee).tuples == r.tuples
        assert len(r.product(dum)) == 0
        # Natural join mirrors the products (no shared attributes).
        assert r.natural_join(dee).tuples == r.tuples
        assert len(r.natural_join(dum)) == 0
        # Semijoin: DEE supports everything, DUM supports nothing.
        assert r.semijoin(dee) == r
        assert len(r.semijoin(dum)) == 0
        assert dee.natural_join(dee) == dee
