"""Tests for relation and database schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import ANY, INTEGER, STRING


class TestRelationSchema:
    def test_basic_construction(self):
        schema = RelationSchema("r", ("a", "b"))
        assert schema.arity == 2
        assert schema.attributes == ("a", "b")
        assert list(schema) == ["a", "b"]
        assert len(schema) == 2

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("a", "a"))

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("a", ""))

    def test_non_string_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("a", 3))

    def test_zero_ary_schema_allowed(self):
        schema = RelationSchema("bool", ())
        assert schema.arity == 0
        assert schema.validate_tuple(()) == ()

    def test_position_lookup(self):
        schema = RelationSchema("r", ("a", "b", "c"))
        assert schema.position("b") == 1
        with pytest.raises(SchemaError):
            schema.position("z")

    def test_contains(self):
        schema = RelationSchema("r", ("a", "b"))
        assert "a" in schema
        assert "z" not in schema

    def test_domains_default_to_any(self):
        schema = RelationSchema("r", ("a",))
        assert schema.domain_of("a") == ANY

    def test_explicit_domains(self):
        schema = RelationSchema("r", ("a", "b"), (INTEGER, STRING))
        assert schema.domain_of("a") == INTEGER
        schema.validate_tuple((1, "x"))
        with pytest.raises(SchemaError):
            schema.validate_tuple(("x", 1))

    def test_domain_count_mismatch(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", ("a", "b"), (INTEGER,))

    def test_arity_mismatch_in_validate(self):
        schema = RelationSchema("r", ("a", "b"))
        with pytest.raises(SchemaError):
            schema.validate_tuple((1,))

    def test_project(self):
        schema = RelationSchema("r", ("a", "b", "c"))
        projected = schema.project(("c", "a"))
        assert projected.attributes == ("c", "a")

    def test_rename(self):
        schema = RelationSchema("r", ("a", "b"))
        renamed = schema.rename({"a": "x"})
        assert renamed.attributes == ("x", "b")

    def test_rename_unknown_attribute(self):
        schema = RelationSchema("r", ("a",))
        with pytest.raises(SchemaError):
            schema.rename({"z": "x"})

    def test_prefixed(self):
        schema = RelationSchema("r", ("a", "b"))
        assert schema.prefixed("t").attributes == ("t.a", "t.b")

    def test_concat_clash_rejected(self):
        left = RelationSchema("r", ("a", "b"))
        right = RelationSchema("s", ("b", "c"))
        with pytest.raises(SchemaError):
            left.concat(right)

    def test_concat(self):
        left = RelationSchema("r", ("a",))
        right = RelationSchema("s", ("b",))
        assert left.concat(right).attributes == ("a", "b")

    def test_join_schema(self):
        left = RelationSchema("r", ("a", "b"))
        right = RelationSchema("s", ("b", "c"))
        assert left.join_schema(right).attributes == ("a", "b", "c")

    def test_shared_attributes(self):
        left = RelationSchema("r", ("a", "b"))
        right = RelationSchema("s", ("b", "c"))
        assert left.shared_attributes(right) == ("b",)

    def test_union_compatibility(self):
        a = RelationSchema("r", ("a", "b"))
        b = RelationSchema("s", ("a", "b"))
        c = RelationSchema("t", ("b", "a"))
        assert a.is_union_compatible(b)
        assert not a.is_union_compatible(c)
        with pytest.raises(SchemaError):
            a.require_union_compatible(c)

    def test_equality_and_hash(self):
        a = RelationSchema("r", ("a", "b"))
        b = RelationSchema("other_name", ("a", "b"))
        assert a == b  # name is not part of schema identity
        assert hash(a) == hash(b)


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        db = DatabaseSchema([RelationSchema("r", ("a",))])
        assert "r" in db
        assert db["r"].attributes == ("a",)

    def test_duplicate_name_rejected(self):
        db = DatabaseSchema([RelationSchema("r", ("a",))])
        with pytest.raises(SchemaError):
            db.add(RelationSchema("r", ("b",)))

    def test_missing_relation(self):
        db = DatabaseSchema()
        with pytest.raises(SchemaError):
            db["nope"]

    def test_names_sorted(self):
        db = DatabaseSchema(
            [RelationSchema("z", ("a",)), RelationSchema("a", ("b",))]
        )
        assert db.names() == ["a", "z"]
        assert len(db) == 2
