"""Domain (in)dependence: the theory behind the safe-range restriction.

Safety exists because unsafe queries are *domain dependent*: their
answers change when the quantification domain grows, so they denote no
database-only query at all.  These tests demonstrate the phenomenon
directly — the executable justification for why Codd's Theorem restricts
to safe-range calculus.
"""

from repro.relational import (
    AndF,
    Compare,
    Cst,
    Database,
    Exists,
    Forall,
    NotF,
    Query,
    RelAtom,
    Var,
    evaluate_query,
    is_safe_range,
)


def db():
    return Database.from_dict(
        {
            "p": (("a",), [(1,), (2,)]),
        }
    )


class TestDomainDependence:
    def test_negation_is_domain_dependent(self):
        # {x | not p(x)} grows with the domain: no database answer.
        query = Query(["x"], NotF(RelAtom("p", [Var("x")])))
        assert not is_safe_range(query.formula)
        small = evaluate_query(query, db(), domain={1, 2, 3})
        large = evaluate_query(query, db(), domain={1, 2, 3, 4, 5})
        assert len(small) == 1
        assert len(large) == 3
        assert set(small.tuples) < set(large.tuples)

    def test_disequality_is_domain_dependent(self):
        query = Query(
            ["x", "y"],
            AndF(
                RelAtom("p", [Var("x")]),
                Compare(Var("x"), "!=", Var("y")),
            ),
        )
        assert not is_safe_range(query.formula)
        small = evaluate_query(query, db(), domain={1, 2})
        large = evaluate_query(query, db(), domain={1, 2, 9})
        assert len(large) > len(small)

    def test_safe_queries_are_domain_independent(self):
        # The guarded version of the same query is stable under domain
        # growth — exactly what safe-range purchases.
        query = Query(
            ["x", "y"],
            AndF(
                RelAtom("p", [Var("x")]),
                RelAtom("p", [Var("y")]),
                Compare(Var("x"), "!=", Var("y")),
            ),
        )
        assert is_safe_range(query.formula)
        small = evaluate_query(query, db(), domain={1, 2})
        large = evaluate_query(query, db(), domain={1, 2, 9, 10})
        assert set(small.tuples) == set(large.tuples)

    def test_safe_negation_is_domain_independent(self):
        query = Query(
            ["x"],
            AndF(
                RelAtom("p", [Var("x")]),
                NotF(
                    Exists(
                        "y",
                        AndF(
                            RelAtom("p", [Var("y")]),
                            Compare(Var("y"), ">", Var("x")),
                        ),
                    )
                ),
            ),
        )
        assert is_safe_range(query.formula)
        small = evaluate_query(query, db(), domain={1, 2})
        large = evaluate_query(query, db(), domain={1, 2, 3, 4})
        assert set(small.tuples) == set(large.tuples) == {(2,)}

    def test_universal_quantification_domain_dependent_form(self):
        # forall y . p(y): true only when the whole domain is in p.
        query = Query([], Forall("y", RelAtom("p", [Var("y")])))
        assert not is_safe_range(query.formula)
        over_p = evaluate_query(query, db(), domain={1, 2})
        over_more = evaluate_query(query, db(), domain={1, 2, 3})
        assert len(over_p) == 1  # yes over exactly p's values
        assert len(over_more) == 0  # no once the domain grows

    def test_guarded_universal_is_safe_and_stable(self):
        query = Query(
            [],
            NotF(
                Exists(
                    "y",
                    AndF(
                        RelAtom("p", [Var("y")]),
                        Compare(Var("y"), ">", Cst(10)),
                    ),
                )
            ),
        )
        # "no p-value exceeds 10": a negated *sentence* is safe-range
        # (rr = free = {}), domain independent, and — via Codd — even
        # compilable to algebra as a 0-ary complement.
        assert is_safe_range(query.formula)
        a = evaluate_query(query, db(), domain={1, 2})
        b = evaluate_query(query, db(), domain={1, 2, 3})
        assert a.tuples == b.tuples == {()}

        from repro.relational import calculus_to_algebra, evaluate

        expr = calculus_to_algebra(query, db().schema())
        assert evaluate(expr, db()).tuples == {()}
