"""KernelCache behavior: keying, counters, negative caching, eviction.

The acceptance-critical property lives here: resolving the *same* plan
against the *same* schema a second time performs **zero** code
generation — ``codegens`` stays put while ``hits`` advances — and a
schema change invalidates without poisoning.
"""

import pytest

from repro.compile import (
    CompileFallback,
    KernelCache,
    compile_plan,
    execute_compiled,
)
from repro.datalog.stats import EngineStatistics
from repro.plan import canonicalize
from repro.plan.executor import execute_physical
from repro.relational import algebra as ra
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def small_db():
    return Database.from_dict(
        {
            "r": (("a", "b"), [(i, i % 3) for i in range(12)]),
            "s": (("b", "c"), [(i, i * 10) for i in range(3)]),
        }
    )


def join_plan(db):
    return canonicalize(
        ra.Projection(
            ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s")),
            ("a", "c"),
        ),
        db.schema(),
    )


def fallback_plan(db):
    # Semijoin with no shared attributes: the interpreted operator's
    # one-tuple right-side pull is data-dependent control flow the
    # generator refuses to fuse.
    return canonicalize(
        ra.Semijoin(
            ra.RelationRef("r"),
            ra.Rename(ra.RelationRef("s"), {"b": "x", "c": "y"}),
        ),
        db.schema(),
    )


class TestResolve:
    def test_second_resolution_does_zero_codegen(self):
        db = small_db()
        cache = KernelCache()
        plan = join_plan(db)
        first, reason = cache.resolve(plan, db)
        assert reason is None
        assert cache.stats()["codegens"] == 1
        again, _ = cache.resolve(plan, db)
        assert again is first
        stats = cache.stats()
        assert stats["codegens"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_kernel_survives_content_change_same_schema(self):
        db = small_db()
        cache = KernelCache()
        plan = join_plan(db)
        kernel, _ = cache.resolve(plan, db)
        db.replace(
            Relation(RelationSchema("r", ("a", "b")), [(7, 0), (8, 1)])
        )
        again, _ = cache.resolve(plan, db)
        assert again is kernel  # same schema token: cache entry reused
        result, _tally = kernel.execute(db)
        expected, _ = execute_physical(plan, db, EngineStatistics())
        assert result == expected

    def test_unrelated_schema_change_keeps_the_kernel(self):
        # The key narrows to the plan's own relations: adding an
        # unrelated table must not orphan the compiled kernel.
        db = small_db()
        cache = KernelCache()
        plan = join_plan(db)
        kernel, _ = cache.resolve(plan, db)
        db.add(
            Relation(RelationSchema("t", ("d",)), [(1,)])
        )
        again, _ = cache.resolve(plan, db)
        assert again is kernel
        assert cache.stats()["codegens"] == 1
        assert cache.stats()["hits"] == 1

    def test_referenced_schema_change_misses_the_cache(self):
        # Reshaping a relation the plan reads invalidates: attribute
        # positions were compiled in.
        db = small_db()
        cache = KernelCache()
        plan = join_plan(db)
        cache.resolve(plan, db)
        db.remove("r")
        db.add(
            Relation(RelationSchema("r", ("a", "b", "extra")),
                     [(i, i % 3, 0) for i in range(12)])
        )
        cache.resolve(plan, db)
        assert cache.stats()["misses"] == 2
        assert cache.stats()["codegens"] == 2

    def test_invalidate_relations_is_surgical(self):
        db = small_db()
        cache = KernelCache()
        cache.resolve(join_plan(db), db)
        assert cache.invalidate_relations({"unrelated"}) == 0
        assert len(cache) == 1
        assert cache.invalidate_relations({"r"}) == 1
        assert len(cache) == 0

    def test_fallback_is_negatively_cached_and_counted(self):
        db = small_db()
        cache = KernelCache()
        plan = fallback_plan(db)
        kernel, reason = cache.resolve(plan, db)
        assert kernel is None
        assert "semijoin" in reason
        kernel, reason_again = cache.resolve(plan, db)
        assert kernel is None
        assert reason_again == reason
        stats = cache.stats()
        assert stats["fallbacks"] == 1  # one distinct refused plan
        assert stats["fallback_runs"] == 2  # both resolutions counted
        assert stats["codegens"] == 0

    def test_fifo_eviction(self):
        db = small_db()
        cache = KernelCache(capacity=2)
        plans = [
            canonicalize(
                ra.Selection(
                    ra.RelationRef("r"),
                    ra.Comparison(ra.Attr("a"), "=", ra.Const(i)),
                ),
                db.schema(),
            )
            for i in range(3)
        ]
        for plan in plans:
            cache.resolve(plan, db)
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        # The oldest entry is gone: resolving it again re-generates.
        cache.resolve(plans[0], db)
        assert cache.stats()["codegens"] == 4


class TestIntrospectionSurface:
    def test_entries_rows_and_fingerprints(self):
        db = small_db()
        cache = KernelCache()
        kernel, _ = cache.resolve(join_plan(db), db)
        cache.resolve(fallback_plan(db), db)
        rows = cache.entries()
        assert len(rows) == 2
        index, fingerprint, status, pipelines, hits = rows[0]
        assert (index, status, hits) == (0, "compiled", 0)
        assert fingerprint == kernel.fingerprint
        assert len(fingerprint) == 12
        assert pipelines == kernel.pipelines
        assert rows[1][2] == "fallback" and rows[1][3] is None

    def test_peek_never_compiles(self):
        db = small_db()
        cache = KernelCache()
        plan = join_plan(db)
        entry, fingerprint = cache.peek(plan, db)
        assert entry is None
        assert len(fingerprint) == 12
        assert cache.stats()["codegens"] == 0

    def test_publish_gauges(self):
        from repro.obs.metrics import MetricsRegistry

        db = small_db()
        cache = KernelCache()
        cache.resolve(join_plan(db), db)
        registry = cache.publish(MetricsRegistry())
        assert registry.value("kernel_cache_codegens") == 1
        assert registry.value("kernel_cache_size") == 1

    def test_clear_resets_everything(self):
        db = small_db()
        cache = KernelCache()
        cache.resolve(join_plan(db), db)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0


class TestExecuteCompiled:
    def test_adhoc_execution_without_cache(self):
        db = small_db()
        plan = join_plan(db)
        result, tally = execute_compiled(plan, db)
        expected, _ = execute_physical(plan, db, EngineStatistics())
        assert result == expected
        assert tally.stats.facts_scanned > 0

    def test_fallback_raises_through_cache(self):
        db = small_db()
        with pytest.raises(CompileFallback):
            execute_compiled(fallback_plan(db), db, cache=KernelCache())

    def test_kernel_source_is_inspectable(self):
        db = small_db()
        kernel = compile_plan(join_plan(db), db.schema())
        assert "def kernel(_db, _tally):" in kernel.source
        assert kernel.pipelines >= 1
        assert "pipelines" in repr(kernel)
