"""``executor="compiled"`` end to end: every front-end, observably.

The workbench contract for compiled execution: identical results to the
streaming executor on every front-end, ``"compiled"`` visible as the
route in the query history and ``sys_plan_cache``, kernel status in
EXPLAIN ANALYZE and ``sys_kernels``, fallbacks counted in the
``compile_fallbacks_total`` metric (and routed ``"compiled-fallback"``),
and zero code generation on a repeated query.
"""

import pytest

from repro.core.workbench import MetatheoryWorkbench
from repro.obs.metrics import MetricsRegistry
from repro.relational import algebra as ra
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def make_wb(**kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return MetatheoryWorkbench(
        Database.from_dict(
            {
                "person": (
                    ("pid", "name"),
                    [(i, "n%d" % i) for i in range(30)],
                ),
                "likes": (
                    ("pid", "item"),
                    [(i % 30, "i%d" % (i % 7)) for i in range(60)],
                ),
            }
        ),
        **kwargs,
    )


SQL = (
    "SELECT person.name, likes.item FROM person, likes"
    " WHERE person.pid = likes.pid"
)


class TestFrontEnds:
    def test_sql_compiled_matches_streaming(self):
        wb = make_wb(history=True)
        compiled = wb.sql(SQL, executor="compiled")
        assert wb.history.last().route == "compiled"
        assert compiled == wb.sql(SQL)

    def test_algebra_compiled_matches_streaming(self):
        wb = make_wb(history=True)
        expr = ra.Projection(
            ra.NaturalJoin(ra.RelationRef("person"), ra.RelationRef("likes")),
            ("name", "item"),
        )
        compiled = wb.run(expr, executor="compiled")
        assert wb.history.last().route == "compiled"
        assert compiled == wb.run(expr)

    def test_calculus_compiled_matches_streaming(self):
        wb = make_wb(history=True)
        query = "{(n) | exists p . person(p, n)}"
        compiled = wb.calculus(query, executor="compiled")
        assert wb.history.last().route == "compiled"
        assert compiled == wb.calculus(query)

    def test_datalog_compiled_matches_lowered(self):
        wb = make_wb(history=True)
        source = "pair(N, I) :- person(P, N), likes(P, I)."
        compiled = wb.run(source, executor="compiled")
        assert wb.history.last().route == "datalog:compiled"
        baseline = make_wb().run(source)
        assert compiled == baseline

    def test_optimized_and_unoptimized_compiled_agree(self):
        wb = make_wb()
        expr = ra.Selection(
            ra.NaturalJoin(ra.RelationRef("person"), ra.RelationRef("likes")),
            ra.Comparison(ra.Attr("item"), "=", ra.Const("i3")),
        )
        assert wb.run(expr, executor="compiled") == wb.run(
            expr, executor="compiled", optimized=False
        )


class TestKernelReuse:
    def test_repeat_query_does_zero_codegen(self):
        wb = make_wb()
        wb.sql(SQL, executor="compiled")
        codegens = wb.kernel_cache.stats()["codegens"]
        assert codegens >= 1
        wb.sql(SQL, executor="compiled")
        stats = wb.kernel_cache.stats()
        assert stats["codegens"] == codegens
        assert stats["hits"] >= 1

    def test_unrelated_schema_change_keeps_kernels(self):
        # Surgical coherence: adding a relation the query never reads
        # leaves its compiled kernel hot.
        wb = make_wb()
        wb.sql(SQL, executor="compiled")
        codegens = wb.kernel_cache.stats()["codegens"]
        assert len(wb.kernel_cache) >= 1
        wb.db.add(Relation(RelationSchema("extra", ("x",)), [(1,)]))
        wb.sql(SQL, executor="compiled")
        stats = wb.kernel_cache.stats()
        assert stats["codegens"] == codegens
        assert stats["hits"] >= 1

    def test_reshaping_referenced_relation_invalidates_kernels(self):
        # ... but reshaping a relation the query reads drops the kernel
        # (attribute positions were compiled in) and recompiles.
        wb = make_wb()
        wb.sql(SQL, executor="compiled")
        codegens = wb.kernel_cache.stats()["codegens"]
        wb.db.remove("likes")
        wb.db.add(
            Relation(
                RelationSchema("likes", ("pid", "item", "weight")),
                [(i % 30, "i%d" % (i % 7), i) for i in range(60)],
            )
        )
        wb.sql(SQL, executor="compiled")
        assert wb.kernel_cache.stats()["codegens"] > codegens


class TestFallback:
    def fallback_expr(self):
        # Shared-attribute-less semijoin: refused by the generator.
        return ra.Semijoin(
            ra.RelationRef("person"),
            ra.Rename(ra.RelationRef("likes"), {"pid": "p2", "item": "it2"}),
        )

    def test_fallback_runs_interpreted_and_counts(self):
        wb = make_wb(history=True)
        expr = self.fallback_expr()
        result = wb.run(expr, executor="compiled", optimized=False)
        assert wb.history.last().route == "compiled-fallback"
        assert wb.metrics.value("compile_fallbacks_total") == 1
        assert result == wb.run(expr, optimized=False)

    def test_fallback_metric_counts_every_run(self):
        wb = make_wb()
        expr = self.fallback_expr()
        wb.run(expr, executor="compiled", optimized=False)
        wb.run(expr, executor="compiled", optimized=False)
        assert wb.metrics.value("compile_fallbacks_total") == 2
        assert wb.kernel_cache.stats()["fallbacks"] == 1  # cached verdict


class TestObservability:
    def test_explain_analyze_reports_kernel_status(self):
        wb = make_wb()
        explained = wb.explain_analyze(SQL)
        assert explained.kernel["status"] == "cold"
        assert "Kernel: cold" in explained.render()

        wb.sql(SQL, executor="compiled")
        explained = wb.explain_analyze(SQL)
        kernel = explained.kernel
        assert kernel["status"] == "compiled"
        assert len(kernel["fingerprint"]) == 12
        assert kernel["pipelines"] >= 1
        assert "Kernel: compiled %s" % kernel["fingerprint"] in (
            explained.render()
        )
        assert explained.as_dict()["kernel"]["status"] == "compiled"

    def test_explain_analyze_reports_fallback_reason(self):
        wb = make_wb()
        expr = ra.Semijoin(
            ra.RelationRef("person"),
            ra.Rename(ra.RelationRef("likes"), {"pid": "p2", "item": "it2"}),
        )
        wb.run(expr, executor="compiled", optimized=False)
        explained = wb.explain_analyze(expr, optimized=False)
        assert explained.kernel["status"] == "fallback"
        assert "semijoin" in explained.kernel["reason"]
        assert "Kernel: fallback" in explained.render()

    def test_sys_kernels_joins_sys_plan_cache(self):
        wb = make_wb()
        wb.sql(SQL, executor="compiled")
        joined = wb.sql(
            "SELECT kernels.status, cache.last_route FROM sys_kernels"
            " kernels, sys_plan_cache cache WHERE"
            " kernels.plan_fingerprint = cache.kernel_fingerprint"
        )
        assert ("compiled", "compiled") in joined.tuples

    def test_sys_metrics_publishes_kernel_cache(self):
        wb = make_wb()
        wb.sql(SQL, executor="compiled")
        rows = wb.sql(
            "SELECT name, value FROM sys_metrics"
            " WHERE stat = 'value' AND name = 'kernel_cache_codegens'"
        )
        assert rows.tuples and all(v >= 1 for _n, v in rows.tuples)


class TestParallelInteraction:
    def test_compiled_never_routes_to_parallel_backend(self):
        wb = make_wb()
        # workers would normally imply the parallel backend; "compiled"
        # must win and not spawn a pool.
        result = wb.sql(SQL, executor="compiled")
        assert wb._parallel_backends == {}
        assert result == wb.sql(SQL)
