"""Compiled kernels ≡ streaming executor, results *and* counters.

The codegen's contract is stronger than result equality: a fused kernel
must charge the same ``EngineStatistics`` the interpreted operators
would — facts scanned, index probes and builds, tuples materialized,
and the Tally's peak buffer.  Three sources drive the comparison:

* Hypothesis-driven seeds into the deterministic random-algebra and
  random-database generators (every core operator, schema-valid by
  construction);
* the conformance workload generator's ``relational-differential``
  family (the mixed algebra/SQL diet the fuzzing sweep eats);
* non-recursive Datalog programs run through the lowering pipeline
  with and without a kernel cache;
* the saved conformance corpus (every historical divergence replayed
  through the compiled leg).

Plans the generator refuses raise :class:`CompileFallback`; tests count
those explicitly — a fallback is a recorded outcome, never a silently
skipped comparison.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile import CompileFallback, KernelCache, compile_plan
from repro.conformance.corpus import load_corpus
from repro.conformance.oracles import RelationalDifferentialOracle
from repro.conformance.workloads import generate_case
from repro.core.random_instances import (
    random_algebra_expression,
    random_database,
)
from repro.datalog.lowering import is_lowerable, lowered_evaluate
from repro.datalog.stats import EngineStatistics
from repro.plan import canonicalize
from repro.plan.executor import execute_physical

CORPUS_DIR = "tests/conformance/corpus"


def run_both(expr, db):
    """Interpreted and compiled runs of one expression, both warm.

    A warming pass on each leg first: ``Relation._key_index`` caches
    persist across runs, so ``facts_scanned``/``index_builds`` depend
    on execution history — warming both legs puts them in the same
    (fully cached) regime before the measured runs.

    Returns ``None`` when the generator refuses the plan.
    """
    plan = canonicalize(expr, db.schema())
    try:
        kernel = compile_plan(plan, db.schema())
    except CompileFallback:
        return None
    execute_physical(plan, db, EngineStatistics())
    kernel.execute(db)

    interp_stats = EngineStatistics()
    interp, interp_tally = execute_physical(plan, db, interp_stats)
    compiled_stats = EngineStatistics()
    compiled, compiled_tally = kernel.execute(db, compiled_stats)
    return (
        (interp, interp_stats, interp_tally),
        (compiled, compiled_stats, compiled_tally),
    )


def assert_parity(expr, db, context):
    outcome = run_both(expr, db)
    if outcome is None:
        return False
    (interp, i_stats, i_tally), (compiled, c_stats, c_tally) = outcome
    assert compiled == interp, context
    assert compiled.schema.attributes == interp.schema.attributes, context
    assert c_stats.as_dict() == i_stats.as_dict(), context
    assert c_tally.peak_buffer == i_tally.peak_buffer, context
    return True


@settings(max_examples=120, deadline=None)
@given(
    db_seed=st.integers(min_value=0, max_value=10**6),
    expr_seed=st.integers(min_value=0, max_value=10**6),
    size=st.integers(min_value=1, max_value=5),
)
def test_random_algebra_parity(db_seed, expr_seed, size):
    db = random_database(num_relations=3, rows=8, domain_size=5, seed=db_seed)
    expr = random_algebra_expression(db, seed=expr_seed, size=size)
    assert_parity(expr, db, (db_seed, expr_seed, size))


def test_conformance_workload_parity():
    """The fuzzing sweep's own relational diet, with fallback census."""
    oracle = RelationalDifferentialOracle()
    compiled = fallbacks = 0
    for seed in range(60):
        case = generate_case("relational-differential", seed)
        expr = oracle.resolve(case)
        db = case.payload["db"]
        if assert_parity(expr, db, ("workload", seed)):
            compiled += 1
        else:
            fallbacks += 1
    assert compiled + fallbacks == 60
    # The generator covers the canonical operator set; the bulk of the
    # mixed workload family must actually take the compiled leg.
    assert compiled >= 40, (compiled, fallbacks)


def test_nonrecursive_datalog_parity():
    """Lowered evaluation with a kernel cache ≡ without, model + work.

    ``lowered_evaluate`` builds a fresh scratch database per call, so
    both legs start index-cold and the counters must match exactly with
    no warming.
    """
    cache = KernelCache()
    lowerable = 0
    for seed in range(80):
        case = generate_case("datalog-differential", seed)
        program = case.payload["program"]
        if not is_lowerable(program):
            continue
        lowerable += 1
        edb = case.payload["edb"]
        interp_stats = EngineStatistics()
        interp = lowered_evaluate(program, edb, stats=interp_stats)
        compiled_stats = EngineStatistics()
        compiled = lowered_evaluate(
            program, edb, stats=compiled_stats, kernel_cache=cache
        )
        assert compiled == interp, seed
        assert compiled_stats.as_dict() == interp_stats.as_dict(), seed
    assert lowerable >= 12
    # The cache saw every lowered predicate plan; refusals are counted.
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] > 0
    assert stats["codegens"] + stats["fallbacks"] == stats["size"]


def test_corpus_replay_parity():
    """Every saved divergence case replays through the compiled leg."""
    entries = load_corpus(CORPUS_DIR)
    assert entries, "conformance corpus missing"
    oracle = RelationalDifferentialOracle()
    relational = compiled = 0
    for _path, case, _messages in entries:
        if case.payload.get("kind") not in ("relational", "sql"):
            continue
        relational += 1
        if assert_parity(oracle.resolve(case), case.payload["db"], case.seed):
            compiled += 1
    assert relational > 0
    assert compiled > 0


def test_oracle_compiled_leg_counts_fallbacks():
    """The conformance oracle's kernel cache never skips silently."""
    from repro.conformance import oracles

    before = oracles._KERNEL_CACHE.stats()
    oracle = RelationalDifferentialOracle()
    for seed in range(12):
        assert oracle.check(generate_case("relational-differential", seed)) == []
    after = oracles._KERNEL_CACHE.stats()
    resolutions = (after["hits"] + after["misses"]) - (
        before["hits"] + before["misses"]
    )
    assert resolutions == 12
