"""Smoke tests: every example script runs to completion.

Examples are documentation; broken documentation is a bug.  Each main()
is executed with stdout captured and a few landmark strings checked.
"""

import contextlib
import importlib.util
import io
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

LANDMARKS = {
    "quickstart.py": ["Codd's Theorem", "ancestor", "grandparent"],
    "pods_retrospective.py": [
        "Figure 3",
        "two-year harmonic",
        "Kitcher",
        "Volterra",
    ],
    "database_design_studio.py": [
        "Candidate keys",
        "lossless",
        "spurious-tuple",
    ],
    "recursive_queries.py": ["magic", "seminaive", "m~reachable"],
    "transaction_lab.py": ["CSR", "2PL", "recovery"],
    "metatheory_experiments.py": ["CONFIRMED", "randomized trials"],
    "observability.py": [
        "EXPLAIN ANALYZE",
        "plan_cache=hit",
        "stratum",
        "lock_wait",
    ],
    "introspection.py": [
        "sys_query_log",
        "status=error",
        "cache_hits",
        "Scan(sys_plan_cache)",
    ],
    "transactions_live.py": [
        "strict 2PL",
        "first committer wins",
        "conflict_serializable",
        "recovery_class",
        "Rollback restores",
    ],
}


def run_example(filename):
    path = os.path.join(EXAMPLES_DIR, filename)
    spec = importlib.util.spec_from_file_location(
        "example_" + filename.replace(".py", ""), path
    )
    module = importlib.util.module_from_spec(spec)
    captured = io.StringIO()
    with contextlib.redirect_stdout(captured):
        spec.loader.exec_module(module)
        module.main()
    return captured.getvalue()


@pytest.mark.parametrize("filename", sorted(LANDMARKS))
def test_example_runs(filename):
    output = run_example(filename)
    assert len(output) > 200
    for landmark in LANDMARKS[filename]:
        assert landmark in output, (filename, landmark)


def test_every_example_file_has_a_smoke_test():
    files = {
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    }
    assert files == set(LANDMARKS), (
        "examples and smoke tests out of sync: %s" % sorted(
            files ^ set(LANDMARKS)
        )
    )
