"""Tests for the Datalog AST: terms, atoms, rules, safety, programs."""

import pytest

from repro.datalog.ast import (
    Atom,
    Comparison,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
    atom,
    lit,
    make_term,
    neg,
)
from repro.errors import DatalogError


class TestTerms:
    def test_make_term_conventions(self):
        assert isinstance(make_term("X"), Variable)
        assert isinstance(make_term("_tmp"), Variable)
        assert isinstance(make_term("alice"), Constant)
        assert isinstance(make_term(42), Constant)

    def test_explicit_override(self):
        assert isinstance(make_term(Constant("X")), Constant)

    def test_variable_needs_name(self):
        with pytest.raises(DatalogError):
            Variable("")

    def test_term_equality(self):
        assert Variable("X") == Variable("X")
        assert Constant(1) != Constant(2)
        assert Variable("x") != Constant("x")


class TestAtoms:
    def test_variables(self):
        a = atom("p", "X", "alice", "Y")
        assert a.variables() == {"X", "Y"}
        assert a.arity == 3

    def test_ground(self):
        assert atom("p", 1, "a").is_ground()
        assert not atom("p", "X").is_ground()

    def test_substitute(self):
        a = atom("p", "X", "Y").substitute({"X": 1})
        assert a.terms[0] == Constant(1)
        assert a.terms[1] == Variable("Y")

    def test_ground_tuple(self):
        a = atom("p", "X", 5)
        assert a.ground_tuple({"X": 3}) == (3, 5)
        with pytest.raises(DatalogError):
            a.ground_tuple({})

    def test_zero_ary(self):
        a = atom("halt")
        assert a.arity == 0
        assert a.ground_tuple({}) == ()


class TestComparisons:
    def test_evaluate(self):
        c = Comparison("X", "<", "Y")
        assert c.evaluate({"X": 1, "Y": 2})
        assert not c.evaluate({"X": 2, "Y": 2})

    def test_mixed_types_false(self):
        c = Comparison("X", "<", "Y")
        assert not c.evaluate({"X": 1, "Y": "a"})

    def test_unknown_op(self):
        with pytest.raises(DatalogError):
            Comparison("X", "~", "Y")

    def test_unbound_raises(self):
        with pytest.raises(DatalogError):
            Comparison("X", "=", "Y").evaluate({"X": 1})


class TestRuleSafety:
    def test_safe_rule(self):
        Rule(atom("p", "X"), [lit("e", "X", "Y")])

    def test_unsafe_head(self):
        with pytest.raises(DatalogError):
            Rule(atom("p", "X", "Z"), [lit("e", "X", "Y")])

    def test_unsafe_negation(self):
        with pytest.raises(DatalogError):
            Rule(atom("p", "X"), [lit("e", "X", "X"), neg("q", "Y")])

    def test_safe_negation(self):
        Rule(atom("p", "X"), [lit("e", "X", "Y"), neg("q", "Y")])

    def test_unsafe_comparison(self):
        with pytest.raises(DatalogError):
            Rule(atom("p", "X"), [lit("e", "X", "X"), Comparison("Y", "<", "X")])

    def test_equality_to_constant_binds(self):
        Rule(atom("p", "X"), [Comparison("X", "=", Constant(3))])

    def test_fact_detection(self):
        assert Rule(atom("p", 1, 2)).is_fact()
        assert not Rule(atom("p", "X"), [lit("e", "X")]).is_fact()

    def test_rename_variables(self):
        rule = Rule(atom("p", "X"), [lit("e", "X", "Y"), neg("q", "Y")])
        renamed = rule.rename_variables("_1")
        assert renamed.head.variables() == {"X_1"}
        assert renamed != rule

    def test_body_predicates(self):
        rule = Rule(atom("p", "X"), [lit("e", "X", "Y"), neg("q", "Y")])
        assert rule.body_predicates() == [("e", True), ("q", False)]


class TestProgram:
    def test_idb_edb_split(self):
        program = Program(
            [
                Rule(atom("p", "X"), [lit("e", "X", "Y")]),
                Rule(atom("e", 1, 2)),
                Rule(atom("f", 5)),
            ]
        )
        assert program.idb_predicates() == {"p"}
        assert program.fact_predicates() == {"e", "f"}
        assert program.edb_predicates() == set()

    def test_pure_edb(self):
        program = Program([Rule(atom("p", "X"), [lit("e", "X")])])
        assert program.edb_predicates() == {"e"}

    def test_arity_conflict(self):
        with pytest.raises(DatalogError):
            Program(
                [
                    Rule(atom("p", "X"), [lit("e", "X")]),
                    Rule(atom("p", "X", "Y"), [lit("e", "X"), lit("e", "Y")]),
                ]
            )

    def test_facts_extraction(self):
        program = Program([Rule(atom("e", 1, 2)), Rule(atom("e", 2, 3))])
        assert set(program.facts()) == {("e", (1, 2)), ("e", (2, 3))}

    def test_rules_for(self):
        r1 = Rule(atom("p", "X"), [lit("e", "X")])
        r2 = Rule(atom("q", "X"), [lit("e", "X")])
        program = Program([r1, r2])
        assert program.rules_for("p") == [r1]

    def test_has_negation(self):
        pos = Program([Rule(atom("p", "X"), [lit("e", "X")])])
        negp = Program(
            [Rule(atom("p", "X"), [lit("e", "X"), neg("q", "X")])]
        )
        assert not pos.has_negation()
        assert negp.has_negation()

    def test_extend(self):
        program = Program([Rule(atom("e", 1))])
        bigger = program.extend([Rule(atom("e", 2))])
        assert len(bigger) == 2
        assert len(program) == 1
