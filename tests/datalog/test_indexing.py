"""Tests for the indexed fact store and its incremental maintenance.

The load-bearing property: an index built once stays correct as facts
arrive (no per-iteration rebuild), which is what lets the semi-naive loop
probe instead of scan.  Also covers the delta-aware evaluation contract:
a differential firing reads the delta exactly where asked and never
produces facts the full firing would not.
"""

from repro.datalog import (
    EngineStatistics,
    FactStore,
    IndexedFactStore,
    naive_evaluate,
    parse_program,
    parse_rule,
    seminaive_evaluate,
    working_store,
)
from repro.datalog.matching import evaluate_rule


def _brute_force_index(tuples, positions):
    table = {}
    for tup in tuples:
        table.setdefault(tuple(tup[p] for p in positions), []).append(tup)
    return table


class TestIndexFor:
    def test_matches_brute_force(self):
        facts = [(1, 2), (1, 3), (2, 3), (4, 4)]
        store = IndexedFactStore({"e": facts})
        for positions in [(0,), (1,), (0, 1), (1, 0)]:
            expected = _brute_force_index(store.get("e"), positions)
            actual = store.index_for("e", positions)
            assert {k: sorted(v) for k, v in actual.items()} == {
                k: sorted(v) for k, v in expected.items()
            }

    def test_indexes_are_lazy(self):
        store = IndexedFactStore({"e": [(1, 2)]})
        assert store.index_patterns("e") == []
        store.index_for("e", (0,))
        assert store.index_patterns("e") == [(0,)]

    def test_build_charged_once(self):
        store = IndexedFactStore({"e": [(1, 2), (2, 3)]})
        stats = EngineStatistics()
        store.index_for("e", (0,), stats)
        store.index_for("e", (0,), stats)  # warm: no new build, no scan
        assert stats.index_builds == 1
        assert stats.facts_scanned == 2

    def test_empty_predicate_index(self):
        store = IndexedFactStore()
        assert store.index_for("nothing", (0,)) == {}


class TestIncrementalMaintenance:
    def test_add_updates_existing_indexes(self):
        store = IndexedFactStore({"e": [(1, 2)]})
        index = store.index_for("e", (0,))
        store.add("e", (1, 3))
        store.add("e", (5, 6))
        assert sorted(index[(1,)]) == [(1, 2), (1, 3)]
        assert index[(5,)] == [(5, 6)]

    def test_no_rebuild_after_adds(self):
        store = IndexedFactStore({"e": [(1, 2)]})
        stats = EngineStatistics()
        store.index_for("e", (0,), stats)
        store.add("e", (2, 3))
        store.index_for("e", (0,), stats)
        assert stats.index_builds == 1  # maintained, not rebuilt

    def test_duplicate_add_leaves_indexes_alone(self):
        store = IndexedFactStore({"e": [(1, 2)]})
        index = store.index_for("e", (0,))
        assert not store.add("e", (1, 2))
        assert index[(1,)] == [(1, 2)]

    def test_maintenance_covers_all_patterns(self):
        store = IndexedFactStore({"e": [(1, 2)]})
        by_first = store.index_for("e", (0,))
        by_second = store.index_for("e", (1,))
        store.add("e", (3, 2))
        assert by_first[(3,)] == [(3, 2)]
        assert sorted(by_second[(2,)]) == [(1, 2), (3, 2)]


class TestViews:
    def test_view_tracks_mutation(self):
        store = IndexedFactStore({"e": [(1, 2)]})
        view = store.view("e")
        assert len(view) == 1 and (1, 2) in view
        store.add("e", (2, 3))
        assert len(view) == 2
        assert set(view) == {(1, 2), (2, 3)}

    def test_view_exposes_store_indexes(self):
        store = IndexedFactStore({"e": [(1, 2)]})
        assert store.view("e").index_for((1,)) == {(2,): [(1, 2)]}
        assert store.index_patterns("e") == [(1,)]


class TestCopies:
    def test_copy_is_independent_and_unindexed(self):
        store = IndexedFactStore({"e": [(1, 2)]})
        store.index_for("e", (0,))
        clone = store.copy()
        assert isinstance(clone, IndexedFactStore)
        assert clone.get("e") == {(1, 2)}
        assert clone.index_patterns("e") == []  # rebuilt lazily
        clone.add("e", (9, 9))
        assert not store.contains("e", (9, 9))

    def test_restrict_keeps_only_named_predicates(self):
        store = IndexedFactStore({"e": [(1, 2)], "f": [(3,)]})
        sub = store.restrict(["e"])
        assert isinstance(sub, IndexedFactStore)
        assert sub.predicates() == ["e"]

    def test_working_store_copies_edb(self):
        edb = FactStore({"e": [(1, 2)]})
        for indexed in (True, False):
            store = working_store(edb, indexed)
            assert isinstance(store, IndexedFactStore) == indexed
            store.add("e", (7, 8))
            assert not edb.contains("e", (7, 8))

    def test_engines_do_not_mutate_edb(self):
        program, _ = parse_program(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."
        )
        edb = FactStore({"edge": [(0, 1), (1, 2)]})
        naive_evaluate(program, edb)
        seminaive_evaluate(program, edb)
        assert edb.count() == 2 and edb.predicates() == ["edge"]


class TestDeltaContract:
    """The delta-aware lookup: restricted exactly where asked, no more."""

    RULE = "p(X, Z) :- e(X, Y), e(Y, Z)."

    def test_delta_restricts_one_position(self):
        rule = parse_rule(self.RULE)
        store = IndexedFactStore({"e": [(1, 2), (2, 3)]})
        delta = FactStore({"e": [(1, 2)]})
        at_first = evaluate_rule(
            rule, store.view, delta_lookup=delta.get, delta_at=0
        )
        at_second = evaluate_rule(
            rule, store.view, delta_lookup=delta.get, delta_at=1
        )
        assert at_first == {(1, 3)}  # delta (1,2) then full e
        assert at_second == set()  # full e then delta at position 1

    def test_delta_union_covers_full_firing(self):
        """Firing once per delta position reproduces the full result when
        the delta is the whole relation — and never exceeds it."""
        rule = parse_rule(self.RULE)
        store = IndexedFactStore({"e": [(1, 2), (2, 3), (3, 4)]})
        full = evaluate_rule(rule, store.view)
        delta = FactStore({"e": store.get("e")})
        union = set()
        for position in (0, 1):
            derived = evaluate_rule(
                rule, store.view, delta_lookup=delta.get, delta_at=position
            )
            assert derived <= full
            union |= derived
        assert union == full

    def test_seminaive_never_double_derives(self):
        """Every fact lands in exactly one round's delta: with the whole
        EDB as round-0 input, total derivations equal the fixpoint size."""
        program, _ = parse_program(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."
        )
        edb = FactStore({"edge": [(i, i + 1) for i in range(8)]})
        store = seminaive_evaluate(program, edb)
        reference = naive_evaluate(program, edb)
        assert store == reference
