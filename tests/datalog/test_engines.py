"""Tests for the naive, semi-naive, magic, and top-down engines."""

import pytest

from repro.datalog import (
    DatalogEngine,
    FactStore,
    cross_check,
    magic_evaluate,
    magic_transform,
    match_query,
    naive_evaluate,
    naive_iterations,
    parse_program,
    parse_query,
    seminaive_evaluate,
    seminaive_iterations,
    topdown_query,
)
from repro.errors import DatalogError

TC = """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- edge(X, Y), path(Y, Z).
"""


def chain(n):
    return FactStore({"edge": [(i, i + 1) for i in range(n)]})


def tc_program():
    return parse_program(TC)[0]


class TestNaive:
    def test_transitive_closure_size(self):
        store = naive_evaluate(tc_program(), chain(10))
        assert len(store.get("path")) == 10 * 11 // 2

    def test_facts_in_program_text(self):
        program, _ = parse_program(TC + "edge(100, 101).")
        store = naive_evaluate(program, chain(3))
        assert (100, 101) in store.get("path")

    def test_cycle_terminates(self):
        edb = FactStore({"edge": [(0, 1), (1, 2), (2, 0)]})
        store = naive_evaluate(tc_program(), edb)
        assert len(store.get("path")) == 9  # complete on 3 nodes

    def test_empty_edb(self):
        store = naive_evaluate(tc_program(), FactStore())
        assert len(store.get("path")) == 0

    def test_iteration_count_grows_with_chain(self):
        _, r1 = naive_iterations(tc_program(), chain(5))
        _, r2 = naive_iterations(tc_program(), chain(15))
        assert r2 > r1


class TestSemiNaive:
    def test_agrees_with_naive_tc(self):
        assert seminaive_evaluate(tc_program(), chain(12)) == naive_evaluate(
            tc_program(), chain(12)
        )

    def test_agrees_on_nonlinear(self):
        program, _ = parse_program(
            "path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), path(Y,Z)."
        )
        assert seminaive_evaluate(program, chain(10)) == naive_evaluate(
            program, chain(10)
        )

    def test_agrees_with_negation(self):
        program, _ = parse_program(
            TC
            + """
            node(X) :- edge(X, Y).
            node(Y) :- edge(X, Y).
            unreachable(X, Y) :- node(X), node(Y), not path(X, Y).
            """
        )
        assert seminaive_evaluate(program, chain(6)) == naive_evaluate(
            program, chain(6)
        )

    def test_rounds_tracked(self):
        _, rounds = seminaive_iterations(tc_program(), chain(8))
        assert rounds >= 8

    def test_comparisons(self):
        program, _ = parse_program(
            "inc(X, Y) :- edge(X, Y), X < Y. dec(X, Y) :- edge(X, Y), X > Y."
        )
        edb = FactStore({"edge": [(1, 2), (3, 1)]})
        store = seminaive_evaluate(program, edb)
        assert store.get("inc") == {(1, 2)}
        assert store.get("dec") == {(3, 1)}


class TestMagic:
    def test_bound_free_matches_reference(self):
        program = tc_program()
        edb = chain(20)
        query = parse_query("path(5, X)")
        full = seminaive_evaluate(program, edb)
        assert magic_evaluate(program, edb, query) == match_query(full, query)

    def test_free_bound(self):
        program = tc_program()
        edb = chain(15)
        query = parse_query("path(X, 10)")
        full = seminaive_evaluate(program, edb)
        assert magic_evaluate(program, edb, query) == match_query(full, query)

    def test_bound_bound(self):
        program = tc_program()
        edb = chain(15)
        for query_text in ("path(2, 9)", "path(9, 2)"):
            query = parse_query(query_text)
            full = seminaive_evaluate(program, edb)
            assert magic_evaluate(program, edb, query) == match_query(
                full, query
            )

    def test_derives_fewer_facts(self):
        program = tc_program()
        edb = chain(30)
        query = parse_query("path(25, X)")
        transform = magic_transform(program, query)
        magic_store = seminaive_evaluate(transform.program, edb)
        full_store = seminaive_evaluate(program, edb)
        derived_magic = magic_store.count(transform.query_predicate)
        derived_full = full_store.count("path")
        assert derived_magic < derived_full

    def test_transform_structure(self):
        transform = magic_transform(tc_program(), parse_query("path(1, X)"))
        predicates = {r.head.predicate for r in transform.program}
        assert "path@bf" in predicates
        assert "m~path@bf" in predicates
        assert transform.magic_rule_count >= 1

    def test_same_generation_bound_query(self):
        program, _ = parse_program(
            """
            sg(X, Y) :- flat(X, Y).
            sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
            """
        )
        edb = FactStore(
            {
                "up": [("a", "d"), ("b", "d"), ("d", "g")],
                "flat": [("g", "g"), ("d", "e")],
                "down": [("g", "f"), ("e", "c")],
            }
        )
        query = parse_query("sg(a, X)")
        full = seminaive_evaluate(program, edb)
        assert magic_evaluate(program, edb, query) == match_query(full, query)

    def test_rejects_negation(self):
        program, _ = parse_program(
            "p(X) :- e(X), not q(X). q(X) :- f(X)."
        )
        with pytest.raises(DatalogError):
            magic_transform(program, parse_query("p(1)"))

    def test_rejects_edb_query(self):
        with pytest.raises(DatalogError):
            magic_transform(tc_program(), parse_query("edge(1, X)"))


class TestTopDown:
    def test_matches_reference(self):
        program = tc_program()
        edb = chain(15)
        query = parse_query("path(5, X)")
        full = seminaive_evaluate(program, edb)
        assert topdown_query(program, edb, query) == match_query(full, query)

    def test_edb_query(self):
        program = tc_program()
        edb = chain(5)
        assert topdown_query(program, edb, parse_query("edge(1, X)")) == {
            (1, 2)
        }

    def test_repeated_variable_query(self):
        program = tc_program()
        edb = FactStore({"edge": [(0, 1), (1, 0), (2, 3)]})
        query = parse_query("path(X, X)")
        full = seminaive_evaluate(program, edb)
        assert topdown_query(program, edb, query) == match_query(full, query)

    def test_tables_shared_across_queries(self):
        from repro.datalog import TopDownEngine

        engine = TopDownEngine(tc_program(), chain(10))
        engine.query(parse_query("path(3, X)"))
        first = engine.table_count()
        engine.query(parse_query("path(3, X)"))
        assert engine.table_count() == first  # memoized


class TestEngineFacade:
    def test_strategies_agree(self):
        program = tc_program()
        results = cross_check(program, chain(12), "path(4, X)")
        values = list(results.values())
        assert all(v == values[0] for v in values)

    def test_evaluate_caches(self):
        engine = DatalogEngine(tc_program(), chain(5))
        assert engine.evaluate() is engine.evaluate()

    def test_query_directed_evaluate_rejected(self):
        engine = DatalogEngine(tc_program(), chain(3))
        with pytest.raises(DatalogError):
            engine.evaluate(strategy="magic")

    def test_unknown_strategy(self):
        engine = DatalogEngine(tc_program(), chain(3))
        with pytest.raises(DatalogError):
            engine.query("path(1, X)", strategy="quantum")

    def test_from_source_with_dict_edb(self):
        engine = DatalogEngine.from_source(TC, edb={"edge": [(1, 2)]})
        assert engine.query("path(1, X)") == {(1, 2)}

    def test_magic_on_edb_predicate_falls_back(self):
        engine = DatalogEngine(tc_program(), chain(4))
        assert engine.query("edge(1, X)", strategy="magic") == {(1, 2)}

    def test_to_database_bridge(self):
        engine = DatalogEngine(tc_program(), chain(3))
        db = engine.to_database()
        assert "path" in db
        assert len(db["path"]) == 6
