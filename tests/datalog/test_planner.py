"""Tests for the greedy join-order planner and its early exit.

Covers the ordering heuristics (delta first, most-bound first,
smallest-relation tiebreak), the empty-source early exit (with counter
evidence that nothing was scanned or probed), and the empty-predicate
safety regression: a pending negation must not be reported as a safety
bug when the bindings have already died out.
"""

import pytest

from repro.datalog import (
    EngineStatistics,
    FactStore,
    IndexedFactStore,
    cross_check,
    naive_evaluate,
    parse_program,
    parse_rule,
    plan_order,
)
from repro.datalog.matching import evaluate_rule
from repro.datalog.planner import bound_positions, has_empty_source


def _positives(rule):
    return [(i, item) for i, item in enumerate(rule.body)]


class TestPlanOrder:
    def test_delta_literal_goes_first(self):
        rule = parse_rule("p(X, Z) :- big(X, Y), d(Y, Z).")
        order = plan_order(_positives(rule), {0: 1, 1: 1000}, delta_at=1)
        assert [i for i, _ in order] == [1, 0]

    def test_most_bound_first(self):
        # After big(X, Y) nothing is bound; the constant-carrying atom
        # offers a probe key immediately, so it goes first.
        rule = parse_rule("p(X, Y) :- big(X, Y), anchor(1, X).")
        order = plan_order(_positives(rule), {0: 5, 1: 5})
        assert [i for i, _ in order] == [1, 0]

    def test_smallest_relation_breaks_ties(self):
        rule = parse_rule("p(X, Y) :- a(X, Y), b(X, Y).")
        order = plan_order(_positives(rule), {0: 100, 1: 3})
        assert [i for i, _ in order] == [1, 0]

    def test_body_position_breaks_remaining_ties(self):
        rule = parse_rule("p(X, Y) :- a(X, Y), b(X, Y).")
        order = plan_order(_positives(rule), {0: 7, 1: 7})
        assert [i for i, _ in order] == [0, 1]

    def test_bound_variables_count_as_probe_positions(self):
        rule = parse_rule("p(X, Y) :- big(A, W), tiny(B, C), join(X, Y).")
        # X pre-bound: join(X, Y) is half-bound and beats the unbound
        # atoms despite tiny being the smallest relation.
        order = plan_order(
            _positives(rule), {0: 10, 1: 2, 2: 10}, bound_vars={"X"}
        )
        assert order[0][0] == 2

    def test_bound_positions_counts_constants_and_bound_vars(self):
        rule = parse_rule("p(X, Y) :- q(1, X, Y).")
        atom = rule.body[0].atom
        assert bound_positions(atom, set()) == 1
        assert bound_positions(atom, {"X"}) == 2
        assert bound_positions(atom, {"X", "Y"}) == 3


class TestEarlyExit:
    def test_has_empty_source(self):
        rule = parse_rule("p(X, Y) :- a(X, Y), b(X, Y).")
        positives = _positives(rule)
        assert has_empty_source(positives, {0: set(), 1: {(1, 2)}})
        assert not has_empty_source(positives, {0: {(1, 2)}, 1: {(1, 2)}})

    def test_empty_predicate_skips_all_work(self):
        """An empty body predicate must cost zero scans and zero probes."""
        rule = parse_rule("p(X, Z) :- e(X, Y), missing(Y, Z).")
        store = IndexedFactStore({"e": [(i, i + 1) for i in range(100)]})
        stats = EngineStatistics()
        derived = evaluate_rule(rule, store.view, stats=stats)
        assert derived == set()
        assert stats.facts_scanned == 0
        assert stats.index_probes == 0
        assert stats.tuples_materialized == 0

    def test_unplanned_pipeline_still_scans(self):
        """The baseline has no early exit when the empty atom comes last
        (that asymmetry is part of what the benchmark measures)."""
        rule = parse_rule("p(X, Z) :- e(X, Y), missing(Y, Z).")
        store = FactStore({"e": [(i, i + 1) for i in range(100)]})
        stats = EngineStatistics()
        derived = evaluate_rule(rule, store.get, stats=stats, planned=False)
        assert derived == set()
        assert stats.facts_scanned == 100


class TestEmptyPredicateSafetyRegression:
    """A rule body can die out before a negation's variables are bound;
    that is an empty result, not a safety violation (seed bug)."""

    RULE = "p(X, Y) :- e(X), g(Y), not h(X, Y)."

    @pytest.mark.parametrize("planned", [True, False])
    def test_negation_pending_when_bindings_die(self, planned):
        rule = parse_rule(self.RULE)
        store = FactStore({"e": [(1,)], "h": [(1, 2)]})  # g is empty
        derived = evaluate_rule(rule, store.get, stats=None, planned=planned)
        assert derived == set()

    @pytest.mark.parametrize("indexed,planned", [(True, True), (False, False)])
    def test_whole_engine_handles_empty_body_predicate(self, indexed, planned):
        program, _ = parse_program(
            """
            h(X, Y) :- e(X), e(Y).
            p(X, Y) :- e(X), g(Y), not h(X, Y).
            """
        )
        edb = FactStore({"e": [(1,), (2,)]})  # g has no facts at all
        store = naive_evaluate(program, edb, indexed=indexed, planned=planned)
        assert store.get("p") == frozenset()

    def test_comparison_pending_when_bindings_die(self):
        rule = parse_rule("p(X, Y) :- e(X), g(Y), X < Y.")
        store = FactStore({"e": [(1,)]})
        for planned in (True, False):
            assert evaluate_rule(rule, store.get, planned=planned) == set()


class TestPlannerPreservesSemantics:
    def test_planned_and_unplanned_agree_with_negation_and_comparisons(self):
        program, _ = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            node(X) :- edge(X, Y).
            node(Y) :- edge(X, Y).
            unreachable(X, Y) :- node(X), node(Y), not path(X, Y), X != Y.
            """
        )
        edb = FactStore({"edge": [(0, 1), (1, 2), (3, 4)]})
        planned = naive_evaluate(program, edb, planned=True)
        unplanned = naive_evaluate(program, edb, planned=False)
        assert planned == unplanned

    def test_equality_binding_variable_survives_planning(self):
        # Y is bound only by the equality; the planner must not starve it.
        rule = parse_rule("p(X, Y) :- e(X), Y = 7.")
        store = FactStore({"e": [(1,), (2,)]})
        for planned in (True, False):
            assert evaluate_rule(rule, store.get, planned=planned) == {
                (1, 7),
                (2, 7),
            }

    def test_cross_check_on_constant_heavy_program(self):
        program, _ = parse_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            hit(X) :- reach(X), target(X).
            """
        )
        edb = FactStore(
            {
                "start": [(0,)],
                "edge": [(i, i + 1) for i in range(20)],
                "target": [(5,), (19,), (25,)],
            }
        )
        answers = cross_check(program, edb, "hit(X)")
        assert all(a == {(5,), (19,)} for a in answers.values())
