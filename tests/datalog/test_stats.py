"""Tests for the engine work counters (EngineStatistics).

The counters are the measurement layer under every performance claim in
the benchmarks, so their arithmetic (merge/copy/equality) and their
engine contract — indexed runs probe, unindexed runs scan — get their
own small suite.
"""

import pytest

from repro.datalog import (
    DatalogEngine,
    EngineStatistics,
    FactStore,
    parse_program,
    parse_query,
    seminaive_evaluate,
    topdown_query,
)
from repro.datalog.stats import FIELDS

TC = "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."


def chain(n):
    return FactStore({"edge": [(i, i + 1) for i in range(n)]})


class TestArithmetic:
    def test_starts_at_zero(self):
        stats = EngineStatistics()
        assert all(value == 0 for value in stats.as_dict().values())

    def test_keyword_init_and_unknown_field(self):
        assert EngineStatistics(facts_scanned=3).facts_scanned == 3
        with pytest.raises(TypeError):
            EngineStatistics(bogus=1)

    def test_merge_adds_fieldwise(self):
        a = EngineStatistics(facts_scanned=2, iterations=1)
        b = EngineStatistics(facts_scanned=5, index_probes=4)
        assert a.merge(b) is a
        assert a.facts_scanned == 7
        assert a.index_probes == 4
        assert a.iterations == 1

    def test_chain_merge_equals_shard_sum(self):
        # The parallel backend folds per-shard counter dicts into one
        # EngineStatistics; chained merges must equal the fieldwise sum,
        # whatever the merge order.
        shards = [
            EngineStatistics(facts_scanned=i, index_probes=2 * i, iterations=1)
            for i in range(1, 5)
        ]
        total = EngineStatistics()
        for shard in shards:
            total.merge(shard)
        assert total.facts_scanned == 10
        assert total.index_probes == 20
        assert total.iterations == 4
        reversed_total = EngineStatistics()
        for shard in reversed(shards):
            reversed_total.merge(shard)
        assert reversed_total == total

    def test_merge_round_trips_through_as_dict(self):
        # Worker processes ship counters as plain dicts; rebuilding and
        # merging must charge exactly the original work.
        source = EngineStatistics(facts_scanned=7, rule_firings=3)
        rebuilt = EngineStatistics(**source.as_dict())
        target = EngineStatistics(facts_scanned=1)
        target.merge(rebuilt)
        assert target.facts_scanned == 8
        assert target.rule_firings == 3

    def test_merge_with_empty_is_identity(self):
        stats = EngineStatistics(index_builds=2, tuples_materialized=5)
        before = stats.copy()
        stats.merge(EngineStatistics())
        assert stats == before

    def test_copy_is_independent(self):
        a = EngineStatistics(rule_firings=2)
        b = a.copy()
        b.rule_firings = 99
        assert a.rule_firings == 2
        assert a != b and a == a.copy()

    def test_format_lists_every_field(self):
        rendered = EngineStatistics().format()
        for field in FIELDS:
            assert field in rendered


class TestEngineContract:
    def test_indexed_run_probes_unindexed_run_scans(self):
        program, _ = parse_program(TC)
        indexed = EngineStatistics()
        seminaive_evaluate(program, chain(30), stats=indexed, indexed=True)
        plain = EngineStatistics()
        seminaive_evaluate(program, chain(30), stats=plain, indexed=False)
        assert indexed.index_probes > 0
        assert plain.index_probes == 0
        assert indexed.facts_scanned < plain.facts_scanned
        assert indexed.iterations == plain.iterations
        assert indexed.rule_firings == plain.rule_firings

    def test_facade_threads_stats(self):
        engine = DatalogEngine.from_source(TC, edb=chain(10))
        stats = EngineStatistics()
        engine.evaluate("seminaive", stats=stats)
        assert stats.iterations > 0 and stats.tuples_materialized > 0

    def test_facade_query_threads_stats(self):
        engine = DatalogEngine.from_source(TC, edb=chain(10))
        for strategy in ("magic", "topdown"):
            stats = EngineStatistics()
            engine.query("path(0, X)", strategy=strategy, stats=stats)
            assert stats.rule_firings > 0, strategy

    def test_topdown_counts_iterations(self):
        program, _ = parse_program(TC)
        stats = EngineStatistics()
        topdown_query(program, chain(5), parse_query("?- path(0, X)."), stats=stats)
        assert stats.iterations > 0


class TestStatsDoNotChangeAnswers:
    def test_run_with_and_without_stats_agree(self):
        program, _ = parse_program(TC)
        with_stats = seminaive_evaluate(
            program, chain(12), stats=EngineStatistics()
        )
        without = seminaive_evaluate(program, chain(12))
        assert with_stats == without
