"""Tests for the Datalog parser."""

import pytest

from repro.datalog.ast import Comparison, Constant, Literal, Variable
from repro.datalog.parser import parse_program, parse_query, parse_rule
from repro.errors import DatalogError, ParseError


class TestBasicParsing:
    def test_fact(self):
        rule = parse_rule("edge(a, b).")
        assert rule.is_fact()
        assert rule.head.ground_tuple({}) == ("a", "b")

    def test_numeric_and_string_constants(self):
        rule = parse_rule('p(1, 2.5, "hello world").')
        values = rule.head.ground_tuple({})
        assert values == (1, 2.5, "hello world")

    def test_negative_number(self):
        rule = parse_rule("p(-3).")
        assert rule.head.ground_tuple({}) == (-3,)

    def test_string_escapes(self):
        rule = parse_rule(r'p("a\"b").')
        assert rule.head.ground_tuple({}) == ('a"b',)

    def test_variables_uppercase(self):
        rule = parse_rule("p(X) :- e(X, Y).")
        assert rule.head.terms[0] == Variable("X")

    def test_underscore_variable(self):
        rule = parse_rule("p(X) :- e(X, _any).")
        assert Variable("_any") in rule.body[0].atom.terms

    def test_rule_with_multiple_literals(self):
        rule = parse_rule("p(X, Z) :- e(X, Y), e(Y, Z).")
        assert len(rule.body) == 2

    def test_negation(self):
        rule = parse_rule("p(X) :- node(X), not bad(X).")
        assert not rule.body[1].positive

    def test_comparison(self):
        rule = parse_rule("big(X) :- num(X), X > 10.")
        comp = rule.body[1]
        assert isinstance(comp, Comparison)
        assert comp.op == ">"

    def test_comparison_constant_left(self):
        rule = parse_rule("small(X) :- num(X), 10 >= X.")
        assert isinstance(rule.body[1], Comparison)

    def test_zero_ary_atom(self):
        rule = parse_rule("go :- ready.")
        assert rule.head.arity == 0

    def test_comments(self):
        program, _ = parse_program(
            """
            % a comment
            p(X) :- e(X).  % trailing comment
            """
        )
        assert len(program) == 1

    def test_query_line(self):
        program, queries = parse_program("e(1,2). ?- e(1, X).")
        assert len(program) == 1
        assert len(queries) == 1
        assert queries[0].predicate == "e"

    def test_parse_query_helper(self):
        q = parse_query("path(1, X)")
        assert q.predicate == "path"
        assert q.terms[0] == Constant(1)

    def test_parse_query_with_marker(self):
        assert parse_query("?- p(X).").predicate == "p"


class TestErrors:
    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- e(X)")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- e(X) & f(X).")

    def test_not_as_predicate(self):
        with pytest.raises(ParseError):
            parse_program("not(X) :- e(X).")

    def test_unsafe_rule_rejected_at_parse(self):
        with pytest.raises(DatalogError):
            parse_program("p(X, Y) :- e(X).")

    def test_parse_rule_rejects_multiple(self):
        with pytest.raises(ParseError):
            parse_rule("e(1). e(2).")

    def test_constant_must_start_comparison(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- e(X), 5.")

    def test_roundtrip_str(self):
        text = "p(X, Z) :- e(X, Y), not q(Y), X != Z, e(Z, Z)."
        rule = parse_rule(text)
        reparsed = parse_rule(str(rule))
        assert rule == reparsed
