"""Tests for stratified negation semantics and the FactStore."""

import pytest

from repro.datalog import (
    FactStore,
    holds,
    negative_facts,
    parse_program,
    parse_query,
    perfect_model,
)
from repro.datalog.negation import complement_program, model_difference
from repro.errors import DatalogError, StratificationError


class TestFactStore:
    def test_add_and_contains(self):
        store = FactStore()
        assert store.add("e", (1, 2))
        assert not store.add("e", (1, 2))  # duplicate
        assert store.contains("e", (1, 2))
        assert store.count("e") == 1

    def test_arity_consistency(self):
        store = FactStore({"e": [(1, 2)]})
        with pytest.raises(DatalogError):
            store.add("e", (1, 2, 3))

    def test_merge(self):
        a = FactStore({"e": [(1,)]})
        b = FactStore({"e": [(2,)], "f": [(3,)]})
        added = a.merge(b)
        assert added == 2
        assert a.count() == 3

    def test_restrict(self):
        store = FactStore({"e": [(1,)], "f": [(2,)]})
        restricted = store.restrict(["e"])
        assert "f" not in restricted

    def test_active_domain(self):
        store = FactStore({"e": [(1, "a")]})
        assert store.active_domain() == {1, "a"}

    def test_equality_ignores_empty_predicates(self):
        a = FactStore({"e": [(1,)]})
        b = FactStore({"e": [(1,)], "f": []})
        assert a == b

    def test_database_roundtrip(self):
        store = FactStore({"e": [(1, 2), (3, 4)]})
        db = store.to_database({"e": ("src", "dst")})
        assert db["e"].schema.attributes == ("src", "dst")
        back = FactStore.from_database(db)
        assert back == store

    def test_copy_independent(self):
        a = FactStore({"e": [(1,)]})
        b = a.copy()
        b.add("e", (2,))
        assert a.count() == 1


class TestStratifiedSemantics:
    def test_perfect_model_win_move_stratified_variant(self):
        # Complement of reachability: classic stratified program.
        program, _ = parse_program(
            """
            reach(X) :- source(X).
            reach(Y) :- reach(X), edge(X, Y).
            node(X) :- edge(X, Y).
            node(Y) :- edge(X, Y).
            unreached(X) :- node(X), not reach(X).
            """
        )
        edb = FactStore(
            {"edge": [(1, 2), (2, 3), (4, 5)], "source": [(1,)]}
        )
        model = perfect_model(program, edb)
        assert model.get("reach") == {(1,), (2,), (3,)}
        assert model.get("unreached") == {(4,), (5,)}

    def test_perfect_model_rejects_unstratifiable(self):
        program, _ = parse_program(
            "win(X) :- move(X, Y), not win(Y)."
        )
        with pytest.raises(StratificationError):
            perfect_model(program, FactStore({"move": [(1, 2)]}))

    def test_holds_cwa(self):
        program, _ = parse_program("p(X) :- e(X).")
        model = perfect_model(program, FactStore({"e": [(1,)]}))
        assert holds(model, parse_query("p(1)"))
        assert not holds(model, parse_query("p(2)"))  # absence = falsity

    def test_holds_rejects_variables(self):
        program, _ = parse_program("p(X) :- e(X).")
        model = perfect_model(program, FactStore({"e": [(1,)]}))
        with pytest.raises(DatalogError):
            holds(model, parse_query("p(X)"))

    def test_negative_facts(self):
        store = FactStore({"p": [(1,), (2,)]})
        negatives = negative_facts(store, "p", domain={1, 2, 3})
        assert negatives == {(3,)}

    def test_negative_facts_needs_arity(self):
        with pytest.raises(ValueError):
            negative_facts(FactStore(), "empty")

    def test_complement_program(self):
        program, _ = parse_program("p(X) :- e(X).")
        extended = complement_program(program, "p", "not_p", "dom")
        edb = FactStore({"e": [(1,)], "dom": [(1,), (2,), (3,)]})
        model = perfect_model(extended, edb)
        assert model.get("not_p") == {(2,), (3,)}

    def test_model_difference(self):
        a = FactStore({"p": [(1,), (2,)]})
        b = FactStore({"p": [(1,)]})
        assert model_difference(a, b).get("p") == {(2,)}

    def test_two_level_negation(self):
        program, _ = parse_program(
            """
            a(X) :- e(X).
            b(X) :- dom(X), not a(X).
            c(X) :- dom(X), not b(X).
            """
        )
        edb = FactStore({"e": [(1,)], "dom": [(1,), (2,)]})
        model = perfect_model(program, edb)
        assert model.get("b") == {(2,)}
        assert model.get("c") == {(1,)}
