"""Edge-case tests across the Datalog engines.

Constants in heads and bodies, zero-ary predicates, duplicate rules,
rules with empty bodies, deep strata, and cross-strategy agreement on
all of them.
"""

import pytest

from repro.datalog import (
    DatalogEngine,
    FactStore,
    cross_check,
    magic_evaluate,
    match_query,
    parse_program,
    parse_query,
    seminaive_evaluate,
)


class TestConstantsInRules:
    def test_constant_in_head(self):
        program, _ = parse_program("tagged(special, X) :- item(X).")
        store = seminaive_evaluate(program, FactStore({"item": [(1,), (2,)]}))
        assert store.get("tagged") == {("special", 1), ("special", 2)}

    def test_constant_in_body(self):
        program, _ = parse_program("origin(Y) :- edge(0, Y).")
        store = seminaive_evaluate(
            program, FactStore({"edge": [(0, 1), (2, 3)]})
        )
        assert store.get("origin") == {(1,)}

    def test_magic_with_constants_in_rules(self):
        program, _ = parse_program(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- edge(X, Y), path(Y, Z).
            from_zero(Y) :- path(0, Y).
            """
        )
        edb = FactStore({"edge": [(0, 1), (1, 2), (5, 6)]})
        query = parse_query("from_zero(X)")
        full = seminaive_evaluate(program, edb)
        assert magic_evaluate(program, edb, query) == match_query(
            full, query
        )

    def test_all_strategies_on_constant_head(self):
        program, _ = parse_program(
            """
            reach(0, Y) :- edge(0, Y).
            reach(0, Z) :- reach(0, Y), edge(Y, Z).
            """
        )
        edb = FactStore({"edge": [(0, 1), (1, 2), (3, 4)]})
        results = cross_check(program, edb, "reach(0, X)")
        values = list(results.values())
        assert all(v == values[0] for v in values)
        assert values[0] == {(0, 1), (0, 2)}


class TestDegenerateShapes:
    def test_zero_ary_predicates(self):
        program, _ = parse_program(
            """
            go :- ready, not blocked.
            ready.
            """
        )
        store = seminaive_evaluate(program, FactStore())
        assert store.contains("go", ())

    def test_zero_ary_blocked(self):
        program, _ = parse_program(
            """
            go :- ready, not blocked.
            ready.
            blocked.
            """
        )
        store = seminaive_evaluate(program, FactStore())
        assert not store.contains("go", ())

    def test_duplicate_rules_harmless(self):
        program, _ = parse_program(
            """
            p(X) :- e(X).
            p(X) :- e(X).
            """
        )
        store = seminaive_evaluate(program, FactStore({"e": [(1,)]}))
        assert store.get("p") == {(1,)}

    def test_self_loop_edge(self):
        program, _ = parse_program(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."
        )
        edb = FactStore({"edge": [(1, 1), (1, 2)]})
        store = seminaive_evaluate(program, edb)
        assert store.get("path") == {(1, 1), (1, 2)}

    def test_rule_depending_on_missing_edb(self):
        program, _ = parse_program("p(X) :- ghost(X).")
        store = seminaive_evaluate(program, FactStore())
        assert store.count("p") == 0

    def test_deep_strata(self):
        program, _ = parse_program(
            """
            l1(X) :- dom(X), not l0(X).
            l2(X) :- dom(X), not l1(X).
            l3(X) :- dom(X), not l2(X).
            l0(X) :- base(X).
            """
        )
        edb = FactStore({"dom": [(1,), (2,)], "base": [(1,)]})
        store = seminaive_evaluate(program, edb)
        assert store.get("l1") == {(2,)}
        assert store.get("l2") == {(1,)}
        assert store.get("l3") == {(2,)}


class TestEngineRobustness:
    def test_query_with_all_constants(self):
        engine = DatalogEngine.from_source(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).",
            edb={"edge": [(1, 2), (2, 3)]},
        )
        for strategy in ("naive", "seminaive", "magic", "topdown"):
            assert engine.query("path(1, 3)", strategy=strategy) == {(1, 3)}
            assert engine.query("path(3, 1)", strategy=strategy) == set()

    def test_query_on_unknown_predicate(self):
        engine = DatalogEngine.from_source(
            "p(X) :- e(X).", edb={"e": [(1,)]}
        )
        assert engine.query("ghost(X)") == set()

    def test_large_strongly_connected_component(self):
        # Mutual recursion across three predicates.
        program, _ = parse_program(
            """
            a(X, Y) :- e(X, Y).
            a(X, Y) :- b(X, Y).
            b(X, Y) :- c(X, Y).
            c(X, Z) :- a(X, Y), e(Y, Z).
            """
        )
        edb = FactStore({"e": [(1, 2), (2, 3), (3, 4)]})
        from repro.datalog import naive_evaluate

        semi = seminaive_evaluate(program, edb)
        naive = naive_evaluate(program, edb)
        assert semi == naive
        assert (1, 4) in semi.get("a")
