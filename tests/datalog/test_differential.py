"""Cross-engine differential testing on randomized Datalog programs.

The library's own fuzzing harness: generate random safe positive programs
and random EDBs, then demand that all four engines — naive, semi-naive,
magic sets, and top-down tabling — agree on every query, under every
physical configuration (with and without the indexed store and the join
planner).  Engine-equivalence is the one theorem every optimization in
the logic-database era had to preserve; here it doubles as the oracle
that the new physical layer changed plans, not answers.

The fixed-program tests at the bottom pin two historical disagreement
bugs: program-text facts of IDB predicates were dropped by magic and
top-down, and EDB-predicate text facts were dropped by magic.
"""

import pytest

from repro.core.random_instances import random_edb, random_positive_program
from repro.datalog import (
    Atom,
    FactStore,
    Variable,
    cross_check,
    match_query,
    naive_evaluate,
    parse_program,
)

#: (indexed, planned) configurations every differential case runs under.
CONFIGS = [(True, True), (False, False)]

#: Number of randomized programs per configuration (the acceptance
#: criterion asks for at least 100).
NUM_SEEDS = 100


def _case(seed):
    """Deterministic (program, edb, queries) triple for one seed."""
    program = random_positive_program(
        num_idb=3,
        num_edb=2,
        rules_per_idb=2,
        max_body=3,
        arity=2,
        seed=seed,
    )
    edb = random_edb(
        ["e0", "e1"], domain_size=6, facts_per_pred=10, arity=2, seed=seed
    )
    # One fully-free and one bound query per IDB predicate: the free one
    # checks the whole fixpoint slice, the bound one exercises the
    # goal-directed machinery (magic seeds, top-down call patterns).
    queries = []
    for predicate in ("p0", "p1", "p2"):
        queries.append(Atom(predicate, (Variable("Q1"), Variable("Q2"))))
        queries.append(Atom(predicate, (seed % 6, Variable("Q2"))))
    return program, edb, queries


@pytest.mark.parametrize("indexed,planned", CONFIGS)
@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_engines_agree_on_random_programs(seed, indexed, planned):
    program, edb, queries = _case(seed)
    reference_store = naive_evaluate(
        program, edb, indexed=indexed, planned=planned
    )
    for query in queries:
        reference = match_query(reference_store, query)
        answers = cross_check(
            program, edb, query, indexed=indexed, planned=planned
        )
        for strategy, result in answers.items():
            assert result == reference, (
                "strategy %r disagrees with naive on seed %d, query %s "
                "(indexed=%s planned=%s)"
                % (strategy, seed, query, indexed, planned)
            )


@pytest.mark.parametrize("seed", range(0, NUM_SEEDS, 7))
def test_physical_configs_agree_with_each_other(seed):
    """The physical knobs must never change any engine's answers."""
    program, edb, queries = _case(seed)
    for query in queries:
        baseline = cross_check(
            program, edb, query, indexed=False, planned=False
        )
        optimized = cross_check(
            program, edb, query, indexed=True, planned=True
        )
        assert baseline == optimized


FACTY = """
    e(1, 2).
    p(8, 9).
    p(X, Y) :- e(X, Y).
    p(X, Z) :- e(X, Y), p(Y, Z).
"""


@pytest.mark.parametrize("indexed,planned", CONFIGS)
def test_program_text_facts_survive_every_engine(indexed, planned):
    """IDB facts (``p(8,9).``) and EDB facts (``e(1,2).``) in the program
    text must reach every engine's answers — magic used to drop both and
    top-down the former."""
    program, _ = parse_program(FACTY)
    edb = FactStore({"e": [(2, 3)]})
    query = Atom("p", (Variable("X"), Variable("Y")))
    expected = {(1, 2), (2, 3), (1, 3), (8, 9)}
    answers = cross_check(program, edb, query, indexed=indexed, planned=planned)
    for strategy, result in answers.items():
        assert result == expected, strategy


@pytest.mark.parametrize("indexed,planned", CONFIGS)
def test_bound_query_on_text_fact(indexed, planned):
    program, _ = parse_program(FACTY)
    query = Atom("p", (8, Variable("Y")))
    answers = cross_check(
        program, FactStore(), query, indexed=indexed, planned=planned
    )
    for strategy, result in answers.items():
        assert result == {(8, 9)}, strategy
