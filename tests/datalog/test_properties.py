"""Property-based tests for the Datalog engines (hypothesis).

The central invariants: semi-naive == naive on arbitrary (stratified)
programs; magic and top-down == the restricted reference on arbitrary
queries; monotonicity of positive programs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    FactStore,
    magic_evaluate,
    match_query,
    naive_evaluate,
    parse_program,
    parse_query,
    seminaive_evaluate,
    topdown_query,
)

TC = parse_program(
    "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z)."
)[0]

SG = parse_program(
    """
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    """
)[0]

NEG = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- edge(X, Y), path(Y, Z).
    node(X) :- edge(X, Y).
    node(Y) :- edge(X, Y).
    island(X, Y) :- node(X), node(Y), not path(X, Y).
    """
)[0]

node = st.integers(min_value=0, max_value=7)
edges = st.sets(st.tuples(node, node), max_size=16)


class TestSemiNaiveEqualsNaive:
    @settings(max_examples=40, deadline=None)
    @given(edges)
    def test_tc(self, edge_set):
        edb = FactStore({"edge": edge_set})
        assert seminaive_evaluate(TC, edb) == naive_evaluate(TC, edb)

    @settings(max_examples=25, deadline=None)
    @given(edges, edges, edges)
    def test_same_generation(self, up, flat, down):
        edb = FactStore({"up": up, "flat": flat, "down": down})
        assert seminaive_evaluate(SG, edb) == naive_evaluate(SG, edb)

    @settings(max_examples=20, deadline=None)
    @given(edges)
    def test_with_negation(self, edge_set):
        edb = FactStore({"edge": edge_set})
        assert seminaive_evaluate(NEG, edb) == naive_evaluate(NEG, edb)


class TestQueryDirectedEqualsReference:
    @settings(max_examples=30, deadline=None)
    @given(edges, node)
    def test_magic(self, edge_set, start):
        edb = FactStore({"edge": edge_set})
        query = parse_query("path(%d, X)" % start)
        reference = match_query(seminaive_evaluate(TC, edb), query)
        assert magic_evaluate(TC, edb, query) == reference

    @settings(max_examples=30, deadline=None)
    @given(edges, node)
    def test_topdown(self, edge_set, start):
        edb = FactStore({"edge": edge_set})
        query = parse_query("path(%d, X)" % start)
        reference = match_query(seminaive_evaluate(TC, edb), query)
        assert topdown_query(TC, edb, query) == reference

    @settings(max_examples=20, deadline=None)
    @given(edges, node, node)
    def test_magic_bound_bound(self, edge_set, a, b):
        edb = FactStore({"edge": edge_set})
        query = parse_query("path(%d, %d)" % (a, b))
        reference = match_query(seminaive_evaluate(TC, edb), query)
        assert magic_evaluate(TC, edb, query) == reference


class TestMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(edges, st.tuples(node, node))
    def test_adding_facts_only_grows_positive_models(self, edge_set, extra):
        small = FactStore({"edge": edge_set})
        large = FactStore({"edge": set(edge_set) | {extra}})
        small_model = seminaive_evaluate(TC, small)
        large_model = seminaive_evaluate(TC, large)
        assert small_model.get("path") <= large_model.get("path")

    @settings(max_examples=20, deadline=None)
    @given(edges)
    def test_model_is_fixpoint(self, edge_set):
        # Re-evaluating with the model as EDB adds nothing new.
        edb = FactStore({"edge": edge_set})
        model = seminaive_evaluate(TC, edb)
        again = seminaive_evaluate(TC, model)
        assert again.get("path") == model.get("path")

    @settings(max_examples=20, deadline=None)
    @given(edges)
    def test_path_contains_edges_and_is_transitive(self, edge_set):
        edb = FactStore({"edge": edge_set})
        path = seminaive_evaluate(TC, edb).get("path")
        assert set(edge_set) <= path
        for (a, b) in path:
            for (c, d) in path:
                if b == c:
                    assert (a, d) in path
