"""Tests for Datalog static analysis: SCCs, stratification, recursion."""

import pytest

from repro.datalog.analysis import (
    DependencyGraph,
    is_linear,
    is_recursive,
    is_stratifiable,
    predicate_sccs,
    rules_by_stratum,
    strongly_connected_components,
    stratify,
)
from repro.datalog.parser import parse_program
from repro.errors import StratificationError


def program(text):
    return parse_program(text)[0]


class TestSCC:
    def test_simple_cycle(self):
        graph = {"a": {"b"}, "b": {"a"}, "c": {"a"}}
        sccs = strongly_connected_components(graph)
        assert frozenset({"a", "b"}) in sccs
        assert frozenset({"c"}) in sccs

    def test_emission_order_dependencies_first(self):
        graph = {"top": {"mid"}, "mid": {"bot"}, "bot": set()}
        sccs = strongly_connected_components(graph)
        order = [next(iter(c)) for c in sccs]
        assert order.index("bot") < order.index("mid") < order.index("top")

    def test_disconnected(self):
        graph = {"a": set(), "b": set()}
        assert len(strongly_connected_components(graph)) == 2

    def test_predicate_sccs(self):
        p = program(
            """
            p(X) :- q(X).
            q(X) :- p(X).
            q(X) :- e(X).
            """
        )
        sccs = predicate_sccs(p)
        assert frozenset({"p", "q"}) in sccs


class TestRecursion:
    def test_tc_is_recursive(self):
        p = program("t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), e(Y,Z).")
        assert is_recursive(p)
        assert is_recursive(p, "t")
        assert not is_recursive(p, "e")

    def test_nonrecursive(self):
        p = program("v(X) :- e(X, Y).")
        assert not is_recursive(p)

    def test_mutual_recursion(self):
        p = program(
            """
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(Y).
            """
        )
        assert is_recursive(p, "even")
        assert is_recursive(p, "odd")

    def test_linearity(self):
        linear = program("t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), e(Y,Z).")
        nonlinear = program("t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), t(Y,Z).")
        assert is_linear(linear, "t")
        assert not is_linear(nonlinear, "t")


class TestStratification:
    def test_single_stratum_positive(self):
        p = program("t(X,Y) :- e(X,Y). t(X,Z) :- t(X,Y), e(Y,Z).")
        strata = stratify(p)
        assert len(strata) == 1

    def test_negation_adds_stratum(self):
        p = program(
            """
            t(X,Y) :- e(X,Y).
            nt(X,Y) :- node(X), node(Y), not t(X,Y).
            """
        )
        strata = stratify(p)
        level = {pred: i for i, s in enumerate(strata) for pred in s}
        assert level["nt"] > level["t"]

    def test_unstratifiable(self):
        p = program(
            """
            win(X) :- move(X, Y), not win(Y).
            win(X) :- move(X, X), not win(X).
            """
        )
        # win negates itself through recursion: not stratifiable.
        with pytest.raises(StratificationError):
            stratify(p)
        assert not is_stratifiable(p)

    def test_negation_out_of_cycle_ok(self):
        p = program(
            """
            t(X,Y) :- e(X,Y).
            t(X,Z) :- t(X,Y), e(Y,Z).
            only(X) :- node(X), not t(X, X).
            """
        )
        assert is_stratifiable(p)

    def test_rules_by_stratum_groups(self):
        p = program(
            """
            t(X,Y) :- e(X,Y).
            nt(X) :- node(X), not t(X, X).
            """
        )
        grouped = rules_by_stratum(p)
        assert len(grouped) == 2
        assert grouped[0][0].head.predicate == "t"
        assert grouped[1][0].head.predicate == "nt"


class TestDependencyGraph:
    def test_edges_and_negative_marks(self):
        p = program("p(X) :- e(X), not q(X). q(X) :- e(X).")
        graph = DependencyGraph(p)
        assert graph.dependencies("p") == {"e", "q"}
        assert graph.uses_negatively("q", "p")
        assert not graph.uses_negatively("e", "p")
