"""Unit tests for the rule-matching physical layer."""

import pytest

from repro.datalog.ast import Atom, Comparison, Constant, Literal, Rule, atom, lit, neg
from repro.datalog.matching import (
    evaluate_rule,
    extend_bindings,
)
from repro.errors import DatalogError


class TestExtendBindings:
    FACTS = {(1, 2), (1, 3), (2, 3)}

    def test_fresh_variables(self):
        out = extend_bindings([{}], atom("e", "X", "Y"), self.FACTS)
        assert len(out) == 3
        assert {"X", "Y"} <= set(out[0])

    def test_bound_variable_probe(self):
        out = extend_bindings([{"X": 1}], atom("e", "X", "Y"), self.FACTS)
        assert sorted(b["Y"] for b in out) == [2, 3]

    def test_constant_filter(self):
        out = extend_bindings([{}], atom("e", 2, "Y"), self.FACTS)
        assert [b["Y"] for b in out] == [3]

    def test_repeated_variable(self):
        facts = {(1, 1), (1, 2)}
        out = extend_bindings([{}], atom("e", "X", "X"), facts)
        assert [b["X"] for b in out] == [1]

    def test_empty_bindings_short_circuit(self):
        assert extend_bindings([], atom("e", "X", "Y"), self.FACTS) == []

    def test_no_match_empties(self):
        out = extend_bindings([{"X": 99}], atom("e", "X", "Y"), self.FACTS)
        assert out == []

    def test_multiple_bindings_fan_out(self):
        out = extend_bindings(
            [{"X": 1}, {"X": 2}], atom("e", "X", "Y"), self.FACTS
        )
        assert len(out) == 3


class TestEvaluateRule:
    def lookup(self, facts):
        return lambda predicate: facts.get(predicate, set())

    def test_join_two_literals(self):
        facts = {"e": {(1, 2), (2, 3)}}
        rule = Rule(
            atom("p", "X", "Z"), [lit("e", "X", "Y"), lit("e", "Y", "Z")]
        )
        assert evaluate_rule(rule, self.lookup(facts)) == {(1, 3)}

    def test_comparison_filters(self):
        facts = {"n": {(1,), (5,), (9,)}}
        rule = Rule(
            atom("big", "X"), [lit("n", "X"), Comparison("X", ">", 4)]
        )
        assert evaluate_rule(rule, self.lookup(facts)) == {(5,), (9,)}

    def test_comparison_before_binding_is_postponed(self):
        # X > Y appears before Y is bound; the engine defers it.
        facts = {"a": {(1,), (5,)}, "b": {(3,)}}
        rule = Rule(
            atom("p", "X", "Y"),
            [
                lit("a", "X"),
                Comparison("X", ">", "Y"),
                lit("b", "Y"),
            ],
        )
        assert evaluate_rule(rule, self.lookup(facts)) == {(5, 3)}

    def test_negative_literal(self):
        facts = {"n": {(1,), (2,)}, "bad": {(2,)}}
        rule = Rule(atom("good", "X"), [lit("n", "X"), neg("bad", "X")])
        assert evaluate_rule(rule, self.lookup(facts)) == {(1,)}

    def test_equality_binds_fresh_variable(self):
        facts = {"n": {(1,), (2,)}}
        rule = Rule(
            atom("p", "X", "Y"),
            [lit("n", "X"), Comparison("Y", "=", Constant(7))],
        )
        assert evaluate_rule(rule, self.lookup(facts)) == {(1, 7), (2, 7)}

    def test_delta_position(self):
        full = {"e": {(1, 2), (2, 3)}, "p": {(2, 3), (1, 2), (1, 3)}}
        delta = {"p": {(1, 3)}}
        rule = Rule(
            atom("q", "X", "Z"), [lit("e", "X", "Y"), lit("p", "Y", "Z")]
        )
        all_results = evaluate_rule(rule, lambda p: full.get(p, set()))
        delta_results = evaluate_rule(
            rule,
            lambda p: full.get(p, set()),
            delta_lookup=lambda p: delta.get(p, set()),
            delta_at=1,
        )
        assert delta_results <= all_results
        assert delta_results == set()  # nothing joins e with delta (1,3)

    def test_empty_body_rule_fires_once(self):
        rule = Rule(Atom("f", (Constant(1),)), [])
        assert evaluate_rule(rule, self.lookup({})) == {(1,)}

    def test_unknown_body_item_rejected(self):
        rule = Rule(atom("p", "X"), [lit("e", "X")])
        object.__setattr__  # no-op to appease linters
        rule_body = list(rule.body) + ["junk"]
        broken = Rule.__new__(Rule)
        broken.head = rule.head
        broken.body = tuple(rule_body)
        with pytest.raises(DatalogError):
            evaluate_rule(broken, self.lookup({"e": {(1,)}}))
