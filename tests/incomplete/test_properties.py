"""Property-based tests for incomplete information (hypothesis).

The defining semantics: certain ⊆ answer-in-every-world, possible =
answer-in-some-world, and naive evaluation computes certain answers for
positive queries (Imielinski–Lipski) on random tables.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.incomplete import (
    Null,
    Table,
    TableDatabase,
    brute_force_certain_answers,
    brute_force_possible_answers,
    naive_certain_answers,
)
from repro.relational import (
    NaturalJoin,
    Projection,
    Relation,
    RelationRef,
    RelationSchema,
    Selection,
    eq,
    evaluate,
)
from repro.relational.algebra import Const

# Cells: small constants or one of two shared nulls.
NULL_A = Null("na")
NULL_B = Null("nb")
cells = st.one_of(
    st.integers(min_value=0, max_value=2),
    st.sampled_from([NULL_A, NULL_B]),
)


@st.composite
def table_databases(draw):
    r_rows = draw(
        st.sets(st.tuples(cells, cells), min_size=1, max_size=3)
    )
    s_rows = draw(
        st.sets(st.tuples(cells, cells), min_size=1, max_size=3)
    )
    r = Table(
        Relation(RelationSchema("r", ("a", "b")), r_rows, validate=False)
    )
    s = Table(
        Relation(RelationSchema("s", ("b", "c")), s_rows, validate=False)
    )
    return TableDatabase([r, s])


QUERIES = [
    Projection(NaturalJoin(RelationRef("r"), RelationRef("s")), ("a", "c")),
    Selection(RelationRef("r"), eq("a", Const(1))),
    Projection(RelationRef("s"), ("c",)),
]


class TestImielinskiLipski:
    @settings(max_examples=25, deadline=None)
    @given(table_databases(), st.sampled_from(range(len(QUERIES))))
    def test_naive_equals_possible_worlds_intersection(self, tdb, qi):
        query = QUERIES[qi]
        fast = naive_certain_answers(query, tdb)
        slow = brute_force_certain_answers(query, tdb)
        assert set(fast.tuples) == set(slow.tuples)

    @settings(max_examples=25, deadline=None)
    @given(table_databases(), st.sampled_from(range(len(QUERIES))))
    def test_certain_subset_of_possible(self, tdb, qi):
        query = QUERIES[qi]
        certain = brute_force_certain_answers(query, tdb)
        possible = brute_force_possible_answers(query, tdb)
        assert set(certain.tuples) <= set(possible.tuples)

    @settings(max_examples=25, deadline=None)
    @given(table_databases(), st.sampled_from(range(len(QUERIES))))
    def test_every_world_contains_certain(self, tdb, qi):
        query = QUERIES[qi]
        domain = set(tdb.constants()) | {"f0", "f1"}
        certain = set(
            brute_force_certain_answers(query, tdb, domain=domain).tuples
        )
        for world in tdb.possible_worlds(domain):
            assert certain <= set(evaluate(query, world).tuples)

    @settings(max_examples=20, deadline=None)
    @given(table_databases())
    def test_complete_tables_certain_equals_plain(self, tdb):
        # Ground the nulls: certain answers must equal the plain answer.
        valuation = {n: 0 for n in tdb.nulls()}
        grounded = TableDatabase(
            [
                Table(tdb[name].apply_valuation(valuation))
                for name in tdb.names()
            ]
        )
        query = QUERIES[0]
        fast = naive_certain_answers(query, grounded)
        plain = evaluate(
            query, grounded.as_database_with_null_constants()
        )
        assert set(fast.tuples) == set(plain.tuples)
