"""Tests for tables with nulls, certain answers, and the CWA."""

import pytest

from repro.errors import IncompleteInformationError
from repro.incomplete import (
    DisjunctiveDatabase,
    Null,
    Table,
    TableDatabase,
    brute_force_certain_answers,
    brute_force_possible_answers,
    cwa_negations,
    disjunctive_fact,
    fresh_null,
    is_positive,
    naive_certain_answers,
)
from repro.relational import (
    Difference,
    NaturalJoin,
    Projection,
    Relation,
    RelationRef,
    RelationSchema,
    Selection,
    eq,
)
from repro.relational.algebra import Const


def table(name, attrs, rows):
    return Table(
        Relation(RelationSchema(name, attrs), rows, validate=False)
    )


@pytest.fixture
def tdb():
    n1, n2 = Null("a"), Null("b")
    emp = table(
        "emp", ("name", "dept"), [("ann", "cs"), ("bob", n1)]
    )
    head = table(
        "head", ("dept", "boss"), [("cs", "carol"), (n2, "dan")]
    )
    return TableDatabase([emp, head])


class TestNullsAndTables:
    def test_null_identity(self):
        assert Null("x") == Null("x")
        assert Null("x") != Null("y")

    def test_fresh_nulls_distinct(self):
        assert fresh_null() != fresh_null()

    def test_codd_table_detection(self):
        n = Null("n")
        codd = table("r", ("a", "b"), [(1, Null("x")), (2, Null("y"))])
        naive = table("r", ("a", "b"), [(1, n), (2, n)])
        assert codd.is_codd_table()
        assert not naive.is_codd_table()

    def test_complete_table(self):
        t = table("r", ("a",), [(1,)])
        assert t.is_complete()
        assert t.is_codd_table()

    def test_apply_valuation(self):
        n = Null("n")
        t = table("r", ("a", "b"), [(1, n)])
        complete = t.apply_valuation({n: 9})
        assert (1, 9) in complete

    def test_valuation_must_cover(self):
        t = table("r", ("a",), [(Null("n"),)])
        with pytest.raises(IncompleteInformationError):
            t.apply_valuation({})

    def test_possible_worlds_count(self):
        t = table("r", ("a", "b"), [(1, Null("x")), (2, Null("y"))])
        worlds = list(t.possible_worlds({7, 8}))
        assert len(worlds) == 4

    def test_shared_null_consistent_across_tables(self):
        n = Null("shared")
        tdb = TableDatabase(
            [
                table("r", ("a",), [(n,)]),
                table("s", ("b",), [(n,)]),
            ]
        )
        for world in tdb.possible_worlds({1, 2}):
            (a,) = next(iter(world["r"].tuples))
            (b,) = next(iter(world["s"].tuples))
            assert a == b

    def test_null_free_tuples(self):
        t = table("r", ("a",), [(1,), (Null("n"),)])
        assert t.null_free_tuples() == {(1,)}


class TestCertainAnswers:
    def test_positive_detection(self):
        q = Projection(
            NaturalJoin(RelationRef("emp"), RelationRef("head")),
            ("name", "boss"),
        )
        assert is_positive(q)
        assert not is_positive(Difference(RelationRef("emp"), RelationRef("emp")))
        assert not is_positive(
            Selection(RelationRef("emp"), ~eq("dept", Const("cs")))
        )

    def test_naive_equals_brute_force(self, tdb):
        q = Projection(
            NaturalJoin(RelationRef("emp"), RelationRef("head")),
            ("name", "boss"),
        )
        fast = naive_certain_answers(q, tdb)
        slow = brute_force_certain_answers(q, tdb)
        assert set(fast.tuples) == set(slow.tuples) == {("ann", "carol")}

    def test_naive_rejects_nonpositive(self, tdb):
        q = Difference(RelationRef("emp"), RelationRef("emp"))
        with pytest.raises(IncompleteInformationError):
            naive_certain_answers(q, tdb)

    def test_possible_superset_of_certain(self, tdb):
        q = Projection(
            NaturalJoin(RelationRef("emp"), RelationRef("head")),
            ("name", "boss"),
        )
        certain = brute_force_certain_answers(q, tdb)
        possible = brute_force_possible_answers(q, tdb)
        assert set(certain.tuples) <= set(possible.tuples)
        assert len(possible) > len(certain)

    def test_certain_on_complete_tables_is_plain_answer(self):
        tdb = TableDatabase([table("r", ("a",), [(1,), (2,)])])
        q = Selection(RelationRef("r"), eq("a", Const(1)))
        fast = naive_certain_answers(q, tdb)
        assert set(fast.tuples) == {(1,)}

    def test_selection_on_null_not_certain(self):
        n = Null("n")
        tdb = TableDatabase([table("r", ("a",), [(n,)])])
        q = Selection(RelationRef("r"), eq("a", Const(1)))
        fast = naive_certain_answers(q, tdb)
        slow = brute_force_certain_answers(q, tdb)
        assert len(fast) == len(slow) == 0


class TestCWA:
    def test_negations_over_domain(self):
        negatives = cwa_negations({(1,)}, "p", 1, {1, 2, 3})
        assert ("not", "p", (2,)) in negatives
        assert ("not", "p", (1,)) not in negatives

    def test_definite_database_consistent(self):
        db = DisjunctiveDatabase([{"p": {("a",)}}])
        assert db.is_definite()
        assert db.cwa_is_consistent()

    def test_disjunctive_inconsistent(self):
        db = disjunctive_fact("p", [("a",), ("b",)])
        assert not db.is_definite()
        assert not db.cwa_is_consistent()

    def test_certain_vs_possible(self):
        db = DisjunctiveDatabase(
            [
                {"p": {("a",), ("c",)}},
                {"p": {("b",), ("c",)}},
            ]
        )
        assert db.certainly_holds("p", ("c",))
        assert not db.certainly_holds("p", ("a",))
        assert db.possibly_holds("p", ("a",))
        assert not db.possibly_holds("p", ("z",))

    def test_needs_a_world(self):
        with pytest.raises(IncompleteInformationError):
            DisjunctiveDatabase([])
