"""Property-based tests for the metascience models (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metascience import (
    alternation_score,
    detrend,
    diversity_index,
    equilibrate,
    pc_memory_series,
    predicted_equilibrium,
    two_year_average,
    two_year_harmonic_strength,
)

series_values = st.lists(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    min_size=4,
    max_size=16,
)


class TestSignalProperties:
    @given(series_values)
    def test_two_year_average_is_linear(self, values):
        doubled = [2 * v for v in values]
        smoothed = two_year_average(values)
        smoothed_doubled = two_year_average(doubled)
        for a, b in zip(smoothed, smoothed_doubled):
            assert math.isclose(b, 2 * a, abs_tol=1e-9)

    @given(series_values)
    def test_two_year_average_bounded_by_extremes(self, values):
        smoothed = two_year_average(values)
        for value in smoothed:
            assert min(values) - 1e-9 <= value <= max(values) + 1e-9

    @given(
        st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        st.integers(min_value=4, max_value=20),
    )
    def test_detrend_kills_lines(self, slope, intercept, n):
        line = [slope * i + intercept for i in range(n)]
        residual = detrend(line)
        assert all(abs(v) < 1e-6 for v in residual)

    @given(series_values)
    def test_harmonic_strength_in_unit_interval(self, values):
        strength = two_year_harmonic_strength(values)
        assert 0.0 <= strength <= 1.0 + 1e-9

    @given(st.integers(min_value=4, max_value=12))
    def test_pure_zigzag_alternates_fully(self, n):
        zigzag = [float(i % 2) for i in range(2 * n)]
        assert alternation_score(zigzag) == 1.0

    @given(
        st.floats(min_value=0.1, max_value=0.95, allow_nan=False),
        st.floats(min_value=5.0, max_value=20.0, allow_nan=False),
    )
    def test_pc_memory_converges(self, correction, target):
        series = pc_memory_series(
            target=target, correction=correction, start=target + 7, years=60
        )
        assert abs(series[-1] - target) < 0.5


class TestKitcherProperties:
    qualities = st.lists(
        st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
        min_size=2,
        max_size=4,
    )

    @settings(max_examples=30, deadline=None)
    @given(qualities)
    def test_equilibrium_matches_prediction(self, qs):
        shares = equilibrate(qs, sharing=1.0, steps=3000)
        predicted = predicted_equilibrium(qs, sharing=1.0)
        for observed, expected in zip(shares, predicted):
            assert abs(observed - expected) < 0.05

    @settings(max_examples=30, deadline=None)
    @given(qualities)
    def test_shares_always_a_distribution(self, qs):
        shares = equilibrate(qs, sharing=1.0, steps=500)
        assert abs(sum(shares) - 1.0) < 1e-6
        assert all(s >= 0 for s in shares)

    @settings(max_examples=30, deadline=None)
    @given(qualities)
    def test_diversity_bounded_by_log_n(self, qs):
        shares = equilibrate(qs, sharing=1.0, steps=500)
        assert diversity_index(shares) <= math.log(len(qs)) + 1e-9
