"""Tests for the metascience package: the paper's Figures 1-3 and their
textual anchors."""

import pytest

from repro.errors import MetascienceError
from repro.metascience import (
    AREAS,
    CRISIS,
    IMMATURE,
    LOGIC_DB_ANCHOR,
    NORMAL,
    RAW_COUNTS,
    REVOLUTION,
    KuhnProcess,
    ResearchGraph,
    YEARS,
    acceleration_experiment,
    alternation_score,
    dominant_area,
    figure2_comparison,
    figure3_series,
    figure3_table,
    has_two_year_harmonic,
    is_waning,
    max_derivative_year,
    pc_memory_series,
    peak_year,
    render_figure3,
    succession_order,
    totals,
    trend,
    two_year_average,
    two_year_harmonic_strength,
)


class TestFigure3Anchors:
    """Every quantitative/qualitative claim in §6 and footnote 10."""

    def test_logic_db_footnote10_series_verbatim(self):
        start = YEARS.index(1986)
        observed = RAW_COUNTS["logic_databases"][start:start + 7]
        assert observed == LOGIC_DB_ANCHOR == (10, 14, 9, 18, 13, 16, 14)

    def test_block_of_ten_then_fourteen(self):
        idx86 = YEARS.index(1986)
        assert RAW_COUNTS["logic_databases"][idx86] == 10
        assert RAW_COUNTS["logic_databases"][idx86 + 1] == 14

    def test_timid_before_1986(self):
        idx86 = YEARS.index(1986)
        assert all(c <= 5 for c in RAW_COUNTS["logic_databases"][:idx86])

    def test_logic_db_largest_total_volume(self):
        volume = totals()
        assert volume["logic_databases"] == max(volume.values())

    def test_logic_db_waning_at_the_end(self):
        assert is_waning("logic_databases")

    def test_two_traditions_dominant_early(self):
        for year in (1982, 1983):
            idx = YEARS.index(year)
            early_big = (
                RAW_COUNTS["relational_theory"][idx]
                + RAW_COUNTS["transaction_processing"][idx]
            )
            rest = sum(
                RAW_COUNTS[a][idx]
                for a in AREAS
                if a not in ("relational_theory", "transaction_processing")
            )
            assert early_big > 3 * rest

    def test_relational_and_tp_declining(self):
        assert trend("relational_theory") == "declining"
        assert trend("transaction_processing") == "declining"

    def test_complex_objects_rising(self):
        assert trend("complex_objects") == "rising"

    def test_access_methods_modest_flat(self):
        assert trend("access_methods") == "flat"
        assert max(RAW_COUNTS["access_methods"]) <= 5

    def test_dominance_shift(self):
        assert dominant_area(1982) == "relational_theory"
        assert dominant_area(1989) == "logic_databases"
        assert dominant_area(1995) == "complex_objects"

    def test_succession_ecosystem_order(self):
        order = succession_order()
        assert order.index("relational_theory") < order.index(
            "logic_databases"
        ) < order.index("complex_objects")

    def test_fourteen_years(self):
        assert len(YEARS) == 14
        for area in AREAS:
            assert len(RAW_COUNTS[area]) == 14


class TestFigure3Series:
    def test_two_year_average_definition(self):
        assert two_year_average([2, 4, 6]) == [3.0, 5.0]

    def test_series_starts_1983(self):
        series = figure3_series("logic_databases")
        assert series[0][0] == 1983
        assert len(series) == 13

    def test_table_shape(self):
        rows = figure3_table()
        assert len(rows) == 13
        assert all(len(row) == 6 for row in rows)

    def test_render_contains_all_areas(self):
        text = render_figure3()
        for area in AREAS:
            assert area in text

    def test_smoothing_reduces_alternation(self):
        raw = RAW_COUNTS["transaction_processing"]
        smoothed = two_year_average(raw)
        assert alternation_score(smoothed) <= alternation_score(raw)

    def test_max_derivative_is_a_boom_year(self):
        # The invited-talk statistic: logic DB's biggest jump is the
        # 1988->1989 rebound (+9).
        assert max_derivative_year("logic_databases") == 1989


class TestHarmonic:
    def test_tp_has_strong_harmonic(self):
        assert has_two_year_harmonic(RAW_COUNTS["transaction_processing"])
        assert (
            two_year_harmonic_strength(RAW_COUNTS["transaction_processing"])
            > 0.5
        )

    def test_smooth_series_does_not(self):
        assert not has_two_year_harmonic(RAW_COUNTS["complex_objects"])

    def test_logic_db_window_alternates(self):
        assert alternation_score(LOGIC_DB_ANCHOR) == 1.0

    def test_pure_zigzag_maximal(self):
        zigzag = [1, 5, 1, 5, 1, 5, 1, 5]
        assert two_year_harmonic_strength(zigzag) > 0.95

    def test_monotone_series_zero(self):
        assert two_year_harmonic_strength([1, 2, 3, 4, 5, 6]) < 0.1

    def test_pc_memory_model_alternates(self):
        series = pc_memory_series(correction=0.8)
        assert alternation_score(series) == 1.0

    def test_pc_memory_converges_to_target(self):
        series = pc_memory_series(target=10.0, correction=0.5, years=40)
        assert abs(series[-1] - 10.0) < 0.01

    def test_pc_memory_with_drift_declines(self):
        series = pc_memory_series(target=12.0, drift=-0.7, years=14)
        assert sum(series[-4:]) < sum(series[:4])


class TestFigure2:
    def test_matched_average_degree(self):
        reports = figure2_comparison(n=300, seed=1)
        healthy = reports["healthy"]["average_degree"]
        crisis = reports["crisis"]["average_degree"]
        assert abs(healthy - crisis) < 1.0

    def test_healthy_has_giant_component(self):
        reports = figure2_comparison(n=300, seed=1)
        assert reports["healthy"]["giant_fraction"] > 0.9

    def test_crisis_longer_theory_practice_paths(self):
        reports = figure2_comparison(n=300, seed=1)
        assert (
            reports["crisis"]["theory_practice_median_distance"]
            > reports["healthy"]["theory_practice_median_distance"]
        )

    def test_crisis_more_introverted(self):
        reports = figure2_comparison(n=300, seed=1)
        assert (
            reports["crisis"]["introversion_index"]
            >= reports["healthy"]["introversion_index"]
        )

    def test_crisis_larger_diameter(self):
        reports = figure2_comparison(n=300, seed=1)
        assert (
            reports["crisis"]["giant_diameter"]
            > reports["healthy"]["giant_diameter"]
        )

    def test_bad_regime_rejected(self):
        with pytest.raises(MetascienceError):
            ResearchGraph.generate(n=10, regime="lukewarm")

    def test_unit_level_validated(self):
        from repro.metascience import ResearchUnit

        with pytest.raises(MetascienceError):
            ResearchUnit(0, 1.5)

    def test_determinism(self):
        a = ResearchGraph.generate(n=100, seed=7).health_report()
        b = ResearchGraph.generate(n=100, seed=7).health_report()
        assert a == b


class TestFigure1Kuhn:
    def test_stage_cycle_order(self):
        process = KuhnProcess(seed=1)
        process.run(2000)
        stages = [entry[1] for entry in process.history]
        # After a crisis, the next different stage must be revolution.
        for i in range(len(stages) - 1):
            if stages[i] == CRISIS and stages[i + 1] != CRISIS:
                assert stages[i + 1] == REVOLUTION
            if stages[i] == REVOLUTION:
                assert stages[i + 1] == NORMAL

    def test_starts_immature(self):
        process = KuhnProcess(seed=1)
        assert process.stage == IMMATURE

    def test_anomalies_reset_by_revolution(self):
        process = KuhnProcess(seed=2)
        process.run(2000)
        for i, (step, stage, anomalies, _p) in enumerate(process.history):
            if stage == NORMAL and i > 0:
                previous = process.history[i - 1][1]
                if previous == REVOLUTION:
                    assert anomalies == 0

    def test_revolutions_happen(self):
        process = KuhnProcess(seed=3)
        process.run(3000)
        assert process.revolutions() > 5

    def test_acceleration_shortens_cycles(self):
        rows = acceleration_experiment([0.5, 2.0], steps=4000)
        slow, fast = rows[0], rows[1]
        assert fast[1] > slow[1]  # more revolutions
        assert fast[2] < slow[2]  # shorter cycles

    def test_artifact_drift_accelerates_crises(self):
        calm = KuhnProcess(seed=4, artifact_drift=0.0)
        drifty = KuhnProcess(seed=4, artifact_drift=0.01)
        calm.run(3000)
        drifty.run(3000)
        assert drifty.revolutions() >= calm.revolutions()

    def test_stage_durations_accounted(self):
        process = KuhnProcess(seed=5)
        process.run(500)
        durations = process.stage_durations()
        total = sum(sum(v) for v in durations.values())
        assert total <= len(process.history)

    def test_invalid_acceleration(self):
        with pytest.raises(MetascienceError):
            KuhnProcess(acceleration=0)
