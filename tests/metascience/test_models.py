"""Tests for the Volterra and Kitcher models."""

import pytest

from repro.errors import MetascienceError
from repro.metascience import (
    RAW_COUNTS,
    best_lag_similarity,
    conserved_quantity,
    diversity_experiment,
    diversity_index,
    equilibrate,
    first_peak_times,
    lotka_volterra,
    peak_times,
    predicted_equilibrium,
    replicator_step,
    shape_similarity,
    succession_chain,
    succession_fit,
    succession_order,
    figure3_series,
)


class TestLotkaVolterra:
    def test_invariant_conserved(self):
        xs, ys = lotka_volterra(2.0, 1.0, steps=4000)
        v0 = conserved_quantity(xs[0], ys[0])
        v_end = conserved_quantity(xs[-1], ys[-1])
        assert abs(v_end - v0) / abs(v0) < 1e-3

    def test_oscillation(self):
        xs, _ys = lotka_volterra(2.0, 1.0, steps=5000)
        # Prey must both rise above and fall below its start.
        assert max(xs) > xs[0] * 1.2
        assert min(xs) < xs[0]

    def test_predator_lags_prey(self):
        xs, ys = lotka_volterra(2.0, 1.0, steps=3000)
        assert peak_times([xs, ys])[0] != peak_times([xs, ys])[1]

    def test_positive_start_required(self):
        with pytest.raises(MetascienceError):
            lotka_volterra(0.0, 1.0)


class TestSuccessionChain:
    def test_staggered_first_peaks(self):
        histories = succession_chain()
        peaks = first_peak_times(histories)
        assert all(p is not None for p in peaks)
        assert peaks == sorted(peaks)
        assert len(set(peaks)) == len(peaks)

    def test_chain_needs_two_species(self):
        with pytest.raises(MetascienceError):
            succession_chain(n_species=1)

    def test_initial_length_checked(self):
        with pytest.raises(MetascienceError):
            succession_chain(n_species=3, initial=[1.0])

    def test_populations_stay_positive(self):
        histories = succession_chain()
        for history in histories:
            assert all(value > 0 for value in history)


class TestShapeFit:
    def test_self_similarity_is_one(self):
        series = [1.0, 2.0, 3.0, 2.0, 1.0]
        assert shape_similarity(series, series) == pytest.approx(1.0)

    def test_anti_similarity(self):
        rising = [1.0, 2.0, 3.0]
        falling = [3.0, 2.0, 1.0]
        assert shape_similarity(rising, falling) == pytest.approx(-1.0)

    def test_length_mismatch(self):
        with pytest.raises(MetascienceError):
            shape_similarity([1.0], [1.0, 2.0])

    def test_best_lag_finds_window(self):
        from repro.metascience.volterra import resample

        histories = succession_chain()
        wave = histories[1]
        coarse = resample(wave, 200)
        series = coarse[30:43]  # a window at the function's own resolution
        corr, offset = best_lag_similarity(wave, series)
        assert corr > 0.99
        assert offset == 30

    def test_pods_volterra_fit_strong(self):
        """The §6 claim: Figure 3's curves recall Volterra solutions."""
        data = figure3_series()
        order = [a for a in succession_order() if a != "access_methods"]
        ordered = {a: [v for _, v in data[a]] for a in order}
        fit = succession_fit(ordered)
        assert all(corr > 0.8 for corr in fit.values()), fit


class TestKitcher:
    def test_interior_equilibrium_proportional_to_quality(self):
        qualities = [3.0, 2.0, 1.0]
        shares = equilibrate(qualities, sharing=1.0)
        predicted = predicted_equilibrium(qualities, sharing=1.0)
        for observed, expected in zip(shares, predicted):
            assert observed == pytest.approx(expected, abs=0.01)

    def test_sharing_sustains_diversity(self):
        rows = diversity_experiment([3.0, 2.0, 1.0])
        by_sharing = {sharing: div for sharing, _s, div in rows}
        assert by_sharing[0.0] < 0.1        # monoculture
        assert by_sharing[1.0] > 0.9        # diversity

    def test_winner_takes_all_without_sharing(self):
        rows = diversity_experiment([3.0, 2.0, 1.0], sharings=(0.0,))
        _sharing, shares, _div = rows[0]
        assert max(shares) > 0.99
        assert shares[0] == max(shares)  # the best tradition wins

    def test_shares_stay_normalized(self):
        shares = [0.5, 0.3, 0.2]
        for _ in range(50):
            shares = replicator_step(shares, [2.0, 1.0, 1.0])
        assert sum(shares) == pytest.approx(1.0)

    def test_diversity_index(self):
        assert diversity_index([1.0, 0.0]) == 0.0
        import math

        assert diversity_index([0.5, 0.5]) == pytest.approx(math.log(2))

    def test_no_interior_equilibrium_without_sharing(self):
        with pytest.raises(MetascienceError):
            predicted_equilibrium([1.0, 2.0], sharing=0.0)

    def test_needs_two_traditions(self):
        with pytest.raises(MetascienceError):
            equilibrate([1.0])

    def test_initial_shares_must_sum_to_one(self):
        with pytest.raises(MetascienceError):
            equilibrate([1.0, 2.0], initial=[0.9, 0.9])
