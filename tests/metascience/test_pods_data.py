"""Tests for the PODS dataset access API."""

from repro.metascience.pods_data import (
    AREA_LABELS,
    AREAS,
    RAW_COUNTS,
    YEARS,
    counts,
    dataset,
    series,
    totals,
    year_index,
)


class TestDatasetAPI:
    def test_series_pairs_years_with_counts(self):
        pairs = series("logic_databases")
        assert pairs[0] == (1982, 1)
        assert pairs[year_index(1986)] == (1986, 10)
        assert len(pairs) == 14

    def test_counts_matches_raw(self):
        for area in AREAS:
            assert counts(area) == RAW_COUNTS[area]

    def test_dataset_covers_all_areas(self):
        data = dataset()
        assert set(data) == set(AREAS)
        for area, pairs in data.items():
            assert [year for year, _ in pairs] == list(YEARS)

    def test_year_index(self):
        assert year_index(1982) == 0
        assert year_index(1995) == 13

    def test_totals_sum_correctly(self):
        volume = totals()
        for area in AREAS:
            assert volume[area] == sum(RAW_COUNTS[area])

    def test_labels_exist_for_all_areas(self):
        assert set(AREA_LABELS) == set(AREAS)
        assert all(isinstance(v, str) and v for v in AREA_LABELS.values())

    def test_counts_are_nonnegative_ints(self):
        for area in AREAS:
            for value in RAW_COUNTS[area]:
                assert isinstance(value, int)
                assert value >= 0
