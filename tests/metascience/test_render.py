"""Tests for the figure renderers."""

from repro.metascience import (
    KuhnProcess,
    ResearchGraph,
    render_figure1,
    render_figure2,
)


class TestFigure1Renderer:
    def test_contains_cycle_diagram(self):
        process = KuhnProcess(seed=1)
        process.run(100)
        text = render_figure1(process)
        assert "normal science" in text
        assert "revolution" in text
        assert "new paradigm" in text

    def test_timeline_glyphs_match_history(self):
        process = KuhnProcess(seed=1)
        process.run(60)
        text = render_figure1(process, width=1000)
        timeline = [
            line.strip()
            for line in text.splitlines()
            if set(line.strip()) <= set(".=!^") and line.strip()
        ]
        assert timeline
        assert len(timeline[0]) == len(process.history)

    def test_wraps_long_runs(self):
        process = KuhnProcess(seed=1)
        process.run(200)
        text = render_figure1(process, width=40)
        glyph_lines = [
            line
            for line in text.splitlines()
            if line.startswith("  ") and set(line.strip()) <= set(".=!^")
        ]
        assert len(glyph_lines) >= 5


class TestFigure2Renderer:
    def test_contains_histogram_and_metrics(self):
        graph = ResearchGraph.generate(n=80, seed=4)
        text = render_figure2(graph)
        assert "spectrum" in text
        assert "giant_fraction" in text
        assert "#" in text

    def test_bucket_counts_sum_to_units(self):
        graph = ResearchGraph.generate(n=80, seed=4)
        text = render_figure2(graph)
        counts = [
            int(line.rsplit("(", 1)[1].rstrip(")"))
            for line in text.splitlines()
            if line.strip().endswith(")") and "|" in line
        ]
        assert sum(counts) == 80
