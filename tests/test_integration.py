"""Cross-package integration tests.

These exercise the seams: SQL vs algebra vs calculus vs Datalog on the
same data; Yannakakis vs the SQL join; design-tool decompositions chased
for losslessness and then *executed* on data; the workbench as the glue.
"""

import pytest

from repro import MetatheoryWorkbench
from repro.acyclic import Hypergraph, yannakakis_join
from repro.datalog import DatalogEngine, FactStore
from repro.dependencies import DesignTool, parse_fds, satisfies_all
from repro.relational import (
    Database,
    NaturalJoin,
    Projection,
    Query,
    RelAtom,
    Relation,
    RelationRef,
    RelationSchema,
    Var,
    evaluate,
    evaluate_query,
    same_content,
)
from repro.relational.sql_frontend import run_sql


@pytest.fixture
def company():
    return Database.from_dict(
        {
            "works": (
                ("emp", "dept"),
                [("ann", "cs"), ("bob", "cs"), ("cal", "ee"), ("dee", "me")],
            ),
            "located": (
                ("dept", "city"),
                [("cs", "sd"), ("ee", "sd"), ("me", "la")],
            ),
        }
    )


class TestFourLanguagesOneQuery:
    """The same query in SQL, algebra, calculus, and Datalog."""

    def test_all_agree(self, company):
        expected = {("ann",), ("bob",), ("cal",)}

        sql_answer = run_sql(
            "SELECT w.emp FROM works w, located l "
            "WHERE w.dept = l.dept AND l.city = 'sd'",
            company,
        )
        assert set(sql_answer.tuples) == expected

        algebra_answer = evaluate(
            Projection(
                NaturalJoin(
                    RelationRef("works"),
                    RelationRef("located").select(
                        __import__(
                            "repro.relational", fromlist=["eq"]
                        ).eq("city", __import__(
                            "repro.relational", fromlist=["Const"]
                        ).Const("sd"))
                    ),
                ),
                ("emp",),
            ),
            company,
        )
        assert set(algebra_answer.tuples) == expected

        from repro.relational import AndF, Cst, Exists

        calculus_answer = evaluate_query(
            Query(
                ["e"],
                Exists(
                    "d",
                    AndF(
                        RelAtom("works", [Var("e"), Var("d")]),
                        RelAtom("located", [Var("d"), Cst("sd")]),
                    ),
                ),
            ),
            company,
        )
        assert set(calculus_answer.tuples) == expected

        engine = DatalogEngine.from_source(
            "in_sd(E) :- works(E, D), located(D, sd).",
            edb=FactStore.from_database(company),
        )
        assert engine.query("in_sd(X)") == expected


class TestYannakakisVsSQL:
    def test_full_join_matches(self, company):
        hypergraph = Hypergraph.from_schema(company.schema())
        fast = yannakakis_join(hypergraph, company)
        slow = run_sql(
            "SELECT w.emp, w.dept, l.city FROM works w, located l "
            "WHERE w.dept = l.dept",
            company,
        )
        aligned = slow.rename(
            dict(zip(slow.schema.attributes, ("emp", "dept", "city")))
        )
        assert same_content(fast, aligned)


class TestDesignToDataPipeline:
    """Normalize a scheme, then execute the decomposition on an instance
    and verify the join reconstructs it (losslessness, on real data)."""

    def test_bcnf_decomposition_reconstructs(self):
        fds = parse_fds("emp -> dept; dept -> city")
        tool = DesignTool("emp dept city", fds)
        report = tool.bcnf()
        assert report["lossless"]

        instance = Relation(
            RelationSchema("u", ("city", "dept", "emp")),
            [
                ("sd", "cs", "ann"),
                ("sd", "cs", "bob"),
                ("la", "me", "dee"),
            ],
        )
        assert satisfies_all(instance, fds)

        fragments = [sorted(f) for f in report["fragments"]]
        projections = [instance.project(f) for f in fragments]
        joined = projections[0]
        for projection in projections[1:]:
            joined = joined.natural_join(projection)
        assert same_content(
            joined.project(("city", "dept", "emp")), instance
        )

    def test_violating_instance_reconstruction_can_fail(self):
        # Lossy decomposition on data violating the FD used to split.
        instance = Relation(
            RelationSchema("u", ("a", "b", "c")),
            [(1, 2, 3), (4, 2, 5)],
        )
        left = instance.project(("a", "b"))
        right = instance.project(("b", "c"))
        rejoined = left.natural_join(right)
        assert len(rejoined) > len(instance)  # spurious tuples


class TestDatalogOverDesignOutput:
    def test_reachability_over_decomposed_schema(self):
        wb = MetatheoryWorkbench.from_dict(
            {
                "edge": (("src", "dst"), [(1, 2), (2, 3), (3, 4)]),
            }
        )
        engine = wb.datalog(
            "reach(X, Y) :- edge(X, Y). reach(X, Z) :- reach(X, Y), edge(Y, Z)."
        )
        for strategy in ("naive", "seminaive", "magic", "topdown"):
            assert engine.query("reach(1, X)", strategy=strategy) == {
                (1, 2),
                (1, 3),
                (1, 4),
            }


class TestIncompleteToCertainPipeline:
    def test_certain_answers_via_workbench_algebra(self):
        from repro.incomplete import (
            Null,
            Table,
            TableDatabase,
            brute_force_certain_answers,
            naive_certain_answers,
        )

        n = Null("dept_of_bob")
        works = Table(
            Relation(
                RelationSchema("works", ("emp", "dept")),
                [("ann", "cs"), ("bob", n)],
                validate=False,
            )
        )
        located = Table(
            Relation(
                RelationSchema("located", ("dept", "city")),
                [("cs", "sd")],
                validate=False,
            )
        )
        tdb = TableDatabase([works, located])
        q = Projection(
            NaturalJoin(RelationRef("works"), RelationRef("located")),
            ("emp", "city"),
        )
        fast = naive_certain_answers(q, tdb)
        slow = brute_force_certain_answers(q, tdb)
        assert set(fast.tuples) == set(slow.tuples) == {("ann", "sd")}


class TestTransactionsOverWorkloads:
    def test_all_three_schedulers_serializable_and_comparable(self):
        from repro.transactions import (
            WorkloadConfig,
            generate_schedule,
            is_conflict_serializable,
            optimistic,
            timestamp_order,
            two_phase_lock,
        )

        config = WorkloadConfig(
            num_transactions=8,
            ops_per_transaction=4,
            num_items=6,
            hot_access_probability=0.5,
            seed=42,
        )
        schedule = generate_schedule(config)
        for runner in (two_phase_lock, timestamp_order, optimistic):
            output, stats = runner(schedule)
            assert is_conflict_serializable(output), runner.__name__
