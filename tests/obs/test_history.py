"""Tests for the query-history flight recorder (repro.obs.history)."""

import json

import pytest

from repro.core.workbench import MetatheoryWorkbench
from repro.errors import SchemaError
from repro.obs import QueryHistory, QueryRecord
from repro.obs.history import make_history, query_hash, query_text
from repro.obs.metrics import MetricsRegistry
from repro.relational.database import Database


def make_wb(**kwargs):
    db = Database.from_dict(
        {
            "person": (("pid", "name"), [(1, "ada"), (2, "bob"), (3, "eve")]),
            "likes": (("pid", "what"), [(1, "sql"), (2, "datalog")]),
        }
    )
    return MetatheoryWorkbench(db, **kwargs)


class TestRingBuffer:
    def test_capacity_keeps_most_recent(self):
        history = QueryHistory(capacity=3)
        for i in range(5):
            history.add("sql", "Q%d" % i, elapsed=0.001)
        assert len(history) == 3
        assert [r.text for r in history.records()] == ["Q2", "Q3", "Q4"]
        # qids keep counting across evictions.
        assert [r.qid for r in history.records()] == [2, 3, 4]
        assert history.last().qid == 4

    def test_clear_keeps_the_id_counter(self):
        history = QueryHistory()
        history.add("sql", "a", elapsed=0.0)
        history.clear()
        record = history.add("sql", "b", elapsed=0.0)
        assert record.qid == 1

    def test_iteration_and_last(self):
        history = QueryHistory()
        assert history.last() is None
        history.add("sql", "a", elapsed=0.0)
        assert [r.text for r in history] == ["a"]


class TestWorkbenchRecording:
    def test_disabled_by_default(self):
        wb = make_wb()
        wb.sql("SELECT name FROM person")
        assert wb.history.enabled is False
        assert len(wb.history) == 0

    def test_records_successful_queries(self):
        wb = make_wb(history=True)
        relation = wb.sql("SELECT name FROM person")
        record = wb.history.last()
        assert record.kind == "sql"
        assert record.status == "ok"
        assert record.rows == len(relation) == 3
        assert record.route == "streaming"
        assert record.wall_ms >= 0.0
        assert record.plan_cache_hit == False  # noqa: E712 - stored flag
        assert record.plan_fingerprint is not None
        assert record.query_hash == query_hash("SELECT name FROM person")

    def test_failed_query_is_recorded_and_reraised(self):
        wb = make_wb(history=True)
        with pytest.raises(SchemaError):
            wb.sql("SELECT x FROM no_such_table")
        record = wb.history.last()
        assert record.status == "error"
        assert record.rows is None
        assert record.error.startswith("SchemaError:")

    def test_run_delegation_leaves_one_record(self):
        wb = make_wb(history=True)
        wb.run("SELECT name FROM person")
        assert len(wb.history) == 1
        assert wb.history.last().kind == "sql"

    def test_every_front_end_is_recorded(self):
        from repro.relational.algebra import Projection, RelationRef

        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person")
        wb.algebra(Projection(RelationRef("person"), ("name",)))
        wb.calculus("{(x, y) | person(x, y)}")
        wb.run("mutual(X) :- person(X, N), likes(X, W).")
        assert [r.kind for r in wb.history.records()] == [
            "sql", "algebra", "calculus", "datalog",
        ]
        datalog = wb.history.last()
        assert datalog.route == "datalog:lowered"
        assert datalog.rows > 0  # model fact count

    def test_recursive_datalog_routes_to_fixpoint(self):
        wb = make_wb(history=True)
        wb.run("p(X, Y) :- likes(X, Y). p(X, Z) :- p(X, Y), p(Y, Z).")
        assert wb.history.last().route == "datalog:fixpoint"

    def test_plan_cache_flags_flip_on_repeat(self):
        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person")
        wb.sql("SELECT name FROM person")
        first, second = wb.history.records()
        assert first.plan_cache_hit == 0
        assert second.plan_cache_hit == 1
        assert second.parse_cache_hit == 1
        assert first.plan_fingerprint == second.plan_fingerprint

    def test_treewalk_and_direct_routes(self):
        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person", executor=False)
        wb.calculus("{(x, y) | person(x, y)}", via="direct")
        treewalk, direct = wb.history.records()
        assert treewalk.route == "treewalk"
        assert direct.route == "direct"

    def test_enable_disable_toggle(self):
        wb = make_wb()
        wb.sql("SELECT name FROM person")
        wb.history.enable()
        wb.sql("SELECT name FROM person")
        wb.history.disable()
        wb.sql("SELECT name FROM person")
        assert len(wb.history) == 1

    def test_caller_stats_object_is_still_honored(self):
        from repro.datalog import EngineStatistics

        wb = make_wb(history=True)
        stats = EngineStatistics()
        wb.sql("SELECT name FROM person", stats=stats)
        assert stats.tuples_materialized > 0
        assert wb.history.last().tuples_materialized == (
            stats.tuples_materialized
        )


class TestSlowQueryFlightRecorder:
    def test_slow_query_attaches_report(self):
        wb = make_wb(slow_query_ms=0.0)  # everything is "slow"
        assert wb.history.enabled  # slow_ms implies recording
        wb.sql("SELECT name FROM person")
        record = wb.history.last()
        assert record.slow is True
        assert record.instrumented is True
        assert record.report is not None
        assert record.report.rows == record.rows
        assert wb.history.slow_queries() == [record]

    def test_fast_queries_drop_their_reports(self):
        wb = make_wb(slow_query_ms=1e9)
        wb.sql("SELECT name FROM person")
        record = wb.history.last()
        assert record.slow is False
        assert record.report is None
        assert record.instrumented is True  # armed -> instrumented twin
        assert wb.history.slow_queries() == []

    def test_unarmed_history_never_instruments(self):
        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person")
        record = wb.history.last()
        assert record.instrumented is False
        assert record.report is None

    def test_instrumented_result_matches_plain_run(self):
        wb_plain = make_wb()
        wb_armed = make_wb(slow_query_ms=0.0)
        text = "SELECT person.name FROM person, likes WHERE person.pid = likes.pid"
        assert sorted(wb_plain.sql(text).tuples) == sorted(
            wb_armed.sql(text).tuples
        )

    def test_datalog_records_without_reports(self):
        wb = make_wb(slow_query_ms=0.0)
        wb.run("p(X) :- person(X, N).")
        record = wb.history.last()
        assert record.slow is True
        assert record.report is None  # fixpoint/lowered: no OpReport tree


class TestMetricsBridge:
    def test_records_bump_the_registry(self):
        registry = MetricsRegistry()
        wb = make_wb(history=True, metrics=registry)
        wb.sql("SELECT name FROM person")
        with pytest.raises(SchemaError):
            wb.sql("SELECT x FROM nope")
        assert registry.value("queries_total", kind="sql") == 2
        assert registry.value("query_errors_total", kind="sql") == 1
        hist = registry.histogram("query_wall_ms", kind="sql")
        assert hist.count == 2

    def test_disabled_history_touches_no_metrics(self):
        registry = MetricsRegistry()
        wb = make_wb(metrics=registry)
        wb.sql("SELECT name FROM person")
        with pytest.raises(KeyError):
            registry.value("queries_total", kind="sql")


class TestExport:
    def test_as_json_lines_round_trips(self):
        wb = make_wb(slow_query_ms=0.0)
        wb.sql("SELECT name FROM person")
        with pytest.raises(SchemaError):
            wb.sql("SELECT x FROM nope")
        records = [
            json.loads(line)
            for line in wb.history.as_json_lines().splitlines()
        ]
        assert [r["status"] for r in records] == ["ok", "error"]
        ok = records[0]
        assert ok["slow"] is True
        assert ok["report"]["rows"] == 3  # the attached OpReport tree
        assert ok["qid"] == 0

    def test_record_dict_matches_row_fields(self):
        record = QueryRecord(0, "sql", "SELECT 1", 1.5)
        row = record.row()
        assert len(row) == 15
        data = record.as_dict()
        assert data["kind"] == "sql"
        assert data["report"] is None


class TestMakeHistory:
    def test_none_is_present_but_off(self):
        history = make_history(None)
        assert isinstance(history, QueryHistory)
        assert history.enabled is False

    def test_true_enables(self):
        assert make_history(True).enabled is True

    def test_slow_ms_implies_enabled(self):
        history = make_history(None, slow_ms=5.0)
        assert history.enabled is True
        assert history.slow_ms == 5.0

    def test_existing_instance_is_adopted(self):
        registry = MetricsRegistry()
        mine = QueryHistory(capacity=7, enabled=False)
        history = make_history(mine, slow_ms=3.0, registry=registry)
        assert history is mine
        assert history.slow_ms == 3.0
        assert history.registry is registry

    def test_query_text_of_objects_is_their_repr(self):
        from repro.relational.algebra import RelationRef

        expr = RelationRef("person")
        assert query_text(expr) == repr(expr)
        assert query_text("SELECT 1") == "SELECT 1"


class TestZeroCostWhenOff:
    def test_no_records_and_no_record_allocations(self, monkeypatch):
        """The disabled recorder's pin: the hot path never builds a
        QueryRecord, a capture dict, or its own statistics object."""
        allocations = []
        original = QueryRecord.__init__

        def counting(self, *args, **kwargs):
            allocations.append(self)
            original(self, *args, **kwargs)

        monkeypatch.setattr(QueryRecord, "__init__", counting)

        recorded = []
        original_dispatch = MetatheoryWorkbench._recorded

        def counting_dispatch(self, *args, **kwargs):
            recorded.append(args)
            return original_dispatch(self, *args, **kwargs)

        monkeypatch.setattr(
            MetatheoryWorkbench, "_recorded", counting_dispatch
        )

        wb = make_wb()
        wb.sql("SELECT name FROM person")
        wb.run("p(X) :- person(X, N).")
        wb.calculus("{(x, y) | person(x, y)}")
        assert allocations == []
        assert recorded == []

        # Sanity: the counters fire once recording is on.
        wb.history.enable()
        wb.sql("SELECT name FROM person")
        assert len(allocations) == 1
        assert len(recorded) == 1
