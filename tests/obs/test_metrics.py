"""Tests for the metrics registry and the EngineStatistics JSON/diff views."""

import json

import pytest

from repro.datalog import EngineStatistics
from repro.datalog.stats import FIELDS
from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, render_metrics


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert registry.value("hits") == 5

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("hits").inc(-1)

    def test_gauge_sets_and_adds(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.add(-2)
        assert registry.value("depth") == 5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in (2.0, 8.0, 5.0):
            hist.observe(value)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["sum"] == 15.0
        assert snapshot["min"] == 2.0
        assert snapshot["max"] == 8.0
        assert snapshot["mean"] == 5.0

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestSeriesKeying:
    def test_same_labels_same_series(self):
        registry = MetricsRegistry()
        registry.counter("scans", workload="tc", n=10).inc(3)
        registry.counter("scans", n=10, workload="tc").inc(2)
        assert registry.value("scans", workload="tc", n=10) == 5
        assert len(registry) == 1

    def test_different_labels_different_series(self):
        registry = MetricsRegistry()
        registry.counter("scans", workload="tc").inc()
        registry.counter("scans", workload="sg").inc(9)
        assert registry.value("scans", workload="tc") == 1
        assert registry.value("scans", workload="sg") == 9

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", x=1)
        with pytest.raises(ObservabilityError):
            registry.gauge("m", x=1)
        # A different label set is a different series: no clash.
        registry.gauge("m", x=2)

    def test_missing_series_raises_keyerror(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("absent")


class TestDump:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("aborts", scheduler="occ").inc(3)
        registry.gauge("ratio").set(5.5)
        registry.histogram("ms").observe(1.0)
        return registry

    def test_dump_shape_and_order(self):
        entries = self.build().dump()
        assert [e["name"] for e in entries] == ["aborts", "ratio", "ms"]
        assert entries[0] == {
            "type": "counter",
            "name": "aborts",
            "labels": {"scheduler": "occ"},
            "value": 3,
        }
        assert entries[1]["value"] == 5.5
        assert entries[2]["type"] == "histogram"
        assert entries[2]["count"] == 1

    def test_as_json_lines_parses(self):
        lines = self.build().as_json_lines().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["aborts", "ratio", "ms"]

    def test_render_metrics_text(self):
        text = render_metrics(self.build())
        assert "aborts{scheduler=occ}" in text
        assert "counter" in text and "gauge" in text and "histogram" in text
        assert render_metrics(MetricsRegistry()) == ""

    def test_clear(self):
        registry = self.build()
        registry.clear()
        assert len(registry) == 0
        assert registry.dump() == []


class TestEngineStatisticsViews:
    def test_as_json_agrees_with_as_dict(self):
        stats = EngineStatistics(facts_scanned=7, index_probes=2)
        assert json.loads(stats.as_json()) == stats.as_dict()
        assert list(stats.as_dict()) == list(FIELDS)

    def test_diff_is_per_field_subtraction(self):
        stats = EngineStatistics(facts_scanned=3)
        before = stats.copy()
        stats.facts_scanned += 4
        stats.rule_firings += 2
        delta = stats.diff(before)
        assert delta.facts_scanned == 4
        assert delta.rule_firings == 2
        assert delta.index_probes == 0
        # Snapshot is unaffected; diff returns a fresh instance.
        assert before.facts_scanned == 3
        assert delta is not stats

    def test_format_delegates_to_same_field_order(self):
        stats = EngineStatistics(tuples_materialized=12)
        lines = stats.format().splitlines()
        assert [line.split()[0] for line in lines] == list(FIELDS)
        assert any(line.endswith("12") for line in lines)

    def test_equality_is_by_counters(self):
        assert EngineStatistics(iterations=1) == EngineStatistics(iterations=1)
        assert EngineStatistics(iterations=1) != EngineStatistics()
