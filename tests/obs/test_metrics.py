"""Tests for the metrics registry and the EngineStatistics JSON/diff views."""

import json

import pytest

from repro.datalog import EngineStatistics
from repro.datalog.stats import FIELDS
from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, render_metrics


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert registry.value("hits") == 5

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("hits").inc(-1)

    def test_gauge_sets_and_adds(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.add(-2)
        assert registry.value("depth") == 5

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        for value in (2.0, 8.0, 5.0):
            hist.observe(value)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["sum"] == 15.0
        assert snapshot["min"] == 2.0
        assert snapshot["max"] == 8.0
        assert snapshot["mean"] == 5.0

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestHistogramPercentiles:
    def test_nearest_rank_on_small_samples(self):
        hist = MetricsRegistry().histogram("ms")
        for value in (10.0, 20.0, 30.0, 40.0):
            hist.observe(value)
        assert hist.p50 == 20.0  # ceil(0.5 * 4) = rank 2
        assert hist.p95 == 40.0
        assert hist.percentile(100) == 40.0
        assert hist.percentile(0) == 10.0

    def test_empty_percentiles_are_none(self):
        hist = MetricsRegistry().histogram("ms")
        assert hist.p50 is None
        assert hist.p95 is None
        assert hist.snapshot()["p50"] is None

    def test_single_observation(self):
        hist = MetricsRegistry().histogram("ms").observe(7.0)
        assert hist.p50 == 7.0
        assert hist.p95 == 7.0

    def test_order_insensitive(self):
        a = MetricsRegistry().histogram("ms")
        b = MetricsRegistry().histogram("ms")
        values = [float(v) for v in (5, 1, 9, 3, 7, 2, 8, 4, 6)]
        for value in values:
            a.observe(value)
        for value in sorted(values):
            b.observe(value)
        assert a.p50 == b.p50 == 5.0
        assert a.p95 == b.p95 == 9.0

    def test_decimation_is_deterministic_and_bounded(self):
        cap = MetricsRegistry().histogram("ms").SAMPLE_CAP
        a = MetricsRegistry().histogram("ms")
        b = MetricsRegistry().histogram("ms")
        for value in range(4 * cap):
            a.observe(float(value))
            b.observe(float(value))
        assert len(a._samples) <= cap
        assert a._stride > 1
        # Exact stats stay exact under decimation.
        assert a.count == 4 * cap
        assert a.min == 0.0 and a.max == float(4 * cap - 1)
        # Same sequence, same retained sample, same estimates.
        assert a._samples == b._samples
        assert a.p50 == b.p50
        # The estimate stays within one stride of the true median.
        true_median = (4 * cap - 1) / 2.0
        assert abs(a.p50 - true_median) <= a._stride

    def test_snapshot_and_dump_carry_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("ms")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        (entry,) = registry.dump()
        assert entry["p50"] == 2.0
        assert entry["p95"] == 3.0
        assert "p50=2" in render_metrics(registry)


class TestScoped:
    def test_scoped_isolates_and_restores(self):
        registry = MetricsRegistry()
        registry.counter("outer").inc(3)
        with registry.scoped() as scoped:
            assert scoped is registry
            assert len(registry) == 0
            registry.counter("inner").inc()
            assert registry.value("inner") == 1
        assert registry.value("outer") == 3
        with pytest.raises(KeyError):
            registry.value("inner")

    def test_scoped_restores_on_exception(self):
        registry = MetricsRegistry()
        registry.gauge("kept").set(9)
        with pytest.raises(RuntimeError):
            with registry.scoped():
                registry.counter("lost").inc()
                raise RuntimeError("boom")
        assert registry.value("kept") == 9
        assert len(registry) == 1

    def test_scoped_nests(self):
        registry = MetricsRegistry()
        with registry.scoped():
            registry.counter("a").inc()
            with registry.scoped():
                assert len(registry) == 0
            assert registry.value("a") == 1


class TestSeriesKeying:
    def test_same_labels_same_series(self):
        registry = MetricsRegistry()
        registry.counter("scans", workload="tc", n=10).inc(3)
        registry.counter("scans", n=10, workload="tc").inc(2)
        assert registry.value("scans", workload="tc", n=10) == 5
        assert len(registry) == 1

    def test_different_labels_different_series(self):
        registry = MetricsRegistry()
        registry.counter("scans", workload="tc").inc()
        registry.counter("scans", workload="sg").inc(9)
        assert registry.value("scans", workload="tc") == 1
        assert registry.value("scans", workload="sg") == 9

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", x=1)
        with pytest.raises(ObservabilityError):
            registry.gauge("m", x=1)
        # A different label set is a different series: no clash.
        registry.gauge("m", x=2)

    def test_missing_series_raises_keyerror(self):
        with pytest.raises(KeyError):
            MetricsRegistry().value("absent")


class TestDump:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("aborts", scheduler="occ").inc(3)
        registry.gauge("ratio").set(5.5)
        registry.histogram("ms").observe(1.0)
        return registry

    def test_dump_shape_and_order(self):
        entries = self.build().dump()
        assert [e["name"] for e in entries] == ["aborts", "ratio", "ms"]
        assert entries[0] == {
            "type": "counter",
            "name": "aborts",
            "labels": {"scheduler": "occ"},
            "value": 3,
        }
        assert entries[1]["value"] == 5.5
        assert entries[2]["type"] == "histogram"
        assert entries[2]["count"] == 1

    def test_as_json_lines_parses(self):
        lines = self.build().as_json_lines().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["aborts", "ratio", "ms"]

    def test_render_metrics_text(self):
        text = render_metrics(self.build())
        assert "aborts{scheduler=occ}" in text
        assert "counter" in text and "gauge" in text and "histogram" in text
        assert render_metrics(MetricsRegistry()) == ""

    def test_clear(self):
        registry = self.build()
        registry.clear()
        assert len(registry) == 0
        assert registry.dump() == []


class TestEngineStatisticsViews:
    def test_as_json_agrees_with_as_dict(self):
        stats = EngineStatistics(facts_scanned=7, index_probes=2)
        assert json.loads(stats.as_json()) == stats.as_dict()
        assert list(stats.as_dict()) == list(FIELDS)

    def test_diff_is_per_field_subtraction(self):
        stats = EngineStatistics(facts_scanned=3)
        before = stats.copy()
        stats.facts_scanned += 4
        stats.rule_firings += 2
        delta = stats.diff(before)
        assert delta.facts_scanned == 4
        assert delta.rule_firings == 2
        assert delta.index_probes == 0
        # Snapshot is unaffected; diff returns a fresh instance.
        assert before.facts_scanned == 3
        assert delta is not stats

    def test_format_delegates_to_same_field_order(self):
        stats = EngineStatistics(tuples_materialized=12)
        lines = stats.format().splitlines()
        assert [line.split()[0] for line in lines] == list(FIELDS)
        assert any(line.endswith("12") for line in lines)

    def test_equality_is_by_counters(self):
        assert EngineStatistics(iterations=1) == EngineStatistics(iterations=1)
        assert EngineStatistics(iterations=1) != EngineStatistics()
