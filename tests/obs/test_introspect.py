"""Tests for the ``sys_`` system relations (repro.obs.introspect)."""

import pytest

from repro.core.workbench import MetatheoryWorkbench
from repro.datalog.facts import FactStore
from repro.errors import DatalogError, SchemaError
from repro.obs import SYSTEM_RELATION_NAMES
from repro.obs.introspect import materialize_system_facts, render_labels
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.relational.database import Database, is_system_name
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def make_wb(**kwargs):
    db = Database.from_dict(
        {
            "person": (("pid", "name"), [(1, "ada"), (2, "bob"), (3, "eve")]),
            "likes": (("pid", "what"), [(1, "sql"), (2, "datalog")]),
        }
    )
    kwargs.setdefault("metrics", MetricsRegistry())
    return MetatheoryWorkbench(db, **kwargs)


class TestReservedNamespace:
    def test_add_rejects_sys_names(self):
        db = Database()
        with pytest.raises(SchemaError, match="reserved 'sys_' namespace"):
            db.add(Relation(RelationSchema("sys_mine", ("a",)), [(1,)]))

    def test_replace_rejects_sys_names(self):
        db = Database()
        with pytest.raises(SchemaError, match="reserved 'sys_' namespace"):
            db.replace(Relation(RelationSchema("sys_metrics", ("a",)), ()))

    def test_insert_rejects_sys_names(self):
        wb = make_wb()
        with pytest.raises(SchemaError, match="reserved 'sys_' namespace"):
            wb.db.insert("sys_query_log", [(1,)])

    def test_system_escape_hatch_for_scratch_databases(self):
        db = Database()
        db.add(
            Relation(RelationSchema("sys_metrics", ("a",)), [(1,)]),
            system=True,
        )
        assert db.names() == ["sys_metrics"]

    def test_register_virtual_requires_sys_prefix_and_schema(self):
        db = Database()
        with pytest.raises(SchemaError, match="'sys_' namespace"):
            db.register_virtual(RelationSchema("plain", ("a",)), list)
        with pytest.raises(SchemaError, match="RelationSchema"):
            db.register_virtual("sys_x", list)

    def test_is_system_name(self):
        assert is_system_name("sys_metrics")
        assert not is_system_name("system")
        assert not is_system_name(("sys_", "tuple"))


class TestVirtualVisibility:
    def test_installed_on_every_workbench(self):
        wb = make_wb()
        assert tuple(wb.db.virtual_names()) == SYSTEM_RELATION_NAMES

    def test_schema_includes_virtuals_by_default(self):
        wb = make_wb()
        schema = wb.db.schema()
        assert "sys_query_log" in schema
        assert "person" in schema
        user_only = wb.db.schema(virtual=False)
        assert "sys_query_log" not in user_only

    def test_enumeration_sees_user_data_only(self):
        wb = make_wb()
        assert wb.db.names() == ["likes", "person"]
        assert sorted(wb.db) == ["likes", "person"]
        assert len(wb.db) == 2
        assert "sys_metrics" in wb.db  # but resolvable by name

    def test_hypergraph_and_full_join_exclude_sys(self):
        wb = make_wb()
        hypergraph = wb.schema_hypergraph()
        assert not any(is_system_name(edge) for edge in hypergraph.names())
        joined = wb.full_join(method="naive")
        assert set(joined.schema.attributes) == {"pid", "name", "what"}

    def test_fact_store_ingestion_excludes_sys(self):
        wb = make_wb()
        store = FactStore.from_database(wb.db)
        assert sorted(store.predicates()) == ["likes", "person"]

    def test_copy_and_active_domain_exclude_sys(self):
        wb = make_wb()
        copied = wb.db.copy()
        assert copied.names() == ["likes", "person"]
        assert copied.virtual_names() == []
        assert "ada" in wb.db.active_domain()

    def test_conformance_generators_cannot_emit_sys_names(self):
        from repro.conformance.workloads import GENERATORS, generate_case
        from repro.core.random_instances import random_database

        for seed in range(5):
            db = random_database(seed=seed)
            assert not any(is_system_name(n) for n in db.names())
        for family in sorted(GENERATORS):
            case = generate_case(family, seed=7)
            db = case.payload.get("db")
            if db is not None:
                assert not any(is_system_name(n) for n in db.names())


class TestFourFrontEnds:
    """Every front-end can query at least sys_metrics and sys_query_log."""

    def prepared(self):
        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person")
        wb.run("p(X) :- person(X, N).")
        return wb

    def test_sql(self):
        wb = self.prepared()
        log = wb.sql("SELECT kind, status FROM sys_query_log")
        assert sorted(log.tuples) == [("datalog", "ok"), ("sql", "ok")]
        metrics = wb.sql(
            "SELECT name, value FROM sys_metrics"
            " WHERE name = 'queries_total'"
        )
        # Three finished queries at materialization time: the two from
        # prepared() plus the sys_query_log query just above (the log
        # query records itself once it completes).
        assert sum(v for _n, v in metrics.tuples) == 3

    def test_algebra(self):
        from repro.relational.algebra import Projection, RelationRef

        wb = self.prepared()
        log = wb.algebra(
            Projection(RelationRef("sys_query_log"), ("qid", "kind"))
        )
        assert sorted(log.tuples) == [(0, "sql"), (1, "datalog")]
        metrics = wb.algebra(
            Projection(RelationRef("sys_metrics"), ("name", "stat"))
        )
        assert ("queries_total", "value") in metrics.tuples

    def test_calculus(self):
        wb = self.prepared()
        metrics = wb.calculus(
            "{(n, v) | exists k . exists l . exists s ."
            " sys_metrics(n, k, l, s, v)}"
        )
        assert any(n == "queries_total" for n, _v in metrics.tuples)
        log = wb.calculus(
            "{(q, k) | exists s . exists h . exists t . exists w ."
            " exists r . exists tm . exists rf . exists pch . exists prh ."
            " exists pf . exists ro . exists sl . exists e ."
            " sys_query_log(q, k, s, h, t, w, r, tm, rf, pch, prh, pf,"
            " ro, sl, e)}"
        )
        # The sys_metrics calculus query above already finished, so the
        # log it reads includes it.
        assert sorted(log.tuples) == [
            (0, "sql"), (1, "datalog"), (2, "calculus"),
        ]

    def test_datalog(self):
        wb = self.prepared()
        model = wb.run(
            'kinds(K) :- sys_query_log(Q, K, "ok", H, T, W, R, TM, RF,'
            " PCH, PRH, PF, RO, SL, E)."
        )
        assert sorted(model.get("kinds")) == [("datalog",), ("sql",)]
        counts = wb.run(
            'totals(N, V) :- sys_metrics(N, K, L, "value", V).'
        )
        assert any(n == "queries_total" for n, _v in counts.get("totals"))

    def test_datalog_head_into_sys_raises(self):
        wb = self.prepared()
        with pytest.raises(DatalogError, match="read-only 'sys_'"):
            wb.datalog("sys_query_log(X) :- person(X, N).")
        with pytest.raises(DatalogError, match="read-only 'sys_'"):
            # A ground fact is a bodyless rule: also a rejected head.
            wb.run('sys_metrics("a", "b", "c", "d", 1).', kind="datalog")

    def test_unreferenced_sys_tables_not_materialized(self):
        wb = self.prepared()
        program = wb.datalog("p(X) :- person(X, N).")
        assert not any(
            is_system_name(p) for p in program.edb.predicates()
        )


class TestQueryLogDifferential:
    """The acceptance pin: sys_query_log matches the runs that happened,
    including a deliberately failed and a deliberately slow query."""

    def test_log_matches_actual_runs(self):
        wb = make_wb(slow_query_ms=0.0)  # every query is "slow"
        ran = [
            "SELECT name FROM person",
            "SELECT person.name FROM person, likes"
            " WHERE person.pid = likes.pid",
        ]
        results = [wb.sql(text) for text in ran]
        with pytest.raises(SchemaError):
            wb.sql("SELECT ghost FROM no_such_relation")  # deliberate fail

        rows = sorted(
            wb.sql(
                "SELECT qid, status, text, rows, slow FROM sys_query_log"
            ).tuples
        )
        assert len(rows) == 3
        for (qid, status, text, rowcount, slow), expected_text, result in zip(
            rows[:2], ran, results
        ):
            assert status == "ok"
            assert text == expected_text
            assert rowcount == len(result)
            assert slow == 1
        qid, status, text, rowcount, slow = rows[2]
        assert status == "error"
        assert rowcount is None

        # The deliberately slow queries carry their full OpReport trees
        # (the log query itself recorded as qid 3 after materializing).
        slow_records = wb.history.slow_queries()
        ok_records = [
            r for r in slow_records if r.status == "ok" and r.qid < 2
        ]
        assert len(ok_records) == 2
        for record, result in zip(ok_records, results):
            assert record.report is not None
            assert record.report.rows == len(result)
            assert record.report.as_dict()["operator"]

    def test_log_query_sees_only_finished_queries(self):
        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person")
        log = wb.sql("SELECT qid FROM sys_query_log")
        # The log query itself records after materialization.
        assert sorted(log.tuples) == [(0,)]
        assert wb.history.last().text == "SELECT qid FROM sys_query_log"

    def test_log_joins_plan_cache_by_fingerprint(self):
        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person")
        wb.sql("SELECT name FROM person")
        joined = wb.sql(
            "SELECT log.qid, cache.hits FROM sys_query_log log,"
            " sys_plan_cache cache"
            " WHERE log.plan_fingerprint = cache.plan_fingerprint"
        )
        assert sorted(joined.tuples) == [(0, 1), (1, 1)]


class TestSystemTables:
    def test_sys_metrics_values_are_scalars(self):
        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person")
        rows = wb.db["sys_metrics"].tuples
        assert rows
        for name, kind, labels, stat, value in rows:
            assert isinstance(name, str) and isinstance(labels, str)
            assert kind in ("counter", "gauge", "histogram")
            assert isinstance(value, (int, float))
        stats = {
            stat for _n, kind, _l, stat, _v in rows if kind == "histogram"
        }
        assert {"count", "sum", "mean", "p50", "p95"} <= stats

    def test_sys_metrics_includes_plan_cache_gauges(self):
        wb = make_wb()
        wb.sql("SELECT name FROM person")
        rows = wb.sql(
            "SELECT name, value FROM sys_metrics"
            " WHERE name = 'plan_cache_misses'"
        ).tuples
        # Two misses at materialization time: the person query and the
        # sys_metrics query itself (planned before it executes).
        assert rows == {("plan_cache_misses", 2)}

    def test_sys_spans_mirror_the_tracer(self):
        wb = make_wb(tracer=Tracer())
        with wb.tracer.span("outer", workload="tc"):
            with wb.tracer.span("inner"):
                pass
        rows = sorted(wb.db["sys_spans"].tuples)
        names = {(name, parent, depth)
                 for _sid, parent, name, _k, depth, _ms, _a in rows}
        assert ("outer", None, 0) in names
        assert ("inner", 0, 1) in names
        outer = [r for r in rows if r[2] == "outer"][0]
        assert outer[6] == "workload=tc"

    def test_sys_plan_cache_counts_hits_per_entry(self):
        wb = make_wb()
        wb.sql("SELECT name FROM person")
        wb.sql("SELECT name FROM person")
        wb.sql("SELECT what FROM likes")
        rows = sorted(wb.db["sys_plan_cache"].tuples)
        assert [
            (entry, hits)
            for entry, _fp, _opt, hits, _route, _kernel in rows
        ] == [(0, 1), (1, 0)]
        assert all(opt == 1 for _e, _fp, opt, _h, _r, _k in rows)
        assert all(row[4] == "streaming" for row in rows)
        assert all(row[5] is None for row in rows)  # no compiled runs

    def test_sys_catalog_stats_census_user_relations_only(self):
        wb = make_wb()
        rows = sorted(wb.db["sys_catalog_stats"].tuples)
        assert [(r, a) for r, a, _n, _d in rows] == [
            ("likes", "pid"), ("likes", "what"),
            ("person", "name"), ("person", "pid"),
        ]
        person_pid = [r for r in rows if r[:2] == ("person", "pid")][0]
        assert person_pid[2] == 3  # rows
        assert person_pid[3] == 3  # distinct pids

    def test_sys_workers_reports_cached_backends(self):
        wb = make_wb()
        assert wb.db["sys_workers"].tuples == set()
        wb.parallel_backend(workers=1)
        wb.sql("SELECT name FROM person", executor="parallel", workers=1)
        (row,) = wb.db["sys_workers"].tuples
        pool, workers, started = row[0], row[1], row[2]
        assert (pool, workers) == (1, 1)
        assert started == 0  # below the cost gate: no process spawned
        assert row[8] >= 1  # serial_runs

    def test_render_labels_is_sorted_and_stable(self):
        assert render_labels({"b": 2, "a": 1}) == "a=1,b=2"
        assert render_labels({}) == ""


class TestMaterializeSystemFacts:
    def test_adds_only_referenced_predicates(self):
        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person")
        from repro.datalog.parser import parse_program

        program, _ = parse_program(
            "hot(H) :- sys_query_log(Q, K, S, H, T, W, R, TM, RF, PCH,"
            " PRH, PF, RO, SL, E)."
        )
        store = materialize_system_facts(wb.db, program, FactStore())
        assert store.predicates() == ["sys_query_log"]
        assert store.count("sys_query_log") == 1

    def test_multiple_referenced_sys_tables_all_materialize(self):
        wb = make_wb(history=True)
        wb.sql("SELECT name FROM person")
        engine = wb.datalog(
            "hot(H) :- sys_query_log(Q, K, S, H, T, W, R, TM, RF, PCH,"
            " PRH, PF, RO, SL, E).\n"
            'counts(V) :- sys_metrics(N, MK, L, "value", V).'
        )
        predicates = engine.edb.predicates()
        assert "sys_query_log" in predicates
        assert "sys_metrics" in predicates
        assert "sys_spans" not in predicates
