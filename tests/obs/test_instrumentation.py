"""Cross-layer instrumentation: fixpoint spans, scheduler events, caches.

These tests pin the *shape* of what each execution layer emits — span
names, nesting, and the attributes downstream renderers rely on — and
the two observability contracts that cut across layers: an enabled
tracer bypasses the Datalog model cache (a cache hit would emit no
spans), and tracing never changes answers.
"""

from repro.datalog import (
    DatalogEngine,
    EngineStatistics,
    FactStore,
    magic_evaluate,
    match_query,
    naive_evaluate,
    parse_program,
    parse_query,
    seminaive_evaluate,
    topdown_query,
)
from repro.obs import MetricsRegistry, Tracer
from repro.plan.cache import PlanCache
from repro.transactions import (
    WorkloadConfig,
    generate_schedule,
    optimistic,
    timestamp_order,
    two_phase_lock,
)

TC = """
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- edge(X, Y), path(Y, Z).
"""


def chain(n):
    return FactStore({"edge": [(i, i + 1) for i in range(n)]})


def tc_program():
    return parse_program(TC)[0]


class TestDatalogSpans:
    def test_seminaive_emits_stratum_and_iteration_spans(self):
        tracer = Tracer()
        stats = EngineStatistics()
        seminaive_evaluate(tc_program(), chain(6), stats=stats, tracer=tracer)

        (stratum,) = tracer.spans(name="stratum")
        assert stratum.attributes["strategy"] == "seminaive"
        assert stratum.attributes["rules"] == 2
        rounds = stratum.attributes["rounds"]
        iterations = [c for c in stratum.children if c.name == "iteration"]
        assert len(iterations) == rounds
        # Round 0 seeds the full delta; later rounds shrink to empty.
        assert iterations[0].attributes["round"] == 0
        assert iterations[0].attributes["delta"] > 0
        assert iterations[-1].attributes["delta"] == 0
        # Counter deltas rode along via the stats snapshot.
        assert stratum.counters["rule_firings"] > 0

    def test_naive_iterations_report_new_facts(self):
        tracer = Tracer()
        naive_evaluate(tc_program(), chain(5), tracer=tracer)
        (stratum,) = tracer.spans(name="stratum")
        assert stratum.attributes["strategy"] == "naive"
        new_facts = [
            s.attributes["new_facts"] for s in tracer.spans(name="iteration")
        ]
        assert sum(new_facts) == 5 * 6 // 2  # every path fact counted once
        assert new_facts[-1] == 0  # fixpoint round discovers nothing

    def test_magic_emits_rewrite_span_then_strata(self):
        tracer = Tracer()
        answers = magic_evaluate(
            tc_program(), chain(8), parse_query("path(3, X)"), tracer=tracer
        )
        (rewrite,) = tracer.spans(name="magic_rewrite")
        assert rewrite.attributes["adorned_rules"] > 0
        assert rewrite.attributes["magic_rules"] > 0
        assert tracer.spans(name="stratum")  # rewritten program's fixpoint
        assert answers  # and it still answers the query

    def test_topdown_emits_query_span_with_tables(self):
        tracer = Tracer()
        topdown_query(
            tc_program(), chain(6), parse_query("path(2, X)"), tracer=tracer
        )
        (query_span,) = tracer.spans(name="topdown_query")
        assert query_span.attributes["tables"] > 0
        assert query_span.attributes["answers"] == 4
        assert any(c.name == "iteration" for c in query_span.children)

    def test_tracing_does_not_change_answers(self):
        plain = seminaive_evaluate(tc_program(), chain(10))
        traced = seminaive_evaluate(tc_program(), chain(10), tracer=Tracer())
        assert traced == plain
        query = parse_query("path(4, X)")
        assert magic_evaluate(
            tc_program(), chain(10), query, tracer=Tracer()
        ) == match_query(plain, query)


class TestEngineTracer:
    def test_enabled_tracer_bypasses_model_cache(self):
        tracer = Tracer()
        engine = DatalogEngine.from_source(TC, chain(5), tracer=tracer)
        first = engine.evaluate()
        count = len(tracer.spans(name="stratum"))
        assert count > 0
        second = engine.evaluate()
        # A cache hit would have emitted nothing; the bypass re-runs.
        assert len(tracer.spans(name="stratum")) == 2 * count
        assert first == second

    def test_nonrecursive_program_traces_lowered_path(self):
        tracer = Tracer()
        engine = DatalogEngine.from_source(
            "two(X, Z) :- edge(X, Y), edge(Y, Z).", chain(5), tracer=tracer
        )
        engine.evaluate()
        (lowered,) = tracer.spans(name="datalog_lowered")
        assert lowered.attributes["predicates"] == 1
        (predicate,) = tracer.spans(name="predicate")
        assert predicate.attributes["predicate"] == "two"
        assert predicate.attributes["rows"] == 4

    def test_query_traces_the_chosen_strategy(self):
        tracer = Tracer()
        engine = DatalogEngine.from_source(TC, chain(5), tracer=tracer)
        engine.query(parse_query("path(1, X)"), strategy="magic")
        assert tracer.spans(name="magic_rewrite")
        engine.query(parse_query("path(1, X)"), strategy="topdown")
        assert tracer.spans(name="topdown_query")


class TestSchedulerEvents:
    def contended_schedule(self):
        return generate_schedule(
            WorkloadConfig(
                num_transactions=8,
                ops_per_transaction=5,
                num_items=20,
                write_ratio=0.6,
                hot_fraction=0.1,
                hot_access_probability=0.9,
                seed=0,
            )
        )

    def test_2pl_emits_run_span_and_lock_waits(self):
        tracer = Tracer()
        schedule = self.contended_schedule()
        _, stats = two_phase_lock(schedule, tracer=tracer)
        (run,) = tracer.spans(name="2pl_run")
        assert run.attributes["ops"] == len(schedule.ops)
        assert run.attributes["waits"] == stats["wait_events"]
        assert run.attributes["aborts"] == len(stats["aborted"])
        waits = [c for c in run.children if c.name == "lock_wait"]
        assert len(waits) == stats["wait_events"]
        if waits:
            wait = waits[0]
            assert {"txn", "item", "mode", "blockers"} <= set(wait.attributes)

    def test_occ_emits_validation_events(self):
        tracer = Tracer()
        schedule = self.contended_schedule()
        out, stats = optimistic(schedule, tracer=tracer)
        (run,) = tracer.spans(name="occ_run")
        validations = tracer.spans(name="validation")
        assert len(validations) == run.attributes["validations"]
        passed = [v for v in validations if v.attributes["ok"]]
        failed = [v for v in validations if not v.attributes["ok"]]
        assert len(passed) == len(out.committed())
        assert len(failed) == len(stats["aborted"])

    def test_timestamp_emits_abort_events(self):
        tracer = Tracer()
        schedule = self.contended_schedule()
        _, stats = timestamp_order(schedule, tracer=tracer)
        (run,) = tracer.spans(name="timestamp_run")
        aborts = tracer.spans(name="timestamp_abort")
        assert len(aborts) == len(stats["aborted"]) == run.attributes["aborts"]
        for abort in aborts:
            assert abort.attributes["kind"] in ("r", "w")

    def test_tracing_does_not_change_schedules(self):
        schedule = self.contended_schedule()
        plain, _ = two_phase_lock(schedule)
        traced, _ = two_phase_lock(schedule, tracer=Tracer())
        assert [
            (op.txn, op.kind, op.item) for op in plain.ops
        ] == [(op.txn, op.kind, op.item) for op in traced.ops]


class TestPlanCacheObservability:
    def test_counters_and_publish(self):
        cache = PlanCache(capacity=2)
        cache.get("a")          # miss
        cache.put("a", 1)
        cache.get("a")          # hit
        cache.put("b", 2)
        cache.put("c", 3)       # evicts "a" (FIFO)
        assert cache.stats() == {
            "hits": 1, "misses": 1, "evictions": 1, "size": 2,
        }

        registry = MetricsRegistry()
        cache.publish(registry, workbench="wb0")
        assert registry.value("plan_cache_hits", workbench="wb0") == 1
        assert registry.value("plan_cache_misses", workbench="wb0") == 1
        assert registry.value("plan_cache_evictions", workbench="wb0") == 1
        assert registry.value("plan_cache_size", workbench="wb0") == 2

    def test_clear_resets_counters(self):
        cache = PlanCache()
        cache.get("missing")
        cache.clear()
        assert cache.stats() == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0,
        }
