"""Tests for the span tracer: nesting, timing, counters, the null path."""

import pytest

from repro.datalog import EngineStatistics
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
    render_trace,
    trace_json_lines,
)


def ticking_clock(step=1.0):
    """A deterministic clock: 0, step, 2*step, ..."""
    state = {"now": -step}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


class TestSpanStructure:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "sibling"]

    def test_sequential_roots_form_a_forest(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_begin_end_matches_with_usage(self):
        tracer = Tracer()
        span = tracer.begin("manual", index=3)
        assert tracer.current() is span
        assert span.elapsed is None  # still open
        tracer.end(span)
        assert tracer.current() is None
        assert span.elapsed is not None
        assert span.attributes == {"index": 3}

    def test_set_annotates_and_chains(self):
        tracer = Tracer()
        with tracer.span("s", a=1) as span:
            assert span.set(b=2) is span
        assert span.attributes == {"a": 1, "b": 2}

    def test_event_attaches_under_current_span(self):
        tracer = Tracer()
        with tracer.span("run"):
            tracer.event("abort", txn=2)
        (event,) = tracer.roots[0].children
        assert event.kind == "event"
        assert event.elapsed == 0.0
        assert event.attributes == {"txn": 2}

    def test_event_with_no_open_span_becomes_a_root(self):
        tracer = Tracer()
        tracer.event("lonely")
        assert [r.name for r in tracer.roots] == ["lonely"]

    def test_elapsed_measured_by_injected_clock(self):
        tracer = Tracer(clock=ticking_clock(step=2.0))
        with tracer.span("timed") as span:
            pass
        assert span.elapsed == 2.0

    def test_exception_still_finishes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.current() is None
        assert tracer.roots[0].elapsed is not None


class TestCounters:
    def test_span_captures_counter_deltas(self):
        tracer = Tracer()
        stats = EngineStatistics(facts_scanned=10)
        with tracer.span("work", stats=stats) as span:
            stats.facts_scanned += 3
            stats.index_probes += 2
        assert span.counters["facts_scanned"] == 3
        assert span.counters["index_probes"] == 2
        assert span.counters["rule_firings"] == 0

    def test_nested_spans_partition_the_work(self):
        tracer = Tracer()
        stats = EngineStatistics()
        with tracer.span("outer", stats=stats) as outer:
            stats.facts_scanned += 1
            with tracer.span("inner", stats=stats) as inner:
                stats.facts_scanned += 5
        assert inner.counters["facts_scanned"] == 5
        assert outer.counters["facts_scanned"] == 6  # inclusive

    def test_no_stats_means_no_counters(self):
        tracer = Tracer()
        with tracer.span("bare") as span:
            pass
        assert span.counters is None


class TestTraversal:
    def build(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.event("e")
        with tracer.span("b"):
            pass
        return tracer

    def test_walk_is_preorder_with_depths(self):
        tracer = self.build()
        assert [(d, s.name) for d, s in tracer.walk()] == [
            (0, "a"), (1, "b"), (2, "e"), (0, "b"),
        ]

    def test_spans_filters_by_name_and_kind(self):
        tracer = self.build()
        assert len(tracer.spans()) == 4
        assert len(tracer.spans(name="b")) == 2
        assert [s.name for s in tracer.spans(kind="event")] == ["e"]
        assert tracer.spans(name="b", kind="event") == []

    def test_clear_resets_everything(self):
        tracer = self.build()
        tracer.clear()
        assert tracer.roots == []
        assert tracer.current() is None


class TestExport:
    def test_render_trace_indents_and_annotates(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("outer", n=40):
            with tracer.span("inner"):
                pass
            tracer.event("abort", txn=1)
        text = render_trace(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert "n=40" in lines[0]
        assert lines[1].startswith("  inner")
        assert "[event]" in lines[2] and "txn=1" in lines[2]

    def test_trace_json_lines_round_trips(self):
        import json

        tracer = Tracer()
        stats = EngineStatistics()
        with tracer.span("work", stats=stats, round=0):
            stats.facts_scanned += 4
        records = [
            json.loads(line) for line in trace_json_lines(tracer).splitlines()
        ]
        (record,) = records
        assert record["name"] == "work"
        assert record["depth"] == 0
        assert record["attributes"] == {"round": 0}
        assert record["counters"]["facts_scanned"] == 4


class TestJsonSchemaGolden:
    """The trace export's record schema, pinned field by field.

    External consumers (the CI artifact uploads, notebook tooling) key
    on these names and types; renaming a field is a breaking change and
    must show up here, not in a downstream dashboard.
    """

    #: field -> allowed JSON types, for every span record.
    REQUIRED = {
        "name": (str,),
        "kind": (str,),
        "depth": (int,),
        "elapsed_ms": (float, int, type(None)),
    }
    #: optional fields (present only when non-empty) -> allowed types.
    OPTIONAL = {
        "attributes": (dict,),
        "counters": (dict,),
    }

    def build(self):
        tracer = Tracer(clock=ticking_clock())
        stats = EngineStatistics()
        with tracer.span("outer", stats=stats, workload="tc"):
            stats.facts_scanned += 2
            with tracer.span("inner"):
                pass
            tracer.event("abort", txn=1)
        return tracer

    def test_every_record_matches_the_golden_schema(self):
        import json

        records = [
            json.loads(line)
            for line in trace_json_lines(self.build()).splitlines()
        ]
        assert len(records) == 3
        for record in records:
            for field, types in self.REQUIRED.items():
                assert field in record, "missing %r" % field
                assert isinstance(record[field], types), (field, record)
            for field, value in record.items():
                assert field in self.REQUIRED or field in self.OPTIONAL, (
                    "unpinned field %r — update the golden schema "
                    "deliberately" % field
                )
                if field in self.OPTIONAL:
                    assert isinstance(value, self.OPTIONAL[field])

    def test_counters_and_attributes_are_flat_json_values(self):
        import json

        records = [
            json.loads(line)
            for line in trace_json_lines(self.build()).splitlines()
        ]
        outer = records[0]
        assert outer["attributes"] == {"workload": "tc"}
        assert all(
            isinstance(v, int) for v in outer["counters"].values()
        )

    def test_round_trip_preserves_walk_order(self):
        import json

        tracer = self.build()
        names = [span.name for _depth, span in tracer.walk()]
        records = [
            json.loads(line)
            for line in trace_json_lines(tracer).splitlines()
        ]
        assert [r["name"] for r in records] == names
        assert [r["depth"] for r in records] == [
            depth for depth, _span in tracer.walk()
        ]


class TestNullPath:
    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert Tracer().enabled is True

    def test_every_call_returns_the_shared_null_span(self):
        a = NULL_TRACER.span("x", stats=EngineStatistics(), attr=1)
        b = NULL_TRACER.begin("y")
        c = NULL_TRACER.event("z")
        assert a is b is c
        with a as entered:
            assert entered is a
        assert a.set(anything=1) is a

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("x"):
            NULL_TRACER.event("e")
        assert list(NULL_TRACER.walk()) == []
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.current() is None
        assert render_trace(NULL_TRACER) == ""

    def test_ensure_tracer_idiom(self):
        assert ensure_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert ensure_tracer(tracer) is tracer
        assert ensure_tracer(NULL_TRACER) is NULL_TRACER


class TestZeroAllocation:
    def test_default_path_allocates_no_spans(self, monkeypatch):
        """The tier-1 zero-cost pin: no Span objects on the default path."""
        allocations = []
        original = Span.__init__

        def counting(self, *args, **kwargs):
            allocations.append(self)
            original(self, *args, **kwargs)

        monkeypatch.setattr(Span, "__init__", counting)

        from repro.core.workbench import MetatheoryWorkbench
        from repro.datalog import DatalogEngine
        from repro.transactions import (
            WorkloadConfig,
            generate_schedule,
            optimistic,
            timestamp_order,
            two_phase_lock,
        )

        wb = MetatheoryWorkbench.from_dict(
            {"r": (("a", "b"), [(1, 2), (2, 3)])}
        )
        wb.sql("SELECT r.a FROM r")
        engine = DatalogEngine.from_source(
            "path(X, Y) :- edge(X, Y). path(X, Z) :- edge(X, Y), path(Y, Z).",
            {"edge": [(1, 2), (2, 3)]},
        )
        engine.evaluate()
        schedule = generate_schedule(
            WorkloadConfig(
                num_transactions=4,
                ops_per_transaction=3,
                num_items=5,
                seed=0,
                hot_access_probability=0.9,
            )
        )
        two_phase_lock(schedule)
        timestamp_order(schedule)
        optimistic(schedule)

        assert allocations == []

        # Sanity: the counter does fire when a real tracer runs.
        tracer = Tracer()
        with tracer.span("real"):
            pass
        assert len(allocations) == 1
