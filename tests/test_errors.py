"""Tests for the exception hierarchy: every subsystem error is a ReproError."""

import pytest

from repro.errors import (
    AlgebraError,
    CalculusError,
    ChaseError,
    ComplexityError,
    DatalogError,
    DeadlockError,
    DependencyError,
    HypergraphError,
    IncompleteInformationError,
    MetascienceError,
    NormalizationError,
    ParseError,
    RelationError,
    ReproError,
    SchedulerError,
    SchemaError,
    StratificationError,
    TransactionError,
    TranslationError,
)

ALL_ERRORS = (
    AlgebraError,
    CalculusError,
    ChaseError,
    ComplexityError,
    DatalogError,
    DeadlockError,
    DependencyError,
    HypergraphError,
    IncompleteInformationError,
    MetascienceError,
    NormalizationError,
    ParseError,
    RelationError,
    SchedulerError,
    SchemaError,
    StratificationError,
    TransactionError,
    TranslationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_stratification_is_datalog(self):
        assert issubclass(StratificationError, DatalogError)

    def test_deadlock_is_scheduler_is_transaction(self):
        assert issubclass(DeadlockError, SchedulerError)
        assert issubclass(SchedulerError, TransactionError)

    def test_parse_error_carries_position(self):
        error = ParseError("bad", position=7, text="SELECT ;")
        assert error.position == 7
        assert error.text == "SELECT ;"

    def test_deadlock_carries_victims(self):
        error = DeadlockError("cycle", victims=(1, 2))
        assert error.victims == (1, 2)

    def test_one_except_catches_everything(self):
        from repro.relational import Database

        with pytest.raises(ReproError):
            Database()["missing"]

    def test_subsystem_errors_raised_from_real_paths(self):
        from repro.datalog import parse_program
        from repro.dependencies import FD

        with pytest.raises(ReproError):
            parse_program("p(X) :- .")
        with pytest.raises(ReproError):
            FD("A", "")
