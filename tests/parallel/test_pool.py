"""Worker pool mechanics: fan-out, chunking, faults, and state replay.

Uses the built-in ``_echo``/``_hang``/``_crash``/``_set``/``_get``
handlers so the pool is exercised independently of any query machinery.
The fault tests are the acceptance criterion for graceful degradation:
a hung or killed worker must cost time, never answers.
"""

import os
import signal
import time

import pytest

from repro.parallel import WorkerPool


def echo_fallback(kind, payload):
    assert kind in ("_echo", "_hang", "_crash")
    if kind == "_echo":
        return list(payload), {}
    return [], {}


@pytest.fixture()
def pool():
    p = WorkerPool(workers=2, timeout=10.0, chunk_size=8)
    yield p
    p.close()


class TestFanOut:
    def test_tasks_round_trip_in_order(self, pool):
        tasks = [("_echo", [i, i + 1]) for i in range(6)]
        outcomes = pool.run(tasks, echo_fallback)
        assert [o.rows for o in outcomes] == [[i, i + 1] for i in range(6)]
        assert all(o.mode == "parallel" for o in outcomes)
        assert pool.serial_retries == 0

    def test_large_results_arrive_chunked(self, pool):
        payload = list(range(1000))  # chunk_size=8 -> 125 chunks
        [outcome] = pool.run([("_echo", payload)], echo_fallback)
        assert outcome.rows == payload
        assert outcome.elapsed >= 0

    def test_lazy_start_and_reuse(self):
        pool = WorkerPool(workers=2, timeout=10.0)
        assert not pool.started
        try:
            pool.run([("_echo", [1])], echo_fallback)
            assert pool.started and pool.spawned == 2
            pool.run([("_echo", [2])], echo_fallback)
            assert pool.spawned == 2, "second run must reuse the workers"
        finally:
            pool.close()

    def test_close_then_restart(self, pool):
        pool.run([("_echo", [1])], echo_fallback)
        pool.close()
        assert not pool.started
        [outcome] = pool.run([("_echo", [3])], echo_fallback)
        assert outcome.rows == [3]


class TestFaults:
    def test_hung_worker_degrades_to_serial(self, pool):
        tasks = [("_hang", 60.0), ("_echo", [7])]
        outcomes = pool.run(tasks, echo_fallback, timeout=1.0)
        assert outcomes[0].mode == "serial-retry"
        assert "straggler" in outcomes[0].detail or "timeout" in outcomes[0].detail
        assert outcomes[1].rows == [7]
        assert pool.serial_retries == 1
        assert pool.respawns >= 1

    def test_crashed_worker_degrades_to_serial(self, pool):
        tasks = [("_crash", None), ("_echo", [9])]
        outcomes = pool.run(tasks, echo_fallback, timeout=5.0)
        assert outcomes[0].mode == "serial-retry"
        assert outcomes[1].rows == [9]
        assert pool.respawns >= 1

    def test_killed_worker_pid_degrades_to_serial(self, pool):
        pool.start()
        victim = pool._handles[0].process
        os.kill(victim.pid, signal.SIGKILL)
        time.sleep(0.1)
        outcomes = pool.run(
            [("_echo", [1]), ("_echo", [2]), ("_echo", [3])],
            echo_fallback, timeout=5.0,
        )
        assert [o.rows for o in outcomes] == [[1], [2], [3]]
        assert any(o.mode == "serial-retry" for o in outcomes)
        assert pool.respawns >= 1

    def test_pool_recovers_after_fault(self, pool):
        pool.run([("_crash", None)], echo_fallback, timeout=5.0)
        outcomes = pool.run(
            [("_echo", [i]) for i in range(4)], echo_fallback
        )
        assert all(o.mode == "parallel" for o in outcomes)

    def test_worker_side_error_keeps_worker(self, pool):
        # "_get" with an unhashable payload raises inside the handler;
        # the worker catches it and stays healthy, so no respawn.
        [outcome] = pool.run([("_get", [])], lambda k, p: (["fb"], {}))
        assert outcome.mode == "serial-retry"
        assert outcome.rows == ["fb"]
        assert pool.respawns == 0


class TestCasts:
    def test_broadcast_reaches_every_worker(self, pool):
        pool.broadcast("_set", ("k", 42))
        outcomes = pool.run(
            [("_get", "k"), ("_get", "k")], lambda k, p: ([None], {})
        )
        assert [o.rows for o in outcomes] == [[42], [42]]

    def test_cast_replay_into_respawned_worker(self, pool):
        pool.broadcast("_set", ("k", 42))
        pool.run([("_crash", None)], lambda k, p: ([], {}), timeout=5.0)
        assert pool.respawns >= 1
        outcomes = pool.run(
            [("_get", "k"), ("_get", "k")], lambda k, p: ([None], {})
        )
        assert [o.rows for o in outcomes] == [[42], [42]]

    def test_reset_casts_stops_replay(self, pool):
        pool.broadcast("_set", ("k", 42))
        pool.reset_casts()
        pool.run([("_crash", None)], lambda k, p: ([], {}), timeout=5.0)
        outcomes = pool.run([("_get", "k")], lambda k, p: (["dead"], {}))
        # Whichever worker answers, a respawned one no longer knows "k".
        assert outcomes[0].rows in ([42], [None])
