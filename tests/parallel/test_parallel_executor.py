"""The cost-gated backend and the workbench's parallel surface.

Pins the three acceptance behaviors: small queries never spawn a pool,
parallel answers equal serial answers, and a killed worker degrades to
a correct serial re-run.
"""

import os
import random
import signal
import time

import pytest

from repro.core.workbench import MetatheoryWorkbench
from repro.datalog.stats import EngineStatistics
from repro.parallel import ParallelBackend
from repro.plan import execute
from repro.plan.logical import canonicalize
from repro.relational import algebra as ra
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def make_db(rows=3000, seed=1):
    rng = random.Random(seed)
    db = Database()
    db.add(Relation(
        RelationSchema("r", ("a", "b")),
        [(rng.randrange(40), rng.randrange(500)) for _ in range(rows)],
    ))
    db.add(Relation(
        RelationSchema("s", ("b", "c")),
        [(rng.randrange(500), rng.randrange(40)) for _ in range(rows)],
    ))
    return db


JOIN = ra.Projection(
    ra.Selection(
        ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s")),
        ra.Comparison(ra.Attr("a"), "<", ra.Attr("c")),
    ),
    ("a", "c"),
)


@pytest.fixture()
def backend():
    b = ParallelBackend(workers=2, cost_gate=500, timeout=30.0)
    yield b
    b.close()


class TestGate:
    def test_small_query_never_spawns_a_pool(self):
        backend = ParallelBackend(workers=4, cost_gate=10**6)
        db = make_db(rows=50)
        plan = canonicalize(JOIN, db.schema())
        relation, info = backend.execute_plan(plan, db)
        assert info.mode == "serial" and "cost gate" in info.reason
        assert relation == execute(plan, db)
        assert backend.pool_started is False, (
            "below the gate no worker process may be spawned"
        )
        assert backend.pool.spawned == 0

    def test_single_worker_stays_serial(self):
        backend = ParallelBackend(workers=1, cost_gate=0)
        db = make_db(rows=100)
        plan = canonicalize(JOIN, db.schema())
        _relation, info = backend.execute_plan(plan, db)
        assert info.mode == "serial" and info.reason == "single worker"
        assert backend.pool_started is False

    def test_unpartitionable_plan_stays_serial(self, backend):
        db = make_db(rows=1000)
        product = ra.Product(
            ra.Rename(ra.RelationRef("r"), {"a": "x", "b": "y"}),
            ra.RelationRef("s"),
        )
        plan = canonicalize(product, db.schema())
        relation, info = backend.execute_plan(plan, db)
        assert info.mode == "serial"
        assert info.reason == "no partition attribute"
        assert relation == execute(plan, db)


class TestCorrectness:
    def test_parallel_equals_serial(self, backend):
        db = make_db()
        plan = canonicalize(JOIN, db.schema())
        serial = execute(plan, db)
        relation, info = backend.execute_plan(plan, db)
        assert info.mode == "parallel" and info.shards >= 1
        assert relation == serial
        assert relation.schema.attributes == serial.schema.attributes

    def test_stats_charged_once_per_shard(self, backend):
        db = make_db()
        plan = canonicalize(JOIN, db.schema())
        stats = EngineStatistics()
        _relation, info = backend.execute_plan(plan, db, stats=stats)
        assert info.mode == "parallel"
        assert stats.facts_scanned > 0
        assert stats.tuples_materialized > 0

    def test_killed_worker_still_produces_correct_answer(self, backend):
        db = make_db()
        plan = canonicalize(JOIN, db.schema())
        serial = execute(plan, db)
        backend.pool.start()
        victim = backend.pool._handles[0].process
        os.kill(victim.pid, signal.SIGKILL)
        time.sleep(0.1)
        relation, info = backend.execute_plan(plan, db)
        assert relation == serial
        assert info.mode == "parallel"
        assert any(o.mode == "serial-retry" for o in info.outcomes)
        assert backend.pool.respawns >= 1
        # And the pool is healthy again for the next query.
        relation2, info2 = backend.execute_plan(plan, db)
        assert relation2 == serial
        assert all(o.mode == "parallel" for o in info2.outcomes)


class TestWorkbench:
    def test_run_parallel_matches_serial_sql(self):
        db = make_db()
        wb = MetatheoryWorkbench(db)
        try:
            sql = "SELECT a, c FROM r, s WHERE r.b = s.b"
            serial = wb.sql(sql)
            backend = wb.parallel_backend(2)
            backend.cost_gate = 500
            parallel = wb.run(sql, executor="parallel", workers=2)
            assert set(parallel.tuples) == set(serial.tuples)
            assert backend.parallel_runs == 1
        finally:
            wb.close()

    def test_workers_argument_implies_parallel(self):
        db = make_db(rows=100)
        wb = MetatheoryWorkbench(db)
        try:
            wb.algebra(JOIN, workers=2)
            assert 2 in wb._parallel_backends
        finally:
            wb.close()

    def test_backend_cached_per_worker_count(self):
        wb = MetatheoryWorkbench(make_db(rows=10))
        try:
            assert wb.parallel_backend(2) is wb.parallel_backend(2)
            assert wb.parallel_backend(2) is not wb.parallel_backend(3)
        finally:
            wb.close()

    def test_from_source_forwards_parallel_backend(self):
        from repro.datalog.engine import DatalogEngine

        backend = ParallelBackend(workers=2)
        try:
            engine = DatalogEngine.from_source(
                "p(X) :- e(X).", edb={"e": [(1,), (2,)]}, parallel=backend
            )
            assert engine.parallel is backend
        finally:
            backend.close()

    def test_run_datalog_parallel_matches_serial(self):
        rng = random.Random(9)
        edges = set()
        for layer in range(5):
            for a in range(25):
                for _ in range(6):
                    edges.add(
                        ("n%d_%d" % (layer, a),
                         "n%d_%d" % (layer + 1, rng.randrange(25)))
                    )
        db = Database()
        db.add(Relation(
            RelationSchema("edge", ("src", "dst")), list(edges)
        ))
        wb = MetatheoryWorkbench(db)
        try:
            source = (
                "path(X, Y) :- edge(X, Y). "
                "path(X, Z) :- edge(X, Y), path(Y, Z)."
            )
            serial = wb.run(source)
            backend = wb.parallel_backend(2)
            backend.cost_gate = 100
            backend.round_gate = 50
            parallel = wb.run(source, executor="parallel", workers=2)
            assert parallel.get("path") == serial.get("path")
            assert backend.pool.tasks_dispatched > 0
        finally:
            wb.close()
