"""Partitioning layer: candidates, splits, and sharded plans.

The correctness core of parallel execution is here: which attributes
admit hash partitioning for which plan shapes, and that evaluating the
shard fragments and unioning reproduces the serial answer exactly.
"""

import pickle
import random

import pytest

from repro.errors import PlanError
from repro.parallel import Partitioner, estimate_plan_work, partition_candidates
from repro.parallel.partition import _equi_pairs
from repro.plan import execute
from repro.plan.logical import canonicalize
from repro.relational import algebra as ra
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def make_db(rows=200, seed=5):
    rng = random.Random(seed)
    db = Database()
    db.add(Relation(
        RelationSchema("r", ("a", "b")),
        [(rng.randrange(10), rng.randrange(30)) for _ in range(rows)],
    ))
    db.add(Relation(
        RelationSchema("s", ("b", "c")),
        [(rng.randrange(30), rng.randrange(10)) for _ in range(rows)],
    ))
    return db


class TestCandidates:
    def test_leaf_offers_every_attribute(self):
        db = make_db()
        assert partition_candidates(
            ra.RelationRef("r"), db.schema()
        ) == {"a", "b"}

    def test_natural_join_intersects(self):
        db = make_db()
        expr = ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s"))
        assert partition_candidates(expr, db.schema()) == {"b"}

    def test_projection_prunes(self):
        db = make_db()
        expr = ra.Projection(
            ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s")),
            ("a", "c"),
        )
        assert partition_candidates(expr, db.schema()) == set()

    def test_rename_translates(self):
        db = make_db()
        expr = ra.Rename(ra.RelationRef("r"), {"a": "x"})
        assert partition_candidates(expr, db.schema()) == {"x", "b"}

    def test_set_ops_intersect(self):
        db = make_db()
        left = ra.Projection(ra.RelationRef("r"), ("b",))
        right = ra.Projection(ra.RelationRef("s"), ("b",))
        for node in (ra.Union, ra.Difference, ra.Intersection):
            assert partition_candidates(
                node(left, right), db.schema()
            ) == {"b"}

    def test_product_offers_nothing(self):
        db = make_db()
        expr = ra.Product(
            ra.Rename(ra.RelationRef("r"), {"a": "x", "b": "y"}),
            ra.RelationRef("s"),
        )
        assert partition_candidates(expr, db.schema()) == set()

    def test_equi_theta_join_offers_both_sides(self):
        db = make_db()
        expr = ra.ThetaJoin(
            ra.Rename(ra.RelationRef("r"), {"a": "x", "b": "y"}),
            ra.RelationRef("s"),
            ra.Comparison(ra.Attr("y"), "=", ra.Attr("b")),
        )
        assert partition_candidates(expr, db.schema()) == {"y", "b"}
        assert _equi_pairs(expr, db.schema()) == [("y", "b")]

    def test_non_equi_theta_join_offers_nothing(self):
        db = make_db()
        expr = ra.ThetaJoin(
            ra.Rename(ra.RelationRef("r"), {"a": "x", "b": "y"}),
            ra.RelationRef("s"),
            ra.Comparison(ra.Attr("y"), "<", ra.Attr("b")),
        )
        assert partition_candidates(expr, db.schema()) == set()

    def test_equality_under_or_does_not_count(self):
        db = make_db()
        eq = ra.Comparison(ra.Attr("y"), "=", ra.Attr("b"))
        lt = ra.Comparison(ra.Attr("x"), "<", ra.Attr("c"))
        expr = ra.ThetaJoin(
            ra.Rename(ra.RelationRef("r"), {"a": "x", "b": "y"}),
            ra.RelationRef("s"),
            ra.Or(eq, lt),
        )
        assert partition_candidates(expr, db.schema()) == set()


class TestSplits:
    def test_split_relation_partitions_and_covers(self):
        db = make_db()
        shards = Partitioner(4).split_relation(db["r"], "b")
        assert len(shards) == 4
        merged = set()
        for shard in shards:
            assert not (merged & shard.tuples)
            merged |= shard.tuples
        assert merged == db["r"].tuples

    def test_split_respects_hash_alignment(self):
        db = make_db()
        partitioner = Partitioner(3)
        shards = partitioner.split_relation(db["r"], "b")
        for index, shard in enumerate(shards):
            for tup in shard.tuples:
                assert partitioner.shard_of(tup[1]) == index

    def test_split_balance_on_diverse_keys(self):
        rng = random.Random(0)
        rel = Relation(
            RelationSchema("t", ("k",)),
            [(rng.randrange(10**6),) for _ in range(4000)],
        )
        shards = Partitioner(4).split_relation(rel, "k")
        sizes = [len(s) for s in shards]
        assert min(sizes) > 0.5 * max(sizes)

    def test_at_least_one_shard(self):
        with pytest.raises(PlanError):
            Partitioner(0)


class TestShardPlans:
    def run_both(self, expr, db, shards=4, disjoint=True):
        serial = execute(expr, db)
        plan = canonicalize(expr, db.schema())
        sharded = Partitioner(shards).shard_plans(plan, db)
        assert sharded is not None, "expected a partitionable plan"
        _attr, fragments = sharded
        assert len(fragments) == shards
        merged = set()
        for fragment in fragments:
            part = execute(fragment, Database())
            if disjoint:
                assert not (merged & part.tuples), "shards must be disjoint"
            merged |= part.tuples
        assert merged == serial.tuples
        return merged

    def test_join_under_projection_and_selection(self):
        db = make_db()
        expr = ra.Projection(
            ra.Selection(
                ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s")),
                ra.Comparison(ra.Attr("a"), "<", ra.Attr("c")),
            ),
            ("a", "c"),
        )
        # The projection drops the partition attribute, so two shards
        # may derive the same (a, c) pair; the union dedups.
        self.run_both(expr, db, disjoint=False)

    def test_difference_of_projections(self):
        db = make_db()
        expr = ra.Difference(
            ra.Projection(ra.RelationRef("r"), ("b",)),
            ra.Projection(ra.RelationRef("s"), ("b",)),
        )
        self.run_both(expr, db)

    def test_semijoin_and_antijoin(self):
        db = make_db()
        for node in (ra.Semijoin, ra.Antijoin):
            expr = node(ra.RelationRef("r"), ra.RelationRef("s"))
            self.run_both(expr, db)

    def test_self_join_on_different_columns(self):
        # r(a,b) |x| rename(r)(b,c): the partition attribute lands on
        # column b of one copy and column b-as-rename of the other.
        db = make_db()
        expr = ra.NaturalJoin(
            ra.RelationRef("r"),
            ra.Rename(ra.RelationRef("r"), {"a": "b", "b": "c"}),
        )
        self.run_both(expr, db)

    def test_equi_theta_join_splits_each_side_on_its_own_column(self):
        db = make_db()
        expr = ra.ThetaJoin(
            ra.Rename(ra.RelationRef("r"), {"a": "x", "b": "y"}),
            ra.RelationRef("s"),
            ra.Comparison(ra.Attr("y"), "=", ra.Attr("b")),
        )
        self.run_both(expr, db)

    def test_unpartitionable_plan_returns_none(self):
        db = make_db()
        expr = ra.Product(
            ra.Rename(ra.RelationRef("r"), {"a": "x", "b": "y"}),
            ra.RelationRef("s"),
        )
        plan = canonicalize(expr, db.schema())
        assert Partitioner(4).shard_plans(plan, db) is None

    def test_fragments_are_picklable_and_self_contained(self):
        db = make_db()
        expr = ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s"))
        plan = canonicalize(expr, db.schema())
        _attr, fragments = Partitioner(2).shard_plans(plan, db)
        clone = pickle.loads(pickle.dumps(fragments[0]))
        assert execute(clone, Database()) == execute(fragments[0], Database())


class TestEstimate:
    def test_counts_leaf_rows(self):
        db = make_db(rows=100)
        expected = len(db["r"]) + len(db["s"])
        expr = ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s"))
        assert estimate_plan_work(expr, db) == expected
        assert estimate_plan_work(
            ra.Projection(expr, ("a",)), db
        ) == expected
