"""Differential property: parallel execution ≡ serial execution.

Hypothesis drives the same random-expression/database generators the
plan-layer differential suite uses, now comparing the cost-gated
parallel backend (k ∈ {1, 2, 4} workers, gate forced open) against the
serial streaming executor; and the sharded semi-naive evaluator against
the serial one over the random positive-program generator.  Plans the
partitioner cannot align (products, divisions, non-equi theta joins)
exercise the serial-fallback path of the backend — the property must
hold whichever path runs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.random_instances import (
    random_algebra_expression,
    random_database,
    random_edb,
    random_positive_program,
)
from repro.datalog.seminaive import seminaive_evaluate
from repro.parallel import ParallelBackend
from repro.plan import canonicalize, execute

BACKENDS = {}


@pytest.fixture(scope="module", autouse=True)
def _backends():
    # One pool per worker count for the whole module: worker reuse is
    # exactly what a session does, and spawning per example would
    # swamp the suite.  cost/round gates are forced open so every
    # partitionable example actually exercises the parallel path.
    for k in (1, 2, 4):
        BACKENDS[k] = ParallelBackend(
            workers=k, cost_gate=0, round_gate=0, timeout=30.0
        )
    yield
    for backend in BACKENDS.values():
        backend.close()
    BACKENDS.clear()


@settings(max_examples=40, deadline=None)
@given(
    db_seed=st.integers(min_value=0, max_value=10**6),
    expr_seed=st.integers(min_value=0, max_value=10**6),
    size=st.integers(min_value=1, max_value=5),
    workers=st.sampled_from([1, 2, 4]),
)
def test_parallel_plan_execution_matches_serial(
    db_seed, expr_seed, size, workers
):
    db = random_database(num_relations=3, rows=8, domain_size=5, seed=db_seed)
    expr = random_algebra_expression(db, seed=expr_seed, size=size)
    plan = canonicalize(expr, db.schema())
    serial = execute(plan, db)
    relation, _info = BACKENDS[workers].execute_plan(plan, db)
    assert relation == serial
    assert relation.schema.attributes == serial.schema.attributes


@settings(max_examples=25, deadline=None)
@given(
    program_seed=st.integers(min_value=0, max_value=10**6),
    edb_seed=st.integers(min_value=0, max_value=10**6),
    workers=st.sampled_from([2, 4]),
)
def test_sharded_seminaive_matches_serial(program_seed, edb_seed, workers):
    program = random_positive_program(seed=program_seed)
    edb = random_edb(
        ["e0", "e1"], domain_size=6, facts_per_pred=20, seed=edb_seed
    )
    serial = seminaive_evaluate(program, edb)
    sharded = seminaive_evaluate(
        program, edb, backend=BACKENDS[workers]
    )
    for predicate in set(serial.predicates()) | set(sharded.predicates()):
        assert sharded.get(predicate) == serial.get(predicate), predicate
