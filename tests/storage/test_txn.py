"""Live transactions: CC conflicts, rollback, and the theory as oracle.

The runtime contract: reads and staged writes go through the manager's
concurrency control (no-wait strict 2PL or timestamp ordering), commits
apply the overlay atomically, rollbacks restore from journal undo
images, and every interleaved history is recorded as an ordinary
Schedule that must satisfy the scheduler theory's own predicates.
"""

import pytest

from repro.core.workbench import MetatheoryWorkbench
from repro.errors import TransactionError
from repro.obs.metrics import MetricsRegistry
from repro.relational.database import Database
from repro.storage.txn import TransactionConflict, TransactionManager
from repro.transactions.recovery import recovery_class
from repro.transactions.serializability import is_conflict_serializable


def make_wb(**kwargs):
    kwargs.setdefault("metrics", MetricsRegistry())
    return MetatheoryWorkbench(
        Database.from_dict(
            {
                "person": (
                    ("name", "city"),
                    [("ann", "sd"), ("bob", "la"), ("cal", "sd")],
                ),
                "likes": (("name", "item"), [("ann", "tea")]),
            }
        ),
        **kwargs,
    )


class TestLifecycle:
    def test_commit_publishes_the_overlay_atomically(self):
        wb = make_wb()
        before_vid = wb.db.version_id()
        txn = wb.begin()
        txn.sql("INSERT INTO person VALUES ('dee', 'sf')")
        txn.sql("DELETE FROM likes WHERE name = 'ann'")
        # Staged but invisible: the committed database is untouched.
        assert len(wb.db["person"]) == 3
        assert len(wb.db["likes"]) == 1
        # The transaction's own view sees both staged writes.
        assert len(txn.view()["person"]) == 4
        assert len(txn.view()["likes"]) == 0
        vid = txn.commit()
        assert vid == before_vid + 1  # one version id for the write set
        assert ("dee", "sf") in wb.db["person"].tuples
        assert len(wb.db["likes"]) == 0
        assert txn.status == "committed"

    def test_queries_inside_a_transaction_see_its_writes(self):
        wb = make_wb()
        txn = wb.begin()
        txn.sql("INSERT INTO person VALUES ('dee', 'sd')")
        inside = txn.sql("SELECT name FROM person WHERE city = 'sd'")
        assert inside.tuples == {("ann",), ("cal",), ("dee",)}
        outside = wb.sql("SELECT name FROM person WHERE city = 'sd'")
        assert outside.tuples == {("ann",), ("cal",)}
        txn.rollback()

    def test_rollback_discards_staged_writes(self):
        wb = make_wb()
        before = wb.db["person"]
        txn = wb.begin()
        txn.sql("INSERT INTO person VALUES ('dee', 'sf')")
        txn.sql("UPDATE person SET city = 'ny' WHERE name = 'ann'")
        txn.rollback()
        assert wb.db["person"] is before
        assert txn.status == "aborted"
        staged = [
            entry for entry in wb.db.store().journal.entries()
            if entry.txn == txn.txn_id
        ]
        assert staged and all(e.status == "rolled-back" for e in staged)

    def test_context_manager_commits_on_success(self):
        wb = make_wb()
        with wb.begin() as txn:
            txn.sql("INSERT INTO person VALUES ('dee', 'sf')")
        assert txn.status == "committed"
        assert ("dee", "sf") in wb.db["person"].tuples

    def test_context_manager_rolls_back_on_error(self):
        wb = make_wb()
        with pytest.raises(RuntimeError):
            with wb.begin() as txn:
                txn.sql("INSERT INTO person VALUES ('dee', 'sf')")
                raise RuntimeError("boom")
        assert txn.status == "aborted"
        assert ("dee", "sf") not in wb.db["person"].tuples

    def test_finished_transactions_reject_further_work(self):
        wb = make_wb()
        txn = wb.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.sql("SELECT * FROM person")
        with pytest.raises(TransactionError):
            txn.commit()

    def test_read_only_commit_changes_nothing(self):
        wb = make_wb()
        before_vid = wb.db.version_id()
        txn = wb.begin()
        txn.sql("SELECT * FROM person")
        assert txn.commit() == before_vid

    def test_unknown_concurrency_control_is_rejected(self):
        wb = make_wb()
        with pytest.raises(TransactionError):
            wb.begin(cc="optimistic-vibes")


class TestTwoPhaseLocking:
    def test_write_write_conflict_aborts_the_requester(self):
        wb = make_wb()
        t1 = wb.begin()
        t2 = wb.begin()
        t1.sql("INSERT INTO person VALUES ('dee', 'sf')")
        with pytest.raises(TransactionConflict):
            t2.sql("DELETE FROM person WHERE name = 'ann'")
        assert t2.status == "aborted"
        assert t1.status == "active"  # the holder is unharmed
        t1.commit()
        assert ("dee", "sf") in wb.db["person"].tuples
        assert ("ann", "sd") in wb.db["person"].tuples

    def test_read_blocks_a_concurrent_writer(self):
        wb = make_wb()
        reader = wb.begin()
        writer = wb.begin()
        reader.sql("SELECT * FROM person")
        with pytest.raises(TransactionConflict):
            writer.sql("DELETE FROM person WHERE name = 'ann'")
        reader.commit()

    def test_disjoint_write_sets_interleave_freely(self):
        wb = make_wb()
        t1 = wb.begin()
        t2 = wb.begin()
        t1.sql("INSERT INTO person VALUES ('dee', 'sf')")
        t2.sql("INSERT INTO likes VALUES ('bob', 'jazz')")
        t2.commit()
        t1.commit()
        assert ("dee", "sf") in wb.db["person"].tuples
        assert ("bob", "jazz") in wb.db["likes"].tuples

    def test_a_noop_insert_still_reads_its_target(self):
        # Regression (conformance seed 341): whether an INSERT is a
        # duplicate no-op is decided by reading the target, so beside a
        # concurrent update of the same relation it must conflict —
        # not silently commit empty and diverge from serial replay.
        wb = make_wb()
        t1 = wb.begin()
        t2 = wb.begin()
        t1.sql("UPDATE person SET city = 'la' WHERE name = 'ann'")
        with pytest.raises(TransactionConflict):
            t2.sql("INSERT INTO person VALUES ('ann', 'sd')")
        assert t2.status == "aborted"
        t1.commit()
        assert ("ann", "la") in wb.db["person"].tuples

    def test_aborted_locks_are_released(self):
        wb = make_wb()
        t1 = wb.begin()
        t1.sql("INSERT INTO person VALUES ('dee', 'sf')")
        t1.rollback()
        t2 = wb.begin()
        t2.sql("DELETE FROM person WHERE name = 'ann'")
        t2.commit()
        assert ("ann", "sd") not in wb.db["person"].tuples


class TestTimestampOrdering:
    def test_late_write_after_younger_read_aborts(self):
        wb = make_wb()
        old = wb.begin(cc="timestamp")
        young = wb.begin(cc="timestamp")
        young.sql("SELECT * FROM person")
        with pytest.raises(TransactionConflict):
            old.sql("INSERT INTO person VALUES ('dee', 'sf')")
        assert old.status == "aborted"
        young.commit()

    def test_first_committer_wins_on_the_read_set(self):
        wb = make_wb()
        reader = wb.begin(cc="timestamp")
        writer = wb.begin(cc="timestamp")
        reader.sql("SELECT * FROM person")
        writer.sql("INSERT INTO person VALUES ('dee', 'sf')")
        writer.commit()
        reader.sql("INSERT INTO likes VALUES ('bob', 'jazz')")
        with pytest.raises(TransactionConflict):
            reader.commit()
        assert reader.status == "aborted"
        assert ("bob", "jazz") not in wb.db["likes"].tuples

    def test_serial_timestamp_transactions_commit(self):
        wb = make_wb()
        for i in range(3):
            with wb.begin(cc="timestamp") as txn:
                txn.sql("INSERT INTO likes VALUES ('ann', 'item%d')" % i)
        assert len(wb.db["likes"]) == 4


class TestTheoryAsOracle:
    def test_recorded_history_is_a_real_schedule(self):
        wb = make_wb()
        t1 = wb.begin()
        t2 = wb.begin()
        t1.sql("SELECT * FROM person")
        t2.sql("INSERT INTO likes VALUES ('bob', 'jazz')")
        t1.commit()
        t2.commit()
        schedule = wb.txns.schedule()
        kinds = [(op.kind, op.txn) for op in schedule]
        # Reads at statement time — a DML statement reads its target
        # (the delta is computed against it) even when the source never
        # mentions it; writes at commit, just before the commit marker
        # (the deferred-update model).
        assert kinds == [
            ("r", 1), ("r", 2), ("c", 1), ("w", 2), ("c", 2),
        ]
        committed = schedule.committed_projection()
        assert is_conflict_serializable(committed)
        assert recovery_class(schedule) == "ST"

    def test_verify_report_covers_the_session(self):
        wb = make_wb()
        with wb.begin() as txn:
            txn.sql("INSERT INTO person VALUES ('dee', 'sf')")
        aborted = wb.begin()
        aborted.sql("INSERT INTO likes VALUES ('bob', 'jazz')")
        aborted.rollback()
        report = wb.txns.verify()
        assert report["committed"] == 1
        assert report["aborted"] == 1
        assert report["conflict_serializable"] is True
        assert report["recovery_class"] == "ST"
        assert wb.txns.last_report is report

    def test_reads_are_recorded_once_per_relation(self):
        wb = make_wb()
        txn = wb.begin()
        txn.sql("SELECT * FROM person")
        txn.sql("SELECT name FROM person WHERE city = 'sd'")
        txn.commit()
        reads = [op for op in wb.txns.schedule() if op.kind == "r"]
        assert len(reads) == 1

    def test_reset_requires_quiescence(self):
        wb = make_wb()
        txn = wb.begin()
        with pytest.raises(TransactionError):
            wb.txns.reset()
        txn.rollback()
        wb.txns.reset()
        assert wb.txns.schedule().ops == ()


class TestObservability:
    def test_sys_transactions_reflects_the_session(self):
        wb = make_wb()
        with wb.begin() as t1:
            t1.sql("INSERT INTO person VALUES ('dee', 'sf')")
            t1.sql("SELECT * FROM likes")
        t2 = wb.begin(cc="timestamp")
        t2.sql("DELETE FROM likes WHERE name = 'ann'")
        t2.rollback()
        rows = wb.sql("SELECT * FROM sys_transactions").tuples
        # t1 read person (the INSERT target) and likes (the SELECT).
        assert (1, "2pl", "committed", 2, 1, 1, 0, 2) in rows
        assert (2, "timestamp", "aborted", 1, 1, 0, 1, 1) in rows

    def test_sys_versions_joins_the_journal(self):
        wb = make_wb()
        with wb.begin() as txn:
            txn.sql("INSERT INTO person VALUES ('dee', 'sf')")
        rows = wb.sql(
            "SELECT * FROM sys_versions WHERE relation = 'person'"
        ).tuples
        assert any(
            row[3] == "insert" and row[7] == "committed" for row in rows
        )

    def test_metrics_count_begins_commits_aborts_conflicts(self):
        wb = make_wb()
        with wb.begin() as t1:
            t1.sql("INSERT INTO person VALUES ('dee', 'sf')")
        t2 = wb.begin()
        t3 = wb.begin()
        t2.sql("INSERT INTO likes VALUES ('bob', 'jazz')")
        with pytest.raises(TransactionConflict):
            t3.sql("DELETE FROM likes WHERE name = 'bob'")
        t2.commit()
        metrics = wb.metrics
        assert metrics.counter("txn_begins_total").value == 3
        assert metrics.counter("txn_commits_total").value == 2
        assert metrics.counter("txn_aborts_total").value == 1
        assert metrics.counter("txn_conflicts_total").value == 1


class TestStandaloneManager:
    def test_manager_without_workbench_rejects_sql(self):
        db = Database.from_dict({"r": (("a",), [(1,)])})
        manager = TransactionManager(db, metrics=MetricsRegistry())
        txn = manager.begin()
        with pytest.raises(TransactionError):
            txn.sql("SELECT * FROM r")
        txn.rollback()

    def test_manual_read_stage_commit(self):
        from repro.relational.relation import Relation

        db = Database.from_dict({"r": (("a",), [(1,)])})
        manager = TransactionManager(db, metrics=MetricsRegistry())
        txn = manager.begin()
        txn.read("r")
        txn.stage(
            "r", Relation(db["r"].schema, {(1,), (2,)}),
            inserted=1, kind="insert",
        )
        txn.commit()
        assert db["r"].tuples == {(1,), (2,)}
