"""Snapshot isolation across every front-end (the satellite test).

A reader that pins a snapshot before a writer commits must see the
pre-mutation state — byte-identical results — through all four query
front-ends (SQL, algebra, calculus, Datalog), while the live database
moves on underneath.  Copy-on-write makes the pin O(1): this is the
user-visible payoff of the MVCC bindings.
"""

from repro.core.workbench import MetatheoryWorkbench
from repro.obs.metrics import MetricsRegistry
from repro.relational import algebra as ra
from repro.relational.database import Database


def make_wb():
    return MetatheoryWorkbench(
        Database.from_dict(
            {
                "person": (
                    ("name", "city"),
                    [("ann", "sd"), ("bob", "la"), ("cal", "sd")],
                ),
                "visited": (
                    ("name", "city"),
                    [("ann", "la"), ("bob", "sd")],
                ),
            }
        ),
        metrics=MetricsRegistry(),
    )


SQL = (
    "SELECT p.name FROM person p, visited v "
    "WHERE p.name = v.name AND v.city = 'sd'"
)
ALGEBRA = ra.Projection(
    ra.Selection(
        ra.NaturalJoin(
            ra.RelationRef("person"),
            ra.Rename(ra.RelationRef("visited"), {"city": "vcity"}),
        ),
        ra.Comparison("vcity", "=", ra.Const("sd")),
    ),
    ("name",),
)
CALCULUS = "{(x, y) | person(x, y)}"
DATALOG = "went_sd(N) :- visited(N, sd)."


def all_frontends(wb):
    """One result set per front-end, against the workbench's database."""
    return {
        "sql": wb.sql(SQL).tuples,
        "algebra": wb.algebra(ALGEBRA).tuples,
        "calculus": wb.calculus(CALCULUS).tuples,
        "datalog": wb.datalog(DATALOG).query("went_sd(X)"),
    }


def test_pinned_snapshot_is_stable_across_a_concurrent_commit():
    wb = make_wb()
    snap = wb.snapshot()
    reader = MetatheoryWorkbench(snap.db, metrics=MetricsRegistry())
    before = all_frontends(reader)
    assert before["sql"] == {("bob",)}
    assert before["datalog"] == {("bob",)}

    # A concurrent writer commits while the reader's snapshot is live.
    with wb.begin() as writer:
        writer.sql("INSERT INTO visited VALUES ('cal', 'sd')")
        writer.sql("DELETE FROM visited WHERE name = 'bob'")
        writer.sql("UPDATE person SET city = 'ny' WHERE name = 'ann'")

    # The live database moved...
    after_live = all_frontends(wb)
    assert after_live["sql"] == {("cal",)}
    assert after_live["calculus"] == {
        ("ann", "ny"), ("bob", "la"), ("cal", "sd"),
    }

    # ...and the reader's view did not, in any front-end.
    assert all_frontends(reader) == before


def test_snapshot_taken_mid_transaction_excludes_staged_writes():
    wb = make_wb()
    txn = wb.begin()
    txn.sql("INSERT INTO person VALUES ('dee', 'sf')")
    snap = wb.snapshot()  # pins *committed* state, not the overlay
    assert len(snap.db["person"]) == 3
    txn.commit()
    assert len(snap.db["person"]) == 3
    assert len(wb.db["person"]) == 4


def test_a_reader_session_does_not_hijack_the_writer_namespace():
    # Building a workbench over a snapshot re-registers sys_ providers;
    # with a shared _virtual dict that used to hijack the writer's
    # introspection (regression).
    wb = make_wb()
    with wb.begin() as txn:
        txn.sql("INSERT INTO person VALUES ('dee', 'sf')")
    reader = MetatheoryWorkbench(
        wb.snapshot().db, metrics=MetricsRegistry()
    )
    assert reader.sql("SELECT * FROM sys_transactions").tuples == frozenset()
    assert len(wb.sql("SELECT * FROM sys_transactions").tuples) == 1


def test_each_snapshot_pins_its_own_version():
    wb = make_wb()
    v0 = wb.snapshot()
    wb.sql("INSERT INTO person VALUES ('dee', 'sf')")
    v1 = wb.snapshot()
    wb.sql("DELETE FROM person WHERE city = 'sd'")
    v2 = wb.snapshot()
    assert v0.vid < v1.vid < v2.vid
    assert len(v0.db["person"]) == 3
    assert len(v1.db["person"]) == 4
    assert len(v2.db["person"]) == 2
    reader = MetatheoryWorkbench(v1.db, metrics=MetricsRegistry())
    assert reader.sql("SELECT name FROM person").tuples == {
        ("ann",), ("bob",), ("cal",), ("dee",),
    }
