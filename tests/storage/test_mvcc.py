"""MVCC storage: copy-on-write versions, the write journal, snapshots.

The storage contract everything else leans on: committed mutations build
*new* bindings dicts (sharing unchanged Relations by reference), the
store's version counters move exactly when bindings change, snapshots
are O(1) pinned references that later commits cannot disturb, and every
binding change leaves a journal entry with its undo image.
"""

import pytest

from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema
from repro.storage.journal import ABSENT, WriteJournal
from repro.storage.mvcc import MVCCStore, Snapshot


def make_db():
    return Database.from_dict(
        {
            "person": (("name", "city"), [("ann", "sd"), ("bob", "la")]),
            "likes": (("name", "item"), [("ann", "tea")]),
        }
    )


class TestMVCCStore:
    def test_commit_bumps_version_and_counters(self):
        store = MVCCStore()
        assert store.vid == 0
        vid = store.commit({"r": object()}, ["r"])
        assert vid == 1
        assert store.version_of("r") == 1
        assert store.last_writer_vid("r") == 1
        assert store.version_of("s") == 0
        assert store.last_writer_vid("s") == 0
        store.commit({"r": object(), "s": object()}, ["s"])
        assert store.vid == 2
        assert store.version_of("r") == 1  # unchanged binding, no bump
        assert store.last_writer_vid("s") == 2

    def test_retained_versions_are_a_bounded_tail(self):
        store = MVCCStore(retain=3)
        for i in range(6):
            store.commit({}, ["r"])
        versions = store.versions()
        assert [v.vid for v in versions] == [4, 5, 6]
        assert store.vid == 6  # eviction never rewinds the counter

    def test_database_store_is_lazy_and_sticky(self):
        db = Database()
        assert db._store is None
        store = db.store()
        assert db.store() is store


class TestWriteJournal:
    def test_sequence_is_monotonic_across_eviction(self):
        journal = WriteJournal(capacity=2)
        for i in range(5):
            journal.append(i + 1, None, "insert", "r")
        assert len(journal) == 2
        assert journal.appended == 5
        assert [entry.seq for entry in journal.entries()] == [3, 4]

    def test_entry_row_is_the_sys_versions_tuple(self):
        journal = WriteJournal()
        entry = journal.append(
            7, 3, "update", "person", inserted=2, deleted=1,
            status="staged",
        )
        assert entry.row() == (0, 7, 3, "update", "person", 2, 1, "staged")

    def test_undo_defaults_to_absent(self):
        journal = WriteJournal()
        entry = journal.append(1, None, "add", "r")
        assert entry.undo is ABSENT


class TestCopyOnWrite:
    def test_mutation_builds_a_fresh_bindings_dict(self):
        db = make_db()
        before = db._relations
        untouched = db["likes"]
        db.insert("person", [("cal", "sf")])
        assert db._relations is not before
        # The pre-mutation dict itself is never touched.
        assert len(before["person"]) == 2
        # Unchanged relations are shared by reference, not copied.
        assert db["likes"] is untouched

    def test_every_mutation_is_journaled_with_undo(self):
        db = make_db()
        old_person = db["person"]
        db.insert("person", [("cal", "sf")])
        entry = db.store().journal.entries()[-1]
        assert entry.kind == "insert"
        assert entry.name == "person"
        assert entry.inserted == 1 and entry.deleted == 0
        assert entry.undo is old_person
        assert entry.status == "committed"

    def test_add_and_remove_journal_their_cardinality(self):
        db = make_db()
        schema = RelationSchema("extra", ("k",))
        db.add(Relation(schema, {(1,), (2,)}))
        added = db.store().journal.entries()[-1]
        assert (added.kind, added.inserted, added.undo) == ("add", 2, ABSENT)
        db.remove("extra")
        removed = db.store().journal.entries()[-1]
        assert (removed.kind, removed.deleted) == ("remove", 2)

    def test_version_id_moves_only_on_change(self):
        db = make_db()
        before = db.version_id()
        db.insert("person", [("ann", "sd")])  # duplicate: set semantics
        assert db.version_id() == before
        db.insert("person", [("cal", "sf")])
        assert db.version_id() == before + 1

    def test_relation_state_diffs_name_versions_and_schema(self):
        db = make_db()
        state = db.relation_state()
        assert set(state) == {"person", "likes"}
        db.insert("person", [("cal", "sf")])
        after = db.relation_state()
        assert after["person"] != state["person"]
        assert after["likes"] == state["likes"]
        # The second component is the attribute tuple (schema identity).
        assert after["person"][1] == ("name", "city")


class TestSnapshot:
    def test_snapshot_is_an_o1_pinned_reference(self):
        db = make_db()
        snap = db.snapshot()
        assert isinstance(snap, Snapshot)
        assert snap.vid == db.store().vid
        assert snap.db._relations is db._relations

    def test_snapshot_survives_later_commits(self):
        db = make_db()
        snap = db.snapshot()
        db.insert("person", [("cal", "sf")])
        db.apply_delta("person", delete_rows=[("ann", "sd")])
        db.remove("likes")
        assert snap.db["person"].tuples == {("ann", "sd"), ("bob", "la")}
        assert snap.db["likes"].tuples == {("ann", "tea")}
        assert db["person"].tuples == {("bob", "la"), ("cal", "sf")}
        assert "likes" not in db

    def test_mutating_a_snapshot_forks_it(self):
        db = make_db()
        snap = db.snapshot()
        snap.db.insert("person", [("zed", "ny")])
        assert len(snap.db["person"]) == 3
        assert len(db["person"]) == 2

    def test_many_snapshots_pin_distinct_versions(self):
        db = make_db()
        pins = []
        for i in range(5):
            pins.append(db.snapshot())
            db.insert("likes", [("bob", "item%d" % i)])
        for i, snap in enumerate(pins):
            assert len(snap.db["likes"]) == 1 + i


class TestApplyDelta:
    def test_reports_actual_added_and_removed(self):
        db = make_db()
        relation, added, removed = db.apply_delta(
            "person",
            insert_rows=[("ann", "sd"), ("cal", "sf")],
            delete_rows=[("bob", "la"), ("zzz", "zz")],
        )
        assert added == {("cal", "sf")}
        assert removed == {("bob", "la")}
        assert relation is db["person"]

    def test_noop_delta_commits_nothing(self):
        db = make_db()
        before_vid = db.version_id()
        before_rel = db["person"]
        journal_len = db.store().journal.appended
        relation, added, removed = db.apply_delta(
            "person",
            insert_rows=[("ann", "sd")],
            delete_rows=[("ann", "sd")],
        )
        assert relation is before_rel
        assert not added and not removed
        assert db.version_id() == before_vid
        assert db.store().journal.appended == journal_len

    def test_deletes_apply_before_inserts(self):
        # An UPDATE that rewrites a row onto itself must be a no-op,
        # and one that moves it must land the new image.
        db = make_db()
        relation, added, removed = db.apply_delta(
            "person",
            insert_rows=[("ann", "sf")],
            delete_rows=[("ann", "sd")],
            kind="update",
        )
        assert ("ann", "sf") in relation.tuples
        assert ("ann", "sd") not in relation.tuples
        assert added == {("ann", "sf")} and removed == {("ann", "sd")}

    def test_system_namespace_is_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.apply_delta("sys_tables", insert_rows=[(1,)])

    def test_unknown_relation_is_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.apply_delta("ghost", insert_rows=[(1,)])

    def test_incremental_catalog_matches_fresh_census(self):
        from repro.opt.catalog import TableStats

        db = make_db()
        catalog = db.catalog()
        catalog.stats("person")
        assert catalog.rescans == 1
        db.apply_delta(
            "person",
            insert_rows=[("cal", "sf"), ("dee", "sd")],
            delete_rows=[("bob", "la")],
        )
        stats = catalog.stats("person")
        fresh = TableStats.from_relation(db["person"])
        assert stats.rows == fresh.rows
        assert stats._values == fresh._values
        assert catalog.rescans == 1  # the delta path never rescans


class TestCopyShares:
    def test_copy_shares_relations_by_reference(self):
        db = make_db()
        clone = db.copy()
        assert clone["person"] is db["person"]
        clone.insert("person", [("cal", "sf")])
        assert len(db["person"]) == 2
