"""Property-based tests for the complexity package (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.complexity import CNF, random_3sat, solve

variables = st.integers(min_value=1, max_value=7)
literals = st.builds(
    lambda v, sign: v if sign else -v, variables, st.booleans()
)
clauses = st.lists(
    st.frozensets(literals, min_size=1, max_size=3),
    min_size=0,
    max_size=12,
)


class TestDPLLProperties:
    @settings(max_examples=80, deadline=None)
    @given(clauses)
    def test_dpll_agrees_with_brute_force(self, clause_list):
        cnf = CNF(clause_list)
        result = solve(cnf)
        brute = cnf.brute_force_satisfiable()
        assert result.satisfiable == (brute is not None)

    @settings(max_examples=80, deadline=None)
    @given(clauses)
    def test_model_actually_satisfies(self, clause_list):
        cnf = CNF(clause_list)
        result = solve(cnf)
        if result.satisfiable:
            assert cnf.evaluate(result.assignment)

    @settings(max_examples=40, deadline=None)
    @given(clauses, literals)
    def test_adding_clauses_only_removes_models(self, clause_list, literal):
        cnf = CNF(clause_list)
        extended = CNF(clause_list + [frozenset([literal])])
        if not solve(cnf).satisfiable:
            assert not solve(extended).satisfiable

    @settings(max_examples=40, deadline=None)
    @given(clauses)
    def test_subset_of_clauses_stays_satisfiable(self, clause_list):
        cnf = CNF(clause_list)
        if solve(cnf).satisfiable and clause_list:
            smaller = CNF(clause_list[:-1])
            assert solve(smaller).satisfiable

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100))
    def test_random_3sat_deterministic(self, seed):
        a = random_3sat(8, 20, seed=seed)
        b = random_3sat(8, 20, seed=seed)
        assert a.clauses == b.clauses


class TestExactlyOne:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=5))
    def test_exactly_one_admits_exactly_n_models(self, n):
        import itertools

        cnf = CNF()
        cnf.add_exactly_one(list(range(1, n + 1)))
        models = 0
        for bits in itertools.product((False, True), repeat=n):
            if cnf.evaluate(dict(zip(range(1, n + 1), bits))):
                models += 1
        assert models == n
