"""Tests for CNF/DPLL, NTMs, Cook's reduction, and Fagin's theorem."""

import itertools

import pytest

from repro.complexity import (
    BLANK,
    CNF,
    NTM,
    RIGHT,
    STAY,
    accepts,
    accepts_via_sat,
    chain_database,
    check,
    combined_complexity_curve,
    cook_reduction,
    data_complexity_curve,
    graph_database,
    is_three_colorable,
    kpath_query,
    machine_contains_one,
    machine_guess_equal_ends,
    random_3sat,
    solve,
    three_colorability_sentence,
    three_colorable_via_fagin,
)
from repro.complexity.fagin import ESOSentence
from repro.errors import ComplexityError


class TestCNF:
    def test_add_clause_tracks_vars(self):
        cnf = CNF()
        cnf.add_clause([1, -3])
        assert cnf.num_vars == 3
        assert len(cnf) == 1

    def test_tautology_dropped(self):
        cnf = CNF()
        cnf.add_clause([1, -1])
        assert len(cnf) == 0

    def test_empty_clause_rejected(self):
        with pytest.raises(ComplexityError):
            CNF().add_clause([])

    def test_zero_literal_rejected(self):
        with pytest.raises(ComplexityError):
            CNF().add_clause([0])

    def test_exactly_one(self):
        cnf = CNF()
        cnf.add_exactly_one([1, 2, 3])
        sat_count = 0
        for bits in itertools.product((False, True), repeat=3):
            if cnf.evaluate(dict(zip((1, 2, 3), bits))):
                sat_count += 1
        assert sat_count == 3

    def test_implication(self):
        cnf = CNF()
        cnf.add_implication([1, 2], 3)
        assert not cnf.evaluate({1: True, 2: True, 3: False})
        assert cnf.evaluate({1: True, 2: True, 3: True})

    def test_brute_force_limit(self):
        cnf = CNF(num_vars=30)
        with pytest.raises(ComplexityError):
            cnf.brute_force_satisfiable()


class TestDPLL:
    def test_trivial_sat(self):
        cnf = CNF([[1], [2]])
        result = solve(cnf)
        assert result.satisfiable
        assert result.assignment[1] and result.assignment[2]

    def test_unsat(self):
        cnf = CNF([[1], [-1, 2], [-2]])
        assert not solve(cnf).satisfiable

    def test_model_satisfies(self):
        cnf = random_3sat(10, 30, seed=3)
        result = solve(cnf)
        if result.satisfiable:
            assert cnf.evaluate(result.assignment)

    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_brute_force(self, seed):
        cnf = random_3sat(9, 36, seed=seed)
        brute = cnf.brute_force_satisfiable()
        assert solve(cnf).satisfiable == (brute is not None)

    def test_counters_populated(self):
        cnf = random_3sat(10, 42, seed=1)
        result = solve(cnf)
        assert result.propagations >= 0
        assert result.decisions >= 0


class TestMachines:
    def test_contains_one(self):
        m = machine_contains_one()
        assert accepts(m, "0010", 8)
        assert not accepts(m, "0000", 8)
        assert m.is_deterministic()

    def test_guess_equal_ends(self):
        m = machine_guess_equal_ends()
        assert not m.is_deterministic()
        assert accepts(m, "010", 6)
        assert accepts(m, "1", 4)
        assert not accepts(m, "01", 5)

    def test_step_bound_matters(self):
        m = machine_contains_one()
        # The 1 is too far to reach in 2 steps.
        assert not accepts(m, "0001", 2)
        assert accepts(m, "0001", 6)

    def test_bad_input_symbol(self):
        with pytest.raises(ComplexityError):
            accepts(machine_contains_one(), "2", 3)

    def test_validation(self):
        with pytest.raises(ComplexityError):
            NTM(("a",), ("0",), ("0",), {}, "a", "a")  # no blank


class TestCook:
    @pytest.mark.parametrize("machine_factory", [
        machine_contains_one,
        machine_guess_equal_ends,
    ])
    def test_roundtrip_all_words_up_to_3(self, machine_factory):
        machine = machine_factory()
        for length in range(1, 4):
            for bits in itertools.product("01", repeat=length):
                word = "".join(bits)
                bound = length + 2
                assert accepts(machine, word, bound) == accepts_via_sat(
                    machine, word, bound
                ), word

    def test_reduction_size_polynomial(self):
        m = machine_contains_one()
        small = cook_reduction(m, "01", 3).cnf.stats()
        large = cook_reduction(m, "01", 6).cnf.stats()
        assert large[0] > small[0]
        # Variables grow roughly quadratically in T (cells x time).
        assert large[0] < small[0] * 10

    def test_accept_must_be_absorbing(self):
        machine = NTM(
            states=("s", "acc"),
            input_alphabet=("0",),
            tape_alphabet=("0", BLANK),
            transitions={("s", "0"): [("acc", "0", STAY)]},
            start="s",
            accept="acc",
        )
        with pytest.raises(ComplexityError):
            cook_reduction(machine, "0", 3)


class TestFagin:
    def test_three_colorability_matches_backtracking(self):
        graphs = [
            [(1, 2), (2, 3), (1, 3)],                  # triangle: yes
            [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],  # K4: no
            [(1, 2), (2, 3)],                           # path: yes
        ]
        for edges in graphs:
            assert three_colorable_via_fagin(edges) == is_three_colorable(
                edges
            ), edges

    def test_witness_returned(self):
        sentence = three_colorability_sentence()
        db = graph_database([(1, 2), (2, 3)])
        ok, witness = check(sentence, db, witness=True)
        assert ok
        colored = set()
        for relation in witness.values():
            colored |= {t[0] for t in relation.tuples}
        assert {1, 2, 3} <= colored

    def test_matrix_must_be_sentence(self):
        from repro.relational import RelAtom, Var

        with pytest.raises(ComplexityError):
            ESOSentence({"S": 1}, RelAtom("edge", [Var("x"), Var("x")]))

    def test_self_loop_never_colorable(self):
        assert not is_three_colorable([(1, 1)])


class TestMeasures:
    def test_kpath_query_answers(self):
        from repro.relational.calculus import evaluate_query

        db = chain_database(6)
        q = kpath_query(2)
        out = evaluate_query(q, db)
        assert len(out) == 5  # paths of length 2 in a 6-edge chain (7 nodes)

    def test_data_curve_monotone_sizes(self):
        rows = data_complexity_curve([4, 8], k=2)
        assert rows[0][0] == 4 and rows[1][0] == 8
        assert rows[1][2] > rows[0][2]  # more answers on bigger data

    def test_combined_curve_shrinking_answers(self):
        rows = combined_complexity_curve([1, 3], n=10)
        assert rows[0][2] > rows[1][2]

    def test_combined_blows_up_faster_than_data(self):
        from repro.complexity import growth_ratio

        data = data_complexity_curve([6, 12, 24], k=3)
        combined = combined_complexity_curve([1, 2, 3], n=12)
        # The qualitative separation; generous margin to avoid flakiness.
        assert growth_ratio(combined) > growth_ratio(data) * 0.5
