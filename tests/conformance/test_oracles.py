"""Oracle registry: green sweeps and fault detection.

The sweeps are small here (tier-1 budget); ``python -m
repro.conformance`` is the long-running version of the same loop.
"""

import pytest

import repro.plan.physical as physical
from repro.conformance import ORACLE_FAMILIES, build_oracles
from repro.conformance.oracles import (
    DatalogDifferentialOracle,
    RelationalDifferentialOracle,
)

SWEEP = 40


@pytest.fixture(scope="module")
def oracles():
    built = build_oracles()
    yield {oracle.family: oracle for oracle in built}
    for oracle in built:
        oracle.close()


class TestRegistry:
    def test_families(self):
        assert set(ORACLE_FAMILIES) == {
            "relational-differential",
            "calculus-differential",
            "datalog-differential",
            "transactions-differential",
            "transactions-live",
            "metamorphic-relational",
            "metamorphic-datalog",
            "metamorphic-optimizer",
        }

    def test_family_subset_selection(self):
        subset = build_oracles(["datalog-differential"])
        assert [oracle.family for oracle in subset] == ["datalog-differential"]
        for oracle in subset:
            oracle.close()

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            build_oracles(["bogus"])


@pytest.mark.parametrize("family", ORACLE_FAMILIES)
def test_sweep_is_green(oracles, family):
    """Every evaluation path agrees on SWEEP generated cases per family.

    These are the executable metatheorems: a red case here means two
    engines disagree about a query all theory says they must agree on.
    """
    oracle = oracles[family]
    for seed in range(SWEEP):
        case = oracle.generate(seed)
        messages = oracle.check(case)
        assert messages == [], (family, seed, messages)


class TestFaultDetection:
    """A deliberately broken engine must produce divergences — otherwise
    a green sweep proves nothing."""

    def test_relational_oracle_catches_dropped_tuples(self, monkeypatch):
        original = physical.HashJoin.tuples

        def dropping(self):
            tuples = list(original(self))
            if tuples:
                tuples.pop()
            return iter(tuples)

        monkeypatch.setattr(physical.HashJoin, "tuples", dropping)
        oracle = RelationalDifferentialOracle()
        try:
            caught = 0
            for seed in range(60):
                case = oracle.generate(seed)
                if case.payload.get("expr") is None:
                    continue
                if oracle.check(case):
                    caught += 1
            assert caught > 0
        finally:
            oracle.close()

    def test_datalog_oracle_catches_dropped_program_facts(self, monkeypatch):
        # Re-break the historical magic/top-down bug class: make the
        # magic rewrite ignore program-text facts by stripping them.
        from repro.datalog import magic as magic_module

        original = magic_module.magic_evaluate

        def stripping(program, edb, query, **kwargs):
            rules = [rule for rule in program.rules if rule.body]
            return original(type(program)(rules), edb, query, **kwargs)

        monkeypatch.setattr(magic_module, "magic_evaluate", stripping)
        monkeypatch.setattr(
            "repro.conformance.oracles.magic_evaluate", stripping
        )
        oracle = DatalogDifferentialOracle()
        try:
            caught = 0
            for seed in range(60):
                case = oracle.generate(seed)
                if oracle.check(case):
                    caught += 1
            assert caught > 0
        finally:
            oracle.close()
