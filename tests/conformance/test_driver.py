"""Driver: run reports, divergence recording, and the CLI."""

import json
import os

import pytest

import repro.plan.physical as physical
from repro.conformance import ORACLE_FAMILIES, run_conformance
from repro.conformance.driver import main
from repro.obs.metrics import MetricsRegistry


class TestRunConformance:
    def test_report_shape(self):
        report = run_conformance(
            seconds=None,
            seed=0,
            max_cases=12,
            families=["transactions-differential", "calculus-differential"],
        )
        assert report["cases"] == 12
        assert report["divergences"] == []
        assert set(report["families"]) == {
            "transactions-differential",
            "calculus-differential",
        }
        for family, stats in report["families"].items():
            assert stats["cases"] == 6
            assert stats["divergences"] == 0
        assert "transactions-differential" in report["coverage"]
        assert report["elapsed"] >= 0

    def test_round_robin_is_fair(self):
        report = run_conformance(
            seconds=None, seed=5, max_cases=len(ORACLE_FAMILIES) * 2
        )
        counts = {f: s["cases"] for f, s in report["families"].items()}
        assert set(counts.values()) == {2}

    def test_metrics_registry_integration(self):
        registry = MetricsRegistry()
        run_conformance(
            seconds=None,
            seed=0,
            max_cases=4,
            families=["transactions-differential"],
            registry=registry,
        )
        counter = registry.counter(
            "conformance_cases", family="transactions-differential"
        )
        assert counter.value == 4

    def test_divergences_shrunk_and_persisted(self, tmp_path, monkeypatch):
        original = physical.HashJoin.tuples

        def dropping(self):
            tuples = list(original(self))
            if tuples:
                tuples.pop()
            return iter(tuples)

        monkeypatch.setattr(physical.HashJoin, "tuples", dropping)
        report = run_conformance(
            seconds=None,
            seed=1,  # seeds 1..N, skipping the %4==0 parallel path early
            max_cases=40,
            families=["relational-differential"],
            corpus_dir=str(tmp_path),
        )
        assert report["divergences"], "fault injection went undetected"
        entry = report["divergences"][0]
        assert entry["family"] == "relational-differential"
        assert entry["messages"]
        assert entry["shrunk_size"] <= entry["size"]
        assert os.path.exists(entry["corpus_file"])
        with open(entry["corpus_file"]) as handle:
            data = json.load(handle)
        assert data["family"] == "relational-differential"


class TestCrashRecording:
    def test_oracle_crash_becomes_divergence(self, monkeypatch):
        # A check that raises must be recorded (and the run must keep
        # going), not kill the sweep — the optimizer column-order bug
        # surfaced exactly this way.
        from repro.conformance import driver as driver_module
        from repro.conformance.workloads import generate_case

        class ExplodingOracle:
            family = "transactions-differential"

            def generate(self, seed):
                return generate_case(self.family, seed)

            def check(self, case):
                if case.seed % 2 == 0:
                    raise RuntimeError("engine blew up")
                return []

            def close(self):
                pass

        monkeypatch.setattr(
            driver_module, "build_oracles", lambda families=None: [
                ExplodingOracle()
            ]
        )
        report = driver_module.run_conformance(seconds=None, max_cases=6)
        assert report["cases"] == 6
        assert len(report["divergences"]) == 3
        entry = report["divergences"][0]
        assert "raised" in entry["messages"][0]
        # The crash predicate shrinks crash-reproducing cases.
        assert entry["shrunk_size"] <= entry["size"]


class TestCli:
    def test_cli_writes_report(self, tmp_path, capsys):
        path = str(tmp_path / "report.json")
        code = main(
            [
                "--seconds",
                "2",
                "--seed",
                "0",
                "--max-cases",
                "18",
                "--report",
                path,
            ]
        )
        assert code == 0
        with open(path) as handle:
            report = json.load(handle)
        assert report["cases"] == 18
        assert report["divergences"] == []
        out = capsys.readouterr().out
        assert "18 cases" in out

    def test_cli_family_filter_and_stdout(self, capsys):
        code = main(
            [
                "--seconds",
                "2",
                "--max-cases",
                "6",
                "--families",
                "transactions-differential",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert list(report["families"]) == ["transactions-differential"]

    def test_cli_unknown_family_errors(self):
        with pytest.raises(ValueError):
            main(["--max-cases", "1", "--families", "bogus"])
