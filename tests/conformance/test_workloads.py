"""Workload generators: determinism, coverage reachability, structure."""

import json
import subprocess
import sys

from repro.conformance import (
    GENERATORS,
    UNIVERSES,
    CoverageTracker,
    derive_seed,
    encode_case,
    generate_case,
)


class TestDeterminism:
    def test_same_seed_same_case(self):
        for family in GENERATORS:
            for seed in range(10):
                first = encode_case(generate_case(family, seed))
                second = encode_case(generate_case(family, seed))
                assert first == second, (family, seed)

    def test_seeds_vary(self):
        for family in GENERATORS:
            payloads = {
                json.dumps(encode_case(generate_case(family, seed)))
                for seed in range(8)
            }
            assert len(payloads) > 1, family

    def test_derive_seed_is_hash_randomization_free(self):
        # The sub-seed derivation must not involve str.__hash__: the
        # same (tag, seed) pair yields the same value in every process.
        assert derive_seed("relational", 7) == derive_seed("relational", 7)
        assert derive_seed("relational", 7) != derive_seed("sql", 7)

    def test_cases_identical_across_hash_seeds(self):
        # Regenerate two families in subprocesses with different
        # PYTHONHASHSEED values; the encoded cases must be bit-identical.
        script = (
            "import json, sys; "
            "from repro.conformance import generate_case, encode_case; "
            "print(json.dumps([encode_case(generate_case(f, s)) "
            "for f in ('relational-differential', 'datalog-differential') "
            "for s in range(4)], sort_keys=True))"
        )
        outputs = []
        for hash_seed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]


class TestCoverageReachability:
    """Every audited universe construct is reachable — the generator-bias
    audit that found (and now pins the fix for) the compound-condition,
    multi-equi-theta, and multi-attribute-division blind spots of
    ``random_algebra_expression``."""

    SWEEP = 250

    def test_no_unseen_constructs_after_sweep(self):
        tracker = CoverageTracker()
        for family in UNIVERSES:
            for seed in range(self.SWEEP):
                case = generate_case(family, seed)
                tracker.observe(family, case.constructs)
        for family in UNIVERSES:
            assert tracker.unseen(family) == [], family

    def test_algebra_compound_conditions_reached(self):
        # The three construct groups the bias fix added, explicitly.
        tracker = CoverageTracker()
        for seed in range(self.SWEEP):
            case = generate_case("relational-differential", seed)
            tracker.observe(case.family, case.constructs)
        counts = tracker.counts("relational-differential")
        for construct in (
            "cond:or",
            "cond:not",
            "theta:multi-equi",
            "theta:non-equi",
            "divide:multi-attr",
        ):
            assert counts.get(construct, 0) > 0, construct


class TestCaseStructure:
    def test_constructs_sorted_and_unique(self):
        for family in GENERATORS:
            case = generate_case(family, 3)
            assert case.constructs == sorted(set(case.constructs))

    def test_unknown_family_rejected(self):
        try:
            generate_case("no-such-family", 0)
        except ValueError as error:
            assert "no-such-family" in str(error)
        else:
            raise AssertionError("expected ValueError")

    def test_sql_mix_parses(self):
        from repro.relational.sql_frontend import parse_sql

        for seed in range(60):
            case = generate_case("relational-differential", seed)
            if case.payload.get("sql") is not None:
                parse_sql(case.payload["sql"])
