"""Delta-debugging shrinker: ddmin units and the end-to-end demo."""

import pytest

import repro.plan.physical as physical
from repro.conformance import (
    case_size,
    ddmin_list,
    decode_case,
    encode_case,
    expression_depth,
    expression_size,
    oracle_predicate,
    shrink_case,
)
from repro.conformance.oracles import (
    RelationalDifferentialOracle,
    TransactionsDifferentialOracle,
)
from repro.conformance.workloads import generate_case
from repro.relational import algebra as ra


class TestDdmin:
    def test_minimizes_to_single_culprit(self):
        items = list(range(100))
        result = ddmin_list(items, lambda subset: 37 in subset)
        assert result == [37]

    def test_minimizes_to_pair(self):
        items = list(range(50))
        result = ddmin_list(
            items, lambda subset: 3 in subset and 41 in subset
        )
        assert result == [3, 41]

    def test_keeps_order(self):
        items = ["a", "b", "c", "d"]
        result = ddmin_list(
            items, lambda subset: "b" in subset and "d" in subset
        )
        assert result == ["b", "d"]

    def test_everything_removable(self):
        assert ddmin_list([1, 2, 3], lambda subset: True) == []

    def test_nothing_removable(self):
        items = [1, 2, 3]
        assert ddmin_list(items, lambda s: s == items) == items

    def test_probe_count_is_subquadratic(self):
        calls = []
        items = list(range(64))

        def test_fn(subset):
            calls.append(1)
            return 11 in subset

        ddmin_list(items, test_fn)
        assert len(calls) < 64 * 8


class TestExpressionMeasures:
    def test_depth_and_size(self):
        leaf = ra.RelationRef("r1")
        assert expression_depth(leaf) == 1
        assert expression_size(leaf) == 1
        tree = ra.Union(ra.Selection(leaf, ra.Comparison(
            ra.Attr("a"), "=", ra.Const(1))), leaf)
        assert expression_depth(tree) == 3
        assert expression_size(tree) == 4


class TestShrinkGuards:
    def test_non_failing_case_returned_unchanged(self):
        case = generate_case("relational-differential", 1)
        shrunk = shrink_case(case, lambda c: False)
        assert shrunk is case

    def test_budget_caps_probes(self):
        case = generate_case("transactions-differential", 1)
        calls = []

        def pred(candidate):
            calls.append(1)
            return True  # everything "fails": worst case for the budget

        shrink_case(case, pred, max_checks=25)
        assert len(calls) <= 26  # initial confirmation + budget


class TestShrinkSchedule:
    def test_shrinks_to_witness_ops(self):
        oracle = TransactionsDifferentialOracle()
        case = generate_case("transactions-differential", 5)
        schedule = case.payload["schedule"]

        # Synthetic predicate: "fails" while the schedule still touches
        # the first transaction's first item with both a read and write.
        target = schedule.ops[0].txn

        def pred(candidate):
            ops = candidate.payload["schedule"].ops
            return any(op.txn == target and op.kind == "w" for op in ops)

        shrunk = shrink_case(case, pred)
        assert len(shrunk.payload["schedule"].ops) <= 2
        oracle.close()


class TestShrinkerDemo:
    """The acceptance demo: a hash join that drops one tuple is found,
    shrunk to a tiny witness, serialized, and replays red-then-green."""

    def test_dropped_tuple_shrinks_small_and_replays(
        self, tmp_path, monkeypatch
    ):
        original = physical.HashJoin.tuples

        def dropping(self):
            tuples = list(original(self))
            if tuples:
                tuples.pop()
            return iter(tuples)

        monkeypatch.setattr(physical.HashJoin, "tuples", dropping)
        oracle = RelationalDifferentialOracle()
        pred = oracle_predicate(oracle)
        try:
            failing = None
            for seed in range(200):
                if seed % 4 == 0:
                    continue  # skip the parallel-backend comparison path
                case = oracle.generate(seed)
                if case.payload.get("expr") is None:
                    continue
                if pred(case):
                    failing = case
                    break
            assert failing is not None, "fault injection found no case"

            shrunk = shrink_case(failing, pred)
            assert case_size(shrunk) <= case_size(failing)
            assert len(shrunk.payload["db"]) <= 3
            assert shrunk.payload["db"].total_tuples() <= 6
            assert expression_depth(shrunk.payload["expr"]) <= 3
            assert pred(shrunk), "shrunk case no longer reproduces"

            # Serialize, reload: still red under the fault...
            data = encode_case(shrunk)
            reloaded = decode_case(data)
            assert oracle.check(reloaded), "serialized repro lost the bug"

            # ...and green once the fault is removed.
            monkeypatch.setattr(physical.HashJoin, "tuples", original)
            assert oracle.check(reloaded) == []
        finally:
            oracle.close()
