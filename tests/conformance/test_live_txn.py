"""The transactions-live conformance family: runtime vs. metatheory.

The generator emits seeded interleavings of SQL DML across concurrent
live transactions; the oracle replays each under both concurrency
controls and demands zero divergences from the scheduler theory
(serializable + strict committed histories), a serial-replay final
state, and a clean journal.  These tests pin the family's determinism,
construct coverage, fault sensitivity, and shrinkability.
"""

import pytest

from repro.conformance import build_oracles
from repro.conformance.coverage import LIVE_TXN_UNIVERSE, CoverageTracker
from repro.conformance.oracles import LiveTransactionsOracle
from repro.conformance.shrinker import case_size, shrink_case
from repro.conformance.workloads import transactions_live_case

SWEEP = 30


@pytest.fixture(scope="module")
def oracle():
    built = LiveTransactionsOracle()
    yield built
    built.close()


class TestGenerator:
    def test_cases_are_deterministic_per_seed(self):
        for seed in (0, 7, 23):
            a = transactions_live_case(seed)
            b = transactions_live_case(seed)
            assert a.payload["programs"] == b.payload["programs"]
            assert a.payload["order"] == b.payload["order"]
            assert a.payload["commit_order"] == b.payload["commit_order"]
            assert a.payload["db"] == b.payload["db"]
            assert a.constructs == b.constructs

    def test_the_interleaving_is_well_formed(self):
        for seed in range(20):
            case = transactions_live_case(seed)
            programs = case.payload["programs"]
            order = case.payload["order"]
            commit_order = case.payload["commit_order"]
            # Every statement is scheduled exactly once...
            assert sorted(order) == sorted(
                index
                for index, program in enumerate(programs)
                for _ in program
            )
            # ...and every transaction commits exactly once.
            assert sorted(commit_order) == list(range(len(programs)))

    def test_the_universe_is_reachable(self):
        tracker = CoverageTracker()
        for seed in range(120):
            case = transactions_live_case(seed)
            tracker.observe(case.family, case.constructs)
        assert tracker.unseen("transactions-live") == []
        assert set(tracker.counts("transactions-live")) <= LIVE_TXN_UNIVERSE


class TestOracle:
    def test_sweep_is_green_under_both_concurrency_controls(self, oracle):
        for seed in range(SWEEP):
            case = oracle.generate(seed)
            assert oracle.check(case) == [], seed

    def test_registry_builds_the_family(self):
        built = build_oracles(["transactions-live"])
        assert [o.family for o in built] == ["transactions-live"]
        for o in built:
            o.close()

    def test_a_broken_runtime_is_caught(self, oracle, monkeypatch):
        """Sensitivity: silently dropping a committed write set must
        surface as a final-state divergence, not a green sweep."""
        from repro.relational.database import Database

        original = Database.apply_overlay

        def lossy(self, bindings, txn=None, journal=True):
            if txn is not None and txn % 2 == 0:
                bindings = {}  # drop even transactions' writes
            return original(self, bindings, txn=txn, journal=journal)

        monkeypatch.setattr(Database, "apply_overlay", lossy)
        caught = 0
        for seed in range(SWEEP):
            case = oracle.generate(seed)
            if oracle.check(case):
                caught += 1
        assert caught > 0

    def test_a_broken_lock_table_is_caught(self, oracle, monkeypatch):
        """A 2PL that grants every lock lets dirty interleavings through;
        the theory predicates (or the replay oracle) must notice."""
        from repro.transactions.locking import LockTable

        monkeypatch.setattr(
            LockTable, "can_grant", lambda self, txn, item, mode: True
        )
        caught = 0
        for seed in range(SWEEP):
            case = oracle.generate(seed)
            if oracle.check(case):
                caught += 1
        assert caught > 0


class TestShrinker:
    def test_shrinks_toward_the_failure_witness(self):
        # A synthetic predicate standing in for a real divergence:
        # "the case schedules at least one DELETE". The shrinker must
        # keep the witness while dropping everything else it can.
        for seed in range(40):
            case = transactions_live_case(seed)
            def has_delete(candidate):
                return any(
                    stmt.startswith("DELETE")
                    for program in candidate.payload["programs"]
                    for stmt in program
                )
            if not has_delete(case):
                continue
            shrunk = shrink_case(case, has_delete)
            assert has_delete(shrunk)
            assert case_size(shrunk) <= case_size(case)
            statements = [
                stmt
                for program in shrunk.payload["programs"]
                for stmt in program
            ]
            assert len(statements) == 1  # exactly the witness survives
            # The shrunk interleaving is still well-formed.
            assert sorted(shrunk.payload["commit_order"]) == list(
                range(len(shrunk.payload["programs"]))
            )
            assert len(shrunk.payload["order"]) == len(statements)
            break
        else:  # pragma: no cover - generator always emits deletes
            pytest.fail("no DELETE-bearing case in the first 40 seeds")
