"""CoverageTracker: counting, auditing, deltas, metrics publication."""

from repro.conformance import ALGEBRA_UNIVERSE, CoverageTracker
from repro.obs.metrics import MetricsRegistry


class TestTracking:
    def test_counts_and_cases(self):
        tracker = CoverageTracker()
        tracker.observe("f", ["a", "b"])
        tracker.observe("f", ["b"])
        tracker.observe("g", ["c"])
        assert tracker.cases("f") == 2
        assert tracker.cases() == 3
        assert tracker.counts("f") == {"a": 1, "b": 2}
        assert tracker.families() == ["f", "g"]

    def test_unseen_against_explicit_universe(self):
        tracker = CoverageTracker()
        tracker.observe("f", ["a"])
        assert tracker.unseen("f", universe={"a", "b", "c"}) == ["b", "c"]

    def test_unseen_uses_registered_universe(self):
        tracker = CoverageTracker()
        tracker.observe("relational-differential", ["node:selection"])
        unseen = tracker.unseen("relational-differential")
        assert "node:selection" not in unseen
        assert set(unseen) == set(ALGEBRA_UNIVERSE) - {"node:selection"}

    def test_unaudited_family_has_empty_universe(self):
        tracker = CoverageTracker()
        tracker.observe("calculus-differential", ["calc:atom"])
        assert tracker.unseen("calculus-differential") == []

    def test_delta(self):
        tracker = CoverageTracker()
        tracker.observe("f", ["a"])
        before = tracker.snapshot()
        tracker.observe("f", ["a", "b"])
        assert tracker.delta(before) == {"f": {"a": 1, "b": 1}}
        assert tracker.delta(tracker.snapshot()) == {}

    def test_report_shape(self):
        tracker = CoverageTracker()
        tracker.observe("transactions-differential", ["op:read"])
        report = tracker.report()
        entry = report["transactions-differential"]
        assert entry["cases"] == 1
        assert entry["constructs"] == {"op:read": 1}
        assert "op:write" in entry["unseen"]


class TestMetricsPublication:
    def test_counters_published(self):
        registry = MetricsRegistry()
        tracker = CoverageTracker(registry=registry)
        tracker.observe("f", ["a", "b"])
        tracker.observe("f", ["a"])
        assert registry.counter("conformance_cases", family="f").value == 2
        assert (
            registry.counter(
                "conformance_construct", family="f", construct="a"
            ).value
            == 2
        )
        assert (
            registry.counter(
                "conformance_construct", family="f", construct="b"
            ).value
            == 1
        )
