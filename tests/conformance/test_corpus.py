"""Corpus layer: JSON round-trips and the seeded regression replay."""

import json
import os
import time

import pytest

from repro.conformance import (
    build_oracles,
    decode_case,
    encode_case,
    load_corpus,
    replay,
    save_case,
)
from repro.conformance.workloads import GENERATORS, generate_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestRoundTrip:
    @pytest.mark.parametrize("family", sorted(GENERATORS))
    def test_encode_decode_fixpoint(self, family):
        for seed in range(12):
            case = generate_case(family, seed)
            data = json.loads(json.dumps(encode_case(case)))
            back = decode_case(data)
            assert encode_case(back) == encode_case(case), (family, seed)

    def test_decoded_case_checks_identically(self):
        oracle = build_oracles(["datalog-differential"])[0]
        case = oracle.generate(4)
        back = decode_case(encode_case(case))
        assert oracle.check(back) == oracle.check(case)
        oracle.close()

    def test_rejects_unknown_format(self):
        case = generate_case("transactions-differential", 0)
        data = encode_case(case)
        data["format"] = 999
        with pytest.raises(ValueError):
            decode_case(data)


class TestDirectory:
    def test_save_and_load(self, tmp_path):
        case = generate_case("datalog-differential", 2)
        path = save_case(case, str(tmp_path), messages=["m"])
        assert path.endswith("datalog-differential-seed2.json")
        entries = load_corpus(str(tmp_path))
        assert len(entries) == 1
        loaded_path, loaded, messages = entries[0]
        assert loaded_path == path
        assert messages == ["m"]
        assert encode_case(loaded) == encode_case(case)

    def test_same_case_overwrites(self, tmp_path):
        case = generate_case("transactions-differential", 1)
        save_case(case, str(tmp_path))
        save_case(case, str(tmp_path), messages=["second"])
        entries = load_corpus(str(tmp_path))
        assert len(entries) == 1
        assert entries[0][2] == ["second"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []


class TestSeededRegressionCorpus:
    """Replay every committed corpus entry: once-found bugs stay found.

    This is the tier-1 regression gate for the historical bug classes
    (magic/top-down program-text facts, the theta-join enumeration
    filter, the parallel serial-retry fallback, the recovery
    abort-restore model) — and for anything future fuzz runs persist.
    """

    def test_corpus_is_seeded(self):
        entries = load_corpus(CORPUS_DIR)
        assert len(entries) >= 5
        families = {case.family for _, case, _ in entries}
        assert len(families) >= 3

    def test_every_entry_replays_green(self):
        entries = load_corpus(CORPUS_DIR)
        oracles = {o.family: o for o in build_oracles()}
        start = time.monotonic()
        failures = {}
        try:
            for path, case, _messages in entries:
                messages = replay(case, oracles)
                if messages:
                    failures[os.path.basename(path)] = messages
        finally:
            for oracle in oracles.values():
                oracle.close()
        elapsed = time.monotonic() - start
        assert failures == {}
        assert elapsed < 5.0, "corpus replay must stay fast (tier-1)"

    def test_entries_carry_notes(self):
        for path, case, _messages in load_corpus(CORPUS_DIR):
            assert case.note, path
