"""Shared pytest configuration: Hypothesis test profiles.

Two profiles, selected with the ``HYPOTHESIS_PROFILE`` environment
variable (CI exports ``HYPOTHESIS_PROFILE=ci``):

* ``dev`` (default) — fast local feedback: the stock example budget
  with a generous deadline so a loaded laptop does not flake.
* ``ci`` — more examples and no deadline: CI machines have noisy
  timing, and the extra examples are where rare interleavings and deep
  expression shapes show up.

Tests that pin their own ``@settings(...)`` keep those values; the
profile supplies the defaults underneath.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    max_examples=50,
    deadline=1000,
    print_blob=True,
)
settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    print_blob=True,
    suppress_health_check=(HealthCheck.too_slow,),
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
