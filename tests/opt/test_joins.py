"""Join enumeration: Selinger DP, greedy fallback, Yannakakis routing."""

import pytest

from repro.opt import Optimizer
from repro.opt.joins import flatten_joins
from repro.relational import (
    Database,
    NaturalJoin,
    Projection,
    RelationRef,
    Selection,
    Semijoin,
    eq,
    evaluate,
)


def chain_db(sizes=(40, 8, 2)):
    """r(a,b) ⋈ s(b,c) ⋈ t(c,d): an acyclic (chain) join."""
    r, s, t = sizes
    return Database.from_dict(
        {
            "r": (("a", "b"), [(i, i % 10) for i in range(r)]),
            "s": (("b", "c"), [(i % 10, i % 5) for i in range(s)]),
            "t": (("c", "d"), [(i % 5, i) for i in range(t)]),
        }
    )


def chain_join():
    return NaturalJoin(
        NaturalJoin(RelationRef("r"), RelationRef("s")), RelationRef("t")
    )


def triangle_db():
    """r(a,b) ⋈ s(b,c) ⋈ u(c,a): a cyclic join (no join tree exists)."""
    return Database.from_dict(
        {
            "r": (("a", "b"), [(i % 4, i % 3) for i in range(12)]),
            "s": (("b", "c"), [(i % 3, i % 4) for i in range(12)]),
            "u": (("c", "a"), [(i % 4, i % 4) for i in range(12)]),
        }
    )


def info_for(expr, db, **kwargs):
    optimizer = Optimizer(**kwargs)
    plan, info = optimizer.optimize_info(expr, db)
    return plan, info


class TestYannakakisRouting:
    # Routing structure tests relax the cost gate (yannakakis_threshold
    # =None): the fixtures are deliberately tiny, and the gate exists
    # precisely to keep tiny joins un-routed (see TestRoutingGate).
    def test_acyclic_chain_routes(self):
        db = chain_db()
        expr = chain_join()
        plan, info = info_for(expr, db, yannakakis_threshold=None)
        assert info.join_method == "yannakakis"
        assert info.fired.get("route-yannakakis") == 1
        assert set(info.join_order) == {"r", "s", "t"}
        result = evaluate(plan, db)
        baseline = evaluate(expr, db)
        assert result == baseline  # exact: column order preserved too

    def test_routed_plan_contains_semijoins(self):
        db = chain_db()
        plan, _info = info_for(chain_join(), db, yannakakis_threshold=None)
        def count(node):
            if isinstance(node, Semijoin):
                return 1 + count(node.left) + count(node.right)
            total = 0
            for attr in ("child", "left", "right"):
                sub = getattr(node, attr, None)
                if sub is not None:
                    total += count(sub)
            return total
        assert count(plan) >= 4  # full reduction: up + down sweeps

    def test_cyclic_join_is_not_routed(self):
        db = triangle_db()
        expr = NaturalJoin(
            NaturalJoin(RelationRef("r"), RelationRef("s")),
            RelationRef("u"),
        )
        plan, info = info_for(expr, db)
        assert info.join_method != "yannakakis"
        assert "route-yannakakis" not in info.fired
        assert evaluate(plan, db) == evaluate(expr, db)

    def test_two_way_join_is_not_routed(self):
        db = chain_db()
        expr = NaturalJoin(RelationRef("r"), RelationRef("s"))
        _plan, info = info_for(expr, db)
        assert "route-yannakakis" not in info.fired

    def test_disconnected_join_is_not_routed(self):
        db = Database.from_dict(
            {
                "p": (("a",), [(1,), (2,)]),
                "q": (("b",), [(3,)]),
                "v": (("c",), [(4,)]),
            }
        )
        expr = NaturalJoin(
            NaturalJoin(RelationRef("p"), RelationRef("q")),
            RelationRef("v"),
        )
        plan, info = info_for(expr, db)
        assert "route-yannakakis" not in info.fired
        assert evaluate(plan, db) == evaluate(expr, db)

    def test_routing_can_be_disabled(self):
        db = chain_db()
        plan, info = info_for(
            chain_join(), db, disable=("route-yannakakis",)
        )
        assert info.join_method in ("dp", "greedy")
        assert evaluate(plan, db) == evaluate(chain_join(), db)


class TestOrdering:
    def order_of(self, db, expr, **kwargs):
        _plan, info = info_for(expr, db, disable=("route-yannakakis",),
                               **kwargs)
        return info

    def test_dp_below_threshold(self):
        info = self.order_of(chain_db(), chain_join())
        assert info.join_method == "dp"
        assert set(info.join_order) == {"r", "s", "t"}

    def test_greedy_above_threshold(self):
        info = self.order_of(chain_db(), chain_join(), dp_threshold=2)
        assert info.join_method == "greedy"

    def test_dp_starts_from_small_relations(self):
        # s ⋈ t is far cheaper than r ⋈ s: the chosen plan must join
        # the two small relations innermost, not extend r ⋈ s.
        db = chain_db(sizes=(40, 8, 2))
        plan, info = info_for(
            chain_join(), db, disable=("route-yannakakis",)
        )
        assert info.join_method == "dp"

        def innermost_pairs(node, out):
            if isinstance(node, NaturalJoin):
                left_join = isinstance(node.left, NaturalJoin)
                right_join = isinstance(node.right, NaturalJoin)
                if not left_join and not right_join:
                    out.append(
                        frozenset(
                            (node.left.name, node.right.name)
                        )
                    )
                innermost_pairs(node.left, out)
                innermost_pairs(node.right, out)
            elif isinstance(node, Projection):
                innermost_pairs(node.child, out)
            return out

        assert frozenset(("s", "t")) in innermost_pairs(plan, [])

    def test_ordered_plan_preserves_column_order(self):
        db = chain_db()
        expr = chain_join()
        plan, _info = info_for(expr, db, disable=("route-yannakakis",))
        assert evaluate(plan, db) == evaluate(expr, db)

    def test_selection_wrapped_leaves_still_order(self):
        db = chain_db()
        expr = NaturalJoin(
            NaturalJoin(
                Selection(RelationRef("r"), eq("a", 1)), RelationRef("s")
            ),
            RelationRef("t"),
        )
        plan, info = info_for(expr, db, disable=("route-yannakakis",))
        assert info.join_method == "dp"
        assert evaluate(plan, db) == evaluate(expr, db)

    def test_already_optimal_order_is_identity(self):
        # When enumeration picks the original order, the expression is
        # returned unchanged and order-joins does not report a firing.
        db = Database.from_dict(
            {
                "x": (("a", "b"), [(1, 1)]),
                "y": (("b", "c"), [(1, 2), (1, 3)]),
                "z": (("c", "d"), [(2, 4), (3, 5), (2, 6)]),
            }
        )
        expr = NaturalJoin(
            NaturalJoin(RelationRef("x"), RelationRef("y")),
            RelationRef("z"),
        )
        plan, info = info_for(expr, db, disable=("route-yannakakis",))
        if "order-joins" not in info.fired:
            assert flatten_joins(plan) == flatten_joins(expr)


class TestMaterializationWin:
    def test_yannakakis_materializes_fewer_tuples(self):
        """The tentpole's acceptance shape: on a selective acyclic
        chain, the routed plan's intermediates stay smaller than the
        unrouted cost-ordered plan's."""
        # A "dumbbell" chain: the middle relation is mostly dangling
        # (only b ∈ {0,1} has partners in r, only c ∈ {18,19} in t),
        # so semijoin reduction strips s to 4 rows before any join,
        # while every join-at-a-time order materializes a large
        # half-reduced intermediate first.
        db = Database.from_dict(
            {
                "r": (
                    ("a", "b"),
                    [(i, i % 2) for i in range(50)],
                ),
                "s": (
                    ("b", "c"),
                    [(b, c) for b in range(20) for c in range(20)],
                ),
                "t": (
                    ("c", "d"),
                    [(18 + i % 2, i) for i in range(50)],
                ),
            }
        )
        expr = chain_join()
        routed, info = info_for(expr, db, yannakakis_threshold=None)
        unrouted, _ = info_for(expr, db, disable=("route-yannakakis",))
        assert info.join_method == "yannakakis"

        def materialized(plan):
            total = 0
            stack = [plan]
            while stack:
                node = stack.pop()
                if isinstance(node, (NaturalJoin, Semijoin)):
                    total += len(evaluate(node, db))
                for attr in ("child", "left", "right"):
                    sub = getattr(node, attr, None)
                    if sub is not None:
                        stack.append(sub)
            return total

        assert evaluate(routed, db) == evaluate(unrouted, db)
        assert materialized(routed) < materialized(unrouted)


class TestRoutingGate:
    """The cost gate: Yannakakis must pay for its sweeps in savings."""

    def small_star(self):
        # BENCH_optimizer's star shape in miniature: a 10k-row fact with
        # tiny dimensions.  The intermediates are barely larger than the
        # result, so the semijoin sweeps cost more than they save.
        db = Database.from_dict(
            {
                "fact": (
                    ("k1", "k2"),
                    [(i % 100, i // 100) for i in range(10000)],
                ),
                "dim1": (("k1", "a1"), [(i, i) for i in range(10)]),
                "dim2": (("k2", "a2"), [(i, i) for i in range(10)]),
            }
        )
        expr = NaturalJoin(
            NaturalJoin(RelationRef("dim1"), RelationRef("fact")),
            RelationRef("dim2"),
        )
        return db, expr

    def path4(self):
        # The large path-4 shape: wide middle relations whose
        # intermediates dwarf both the inputs and the result.
        db = Database.from_dict(
            {
                "r1": (("a", "b"), [(i, i % 10) for i in range(10)]),
                "r2": (
                    ("b", "c"),
                    [(i % 60, i // 60) for i in range(3600)],
                ),
                "r3": (
                    ("c", "d"),
                    [(i // 60, i % 60) for i in range(3600)],
                ),
                "r4": (("d", "e"), [(i % 10, i) for i in range(10)]),
            }
        )
        expr = NaturalJoin(
            NaturalJoin(
                NaturalJoin(RelationRef("r1"), RelationRef("r2")),
                RelationRef("r3"),
            ),
            RelationRef("r4"),
        )
        return db, expr

    def test_small_star_stays_unrouted(self):
        db, expr = self.small_star()
        plan, info = info_for(expr, db)
        assert "route-yannakakis" not in info.fired
        assert info.join_method in ("dp", "greedy")
        assert evaluate(plan, db) == evaluate(expr, db)

    def test_small_chain_stays_unrouted(self):
        _plan, info = info_for(chain_join(), chain_db())
        assert "route-yannakakis" not in info.fired

    def test_large_path4_still_routes(self):
        db, expr = self.path4()
        plan, info = info_for(expr, db)
        assert info.fired.get("route-yannakakis") == 1
        assert info.join_method == "yannakakis"
        assert evaluate(plan, db) == evaluate(expr, db)

    def test_none_threshold_disables_gate(self):
        db, expr = self.small_star()
        _plan, info = info_for(expr, db, yannakakis_threshold=None)
        assert info.fired.get("route-yannakakis") == 1

    def test_threshold_is_in_config_token(self):
        # A cached plan keyed without the threshold would survive a
        # reconfiguration; the token must distinguish the two.
        assert (
            Optimizer().config_token()
            != Optimizer(yannakakis_threshold=None).config_token()
        )
