"""EXPLAIN ANALYZE carries the optimizer's estimates next to actuals."""

import pytest

from repro.core.workbench import MetatheoryWorkbench
from repro.relational import (
    Database,
    NaturalJoin,
    RelationRef,
    Selection,
    eq,
)


@pytest.fixture
def wb():
    # Uniform keys: every estimate in the catalog profile should land
    # close to the truth, which is what makes the factor bounds fair.
    return MetatheoryWorkbench(
        Database.from_dict(
            {
                "r": (("a", "b"), [(i, i % 10) for i in range(100)]),
                "s": (("b", "c"), [(i // 4, i % 4) for i in range(40)]),
                "t": (("c", "d"), [(i % 4, i) for i in range(20)]),
            }
        )
    )


def chain():
    return NaturalJoin(
        NaturalJoin(RelationRef("r"), RelationRef("s")), RelationRef("t")
    )


class TestEstimateAnnotations:
    def test_every_operator_reports_an_estimate(self, wb):
        explained = wb.explain_analyze(chain())
        reports = [report for _, report in explained.report.walk()]
        assert reports
        assert all(report.est_rows is not None for report in reports)

    def test_estimates_render_next_to_actuals(self, wb):
        rendered = wb.explain_analyze(chain()).render()
        assert "est=" in rendered
        assert "rows=" in rendered

    def test_optimizer_header_line(self, wb):
        explained = wb.explain_analyze(chain())
        rendered = explained.render()
        assert "Optimizer:" in rendered
        assert "route-yannakakis" in rendered

    def test_as_dict_carries_optimizer_and_estimates(self, wb):
        payload = wb.explain_analyze(chain()).as_dict()
        optimizer = payload["optimizer"]
        assert optimizer["rules_fired"]
        assert optimizer["join_method"] == "yannakakis"
        assert optimizer["rules_enabled"]

        def walk(node):
            yield node
            for child in node["children"]:
                yield from walk(child)

        assert all(
            entry["est_rows"] is not None for entry in walk(payload["plan"])
        )

    def test_unoptimized_run_has_no_optimizer_info(self, wb):
        explained = wb.explain_analyze(chain(), optimized=False)
        assert explained.optimizer is None
        assert "Optimizer:" not in explained.render()
        # Estimates still annotate the raw plan — the cost surface does
        # not depend on the rewrite pipeline having run.
        assert any(
            report.est_rows is not None
            for _, report in explained.report.walk()
        )


class TestEstimationQuality:
    """Pinned accuracy: on uniform data the catalog profile's estimates
    stay within a small factor of the measured row counts."""

    FACTOR = 4.0

    def assert_within_factor(self, explained):
        for _, report in explained.report.walk():
            if report.est_rows is None or report.rows == 0:
                continue
            ratio = report.est_rows / report.rows
            assert 1.0 / self.FACTOR <= ratio <= self.FACTOR, (
                report.label,
                report.est_rows,
                report.rows,
            )

    def test_root_estimate_matches_uniform_join(self, wb):
        explained = wb.explain_analyze(
            NaturalJoin(RelationRef("r"), RelationRef("s"))
        )
        # 100 × 40 / max distinct(b) = 400: exact on uniform keys.
        assert explained.report.rows == 400
        assert explained.report.est_rows == pytest.approx(400.0)

    def test_chain_estimates_within_factor(self, wb):
        self.assert_within_factor(wb.explain_analyze(chain()))

    def test_selective_query_estimates_within_factor(self, wb):
        expr = Selection(
            NaturalJoin(RelationRef("r"), RelationRef("s")), eq("b", 3)
        )
        explained = wb.explain_analyze(expr)
        assert explained.report.rows == 40
        self.assert_within_factor(explained)
