"""Catalog statistics: lazy scans, binding validation, incremental insert."""

import pytest

from repro.opt import Catalog, TableStats
from repro.relational import Database, Relation, RelationSchema


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "r": (("a", "b"), [(i, i % 3) for i in range(12)]),
            "s": (("b", "c"), [(0, "x"), (1, "y"), (2, "z")]),
        }
    )


class TestTableStats:
    def test_census(self, db):
        stats = TableStats.from_relation(db["r"])
        assert stats.rows == 12
        assert stats.distinct("a") == 12
        assert stats.distinct("b") == 3
        assert stats.distincts() == {"a": 12, "b": 3}

    def test_unknown_attribute_is_zero(self, db):
        stats = TableStats.from_relation(db["r"])
        assert stats.distinct("nope") == 0

    def test_observe_folds_new_rows(self, db):
        stats = TableStats.from_relation(db["s"])
        stats.observe([(3, "w"), (4, "x")])
        assert stats.rows == 5
        assert stats.distinct("b") == 5
        assert stats.distinct("c") == 4  # "x" was already known


class TestCatalogCaching:
    def test_lazy_and_cached(self, db):
        catalog = db.catalog()
        assert catalog.rescans == 0
        assert catalog.rows("r") == 12
        assert catalog.rescans == 1
        assert catalog.distinct("r", "b") == 3
        assert catalog.rescans == 1  # same binding, no rescan

    def test_catalog_is_per_database_singleton(self, db):
        assert db.catalog() is db.catalog()

    def test_unknown_name(self, db):
        catalog = db.catalog()
        assert catalog.stats("nope") is None
        assert catalog.rows("nope") == 0
        assert catalog.distinct("nope", "a") == 0

    def test_replace_invalidates(self, db):
        catalog = db.catalog()
        assert catalog.rows("s") == 3
        schema = RelationSchema("s", ("b", "c"))
        db.replace(Relation(schema, [(9, "q")]))
        assert catalog.rows("s") == 1
        assert catalog.rescans == 2

    def test_remove_and_invalidate_all(self, db):
        catalog = db.catalog()
        catalog.stats("r")
        db.remove("r")
        assert catalog.stats("r") is None
        catalog.stats("s")
        catalog.invalidate()
        before = catalog.rescans
        catalog.stats("s")
        assert catalog.rescans == before + 1


class TestIncrementalInsert:
    def test_insert_maintains_without_rescan(self, db):
        catalog = db.catalog()
        catalog.stats("r")
        assert catalog.rescans == 1
        db.insert("r", [(100, 7), (101, 7)])
        stats = catalog.stats("r")
        assert catalog.rescans == 1  # folded, not rescanned
        fresh = TableStats.from_relation(db["r"])
        assert stats.rows == fresh.rows == 14
        assert stats.distincts() == fresh.distincts()

    def test_insert_dedups_existing_rows(self, db):
        catalog = db.catalog()
        catalog.stats("s")
        db.insert("s", [(0, "x"), (5, "v")])  # (0, "x") already present
        stats = catalog.stats("s")
        assert stats.rows == 4
        assert stats.distinct("b") == 4
        assert catalog.rescans == 1

    def test_insert_without_cached_entry_scans_lazily(self, db):
        catalog = db.catalog()
        db.insert("r", [(100, 7)])  # no entry yet: nothing to maintain
        assert catalog.rescans == 0
        assert catalog.rows("r") == 13
        assert catalog.rescans == 1

    def test_insert_without_catalog(self):
        db = Database.from_dict({"t": (("a",), [(1,)])})
        db.insert("t", [(2,)])  # must not create or need a catalog
        assert len(db["t"]) == 2

    def test_standalone_catalog_binding_check(self, db):
        catalog = Catalog(db)
        first = catalog.stats("r")
        assert catalog.stats("r") is first
