"""The rewrite rules: shapes, identity preservation, toggles."""

import pytest

from repro.opt import Optimizer, rule_names
from repro.opt.rules import (
    Context,
    fold_condition,
    fold_constants,
    get_rules,
    merge_selections,
    prune_projections,
    push_antijoin,
    push_selections,
    split_selections,
)
from repro.relational import (
    Antijoin,
    ConstantRelation,
    Database,
    NaturalJoin,
    Projection,
    RelationRef,
    Selection,
    Semijoin,
    eq,
    evaluate,
    gt,
)
from repro.relational.algebra import And, Attr, Comparison, Const, Not, Or


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "r": (("a", "b"), [(i, i % 3) for i in range(9)]),
            "s": (("b", "c"), [(0, "x"), (1, "y")]),
        }
    )


def ctx(db):
    return Context(db=db)


class TestIdentityPreservation:
    """A pass that changes nothing returns the very same object — the
    engine's fixpoint detector relies on it."""

    @pytest.mark.parametrize("name", rule_names())
    def test_no_op_returns_same_object(self, db, name):
        expr = Selection(RelationRef("r"), eq("a", 1))
        (rule,) = get_rules([name])
        assert rule.fn(expr, ctx(db)) is expr

    def test_extension_nodes_pass_through(self, db):
        class Exotic:
            pass

        exotic = Exotic()
        assert split_selections(exotic, ctx(db)) is exotic


class TestSplitAndMerge:
    def test_split(self, db):
        expr = Selection(RelationRef("r"), And(eq("a", 1), gt("b", 0)))
        split = split_selections(expr, ctx(db))
        assert isinstance(split, Selection)
        assert isinstance(split.child, Selection)
        assert evaluate(split, db) == evaluate(expr, db)

    def test_merge(self, db):
        expr = Selection(Selection(RelationRef("r"), gt("b", 0)), eq("a", 1))
        merged = merge_selections(expr, ctx(db))
        assert isinstance(merged, Selection)
        assert isinstance(merged.condition, And)
        assert isinstance(merged.child, RelationRef)
        assert evaluate(merged, db) == evaluate(expr, db)

    def test_fired_counter(self, db):
        context = ctx(db)
        expr = Selection(RelationRef("r"), And(eq("a", 1), gt("b", 0)))
        split_selections(expr, context)
        assert context.fired == {"split-selections": 1}


class TestPushAntijoin:
    @pytest.mark.parametrize("node", [Semijoin, Antijoin])
    def test_selection_moves_below_probe(self, db, node):
        expr = Selection(
            node(RelationRef("r"), RelationRef("s")), eq("a", 1)
        )
        pushed = push_antijoin(expr, ctx(db))
        assert isinstance(pushed, node)
        assert isinstance(pushed.left, Selection)
        assert evaluate(pushed, db) == evaluate(expr, db)


class TestFoldConstants:
    def test_true_selection_drops(self, db):
        expr = Selection(
            RelationRef("r"), Comparison(Const(1), "<", Const(2))
        )
        assert fold_constants(expr, ctx(db)) is expr.child

    def test_false_selection_becomes_empty_constant(self, db):
        expr = Selection(
            RelationRef("r"), Comparison(Const(5), "<", Const(2))
        )
        folded = fold_constants(expr, ctx(db))
        assert isinstance(folded, ConstantRelation)
        assert len(folded.relation) == 0
        assert folded.relation.schema.attributes == ("a", "b")

    def test_mixed_type_comparison_is_false(self, db):
        # Mirrors the evaluator's TypeError rule: 1 < "x" keeps nothing.
        expr = Selection(
            RelationRef("r"), Comparison(Const(1), "<", Const("x"))
        )
        folded = fold_constants(expr, ctx(db))
        assert isinstance(folded, ConstantRelation)
        assert evaluate(folded, db) == evaluate(expr, db)

    def test_partial_conjunction_shrinks(self, db):
        condition = And(Comparison(Const(1), "<", Const(2)), eq("a", 1))
        expr = Selection(RelationRef("r"), condition)
        folded = fold_constants(expr, ctx(db))
        assert isinstance(folded, Selection)
        assert folded.condition == eq("a", 1)
        assert evaluate(folded, db) == evaluate(expr, db)

    def test_fold_condition_or_and_not(self):
        true = Comparison(Const(1), "=", Const(1))
        false = Comparison(Const(1), "=", Const(2))
        assert fold_condition(Or(false, true)) is True
        assert fold_condition(Not(true)) is False
        live = eq("a", 1)
        assert fold_condition(Or(false, live)) == live

    def test_without_schema_false_selection_survives(self):
        expr = Selection(
            RelationRef("r"), Comparison(Const(5), "<", Const(2))
        )
        folded = fold_constants(expr, Context())
        assert isinstance(folded, Selection)


class TestPruneProjections:
    def test_projection_collapse(self, db):
        expr = Projection(Projection(RelationRef("r"), ("a", "b")), ("a",))
        pruned = prune_projections(expr, ctx(db))
        assert isinstance(pruned, Projection)
        assert isinstance(pruned.child, RelationRef)
        assert evaluate(pruned, db) == evaluate(expr, db)

    def test_identity_projection_drops(self, db):
        expr = Projection(RelationRef("r"), ("a", "b"))
        assert prune_projections(expr, ctx(db)) is expr.child

    def test_push_into_join_keeps_shared_attributes(self):
        db = Database.from_dict(
            {
                "w": (
                    ("a", "b", "d"),
                    [(i, i % 2, i * 10) for i in range(6)],
                ),
                "s": (("b", "c"), [(0, "x"), (1, "y")]),
            }
        )
        expr = Projection(
            NaturalJoin(RelationRef("w"), RelationRef("s")), ("a", "c")
        )
        pruned = prune_projections(expr, ctx(db))
        assert isinstance(pruned, Projection)
        join = pruned.child
        assert isinstance(join, NaturalJoin)
        # The unused d drops below the join; the join attribute b stays
        # on both sides.
        assert isinstance(join.left, Projection)
        assert join.left.attributes == ("a", "b")
        assert isinstance(join.right, RelationRef)  # nothing to drop
        assert evaluate(pruned, db) == evaluate(expr, db)


class TestPushSelections:
    def test_into_join_side(self, db):
        expr = Selection(
            NaturalJoin(RelationRef("r"), RelationRef("s")), eq("a", 1)
        )
        pushed = push_selections(expr, ctx(db))
        assert isinstance(pushed, NaturalJoin)
        assert isinstance(pushed.left, Selection)
        assert evaluate(pushed, db) == evaluate(expr, db)


class TestToggles:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            get_rules(["bogus"])
        with pytest.raises(ValueError):
            Optimizer(disable=("bogus",))

    def test_disable_subtracts(self):
        optimizer = Optimizer(disable=("order-joins",))
        assert "order-joins" not in optimizer.rules
        assert optimizer.config_token() != Optimizer().config_token()

    @pytest.mark.parametrize("name", rule_names())
    def test_single_rule_toggle_preserves_results(self, db, name):
        """The metamorphic invariant the conformance oracle fuzzes,
        pinned here on a workload every rule can fire on."""
        expr = Selection(
            Projection(
                NaturalJoin(
                    Selection(
                        NaturalJoin(RelationRef("r"), RelationRef("s")),
                        And(gt("a", 0), eq("b", 1)),
                    ),
                    RelationRef("s"),
                ),
                ("a", "b", "c"),
            ),
            Comparison(Const(1), "=", Const(1)),
        )
        baseline = evaluate(expr, db)
        for optimizer in (Optimizer(), Optimizer(disable=(name,))):
            plan = optimizer.optimize(expr, db)
            assert evaluate(plan, db) == baseline
