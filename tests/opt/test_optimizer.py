"""The Optimizer front door, the legacy shim, and workbench integration."""

import ast
import os

import pytest

from repro.core.random_instances import (
    random_algebra_expression,
    random_database,
)
from repro.core.workbench import MetatheoryWorkbench
from repro.datalog.stats import EngineStatistics
from repro.opt import (
    CLASSIC_RULES,
    DEFAULT_RULES,
    Optimizer,
    classic_optimizer,
    optimize,
    rule_names,
)
from repro.plan import canonicalize, execute
from repro.relational import (
    Database,
    NaturalJoin,
    RelationRef,
    Selection,
    eq,
    evaluate,
)
from repro.relational import optimizer as legacy
from repro.relational.relation import same_content


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "r": (("a", "b"), [(i, i % 4) for i in range(20)]),
            "s": (("b", "c"), [(i % 4, i % 3) for i in range(8)]),
            "t": (("c", "d"), [(i % 3, i) for i in range(5)]),
        }
    )


def acyclic_chain():
    return NaturalJoin(
        NaturalJoin(RelationRef("r"), RelationRef("s")), RelationRef("t")
    )


class TestFrontDoor:
    def test_default_enables_every_rule(self):
        assert Optimizer().rules == DEFAULT_RULES == rule_names()

    def test_explicit_rules_keep_pipeline_order(self):
        optimizer = Optimizer(rules=("order-joins", "split-selections"))
        assert optimizer.rules == ("split-selections", "order-joins")

    def test_config_token_distinguishes_profiles(self):
        tokens = {
            Optimizer().config_token(),
            Optimizer(disable=("order-joins",)).config_token(),
            Optimizer(dp_threshold=3).config_token(),
            Optimizer(use_catalog=False).config_token(),
            classic_optimizer().config_token(),
        }
        assert len(tokens) == 5

    def test_module_level_optimize(self, db):
        expr = Selection(acyclic_chain(), eq("d", 1))
        plan = optimize(expr, db)
        assert evaluate(plan, db) == evaluate(expr, db)

    def test_optimize_info_reports_firings(self, db):
        _plan, info = Optimizer().optimize_info(
            Selection(acyclic_chain(), eq("d", 1)), db
        )
        assert info.fired
        assert "rules_fired" in info.as_dict()
        assert info.summary()


class TestShim:
    """``relational/optimizer.py`` is now a delegating profile of opt."""

    def test_classic_profile_constant(self):
        assert legacy.CLASSIC_PROFILE == CLASSIC_RULES

    def test_shim_optimize_equals_classic_engine(self, db):
        expr = Selection(acyclic_chain(), eq("d", 1))
        canonical = canonicalize(expr, db.schema())
        via_shim = legacy.optimize(canonical, db)
        via_classic = classic_optimizer().optimize(canonical, db)
        assert evaluate(via_shim, db) == evaluate(via_classic, db)

    def test_differential_fuzz_old_equals_new(self):
        """The satellite differential: on the random-algebra fuzzer,
        the classic profile, the full pipeline, and the unoptimized
        evaluation all agree."""
        for seed in range(30):
            fuzz_db = random_database(
                num_relations=3, arity=2, rows=7, domain_size=5, seed=seed
            )
            expr = random_algebra_expression(fuzz_db, seed=seed, size=5)
            baseline = evaluate(expr, fuzz_db)
            canonical = canonicalize(expr, fuzz_db.schema())
            schema = fuzz_db.schema()
            for optimizer in (classic_optimizer(), Optimizer()):
                plan = canonicalize(
                    optimizer.optimize(canonical, fuzz_db), schema
                )
                result = execute(plan, fuzz_db)
                assert same_content(result, baseline), (
                    seed,
                    optimizer.config_token(),
                )


class TestWorkbenchIntegration:
    def test_optimizer_is_a_constructor_knob(self, db):
        wb = MetatheoryWorkbench(
            db, optimizer=Optimizer(disable=("route-yannakakis",))
        )
        assert "route-yannakakis" not in wb.optimizer.rules

    def test_plan_cache_keys_on_optimizer_config(self, db):
        wb = MetatheoryWorkbench(db)
        expr = Selection(acyclic_chain(), eq("d", 1))
        wb.run(expr)
        first = wb.plan_cache.stats()
        wb.run(expr)
        assert wb.plan_cache.stats()["hits"] == first["hits"] + 1
        # A different rule set must not be served the old plan.
        wb.optimizer = Optimizer(disable=("order-joins",))
        wb.run(expr)
        stats = wb.plan_cache.stats()
        assert stats["misses"] > first["misses"]

    def test_run_routes_acyclic_joins_through_yannakakis(self):
        """The acceptance smoke test: an acyclic multi-join through
        ``wb.run`` routes through Yannakakis, visibly, and materializes
        fewer tuples than the unoptimized run.

        The streaming executor only charges *buffered* tuples, so the
        workload has to make the unoptimized plan buffer: a right-deep
        tree forces a hash-join build over the derived ``s ⋈ t``, which
        is mostly dangling with respect to ``r`` — the regime the
        semijoin reduction exists for.
        """
        wb = MetatheoryWorkbench(
            Database.from_dict(
                {
                    "r": (("a", "b"), [(i, i) for i in range(5)]),
                    "s": (
                        ("b", "c"),
                        [(b, c) for b in range(50) for c in range(50)],
                    ),
                    "t": (("c", "d"), [(i, i) for i in range(5)]),
                }
            ),
            # The catalog's equi-join model cannot see how dangling s
            # is (semijoin estimates predict no reduction), so this
            # small fixture fails the routing cost gate; relax it — the
            # gate has its own regression tests in test_joins.
            optimizer=Optimizer(yannakakis_threshold=None),
        )
        expr = NaturalJoin(
            RelationRef("r"),
            NaturalJoin(RelationRef("s"), RelationRef("t")),
        )

        explained = wb.explain_analyze(expr)
        assert explained.optimizer is not None
        assert explained.optimizer.join_method == "yannakakis"
        assert "route-yannakakis" in explained.optimizer.fired
        assert "yannakakis" in explained.render()

        optimized_stats = EngineStatistics()
        plain_stats = EngineStatistics()
        optimized = wb.run(expr, stats=optimized_stats)
        plain = wb.run(expr, optimized=False, stats=plain_stats)
        assert optimized == plain
        assert (
            optimized_stats.tuples_materialized
            < plain_stats.tuples_materialized
        )

    def test_optimized_and_unoptimized_agree(self, db):
        wb = MetatheoryWorkbench(db)
        expr = Selection(acyclic_chain(), eq("d", 1))
        assert wb.run(expr) == wb.run(expr, optimized=False)


class TestSingleCostSurface:
    """No private cardinality estimators outside ``repro/opt/``."""

    #: Modules allowed to *define* an ``estimate_*`` callable: the
    #: legacy shim's public API, which must delegate to repro.opt.
    ALLOWED = {("relational/optimizer.py", "estimate_cardinality")}

    def test_no_estimators_outside_opt(self):
        import repro

        src_root = os.path.dirname(repro.__file__)
        offenders = []
        for dirpath, _dirnames, filenames in os.walk(src_root):
            rel_dir = os.path.relpath(dirpath, src_root)
            if rel_dir == "opt" or rel_dir.startswith("opt" + os.sep):
                continue
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, src_root).replace(os.sep, "/")
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read())
                for node in ast.walk(tree):
                    if isinstance(
                        node, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and node.name.startswith("estimate_"):
                        if (rel, node.name) not in self.ALLOWED:
                            offenders.append((rel, node.name))
        assert offenders == []

    def test_planner_and_gate_import_from_opt(self):
        from repro.datalog import planner
        from repro.parallel import backend, partition
        from repro.opt import cost

        assert (
            planner.estimate_literal_matches
            is cost.estimate_literal_matches
        )
        assert partition.estimate_plan_work is cost.estimate_plan_work
        assert backend.estimate_plan_work is cost.estimate_plan_work
