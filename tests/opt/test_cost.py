"""The unified cost model: classical profile, catalog profile, gates.

The estimation-quality suite pins how close the estimates are to the
truth on workloads where the model's uniformity assumptions hold
exactly (estimates must be *equal*) and on skewed data (estimates must
stay within a stated factor) — the same numbers EXPLAIN ANALYZE prints
as ``est=`` next to actual rows.
"""

import pytest

from repro.opt import CostModel, EQUALITY_SELECTIVITY, RANGE_SELECTIVITY
from repro.opt.cost import estimate_literal_matches, estimate_plan_work
from repro.relational import (
    Database,
    NaturalJoin,
    Product,
    Projection,
    RelationRef,
    Selection,
    Union,
    eq,
    evaluate,
    gt,
)
from repro.relational.algebra import Attr, Comparison, Const


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "big": (("a", "b"), [(i, i % 10) for i in range(50)]),
            "small": (("b", "c"), [(1, "x"), (2, "y")]),
        }
    )


def classical():
    return CostModel(None)


class TestClassicalProfile:
    """The fixed-selectivity model the legacy optimizer pinned."""

    def test_base_and_selection(self, db):
        model = classical()
        assert model.rows(RelationRef("big"), db) == 50.0
        selected = Selection(RelationRef("big"), eq("a", 1))
        assert model.rows(selected, db) == 50 * EQUALITY_SELECTIVITY
        ranged = Selection(RelationRef("big"), gt("a", 1))
        assert model.rows(ranged, db) == 50 * RANGE_SELECTIVITY

    def test_join_divides_by_larger_side(self, db):
        model = classical()
        join = NaturalJoin(RelationRef("big"), RelationRef("small"))
        assert model.rows(join, db) == 50 * 2 / 50

    def test_product_union_projection(self, db):
        model = classical()
        product = Product(RelationRef("big"), RelationRef("small"))
        assert model.rows(product, db) == 100.0
        union = Union(RelationRef("big"), RelationRef("big"))
        assert model.rows(union, db) == 100.0
        projected = Projection(RelationRef("big"), ("a",))
        assert model.rows(projected, db) == 50.0

    def test_constant_comparison_uses_default(self, db):
        # No catalog: attr=attr and attr=const are both 1/10.
        model = classical()
        selected = Selection(
            RelationRef("big"),
            Comparison(Attr("a"), "=", Attr("b")),
        )
        assert model.rows(selected, db) == 5.0


class TestCatalogProfile:
    """Distinct-count arithmetic replaces the fixed selectivities."""

    def statistics_model(self, db):
        return CostModel(db.catalog())

    def test_equality_uses_distinct_count(self, db):
        model = self.statistics_model(db)
        selected = Selection(RelationRef("big"), eq("b", 3))
        # V(big, b) = 10, so est = 50/10 — and the data is uniform, so
        # the estimate is exact.
        assert model.rows(selected, db) == 5.0
        assert len(evaluate(selected, db)) == 5

    def test_attr_attr_equality_uses_larger_distinct(self, db):
        model = self.statistics_model(db)
        selected = Selection(
            RelationRef("big"), Comparison(Attr("a"), "=", Attr("b"))
        )
        assert model.rows(selected, db) == 50.0 / 50

    def test_join_divides_by_max_distinct(self):
        db = Database.from_dict(
            {
                "users": (
                    ("uid", "city"),
                    [(i, "c%d" % (i % 6)) for i in range(60)],
                ),
                "orders": (
                    ("uid", "item"),
                    [(i % 60, "i%d" % i) for i in range(120)],
                ),
            }
        )
        model = CostModel(db.catalog())
        join = NaturalJoin(RelationRef("users"), RelationRef("orders"))
        estimate = model.rows(join, db)
        actual = len(evaluate(join, db))
        # Uniform keys: 60*120/max(60,60) = 120 = the true size.
        assert estimate == actual == 120

    def test_distinct_counts_clamped_to_rows(self, db):
        model = self.statistics_model(db)
        selected = Selection(RelationRef("big"), eq("b", 3))
        estimate = model.estimate(selected, db)
        assert all(d <= estimate.rows for d in estimate.distinct.values())

    def test_skewed_selection_within_factor(self):
        # 40 rows of one value + 10 spread values: uniformity is wrong
        # here, but the estimate must stay within a factor of 10 of the
        # truth for every constant actually present.
        rows = [(i, "hot") for i in range(40)]
        rows += [(40 + i, "cold%d" % i) for i in range(10)]
        db = Database.from_dict({"t": (("k", "v"), rows)})
        model = CostModel(db.catalog())
        for value, count in [("hot", 40), ("cold0", 1)]:
            selected = Selection(RelationRef("t"), eq("v", value))
            estimate = model.rows(selected, db)
            assert estimate / count <= 10
            assert count / estimate <= 10


class TestExtensionNodes:
    def test_unknown_node_estimates_from_children(self, db):
        class Exotic:
            def children(self):
                return [RelationRef("big"), RelationRef("small")]

        assert classical().rows(Exotic(), db) == 50.0

    def test_leaf_unknown_node_defaults_to_one(self, db):
        class Leaf:
            def children(self):
                return []

        assert classical().rows(Leaf(), db) == 1.0


class TestLiteralMatches:
    def test_formula(self):
        assert estimate_literal_matches(100, 0) == 100
        assert estimate_literal_matches(100, 1) == pytest.approx(10.0)
        assert estimate_literal_matches(100, 2) == pytest.approx(1.0)

    def test_orders_most_bound_then_smallest(self):
        # The old two-level heuristic, derived from the one formula:
        # more bound positions beat size; equal binding prefers smaller.
        assert estimate_literal_matches(1000, 2) < estimate_literal_matches(
            50, 0
        )
        assert estimate_literal_matches(50, 1) < estimate_literal_matches(
            1000, 1
        )


class TestPlanWork:
    def test_sums_leaf_rows(self, db):
        join = NaturalJoin(RelationRef("big"), RelationRef("small"))
        assert estimate_plan_work(join, db) == 52
        wrapped = Projection(Selection(join, eq("a", 1)), ("a",))
        assert estimate_plan_work(wrapped, db) == 52

    def test_extension_node_falls_back_to_children(self, db):
        """Regression: unrecognized fragments used to estimate 0 and
        slide under the parallel cost gate unconditionally."""

        class Exotic:
            def children(self):
                return [RelationRef("big"), RelationRef("small")]

        assert estimate_plan_work(Exotic(), db) == 52

    def test_opaque_node_is_zero(self, db):
        class Opaque:
            pass

        assert estimate_plan_work(Opaque(), db) == 0
