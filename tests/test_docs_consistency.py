"""Docs-consistency tests: DESIGN.md's inventory matches the code.

A reproduction whose design document drifts from its tree is quietly
lying; these tests keep the two honest.
"""

import os
import re

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src", "repro")


def read(name):
    with open(os.path.join(ROOT, name)) as handle:
        return handle.read()


class TestDesignInventory:
    def test_every_inventoried_module_exists(self):
        design = read("DESIGN.md")
        block = design.split("```")[1]  # the src/repro tree block
        for line in block.splitlines():
            match = re.match(r"\s+(\w+\.py)\s", line)
            if not match:
                continue
            filename = match.group(1)
            found = False
            for _dirpath, _dirs, files in os.walk(SRC):
                if filename in files:
                    found = True
                    break
            assert found, "DESIGN.md lists %s but it does not exist" % filename

    def test_every_package_is_inventoried(self):
        design = read("DESIGN.md")
        packages = [
            name
            for name in os.listdir(SRC)
            if os.path.isdir(os.path.join(SRC, name))
            and not name.startswith("__")
        ]
        for package in packages:
            assert package + "/" in design, (
                "package %s missing from DESIGN.md" % package
            )

    def test_every_bench_in_index(self):
        design = read("DESIGN.md")
        benches = [
            name
            for name in os.listdir(os.path.join(ROOT, "benchmarks"))
            if name.startswith("test_") and name.endswith(".py")
        ]
        for bench in benches:
            assert bench in design, (
                "bench %s missing from DESIGN.md's index" % bench
            )


class TestExperimentsDocument:
    def test_references_every_artifact(self):
        experiments = read("EXPERIMENTS.md")
        results_dir = os.path.join(ROOT, "benchmarks", "results")
        if not os.path.isdir(results_dir):
            return  # benches not yet run in this checkout
        for name in os.listdir(results_dir):
            assert name in experiments, (
                "artifact %s not referenced in EXPERIMENTS.md" % name
            )

    def test_covers_all_three_figures(self):
        experiments = read("EXPERIMENTS.md")
        for figure in ("Figure 1", "Figure 2", "Figure 3"):
            assert figure in experiments


class TestReadme:
    def test_mentions_every_package(self):
        readme = read("README.md")
        packages = [
            name
            for name in os.listdir(SRC)
            if os.path.isdir(os.path.join(SRC, name))
            and not name.startswith("__")
        ]
        for package in packages:
            assert package + "/" in readme, (
                "package %s missing from README architecture" % package
            )

    def test_mentions_every_example(self):
        readme = read("README.md")
        examples = [
            name
            for name in os.listdir(os.path.join(ROOT, "examples"))
            if name.endswith(".py")
        ]
        for example in examples:
            assert example in readme, (
                "example %s missing from README" % example
            )
