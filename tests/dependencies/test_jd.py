"""Tests for join dependencies and fifth normal form."""

import pytest

from repro.dependencies import MVD, parse_fds
from repro.dependencies.jd import (
    JD,
    chase_implies_jd,
    decompose_5nf,
    is_5nf,
    key_fds,
)
from repro.errors import DependencyError
from repro.relational import Relation, RelationSchema


class TestJD:
    def test_construction(self):
        jd = JD(["A B", "B C"])
        assert jd.scheme() == {"A", "B", "C"}

    def test_needs_two_components(self):
        with pytest.raises(DependencyError):
            JD(["A B"])

    def test_trivial(self):
        assert JD(["A B C", "A"]).is_trivial("A B C")
        assert not JD(["A B", "B C"]).is_trivial("A B C")

    def test_equality_unordered(self):
        assert JD(["A B", "B C"]) == JD(["B C", "A B"])

    def test_from_mvd(self):
        jd = JD.from_mvd(MVD("A", "B"), "A B C")
        assert jd == JD(["A B", "A C"])

    def test_holds_in_instance(self):
        # The classical SPJ (supplier-part-project) style 3-way JD.
        schema = RelationSchema("spj", ("S", "P", "J"))
        cyclic = Relation(
            schema,
            [
                ("s1", "p1", "j2"),
                ("s1", "p2", "j1"),
                ("s2", "p1", "j1"),
                ("s1", "p1", "j1"),
            ],
        )
        jd = JD(["S P", "P J", "S J"])
        assert jd.holds_in(cyclic)
        broken = Relation(
            schema,
            [("s1", "p1", "j2"), ("s1", "p2", "j1"), ("s2", "p1", "j1")],
        )
        assert not jd.holds_in(broken)

    def test_binary_jd_is_mvd(self):
        schema = RelationSchema("ctb", ("C", "T", "B"))
        rel = Relation(
            schema,
            [
                ("db", "ann", "ull"),
                ("db", "ann", "date"),
                ("db", "bob", "ull"),
                ("db", "bob", "date"),
            ],
        )
        mvd = MVD("C", "T")
        jd = JD.from_mvd(mvd, "C T B")
        assert jd.holds_in(rel) == mvd.holds_in(rel)


class TestImplication:
    def test_fd_implies_binary_jd(self):
        fds = parse_fds("A -> B")
        assert chase_implies_jd(fds, JD(["A B", "A C"]), scheme="A B C")
        assert not chase_implies_jd(fds, JD(["A B", "B C"]), scheme="A B C")

    def test_mvd_implies_its_jd(self):
        deps = [MVD("A", "B")]
        assert chase_implies_jd(deps, JD(["A B", "A C"]), scheme="A B C")

    def test_no_deps_no_implication(self):
        assert not chase_implies_jd([], JD(["A B", "B C"]), scheme="A B C")

    def test_trivial_jd_always_implied(self):
        assert chase_implies_jd([], JD(["A B C", "A"]), scheme="A B C")

    def test_escaping_scheme_rejected(self):
        with pytest.raises(DependencyError):
            chase_implies_jd([], JD(["A B", "B Z"]), scheme="A B")


class Test5NF:
    def test_key_fds(self):
        fds = parse_fds("A -> B; A -> C")
        keys = key_fds("A B C", fds)
        assert len(keys) == 1
        assert keys[0].lhs == {"A"}

    def test_key_implied_jd_is_5nf(self):
        fds = parse_fds("A -> B C")
        jds = [JD(["A B", "A C"])]
        assert is_5nf("A B C", fds, jds)

    def test_cyclic_jd_violates_5nf(self):
        # The SPJ 3-way JD with key = all attributes: not key-implied.
        jds = [JD(["S P", "P J", "S J"])]
        assert not is_5nf("S P J", [], jds)

    def test_trivial_jds_ignored(self):
        assert is_5nf("A B", [], [JD(["A B", "A"])])

    def test_decompose_5nf_splits_violation(self):
        jds = [JD(["S P", "P J", "S J"])]
        fragments = decompose_5nf("S P J", [], jds)
        assert frozenset({"S", "P"}) in fragments
        assert frozenset({"P", "J"}) in fragments
        assert frozenset({"S", "J"}) in fragments

    def test_decompose_5nf_no_violation_keeps_scheme(self):
        fds = parse_fds("A -> B C")
        jds = [JD(["A B", "A C"])]
        fragments = decompose_5nf("A B C", fds, jds)
        assert fragments == [frozenset({"A", "B", "C"})]
