"""Property-based tests for dependency theory (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependencies import (
    FD,
    armstrong_relation,
    attribute_closure,
    bcnf_decompose,
    candidate_keys,
    chase_implies_fd,
    equivalent,
    implies,
    is_bcnf,
    is_lossless_join,
    minimal_cover,
    preserves_dependencies,
    synthesize_3nf,
)

ATTRS = ("A", "B", "C", "D")

attr_subset = st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3)


@st.composite
def fd_sets(draw):
    count = draw(st.integers(min_value=0, max_value=4))
    fds = []
    for _ in range(count):
        lhs = draw(attr_subset)
        rhs = draw(attr_subset)
        fds.append(FD(lhs, rhs))
    return fds


class TestClosureLaws:
    @given(fd_sets(), attr_subset)
    def test_extensive(self, fds, attrs):
        assert frozenset(attrs) <= attribute_closure(attrs, fds)

    @given(fd_sets(), attr_subset)
    def test_idempotent(self, fds, attrs):
        once = attribute_closure(attrs, fds)
        assert attribute_closure(once, fds) == once

    @given(fd_sets(), attr_subset, attr_subset)
    def test_monotone(self, fds, a, b):
        union = frozenset(a) | frozenset(b)
        assert attribute_closure(a, fds) <= attribute_closure(union, fds)

    @given(fd_sets())
    def test_given_fds_implied(self, fds):
        for fd in fds:
            assert implies(fds, fd)


class TestMinimalCoverLaws:
    @settings(max_examples=50)
    @given(fd_sets())
    def test_cover_equivalent(self, fds):
        assert equivalent(fds, minimal_cover(fds))

    @settings(max_examples=50)
    @given(fd_sets())
    def test_cover_rhs_singletons(self, fds):
        assert all(len(fd.rhs) == 1 for fd in minimal_cover(fds))


class TestChaseAgreesWithClosure:
    @settings(max_examples=40, deadline=None)
    @given(fd_sets(), attr_subset, attr_subset)
    def test_implication_agreement(self, fds, lhs, rhs):
        goal = FD(lhs, rhs)
        assert implies(fds, goal) == chase_implies_fd(
            fds, goal, scheme=ATTRS
        )


class TestDecompositions:
    @settings(max_examples=30, deadline=None)
    @given(fd_sets())
    def test_bcnf_fragments_are_bcnf_and_lossless(self, fds):
        fragments = bcnf_decompose(ATTRS, fds)
        union = frozenset().union(*fragments)
        assert union == frozenset(ATTRS)
        assert is_lossless_join(ATTRS, fragments, fds)
        for fragment in fragments:
            if len(fragment) > 2:
                assert is_bcnf(fragment, fds)

    @settings(max_examples=30, deadline=None)
    @given(fd_sets())
    def test_3nf_synthesis_lossless_and_preserving(self, fds):
        fragments = synthesize_3nf(ATTRS, fds)
        union = frozenset().union(*fragments)
        assert union == frozenset(ATTRS)
        assert is_lossless_join(ATTRS, fragments, fds)
        assert preserves_dependencies(ATTRS, fragments, fds)

    @settings(max_examples=20, deadline=None)
    @given(fd_sets())
    def test_some_fragment_contains_a_key(self, fds):
        fragments = synthesize_3nf(ATTRS, fds)
        keys = candidate_keys(ATTRS, fds)
        assert any(
            any(key <= fragment for key in keys) for fragment in fragments
        )


class TestArmstrongWitness:
    @settings(max_examples=15, deadline=None)
    @given(fd_sets())
    def test_armstrong_relation_satisfies_all_implied(self, fds):
        from repro.dependencies import closure

        rel = armstrong_relation(fds, ATTRS)
        for fd in closure(fds, ATTRS):
            assert fd.holds_in(rel), str(fd)
