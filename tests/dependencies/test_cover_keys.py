"""Tests for minimal covers and candidate keys."""

from repro.dependencies import (
    FD,
    candidate_keys,
    canonical_cover,
    equivalent,
    is_candidate_key,
    is_minimal,
    is_superkey,
    key_of,
    minimal_cover,
    parse_fds,
    prime_attributes,
)
from repro.dependencies.cover import (
    remove_extraneous_lhs,
    remove_redundant_fds,
    split_rhs,
)


class TestMinimalCover:
    def test_splits_rhs(self):
        out = split_rhs(parse_fds("A -> B C"))
        assert len(out) == 2
        assert all(len(fd.rhs) == 1 for fd in out)

    def test_removes_extraneous_lhs(self):
        # In AB -> C with A -> B, B is... rather: A -> B makes B redundant
        # in AB -> C? (AB-B)+ = A+ = {A, B} must contain C: no. Use the
        # classical example: A -> B, AB -> C: B extraneous in AB -> C.
        fds = parse_fds("A -> B; A B -> C")
        reduced = remove_extraneous_lhs(list(fds))
        assert FD("A", "C") in reduced

    def test_removes_redundant(self):
        fds = parse_fds("A -> B; B -> C; A -> C")
        reduced = remove_redundant_fds(list(fds))
        assert FD("A", "C") not in reduced
        assert len(reduced) == 2

    def test_minimal_cover_equivalent(self):
        fds = parse_fds("A -> B C; B -> C; A B -> D")
        cover = minimal_cover(fds)
        assert equivalent(fds, cover)
        assert is_minimal(cover)

    def test_canonical_cover_merges_lhs(self):
        fds = parse_fds("A -> B; A -> C")
        cover = canonical_cover(fds)
        assert len(cover) == 1
        assert cover[0].rhs == {"B", "C"}

    def test_empty_cover(self):
        assert minimal_cover([]) == []

    def test_classic_textbook_example(self):
        # F = {A -> BC, B -> C, A -> B, AB -> C}; minimal cover is
        # {A -> B, B -> C}.
        fds = parse_fds("A -> B C; B -> C; A -> B; A B -> C")
        cover = minimal_cover(fds)
        assert sorted(str(fd) for fd in cover) == ["A -> B", "B -> C"]


class TestKeys:
    def test_superkey(self):
        fds = parse_fds("A -> B; B -> C")
        assert is_superkey("A", "A B C", fds)
        assert is_superkey("A C", "A B C", fds)
        assert not is_superkey("B", "A B C", fds)

    def test_candidate_key(self):
        fds = parse_fds("A -> B; B -> C")
        assert is_candidate_key("A", "A B C", fds)
        assert not is_candidate_key("A C", "A B C", fds)  # not minimal
        assert not is_candidate_key("B", "A B C", fds)  # not superkey

    def test_all_candidate_keys_cyclic(self):
        # A -> B, B -> A: both A C and B C are keys of ABC... with C? Use
        # scheme A B: keys are {A} and {B}.
        fds = parse_fds("A -> B; B -> A")
        keys = candidate_keys("A B", fds)
        assert keys == [frozenset({"A"}), frozenset({"B"})]

    def test_core_attributes_in_every_key(self):
        # D appears in no rhs: every key contains D.
        fds = parse_fds("A -> B; B -> C")
        keys = candidate_keys("A B C D", fds)
        assert all("D" in key for key in keys)
        assert keys == [frozenset({"A", "D"})]

    def test_no_fds_whole_scheme_is_key(self):
        keys = candidate_keys("A B", [])
        assert keys == [frozenset({"A", "B"})]

    def test_prime_attributes(self):
        fds = parse_fds("A -> B; B -> A")
        assert prime_attributes("A B C", fds) == {"A", "B", "C"}

    def test_key_of_is_minimal_superkey(self):
        fds = parse_fds("A -> B; B -> C")
        key = key_of(fds, "A B C")
        assert is_candidate_key(key, "A B C", fds)

    def test_many_keys(self):
        # Pairwise-equivalent attributes: every single attribute is a key.
        fds = parse_fds("A -> B; B -> C; C -> A")
        keys = candidate_keys("A B C", fds)
        assert len(keys) == 3
        assert all(len(k) == 1 for k in keys)
