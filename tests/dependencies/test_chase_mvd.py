"""Tests for the chase and multivalued dependencies."""

import pytest

from repro.dependencies import (
    FD,
    MVD,
    Tableau,
    chase,
    chase_implies_fd,
    chase_implies_mvd,
    decompose_4nf,
    fd_as_mvd,
    is_4nf,
    is_lossless_join,
    parse_fds,
    violating_mvd,
)
from repro.errors import ChaseError, DependencyError
from repro.relational import Relation, RelationSchema


class TestTableau:
    def test_decomposition_tableau_shape(self):
        t = Tableau.for_decomposition("A B C", ["A B", "B C"])
        assert len(t.rows) == 2
        assert t.attributes == ("A", "B", "C")

    def test_fragment_escape_rejected(self):
        with pytest.raises(ChaseError):
            Tableau.for_decomposition("A B", ["A Z"])

    def test_pretty_renders(self):
        t = Tableau.for_decomposition("A B", ["A", "B"])
        assert "A" in t.pretty()


class TestLosslessJoin:
    def test_classic_lossless(self):
        assert is_lossless_join("A B C", ["A B", "A C"], parse_fds("A -> B"))

    def test_classic_lossy(self):
        assert not is_lossless_join(
            "A B C", ["A B", "B C"], parse_fds("A -> B")
        )

    def test_binary_criterion(self):
        # R1 ∩ R2 -> R1 or R1 ∩ R2 -> R2 iff lossless (binary case).
        fds = parse_fds("B -> C")
        assert is_lossless_join("A B C", ["A B", "B C"], fds)
        assert not is_lossless_join("A B C", ["A B", "A C"], fds)

    def test_three_way(self):
        fds = parse_fds("A -> B; B -> C")
        assert is_lossless_join("A B C D", ["A B", "B C", "A D"], fds)

    def test_no_dependencies_lossy(self):
        assert not is_lossless_join("A B C", ["A B", "B C"], [])

    def test_full_fragment_always_lossless(self):
        assert is_lossless_join("A B", ["A B"], [])

    def test_mvd_makes_lossless(self):
        # A ->> B means (AB, AC) is lossless even without FDs.
        assert is_lossless_join("A B C", ["A B", "A C"], [MVD("A", "B")])


class TestChaseImplication:
    def test_fd_transitivity(self):
        fds = parse_fds("A -> B; B -> C")
        assert chase_implies_fd(fds, FD("A", "C"), scheme="A B C")
        assert not chase_implies_fd(fds, FD("C", "A"), scheme="A B C")

    def test_fd_from_mvd_and_fd(self):
        # A ->> B plus B -> C... use the classical: if A ->> B and B -> C
        # (C disjoint from B) then A -> C.  Verify the coalescence rule.
        deps = [MVD("A", "B"), FD("B", "C")]
        assert chase_implies_fd(deps, FD("A", "C"), scheme="A B C")

    def test_mvd_complementation(self):
        # A ->> B over ABC implies A ->> C.
        deps = [MVD("A", "B")]
        assert chase_implies_mvd(deps, MVD("A", "C"), scheme="A B C")

    def test_fd_is_mvd(self):
        deps = [FD("A", "B")]
        assert chase_implies_mvd(deps, MVD("A", "B"), scheme="A B C")

    def test_mvd_does_not_imply_fd(self):
        deps = [MVD("A", "B")]
        assert not chase_implies_fd(deps, FD("A", "B"), scheme="A B C")

    def test_mvd_augmentation(self):
        deps = [MVD("A", "B")]
        assert chase_implies_mvd(deps, MVD("A C", "B"), scheme="A B C D")

    def test_chase_rejects_unknown_dependency(self):
        t = Tableau.for_decomposition("A B", ["A B"])
        with pytest.raises(ChaseError):
            chase(t, ["not a dependency"])


class TestMVD:
    def test_parse(self):
        mvd = MVD.parse("A ->> B C")
        assert mvd.lhs == {"A"}
        assert mvd.rhs == {"B", "C"}

    def test_parse_requires_arrow(self):
        with pytest.raises(DependencyError):
            MVD.parse("A -> B")

    def test_trivial(self):
        assert MVD("A", "A").is_trivial("A B")
        assert MVD("A", "B").is_trivial("A B")  # X ∪ Y = R
        assert not MVD("A", "B").is_trivial("A B C")

    def test_holds_in_relation(self):
        # course ->> teacher independent of book.
        rel = Relation(
            RelationSchema("ctb", ("C", "T", "B")),
            [
                ("db", "ann", "ull"),
                ("db", "ann", "date"),
                ("db", "bob", "ull"),
                ("db", "bob", "date"),
            ],
        )
        assert MVD("C", "T").holds_in(rel)
        broken = Relation(
            RelationSchema("ctb", ("C", "T", "B")),
            [("db", "ann", "ull"), ("db", "bob", "date")],
        )
        assert not MVD("C", "T").holds_in(broken)

    def test_complement(self):
        assert MVD("A", "B").complement("A B C") == MVD("A", "C")
        with pytest.raises(DependencyError):
            MVD("A", "B").complement("A B")

    def test_fd_as_mvd(self):
        assert fd_as_mvd(FD("A", "B")) == MVD("A", "B")


class Test4NF:
    def test_violation_detected(self):
        # course ->> teacher with key course-teacher-book: not 4NF.
        deps = [MVD("C", "T")]
        assert not is_4nf("C T B", deps)
        violation = violating_mvd("C T B", deps)
        assert violation is not None

    def test_bcnf_like_schema_is_4nf(self):
        deps = [FD("A", "B C")]
        assert is_4nf("A B C", deps)

    def test_decompose_4nf(self):
        deps = [MVD("C", "T")]
        fragments = decompose_4nf("C T B", deps)
        assert frozenset({"C", "T"}) in fragments
        assert frozenset({"C", "B"}) in fragments
        for fragment in fragments:
            assert is_4nf(fragment, deps)

    def test_decomposition_lossless(self):
        deps = [MVD("C", "T")]
        fragments = decompose_4nf("C T B", deps)
        assert is_lossless_join("C T B", fragments, deps)
