"""Tests for normal forms, BCNF decomposition, and 3NF synthesis."""

import pytest

from repro.dependencies import (
    DesignTool,
    bcnf_decompose,
    check_decomposition,
    decomposition_report,
    is_2nf,
    is_3nf,
    is_bcnf,
    is_lossless_join,
    normal_form_level,
    parse_fds,
    preserves_dependencies,
    synthesize_3nf,
    violates_bcnf,
)
from repro.errors import NormalizationError


class TestNormalFormTests:
    def test_bcnf_positive(self):
        assert is_bcnf("A B", parse_fds("A -> B"))

    def test_bcnf_negative(self):
        assert not is_bcnf("A B C", parse_fds("A -> B; B -> C"))
        violation = violates_bcnf("A B C", parse_fds("A -> B; B -> C"))
        assert violation is not None

    def test_3nf_allows_prime_rhs(self):
        # Classic: city street -> zip, zip -> city.  3NF but not BCNF.
        fds = parse_fds("city street -> zip; zip -> city")
        scheme = "city street zip"
        assert is_3nf(scheme, fds)
        assert not is_bcnf(scheme, fds)

    def test_2nf_partial_dependency(self):
        # Key is AB; B -> C is a partial dependency of non-prime C.
        fds = parse_fds("A B -> D; B -> C")
        assert not is_2nf("A B C D", fds)

    def test_2nf_but_not_3nf(self):
        # Transitive: A -> B -> C with A the key.
        fds = parse_fds("A -> B; B -> C")
        scheme = "A B C"
        assert is_2nf(scheme, fds)
        assert not is_3nf(scheme, fds)

    def test_levels(self):
        assert normal_form_level("A B", parse_fds("A -> B")) == "BCNF"
        assert (
            normal_form_level(
                "city street zip",
                parse_fds("city street -> zip; zip -> city"),
            )
            == "3NF"
        )
        assert normal_form_level("A B C", parse_fds("A -> B; B -> C")) == "2NF"
        assert (
            normal_form_level("A B C D", parse_fds("A B -> D; B -> C"))
            == "1NF"
        )


class TestBCNFDecomposition:
    def test_fragments_are_bcnf(self):
        fds = parse_fds("A -> B; B -> C")
        fragments = bcnf_decompose("A B C D", fds)
        for fragment in fragments:
            assert is_bcnf(fragment, fds), fragment

    def test_lossless(self):
        fds = parse_fds("A -> B; B -> C")
        fragments = bcnf_decompose("A B C D", fds)
        assert is_lossless_join("A B C D", fragments, fds)

    def test_covers_scheme(self):
        fds = parse_fds("A -> B; B -> C")
        fragments = bcnf_decompose("A B C D", fds)
        assert check_decomposition("A B C D", fragments)

    def test_known_preservation_failure(self):
        # city street -> zip; zip -> city: BCNF decomposition cannot
        # preserve the first FD — the classical counterexample.
        fds = parse_fds("city street -> zip; zip -> city")
        fragments = bcnf_decompose("city street zip", fds)
        assert is_lossless_join("city street zip", fragments, fds)
        assert not preserves_dependencies("city street zip", fragments, fds)

    def test_already_bcnf_untouched(self):
        fds = parse_fds("A -> B C")
        fragments = bcnf_decompose("A B C", fds)
        assert fragments == [frozenset({"A", "B", "C"})]


class TestThirdNormalFormSynthesis:
    def test_lossless_and_preserving(self):
        fds = parse_fds("A -> B; B -> C; C D -> E")
        scheme = "A B C D E"
        fragments = synthesize_3nf(scheme, fds)
        assert is_lossless_join(scheme, fragments, fds)
        assert preserves_dependencies(scheme, fragments, fds)

    def test_fragments_are_3nf(self):
        fds = parse_fds("A -> B; B -> C")
        for fragment in synthesize_3nf("A B C", fds):
            assert is_3nf(fragment, fds)

    def test_preserves_on_bcnf_failure_case(self):
        fds = parse_fds("city street -> zip; zip -> city")
        scheme = "city street zip"
        fragments = synthesize_3nf(scheme, fds)
        assert preserves_dependencies(scheme, fragments, fds)
        assert is_lossless_join(scheme, fragments, fds)

    def test_orphan_attributes_kept(self):
        fds = parse_fds("A -> B")
        fragments = synthesize_3nf("A B Z", fds)
        union = frozenset().union(*fragments)
        assert "Z" in union

    def test_no_fds(self):
        fragments = synthesize_3nf("A B", [])
        assert fragments == [frozenset({"A", "B"})]

    def test_subsumed_fragments_dropped(self):
        fds = parse_fds("A -> B; A B -> C")
        fragments = synthesize_3nf("A B C", fds)
        for f in fragments:
            assert not any(f < g for g in fragments)


class TestReportsAndTool:
    def test_decomposition_report_fields(self):
        fds = parse_fds("A -> B; B -> C")
        report = decomposition_report(
            "A B C", bcnf_decompose("A B C", fds), fds
        )
        assert set(report) == {
            "fragments",
            "lossless",
            "dependency_preserving",
            "fragment_normal_forms",
        }
        assert report["lossless"]

    def test_check_decomposition_rejects_escape(self):
        with pytest.raises(NormalizationError):
            check_decomposition("A B", [frozenset({"A", "Z"})])

    def test_check_decomposition_rejects_loss(self):
        with pytest.raises(NormalizationError):
            check_decomposition("A B", [frozenset({"A"})])

    def test_design_tool_report(self):
        tool = DesignTool("A B C D", "A -> B; B -> C")
        text = tool.report()
        assert "Candidate keys: AD" in text
        assert "Normal form: 1NF" in text
        assert "BCNF decomposition" in text

    def test_design_tool_rejects_foreign_attributes(self):
        with pytest.raises(ValueError):
            DesignTool("A B", "A -> Z")

    def test_design_tool_accepts_fd_text(self):
        tool = DesignTool("A B", "A -> B")
        assert tool.normal_form() == "BCNF"
