"""Tests for FDs, Armstrong's axioms, closures, and Armstrong relations."""

import pytest

from repro.dependencies import (
    FD,
    armstrong_relation,
    attribute_closure,
    attrset,
    closure,
    derive,
    equivalent,
    implies,
    parse_fds,
    project,
    satisfies_all,
    verify_armstrong,
    violations,
)
from repro.errors import DependencyError
from repro.relational import Relation, RelationSchema


class TestFD:
    def test_parse(self):
        fd = FD.parse("A B -> C")
        assert fd.lhs == {"A", "B"}
        assert fd.rhs == {"C"}

    def test_parse_unicode_arrow(self):
        fd = FD.parse("A → B")
        assert fd.lhs == {"A"}

    def test_parse_requires_arrow(self):
        with pytest.raises(DependencyError):
            FD.parse("A B C")

    def test_empty_rhs_rejected(self):
        with pytest.raises(DependencyError):
            FD("A", "")

    def test_trivial(self):
        assert FD("A B", "A").is_trivial()
        assert not FD("A", "B").is_trivial()

    def test_decompose(self):
        parts = FD("A", "B C").decompose()
        assert FD("A", "B") in parts and FD("A", "C") in parts

    def test_holds_in_relation(self):
        rel = Relation(
            RelationSchema("r", ("A", "B")), [(1, "x"), (1, "x"), (2, "y")]
        )
        assert FD("A", "B").holds_in(rel)
        bad = Relation(
            RelationSchema("r", ("A", "B")), [(1, "x"), (1, "y")]
        )
        assert not FD("A", "B").holds_in(bad)

    def test_violations_report(self):
        rel = Relation(
            RelationSchema("r", ("A", "B")), [(1, "x"), (1, "y")]
        )
        fds = parse_fds("A -> B; B -> A")
        assert violations(rel, fds) == [FD("A", "B")]
        assert not satisfies_all(rel, fds)

    def test_attrset_string_forms(self):
        assert attrset("A B") == attrset("A,B") == attrset(["A", "B"])


class TestClosure:
    FDS = parse_fds("A -> B; B -> C; C D -> E")

    def test_attribute_closure(self):
        assert attribute_closure("A", self.FDS) == {"A", "B", "C"}
        assert attribute_closure("A D", self.FDS) == {"A", "B", "C", "D", "E"}

    def test_closure_monotone(self):
        small = attribute_closure("A", self.FDS)
        large = attribute_closure("A D", self.FDS)
        assert small <= large

    def test_closure_idempotent(self):
        once = attribute_closure("A", self.FDS)
        twice = attribute_closure(once, self.FDS)
        assert once == twice

    def test_implies(self):
        assert implies(self.FDS, FD("A", "C"))
        assert not implies(self.FDS, FD("C", "A"))
        assert implies(self.FDS, FD("A D", "E"))

    def test_trivial_always_implied(self):
        assert implies([], FD("A B", "A"))

    def test_equivalent_sets(self):
        a = parse_fds("A -> B; B -> C")
        b = parse_fds("A -> B C; B -> C")
        assert equivalent(a, b)
        assert not equivalent(a, parse_fds("A -> B"))

    def test_full_closure_contains_transitivity(self):
        full = closure(parse_fds("A -> B; B -> C"), "A B C")
        assert any(
            fd.lhs == {"A"} and "C" in fd.rhs for fd in full
        )

    def test_projection(self):
        projected = project(parse_fds("A -> B; B -> C"), "A C")
        assert any(
            fd.lhs == {"A"} and fd.rhs == {"C"} for fd in projected
        )
        assert all(fd.attributes() <= {"A", "C"} for fd in projected)


class TestDerivations:
    def test_derivation_ends_with_goal(self):
        fds = parse_fds("A -> B; B -> C")
        goal = FD("A", "C")
        steps = derive(fds, goal)
        assert steps[-1].fd == goal or any(s.fd == goal for s in steps)

    def test_derivation_premises_valid(self):
        fds = parse_fds("A -> B; B -> C; C -> D")
        steps = derive(fds, FD("A", "D"))
        for i, step in enumerate(steps):
            assert all(p < i for p in step.premises)

    def test_non_implied_rejected(self):
        with pytest.raises(DependencyError):
            derive(parse_fds("A -> B"), FD("B", "A"))

    def test_rules_used_are_armstrong(self):
        fds = parse_fds("A -> B; B -> C")
        steps = derive(fds, FD("A", "C"))
        allowed = {"given", "reflexivity", "augmentation", "transitivity"}
        assert {s.rule for s in steps} <= allowed


class TestArmstrongRelations:
    def test_witness_for_simple_fds(self):
        fds = parse_fds("A -> B")
        rel = armstrong_relation(fds, "A B C")
        satisfied_ok, violated_ok = verify_armstrong(rel, fds)
        assert satisfied_ok and violated_ok

    def test_witness_for_chain(self):
        fds = parse_fds("A -> B; B -> C")
        rel = armstrong_relation(fds, "A B C")
        satisfied_ok, violated_ok = verify_armstrong(rel, fds)
        assert satisfied_ok and violated_ok

    def test_witness_no_fds(self):
        rel = armstrong_relation([], "A B")
        satisfied_ok, violated_ok = verify_armstrong(rel, [])
        assert satisfied_ok and violated_ok

    def test_needs_attributes(self):
        with pytest.raises(DependencyError):
            armstrong_relation([], "")
