"""Property-based tests for transaction processing (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transactions import (
    Op,
    Schedule,
    avoids_cascading_aborts,
    is_conflict_serializable,
    is_recoverable,
    is_strict,
    optimistic,
    timestamp_order,
    two_phase_lock,
)

items = st.sampled_from(["x", "y", "z"])
kinds = st.sampled_from(["r", "w"])


@st.composite
def schedules(draw, max_txns=4, max_ops=4):
    """A complete random schedule with per-transaction order preserved."""
    n_txns = draw(st.integers(min_value=1, max_value=max_txns))
    queues = {}
    for txn in range(1, n_txns + 1):
        n_ops = draw(st.integers(min_value=1, max_value=max_ops))
        ops = [
            Op(draw(kinds), txn, draw(items)) for _ in range(n_ops)
        ]
        ops.append(Op.commit(txn))
        queues[txn] = ops
    order = []
    alive = sorted(queues)
    while alive:
        txn = draw(st.sampled_from(alive))
        order.append(queues[txn].pop(0))
        if not queues[txn]:
            alive.remove(txn)
    return Schedule(order)


class TestSchedulerSafety:
    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_2pl_output_is_csr_and_strict(self, schedule):
        output, _stats = two_phase_lock(schedule)
        assert is_conflict_serializable(output)
        assert is_strict(output)

    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_basic_2pl_output_is_csr(self, schedule):
        output, _stats = two_phase_lock(schedule, strict=False)
        assert is_conflict_serializable(output)

    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_timestamp_output_is_csr(self, schedule):
        output, _stats = timestamp_order(schedule)
        assert is_conflict_serializable(output)

    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_occ_output_is_csr(self, schedule):
        output, _stats = optimistic(schedule)
        assert is_conflict_serializable(output)

    @settings(max_examples=40, deadline=None)
    @given(schedules())
    def test_2pl_loses_no_committed_work(self, schedule):
        output, stats = two_phase_lock(schedule)
        survivors = set(schedule.transactions()) - stats["aborted"]
        for txn in survivors:
            requested = [
                op for op in schedule.ops_of(txn) if not op.is_terminal()
            ]
            executed = [
                op for op in output.ops_of(txn) if not op.is_terminal()
            ]
            assert requested == executed


class TestTheoryInvariants:
    @settings(max_examples=80, deadline=None)
    @given(schedules())
    def test_recovery_hierarchy(self, schedule):
        if is_strict(schedule):
            assert avoids_cascading_aborts(schedule)
        if avoids_cascading_aborts(schedule):
            assert is_recoverable(schedule)

    @settings(max_examples=80, deadline=None)
    @given(schedules())
    def test_serial_schedules_are_csr(self, schedule):
        # Build the serial version of the same transactions.
        ops = []
        for txn in schedule.transactions():
            ops.extend(schedule.ops_of(txn))
        serial = Schedule(ops)
        assert serial.is_serial()
        assert is_conflict_serializable(serial)

    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_committed_projection_idempotent(self, schedule):
        once = schedule.committed_projection()
        assert once.committed_projection() == once

    @settings(max_examples=60, deadline=None)
    @given(schedules())
    def test_precedence_graph_nodes_are_committed(self, schedule):
        from repro.transactions import precedence_graph

        graph = precedence_graph(schedule)
        assert set(graph) == schedule.committed()
