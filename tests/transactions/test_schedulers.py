"""Tests for the 2PL, timestamp-ordering, and optimistic schedulers."""

import pytest

from repro.transactions import (
    WorkloadConfig,
    generate_schedule,
    is_conflict_serializable,
    optimistic,
    parse_schedule,
    timestamp_order,
    two_phase_lock,
)


class TestTwoPhaseLocking:
    def test_noconflict_passthrough(self):
        s = parse_schedule("r1(x) r2(y) c1 c2")
        out, stats = two_phase_lock(s)
        assert list(out.ops) == list(s.ops)
        assert not stats["aborted"]

    def test_conflicting_op_waits(self):
        s = parse_schedule("w1(x) r2(x) c1 c2")
        out, stats = two_phase_lock(s)
        # t2's read must wait for t1's commit under strict 2PL.
        positions = {str(op): i for i, op in enumerate(out.ops)}
        assert positions["r2(x)"] > positions["c1"]
        assert stats["wait_events"] >= 1

    def test_deadlock_broken_by_abort(self):
        s = parse_schedule("r1(x) r2(y) w1(y) w2(x) c1 c2")
        out, stats = two_phase_lock(s)
        assert len(stats["aborted"]) == 1
        assert is_conflict_serializable(out)

    def test_shared_locks_allow_concurrent_reads(self):
        s = parse_schedule("r1(x) r2(x) c1 c2")
        out, stats = two_phase_lock(s)
        assert stats["wait_events"] == 0

    def test_upgrade_blocks_on_other_reader(self):
        s = parse_schedule("r1(x) r2(x) w1(x) c2 c1")
        out, stats = two_phase_lock(s)
        assert is_conflict_serializable(out)

    def test_output_always_serializable(self):
        for seed in range(25):
            config = WorkloadConfig(
                num_transactions=6,
                ops_per_transaction=4,
                num_items=5,
                hot_access_probability=0.6,
                seed=seed,
            )
            out, _ = two_phase_lock(generate_schedule(config))
            assert is_conflict_serializable(out), seed

    def test_basic_2pl_also_serializable(self):
        for seed in range(10):
            config = WorkloadConfig(
                num_transactions=5, ops_per_transaction=3, num_items=4,
                seed=seed,
            )
            out, _ = two_phase_lock(generate_schedule(config), strict=False)
            assert is_conflict_serializable(out), seed

    def test_strict_output_is_strict(self):
        from repro.transactions import is_strict

        for seed in range(10):
            config = WorkloadConfig(
                num_transactions=5, ops_per_transaction=3, num_items=4,
                seed=seed,
            )
            out, _ = two_phase_lock(generate_schedule(config), strict=True)
            assert is_strict(out), seed


class TestTimestampOrdering:
    def test_in_order_accepted(self):
        s = parse_schedule("r1(x) w1(x) c1 r2(x) c2")
        out, stats = timestamp_order(s)
        assert not stats["aborted"]

    def test_late_write_aborts(self):
        # t1 starts first (ts 0), t2 reads x (ts 1), then t1 writes x:
        # write below read-ts -> abort t1.
        s = parse_schedule("r1(y) r2(x) w1(x) c2 c1")
        out, stats = timestamp_order(s)
        assert stats["aborted"] == {1}

    def test_thomas_write_rule_skips(self):
        # w1 after w2 on x with ts1 < ts2: obsolete write skipped.
        s = parse_schedule("r1(y) w2(x) c2 w1(x) c1")
        out_strict, stats_strict = timestamp_order(s)
        assert stats_strict["aborted"] == {1}
        out_thomas, stats_thomas = timestamp_order(s, thomas_write_rule=True)
        assert not stats_thomas["aborted"]
        assert stats_thomas["skipped_writes"] == 1

    def test_output_serializable(self):
        for seed in range(25):
            config = WorkloadConfig(
                num_transactions=6, ops_per_transaction=4, num_items=5,
                hot_access_probability=0.6, seed=seed,
            )
            out, _ = timestamp_order(generate_schedule(config))
            assert is_conflict_serializable(out), seed


class TestOptimistic:
    def test_no_overlap_commits(self):
        s = parse_schedule("r1(x) w1(x) c1 r2(x) c2")
        out, stats = optimistic(s)
        assert not stats["aborted"]

    def test_read_write_conflict_aborts_reader(self):
        s = parse_schedule("r1(x) r2(x) w2(x) c2 w1(y) c1")
        out, stats = optimistic(s)
        assert stats["aborted"] == {1}

    def test_write_write_no_read_ok(self):
        # Backward validation checks read sets only.
        s = parse_schedule("w1(x) w2(x) c2 c1")
        out, stats = optimistic(s)
        assert not stats["aborted"]

    def test_committed_projection_serializable(self):
        for seed in range(25):
            config = WorkloadConfig(
                num_transactions=6, ops_per_transaction=4, num_items=5,
                hot_access_probability=0.6, seed=seed,
            )
            out, _ = optimistic(generate_schedule(config))
            assert is_conflict_serializable(out), seed

    def test_high_contention_aborts_more(self):
        low = WorkloadConfig(
            num_transactions=10, ops_per_transaction=5, num_items=40,
            write_ratio=0.6, hot_access_probability=0.0, seed=5,
        )
        high = WorkloadConfig(
            num_transactions=10, ops_per_transaction=5, num_items=40,
            write_ratio=0.6, hot_access_probability=0.95, hot_fraction=0.05,
            seed=5,
        )
        _, low_stats = optimistic(generate_schedule(low))
        _, high_stats = optimistic(generate_schedule(high))
        assert len(high_stats["aborted"]) >= len(low_stats["aborted"])
