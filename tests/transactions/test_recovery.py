"""Tests for the recoverability hierarchy RC > ACA > ST."""

from repro.transactions import (
    avoids_cascading_aborts,
    cascading_abort_set,
    is_recoverable,
    is_strict,
    parse_schedule,
    recovery_class,
)


class TestClasses:
    def test_strict_example(self):
        s = parse_schedule("w1(x) c1 r2(x) w2(x) c2")
        assert is_strict(s)
        assert avoids_cascading_aborts(s)
        assert is_recoverable(s)
        assert recovery_class(s) == "ST"

    def test_aca_not_strict(self):
        # t2 overwrites t1's uncommitted write (dirty write) but never
        # reads dirty data: ACA, not ST.
        s = parse_schedule("w1(x) w2(x) c1 c2")
        assert not is_strict(s)
        assert avoids_cascading_aborts(s)
        assert recovery_class(s) == "ACA"

    def test_rc_not_aca(self):
        # t2 reads t1's uncommitted write but commits after t1: RC only.
        s = parse_schedule("w1(x) r2(x) c1 c2")
        assert is_recoverable(s)
        assert not avoids_cascading_aborts(s)
        assert recovery_class(s) == "RC"

    def test_not_recoverable(self):
        # t2 reads from t1 and commits first.
        s = parse_schedule("w1(x) r2(x) c2 c1")
        assert not is_recoverable(s)
        assert recovery_class(s) == "none"

    def test_reader_never_commits_is_fine(self):
        s = parse_schedule("w1(x) r2(x) c1")
        assert is_recoverable(s)

    def test_writer_aborts_after_reader_commit(self):
        s = parse_schedule("w1(x) r2(x) c2 a1")
        assert not is_recoverable(s)


class TestAbortRestoresBeforeImages:
    """Aborts undo writes: reads *after* an abort see the restored
    version, not the dead transaction's write.

    Regression for a bug the conformance transactions oracle found: the
    old flat last-writer model ignored aborts, so strict 2PL outputs
    containing deadlock-victim aborts were judged non-recoverable.
    """

    def test_read_after_abort_is_recoverable(self):
        s = parse_schedule("w1(x) a1 r2(x) c2")
        assert is_recoverable(s)
        assert avoids_cascading_aborts(s)
        assert is_strict(s)

    def test_read_after_abort_sees_prior_committed_writer(self):
        # t3's read must be attributed to committed t1, not aborted t2.
        s = parse_schedule("w1(x) c1 w2(x) a2 r3(x) c3")
        assert is_recoverable(s)
        assert avoids_cascading_aborts(s)

    def test_read_after_abort_sees_uncommitted_earlier_writer(self):
        # The restored version is t1's *uncommitted* write: t3 reads
        # dirty data and commits before t1 — still not recoverable.
        s = parse_schedule("w1(x) w2(x) a2 r3(x) c3 c1")
        assert not is_recoverable(s)
        assert not avoids_cascading_aborts(s)

    def test_read_before_abort_keeps_its_pair(self):
        # The classical golden: the read happened while t1's write was
        # live, so t2's early commit is still a violation.
        s = parse_schedule("w1(x) r2(x) c2 a1")
        assert not is_recoverable(s)

    def test_abort_only_clears_own_writes(self):
        s = parse_schedule("w1(x) w2(y) a2 r3(x) c3 c1")
        assert not is_recoverable(s)  # x still belongs to live t1


class TestHierarchy:
    def test_containment_chain_on_random_schedules(self):
        from repro.transactions import WorkloadConfig, generate_schedule

        for seed in range(30):
            config = WorkloadConfig(
                num_transactions=5, ops_per_transaction=3, num_items=4,
                seed=seed,
            )
            s = generate_schedule(config)
            if is_strict(s):
                assert avoids_cascading_aborts(s), seed
            if avoids_cascading_aborts(s):
                assert is_recoverable(s), seed

    def test_serializability_orthogonal_to_recovery(self):
        # Serializable but not recoverable.
        s = parse_schedule("w1(x) r2(x) c2 c1")
        from repro.transactions import is_conflict_serializable

        assert is_conflict_serializable(s)
        assert not is_recoverable(s)
        # Strict but not serializable (write cycle across items).
        s2 = parse_schedule("r1(x) r2(y) w1(y) w2(x) c1 c2")
        # r1(x) r2(y) then w1(y): t1 writes y after t2 read it (not dirty),
        # w2(x) after t1 read x.  No dirty access at all: strict.
        assert is_strict(s2)
        assert not is_conflict_serializable(s2)


class TestCascades:
    def test_cascading_set(self):
        s = parse_schedule("w1(x) r2(x) w2(y) r3(y)")
        doomed = cascading_abort_set(s, 1)
        assert doomed == {2, 3}

    def test_no_cascade_when_committed_reads(self):
        s = parse_schedule("w1(x) c1 r2(x)")
        assert cascading_abort_set(s, 1) == {2}  # direct reader only
        # Note: reads-from is recorded regardless of commit; ACA is the
        # property that prevents the cascade mattering.

    def test_isolated_failure(self):
        s = parse_schedule("w1(x) r2(y) c2")
        assert cascading_abort_set(s, 1) == set()
