"""Property test: the recoverability hierarchy on random workloads.

The paper's recovery taxonomy is a strict chain — ST ⊂ ACA ⊂ RC — and
the predicates implementing it must respect the containments on *every*
schedule, not just the textbook examples.  Hypothesis drives the
workload generator (with injected aborts, since abort-free schedules
never stress the definitions) and checks the implications plus the
consistency of :func:`recovery_class` with the individual predicates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transactions.recovery import (
    avoids_cascading_aborts,
    is_recoverable,
    is_strict,
    recovery_class,
)
from repro.transactions.schedule import Op, Schedule
from repro.transactions.workload import WorkloadConfig, generate_schedule


@st.composite
def workload_schedules(draw):
    """A generated workload schedule with some commits flipped to aborts."""
    config = WorkloadConfig(
        num_transactions=draw(st.integers(min_value=2, max_value=5)),
        ops_per_transaction=draw(st.integers(min_value=1, max_value=4)),
        num_items=draw(st.integers(min_value=1, max_value=4)),
        write_ratio=draw(st.floats(min_value=0.2, max_value=0.9)),
        hot_fraction=0.5,
        hot_access_probability=draw(
            st.sampled_from([0.0, 0.5, 0.9])
        ),
        seed=draw(st.integers(min_value=0, max_value=10**6)),
    )
    schedule = generate_schedule(
        config,
        interleave_seed=draw(st.integers(min_value=0, max_value=10**6)),
    )
    doomed = {
        txn
        for txn in schedule.transactions()
        if draw(st.booleans())
    }
    ops = [
        Op.abort(op.txn)
        if op.is_terminal() and op.txn in doomed
        else op
        for op in schedule
    ]
    return Schedule(ops)


@given(workload_schedules())
@settings(max_examples=150, deadline=None)
def test_strict_implies_aca_implies_recoverable(schedule):
    if is_strict(schedule):
        assert avoids_cascading_aborts(schedule)
    if avoids_cascading_aborts(schedule):
        assert is_recoverable(schedule)


@given(workload_schedules())
@settings(max_examples=150, deadline=None)
def test_recovery_class_agrees_with_the_predicates(schedule):
    label = recovery_class(schedule)
    expectations = {
        "ST": (True, True, True),
        "ACA": (False, True, True),
        "RC": (False, False, True),
        "none": (False, False, False),
    }
    assert label in expectations
    assert expectations[label] == (
        is_strict(schedule),
        avoids_cascading_aborts(schedule),
        is_recoverable(schedule),
    )


def test_the_containments_are_strict():
    """Witnesses that each level of the chain is genuinely larger."""
    # ACA but not ST: t2 overwrites t1's dirty write (no dirty read).
    aca_only = Schedule(
        [
            Op.write(1, "x"),
            Op.write(2, "x"),
            Op.commit(1),
            Op.commit(2),
        ]
    )
    assert not is_strict(aca_only)
    assert avoids_cascading_aborts(aca_only)

    # RC but not ACA: t2 reads t1's dirty write, commits after t1.
    rc_only = Schedule(
        [
            Op.write(1, "x"),
            Op.read(2, "x"),
            Op.commit(1),
            Op.commit(2),
        ]
    )
    assert not avoids_cascading_aborts(rc_only)
    assert is_recoverable(rc_only)

    # Not even RC: the reader commits before its writer.
    unrecoverable = Schedule(
        [
            Op.write(1, "x"),
            Op.read(2, "x"),
            Op.commit(2),
            Op.commit(1),
        ]
    )
    assert not is_recoverable(unrecoverable)
    assert recovery_class(unrecoverable) == "none"
