"""Tests for the tree locking protocol."""

import random

import pytest

from repro.errors import SchedulerError
from repro.transactions import (
    Op,
    Schedule,
    is_conflict_serializable,
    parse_schedule,
)
from repro.transactions.treelock import (
    ItemTree,
    TreeLockingScheduler,
    tree_lock,
)


@pytest.fixture
def tree():
    # x0 root; x1, x2 children; x3..x6 grandchildren.
    item_tree, _names = ItemTree.balanced(depth=2, fanout=2)
    return item_tree


class TestItemTree:
    def test_balanced_shape(self):
        tree, names = ItemTree.balanced(depth=2, fanout=2)
        assert tree.root == "x0"
        assert len(names) == 7
        assert tree.parent["x3"] == "x1"

    def test_cycle_rejected(self):
        with pytest.raises(SchedulerError):
            ItemTree({"a": "b", "b": "a"})

    def test_forest_rejected(self):
        with pytest.raises(SchedulerError):
            ItemTree({"a": "r1", "b": "r2"})

    def test_path_to_root(self, tree):
        assert tree.path_to_root("x3") == ["x3", "x1", "x0"]

    def test_spanning_subtree_single(self, tree):
        assert tree.spanning_subtree(["x3"]) == ["x3"]

    def test_spanning_subtree_siblings(self, tree):
        nodes = tree.spanning_subtree(["x3", "x4"])
        assert nodes[0] == "x1"
        assert set(nodes) == {"x1", "x3", "x4"}

    def test_spanning_subtree_cousins(self, tree):
        nodes = tree.spanning_subtree(["x3", "x5"])
        assert nodes[0] == "x0"
        assert set(nodes) == {"x0", "x1", "x2", "x3", "x5"}

    def test_top_down_order(self, tree):
        nodes = tree.spanning_subtree(["x3", "x5", "x4"])
        position = {n: i for i, n in enumerate(nodes)}
        for node in nodes:
            parent = tree.parent.get(node)
            if parent in position:
                assert position[parent] < position[node]


class TestScheduler:
    def test_single_transaction_passthrough(self, tree):
        schedule = parse_schedule("w1(x3) w1(x4) c1")
        output, stats = tree_lock(schedule, tree)
        assert [op for op in output if not op.is_terminal()] == list(
            schedule.data_ops()
        )

    def test_conflicting_transactions_serialized(self, tree):
        schedule = parse_schedule("w1(x3) w2(x3) w1(x4) w2(x4) c1 c2")
        output, _stats = tree_lock(schedule, tree)
        assert is_conflict_serializable(output)

    def test_unknown_item_rejected(self, tree):
        with pytest.raises(SchedulerError):
            tree_lock(parse_schedule("w1(zzz) c1"), tree)

    def test_not_two_phase_but_serializable(self):
        # A chain tree and transactions walking down it: the protocol
        # releases the root long before leaf acquisition.
        tree = ItemTree({"b": "a", "c": "b", "d": "c"})
        schedule = parse_schedule(
            "w1(a) w2(a) w1(b) w1(c) w1(d) w2(b) c1 c2"
        )
        output, stats = tree_lock(schedule, tree)
        assert is_conflict_serializable(output)
        assert stats["early_releases"] > 0  # witnesses non-2PL behavior

    def test_random_workloads_always_serializable(self):
        tree, names = ItemTree.balanced(depth=3, fanout=2)
        rng = random.Random(9)
        for trial in range(20):
            ops = []
            for txn in range(1, 5):
                items = rng.sample(names, rng.randint(1, 4))
                for item in items:
                    ops.append(Op.write(txn, item))
                ops.append(Op.commit(txn))
            # Random valid interleaving.
            queues = {}
            for op in ops:
                queues.setdefault(op.txn, []).append(op)
            interleaved = []
            alive = [t for t in queues if queues[t]]
            while alive:
                txn = rng.choice(alive)
                interleaved.append(queues[txn].pop(0))
                if not queues[txn]:
                    alive.remove(txn)
            schedule = Schedule(interleaved)
            output, _stats = tree_lock(schedule, tree)
            assert is_conflict_serializable(output), (trial, str(schedule))
            assert len(output.data_ops()) == len(schedule.data_ops())

    def test_deadlock_free_on_opposing_walks(self):
        # Two transactions starting at different subtrees then meeting:
        # under plain 2PL this pattern can deadlock; the tree protocol
        # orders both through the common ancestor.
        tree, names = ItemTree.balanced(depth=2, fanout=2)
        schedule = parse_schedule(
            "w1(x3) w2(x5) w1(x5) w2(x3) c1 c2"
        )
        output, stats = tree_lock(schedule, tree)
        assert is_conflict_serializable(output)
        assert output.is_complete()

    def test_waits_counted(self, tree):
        # t1 keeps x1 (it still needs to crab to x3), so t2 must wait.
        schedule = parse_schedule("w1(x1) w2(x1) w1(x3) c1 c2")
        output, stats = tree_lock(schedule, tree)
        assert stats["wait_events"] >= 1
        assert is_conflict_serializable(output)

    def test_immediate_release_when_done(self, tree):
        # After t1's only use of x1, the protocol releases at once, so
        # t2 proceeds without waiting — early release in action.
        schedule = parse_schedule("w1(x1) w2(x1) c1 c2")
        _output, stats = tree_lock(schedule, tree)
        assert stats["wait_events"] == 0
