"""Tests for schedules and serializability theory."""

import pytest

from repro.errors import TransactionError
from repro.transactions import (
    Op,
    Schedule,
    conflicts,
    equivalent_serial_schedule,
    is_blind_write_free,
    is_conflict_serializable,
    is_view_serializable,
    parse_schedule,
    precedence_graph,
    serialization_order,
    transaction,
    view_equivalent,
)


class TestScheduleBasics:
    def test_parse(self):
        s = parse_schedule("r1(x) w2(y) c1 a2")
        assert len(s) == 4
        assert s[0] == Op.read(1, "x")
        assert s.committed() == {1}
        assert s.aborted() == {2}

    def test_parse_errors(self):
        with pytest.raises(TransactionError):
            parse_schedule("z1(x)")
        with pytest.raises(TransactionError):
            parse_schedule("c1(x)")

    def test_ops_after_terminal_rejected(self):
        with pytest.raises(TransactionError):
            parse_schedule("c1 r1(x)")

    def test_transactions_in_order(self):
        s = parse_schedule("r2(x) r1(y) c2 c1")
        assert s.transactions() == [2, 1]

    def test_is_serial(self):
        assert parse_schedule("r1(x) w1(y) c1 r2(x) c2").is_serial()
        assert not parse_schedule("r1(x) r2(x) c1 c2").is_serial()

    def test_committed_projection(self):
        s = parse_schedule("r1(x) r2(x) a2 c1")
        proj = s.committed_projection()
        assert proj.transactions() == [1]

    def test_active_and_complete(self):
        s = parse_schedule("r1(x) r2(y) c1")
        assert s.active() == [2]
        assert not s.is_complete()

    def test_serial_constructor(self):
        txns = {1: transaction(1, [("r", "x")]), 2: transaction(2, [("w", "x")])}
        s = Schedule.serial(txns, [2, 1])
        assert s.is_serial()
        assert s.transactions() == [2, 1]

    def test_conflicts_with(self):
        assert Op.read(1, "x").conflicts_with(Op.write(2, "x"))
        assert not Op.read(1, "x").conflicts_with(Op.read(2, "x"))
        assert not Op.write(1, "x").conflicts_with(Op.write(1, "x"))
        assert not Op.write(1, "x").conflicts_with(Op.write(2, "y"))


class TestConflictSerializability:
    def test_serializable_example(self):
        s = parse_schedule("r1(x) w1(x) r2(x) w2(y) c1 c2")
        assert is_conflict_serializable(s)
        assert serialization_order(s) == [1, 2]

    def test_classic_nonserializable(self):
        s = parse_schedule("r1(x) r2(y) w2(x) w1(y) c1 c2")
        assert not is_conflict_serializable(s)
        with pytest.raises(TransactionError):
            serialization_order(s)

    def test_serial_always_serializable(self):
        s = parse_schedule("r1(x) w1(y) c1 r2(y) w2(x) c2")
        assert s.is_serial()
        assert is_conflict_serializable(s)

    def test_aborted_txn_excluded(self):
        # The cycle involves t2, which aborted: committed projection fine.
        s = parse_schedule("r1(x) r2(y) w2(x) w1(y) c1 a2")
        assert is_conflict_serializable(s)

    def test_precedence_graph_edges(self):
        s = parse_schedule("w1(x) r2(x) c1 c2")
        graph = precedence_graph(s)
        assert graph[1] == {2}
        assert graph[2] == set()

    def test_conflicts_listing(self):
        s = parse_schedule("w1(x) r2(x) w2(x) c1 c2")
        pairs = conflicts(s)
        assert (Op.write(1, "x"), Op.read(2, "x")) in pairs
        assert (Op.write(1, "x"), Op.write(2, "x")) in pairs

    def test_equivalent_serial_schedule(self):
        s = parse_schedule("r1(x) r2(x) w1(y) w2(z) c1 c2")
        serial = equivalent_serial_schedule(s)
        assert serial.is_serial()
        assert view_equivalent(s, serial) or is_conflict_serializable(serial)


class TestViewSerializability:
    def test_vsr_but_not_csr(self):
        # The classical blind-write example.
        s = parse_schedule(
            "w1(x) w2(x) w2(y) c2 w1(y) w3(x) w3(y) c3 c1"
        )
        assert not is_conflict_serializable(s)
        assert is_view_serializable(s)

    def test_csr_implies_vsr(self):
        s = parse_schedule("r1(x) w1(x) r2(x) c1 c2")
        assert is_conflict_serializable(s)
        assert is_view_serializable(s)

    def test_not_vsr(self):
        s = parse_schedule("r1(x) r2(y) w2(x) w1(y) c1 c2")
        assert not is_view_serializable(s)

    def test_limit_guard(self):
        ops = []
        for txn in range(1, 11):
            ops.append(Op.read(txn, "x"))
            ops.append(Op.commit(txn))
        with pytest.raises(TransactionError):
            is_view_serializable(Schedule(ops))

    def test_blind_write_free_detection(self):
        assert is_blind_write_free(parse_schedule("r1(x) w1(x) c1"))
        assert not is_blind_write_free(parse_schedule("w1(x) c1"))

    def test_view_equivalent_same_schedule(self):
        s = parse_schedule("r1(x) w1(x) c1")
        assert view_equivalent(s, s)

    def test_without_blind_writes_vsr_equals_csr(self):
        # Random-ish small cases: whenever every write is preceded by a
        # read, the two notions coincide.
        import itertools
        import random

        rng = random.Random(4)
        for _ in range(15):
            ops = []
            for txn in (1, 2):
                for item in rng.sample(["x", "y"], 2):
                    ops.append(Op.read(txn, item))
                    if rng.random() < 0.7:
                        ops.append(Op.write(txn, item))
            rng.shuffle(ops)
            by_txn = {}
            ordered = []
            for op in ops:
                by_txn.setdefault(op.txn, []).append(op)
            # Rebuild as a valid interleaving.
            queues = {t: list(v) for t, v in by_txn.items()}
            alive = [t for t in queues if queues[t]]
            while alive:
                t = rng.choice(alive)
                ordered.append(queues[t].pop(0))
                if not queues[t]:
                    alive.remove(t)
            ordered += [Op.commit(1), Op.commit(2)]
            s = Schedule(ordered)
            if is_blind_write_free(s):
                assert is_conflict_serializable(s) == is_view_serializable(s)
