"""Tests for hypergraphs, GYO, join trees, and Yannakakis."""

import random

import pytest

from repro.acyclic import (
    Hypergraph,
    JoinTree,
    chain_scheme,
    cycle_scheme,
    ear_decomposition,
    full_reducer,
    gyo_reduce,
    is_alpha_acyclic,
    naive_join,
    semijoin_program_size,
    star_scheme,
    yannakakis_join,
)
from repro.errors import HypergraphError
from repro.relational import Database, Relation, RelationSchema, same_content


def random_db_for(hypergraph, size=20, domain=8, seed=0):
    rng = random.Random(seed)
    db = Database()
    for name in hypergraph.names():
        attrs = sorted(hypergraph[name])
        rows = {
            tuple(rng.randrange(domain) for _ in attrs) for _ in range(size)
        }
        db.add(Relation(RelationSchema(name, attrs), rows))
    return db


class TestHypergraph:
    def test_construction_and_vertices(self):
        hg = Hypergraph({"r": ("a", "b"), "s": ("b", "c")})
        assert hg.vertices() == {"a", "b", "c"}
        assert len(hg) == 2
        assert hg["r"] == {"a", "b"}

    def test_auto_naming(self):
        hg = Hypergraph([("a", "b"), ("b", "c")])
        assert "R0" in hg and "R1" in hg

    def test_empty_edge_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph({"r": ()})

    def test_missing_edge_operations_rejected(self):
        hg = Hypergraph({"r": ("a",)})
        with pytest.raises(HypergraphError):
            hg.remove("zzz")
        with pytest.raises(HypergraphError):
            hg["zzz"]

    def test_incident_edges(self):
        hg = Hypergraph({"r": ("a", "b"), "s": ("b", "c")})
        assert hg.incident_edges("b") == ["r", "s"]

    def test_from_schema(self):
        db = Database.from_dict({"r": (("a", "b"), [])})
        hg = Hypergraph.from_schema(db.schema())
        assert hg["r"] == {"a", "b"}

    def test_remove_and_restrict_are_copies(self):
        hg = Hypergraph({"r": ("a", "b"), "s": ("b",)})
        smaller = hg.remove("s")
        assert "s" in hg and "s" not in smaller
        shrunk = hg.restrict_edge("r", ("a",))
        assert hg["r"] == {"a", "b"} and shrunk["r"] == {"a"}


class TestGYO:
    def test_chain_star_acyclic(self):
        assert is_alpha_acyclic(chain_scheme(6))
        assert is_alpha_acyclic(star_scheme(5))

    def test_cycle_cyclic(self):
        for n in (3, 4, 6):
            assert not is_alpha_acyclic(cycle_scheme(n))

    def test_triangle_with_big_edge_acyclic(self):
        # Adding the covering edge makes the triangle alpha-acyclic —
        # the hallmark non-monotonicity of alpha-acyclicity.
        triangle = Hypergraph(
            {"r": ("a", "b"), "s": ("b", "c"), "t": ("a", "c")}
        )
        assert not is_alpha_acyclic(triangle)
        covered = Hypergraph(
            {
                "r": ("a", "b"),
                "s": ("b", "c"),
                "t": ("a", "c"),
                "u": ("a", "b", "c"),
            }
        )
        assert is_alpha_acyclic(covered)

    def test_single_edge_acyclic(self):
        assert is_alpha_acyclic(Hypergraph({"r": ("a", "b", "c")}))

    def test_gyo_residual_on_cycle(self):
        residual, _ = gyo_reduce(cycle_scheme(4))
        assert len(residual) == 4  # nothing reducible

    def test_ear_decomposition_covers_all(self):
        ears = ear_decomposition(chain_scheme(5))
        assert {name for name, _ in ears} == set(chain_scheme(5).names())

    def test_ear_decomposition_rejects_cyclic(self):
        with pytest.raises(ValueError):
            ear_decomposition(cycle_scheme(3))


class TestJoinTree:
    def test_rip_on_chain(self):
        tree = JoinTree.build(chain_scheme(6))
        assert tree.satisfies_rip()

    def test_rip_on_star(self):
        tree = JoinTree.build(star_scheme(6))
        assert tree.satisfies_rip()

    def test_postorder_children_before_parents(self):
        tree = JoinTree.build(chain_scheme(5))
        order = tree.postorder()
        position = {name: i for i, name in enumerate(order)}
        for child, parent in tree.edges():
            assert position[child] < position[parent]

    def test_preorder_is_reverse(self):
        tree = JoinTree.build(chain_scheme(4))
        assert tree.preorder() == list(reversed(tree.postorder()))

    def test_build_rejects_cyclic(self):
        with pytest.raises(ValueError):
            JoinTree.build(cycle_scheme(4))

    def test_every_node_placed(self):
        hg = star_scheme(5)
        tree = JoinTree.build(hg)
        assert set(tree.parent) == set(hg.names())


class TestYannakakis:
    @pytest.mark.parametrize("scheme_factory,arg", [
        (chain_scheme, 4),
        (chain_scheme, 6),
        (star_scheme, 4),
    ])
    def test_matches_naive_join(self, scheme_factory, arg):
        hg = scheme_factory(arg)
        for seed in range(3):
            db = random_db_for(hg, seed=seed)
            assert yannakakis_join(hg, db) == naive_join(hg, db)

    def test_full_reducer_removes_dangling(self):
        hg = chain_scheme(2)  # R0(a0,a1), R1(a1,a2)
        db = Database(
            [
                Relation(
                    RelationSchema("R0", ("a0", "a1")), [(1, 2), (3, 99)]
                ),
                Relation(
                    RelationSchema("R1", ("a1", "a2")), [(2, 5), (42, 7)]
                ),
            ]
        )
        reduced, _tree = full_reducer(hg, db)
        assert set(reduced["R0"].tuples) == {(1, 2)}
        assert set(reduced["R1"].tuples) == {(2, 5)}

    def test_empty_relation_empties_everything(self):
        hg = chain_scheme(3)
        db = random_db_for(hg, seed=1)
        db.replace(Relation(RelationSchema("R1", ("a1", "a2")), []))
        assert len(yannakakis_join(hg, db)) == 0

    def test_schema_mismatch_rejected(self):
        hg = chain_scheme(2)
        db = Database(
            [
                Relation(RelationSchema("R0", ("x", "y")), []),
                Relation(RelationSchema("R1", ("a1", "a2")), []),
            ]
        )
        with pytest.raises(HypergraphError):
            yannakakis_join(hg, db)

    def test_semijoin_program_size_linear(self):
        assert semijoin_program_size(chain_scheme(5)) == 2 * 4

    def test_disconnected_components_product(self):
        hg = Hypergraph({"r": ("a", "b"), "s": ("c", "d")})
        db = Database(
            [
                Relation(RelationSchema("r", ("a", "b")), [(1, 2)]),
                Relation(RelationSchema("s", ("c", "d")), [(3, 4), (5, 6)]),
            ]
        )
        out = yannakakis_join(hg, db)
        assert len(out) == 2
        assert same_content(out, naive_join(hg, db))
