"""Property-based tests for acyclic schemes (hypothesis).

Generators build hypergraphs *from* random join trees, so acyclicity is
guaranteed by construction — the tests then check that GYO recognizes
them, that the constructed join trees satisfy RIP, and that Yannakakis
agrees with the naive join on random instances.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acyclic import (
    Hypergraph,
    JoinTree,
    is_alpha_acyclic,
    naive_join,
    yannakakis_join,
)
from repro.relational import Database, Relation, RelationSchema


@st.composite
def tree_hypergraphs(draw):
    """A hypergraph built from a random tree of overlapping edges.

    Edge i > 0 attaches to a random earlier edge, sharing a random
    nonempty subset of its attributes and adding fresh ones — exactly
    the join-tree construction, so the result is alpha-acyclic.
    """
    n_edges = draw(st.integers(min_value=1, max_value=5))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10**6)))
    edges = {}
    counter = [0]

    def fresh():
        counter[0] += 1
        return "a%d" % counter[0]

    edges["R0"] = frozenset(fresh() for _ in range(rng.randint(1, 3)))
    for i in range(1, n_edges):
        parent = "R%d" % rng.randrange(i)
        shared = set(
            rng.sample(
                sorted(edges[parent]),
                rng.randint(1, len(edges[parent])),
            )
        )
        new = {fresh() for _ in range(rng.randint(0, 2))}
        edges["R%d" % i] = frozenset(shared | new)
    return Hypergraph(edges)


@st.composite
def instances_for(draw, hypergraph):
    rng = random.Random(draw(st.integers(min_value=0, max_value=10**6)))
    db = Database()
    for name in hypergraph.names():
        attrs = sorted(hypergraph[name])
        rows = {
            tuple(rng.randrange(4) for _ in attrs)
            for _ in range(rng.randint(0, 10))
        }
        db.add(Relation(RelationSchema(name, attrs), rows))
    return db


class TestAcyclicityProperties:
    @settings(max_examples=60, deadline=None)
    @given(tree_hypergraphs())
    def test_tree_built_hypergraphs_are_acyclic(self, hypergraph):
        assert is_alpha_acyclic(hypergraph)

    @settings(max_examples=60, deadline=None)
    @given(tree_hypergraphs())
    def test_join_tree_satisfies_rip(self, hypergraph):
        tree = JoinTree.build(hypergraph)
        assert tree.satisfies_rip()
        assert set(tree.parent) == set(hypergraph.names())

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_yannakakis_equals_naive(self, data):
        hypergraph = data.draw(tree_hypergraphs())
        db = data.draw(instances_for(hypergraph))
        assert yannakakis_join(hypergraph, db) == naive_join(hypergraph, db)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_reduction_never_grows(self, data):
        from repro.acyclic import full_reducer

        hypergraph = data.draw(tree_hypergraphs())
        db = data.draw(instances_for(hypergraph))
        reduced, _tree = full_reducer(hypergraph, db)
        for name in hypergraph.names():
            assert reduced[name].tuples <= db[name].tuples
