"""Differential property: executor ≡ legacy tree walk ≡ optimized plan.

Hypothesis drives seeds into the deterministic random-expression
generator (every core operator, schema-valid by construction) and the
random-database generator; for every pair the streaming executor must
reproduce the legacy tree walk bit for bit, and the optimized canonical
plan must agree up to column order.  This is the acceptance-criterion
oracle for the whole pipeline, the analogue of the Datalog
cross-engine differential suite one layer down.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equivalence import executor_experiment
from repro.core.random_instances import (
    random_algebra_expression,
    random_database,
)
from repro.plan import canonicalize, execute
from repro.relational.algebra import evaluate
from repro.relational.optimizer import optimize
from repro.relational.relation import same_content


@settings(max_examples=120, deadline=None)
@given(
    db_seed=st.integers(min_value=0, max_value=10**6),
    expr_seed=st.integers(min_value=0, max_value=10**6),
    size=st.integers(min_value=1, max_value=5),
)
def test_executor_matches_treewalk_and_optimizer(db_seed, expr_seed, size):
    db = random_database(
        num_relations=3, rows=8, domain_size=5, seed=db_seed
    )
    expr = random_algebra_expression(db, seed=expr_seed, size=size)

    legacy = evaluate(expr, db)
    streamed = execute(expr, db)
    assert streamed == legacy, expr
    assert streamed.schema.attributes == legacy.schema.attributes

    optimized = optimize(canonicalize(expr, db.schema()), db)
    assert same_content(execute(optimized, db), legacy), expr


def test_executor_experiment_confirms():
    """The packaged experiment (100 trials) reports zero failures."""
    report = executor_experiment(trials=100, seed=0)
    assert report.trials == 100
    assert report.confirmed, report.failures
