"""Per-operator streaming semantics and work accounting.

The executor's contract has two halves: results identical to the legacy
tree walk, and *bounded intermediates* — only operator buffers (hash
build sides, dedup sets, the result) are materialized, and every unit
of work lands in an EngineStatistics counter.  These tests pin both,
operator by operator, using a Feed stub that records how many tuples
each child was asked for.
"""

from repro.datalog.stats import EngineStatistics
from repro.plan import execute, measure_treewalk
from repro.plan.physical import (
    DifferenceOp,
    HashJoin,
    Project,
    Scan,
    Select,
    SemijoinOp,
    Tally,
    ThetaJoinOp,
    UnionOp,
    _BaseIndex,
    _FLUSH_BLOCK,
    build_physical,
)
from repro.relational import algebra as ra
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


class Feed:
    """A physical-operator stand-in that counts pulls."""

    def __init__(self, attributes, tuples, name="feed"):
        self.schema = RelationSchema(name, attributes)
        self._tuples = list(tuples)
        self.pulled = 0

    def tuples(self):
        for t in self._tuples:
            self.pulled += 1
            yield t

    def describe(self):
        return "Feed"


def tally():
    return Tally(EngineStatistics())


def small_db():
    db = Database()
    db.add(
        Relation(
            RelationSchema("r", ("a", "b")), [(1, 2), (2, 3), (3, 4)]
        )
    )
    db.add(Relation(RelationSchema("s", ("b", "c")), [(2, 10), (3, 20)]))
    return db


class TestStreaming:
    def test_select_pulls_lazily(self):
        feed = Feed(("a",), [(1,), (2,), (3,), (4,)])
        op = Select(
            feed, ra.Comparison(ra.Attr("a"), ">", ra.Const(0)), tally()
        )
        gen = op.tuples()
        assert next(gen) == (1,)
        assert feed.pulled == 1  # nothing beyond the first match

    def test_select_buffers_nothing(self):
        t = tally()
        feed = Feed(("a",), [(i,) for i in range(100)])
        op = Select(
            feed, ra.Comparison(ra.Attr("a"), "<", ra.Const(50)), t
        )
        assert len(list(op.tuples())) == 50
        assert t.stats.tuples_materialized == 0
        assert t.peak_buffer == 0

    def test_project_dedups_and_counts_buffer(self):
        t = tally()
        feed = Feed(("a", "b"), [(1, 1), (1, 2), (2, 1)])
        op = Project(feed, ("a",), t)
        assert sorted(op.tuples()) == [(1,), (2,)]
        assert t.stats.tuples_materialized == 2  # the dedup set
        assert t.peak_buffer == 2

    def test_union_streams_left_before_touching_right(self):
        left = Feed(("a",), [(1,), (2,)])
        right = Feed(("a",), [(2,), (3,)], name="feed2")
        op = UnionOp(left, right, tally())
        gen = op.tuples()
        next(gen)
        assert right.pulled == 0
        assert sorted([t for t in gen] + [(1,)]) == [(1,), (2,), (3,)]

    def test_difference_buffers_only_right(self):
        t = tally()
        left = Feed(("a",), [(i,) for i in range(10)])
        right = Feed(("a",), [(0,), (1,)], name="feed2")
        op = DifferenceOp(left, right, t)
        assert len(list(op.tuples())) == 8
        assert t.stats.tuples_materialized == 2
        assert t.stats.index_probes == 10

    def test_degenerate_semijoin_pulls_one_right_tuple(self):
        left = Feed(("a",), [(1,), (2,)])
        right = Feed(("z",), [(7,), (8,), (9,)], name="feed2")
        op = SemijoinOp(left, right, None, tally())
        assert sorted(op.tuples()) == [(1,), (2,)]
        assert right.pulled == 1  # emptiness test only


class TestHashJoin:
    def test_probes_base_relation_index(self):
        db = small_db()
        t = tally()
        left = Scan(db["r"], t)
        index = _BaseIndex(db["s"], (0,), t)
        op = HashJoin(left, db["s"].schema, index, t)
        assert sorted(op.tuples()) == [(1, 2, 10), (2, 3, 20)]
        assert t.stats.index_builds == 1
        assert t.stats.index_probes == 3  # one per left tuple
        # The build pass scanned s (2) on top of the r scan (3).
        assert t.stats.facts_scanned == 5
        assert db["s"].cached_index_patterns() == [(0,)]

    def test_cached_base_index_is_free(self):
        db = small_db()
        db["s"]._key_index((0,))  # pre-warm, as a prior query would
        t = tally()
        op = HashJoin(
            Scan(db["r"], t),
            db["s"].schema,
            _BaseIndex(db["s"], (0,), t),
            t,
        )
        list(op.tuples())
        assert t.stats.index_builds == 0
        assert t.stats.facts_scanned == 3  # only the left scan

    def test_built_index_counts_buffered_tuples(self):
        db = small_db()
        expr = ra.NaturalJoin(
            ra.RelationRef("r"),
            ra.Selection(
                ra.RelationRef("s"),
                ra.Comparison(ra.Attr("c"), ">", ra.Const(0)),
            ),
        )
        stats = EngineStatistics()
        result = execute(expr, db, stats=stats)
        assert len(result) == 2
        assert stats.index_builds == 1
        assert stats.tuples_materialized == 2 + 2  # build table + result


class TestThetaJoin:
    def test_no_equi_conjunct_never_materializes_product(self):
        t = tally()
        left = Feed(("a",), [(i,) for i in range(20)])
        right = Feed(("z",), [(i,) for i in range(20)], name="feed2")
        op = ThetaJoinOp(
            left,
            right,
            ra.Comparison(ra.Attr("a"), "=", ra.Const(-1)),
            t,
        )
        assert list(op.tuples()) == []
        # Only the right side is buffered — never the 400-pair product.
        assert t.stats.tuples_materialized == 20
        assert t.peak_buffer == 20

    def test_equi_conjunct_selects_hash_strategy(self):
        left = Feed(("a",), [(1,), (2,)])
        right = Feed(("z",), [(1,), (3,)], name="feed2")
        op = ThetaJoinOp(
            left,
            right,
            ra.And(
                ra.Comparison(ra.Attr("a"), "=", ra.Attr("z")),
                ra.Comparison(ra.Attr("z"), "<", ra.Const(10)),
            ),
            tally(),
        )
        assert "hash" in op.describe()
        assert list(op.tuples()) == [(1, 1)]

    def test_pure_inequality_uses_nested_loop(self):
        op = ThetaJoinOp(
            Feed(("a",), [(1,)]),
            Feed(("z",), [(2,)], name="feed2"),
            ra.Comparison(ra.Attr("a"), "<", ra.Attr("z")),
            tally(),
        )
        assert "loop" in op.describe()
        assert list(op.tuples()) == [(1, 2)]


class TestExecute:
    def test_preserves_legacy_attribute_order(self):
        db = small_db()
        expr = ra.Projection(
            ra.NaturalJoin(ra.RelationRef("s"), ra.RelationRef("r")),
            ("c", "a"),
        )
        fast = execute(expr, db)
        legacy = ra.evaluate(expr, db)
        assert fast == legacy
        assert fast.schema.attributes == legacy.schema.attributes

    def test_result_counts_as_buffer(self):
        db = small_db()
        stats = EngineStatistics()
        result = execute(ra.RelationRef("r"), db, stats=stats)
        assert len(result) == 3
        assert stats.tuples_materialized == 3
        assert stats.facts_scanned == 3


class TestMeasureTreewalk:
    def test_counts_every_intermediate(self):
        db = small_db()
        expr = ra.Projection(
            ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s")),
            ("a",),
        )
        result, stats, peak = measure_treewalk(expr, db)
        assert result == ra.evaluate(expr, db)
        # join result (2) + projection result (2); leaves are free.
        assert stats.tuples_materialized == 4
        assert peak == 2

    def test_leaves_are_free(self):
        db = small_db()
        _, stats, peak = measure_treewalk(ra.RelationRef("r"), db)
        assert stats.tuples_materialized == 0
        assert peak == 0

    def test_failure_leaves_no_global_state_behind(self):
        # Regression guard: measurement must be purely local — a failing
        # run may not leak instrumentation into the algebra layer or
        # change how later evaluations behave (test pollution).
        import pytest

        from repro.errors import SchemaError

        db = small_db()
        good = ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s"))
        before = ra.evaluate(good, db)
        bad = ra.Projection(ra.RelationRef("r"), ("nope",))
        with pytest.raises(SchemaError):
            measure_treewalk(bad, db)
        assert ra.evaluate(good, db) == before
        result, stats, _peak = measure_treewalk(good, db)
        assert result == before
        assert stats.tuples_materialized == len(before)


class TestPhysicalOpSlots:
    def test_every_operator_is_slotted(self):
        import repro.plan.physical as physical

        ops = [
            obj for obj in vars(physical).values()
            if isinstance(obj, type)
            and issubclass(obj, physical.PhysicalOp)
        ]
        assert len(ops) > 10
        for op in ops:
            assert "__slots__" in op.__dict__, op

    def test_subclass_without_slots_is_rejected_at_class_creation(self):
        import pytest

        from repro.plan.physical import PhysicalOp

        with pytest.raises(TypeError, match="__slots__"):
            type("Sloppy", (PhysicalOp,), {})

        class Fine(PhysicalOp):
            __slots__ = ()

        assert Fine.child_slots == ()


class TestBuildPhysical:
    def test_every_operator_kind_runs(self):
        db = small_db()
        r, s = ra.RelationRef("r"), ra.RelationRef("s")
        s_renamed = ra.Rename(s, {"b": "y", "c": "z"})
        exprs = [
            ra.Selection(r, ra.Comparison(ra.Attr("a"), ">", ra.Const(1))),
            ra.Projection(r, ("b",)),
            ra.Rename(r, {"a": "x"}),
            ra.NaturalJoin(r, s),
            ra.ThetaJoin(
                r, s_renamed, ra.Comparison(ra.Attr("b"), "<", ra.Attr("y"))
            ),
            ra.Product(r, s_renamed),
            ra.Union(r, r),
            ra.Difference(
                r, ra.Selection(r, ra.Comparison(ra.Attr("a"), "=", ra.Const(1)))
            ),
            ra.Intersection(r, r),
            ra.Semijoin(r, s),
            ra.Antijoin(r, s),
            ra.Division(
                r,
                ra.ConstantRelation(
                    Relation(RelationSchema("d", ("b",)), [(2,)])
                ),
            ),
        ]
        for expr in exprs:
            assert execute(expr, db) == ra.evaluate(expr, db), expr

    def test_operator_tree_describe(self):
        db = small_db()
        root = build_physical(
            ra.Projection(
                ra.NaturalJoin(ra.RelationRef("r"), ra.RelationRef("s")),
                ("a",),
            ),
            db,
            tally(),
        )
        assert root.describe() == "Project[a](HashJoin(Scan(r)))"


class TestBatchedAccounting:
    """Hot-loop counters are flushed in blocks but land exactly.

    The scan/probe loops accumulate a local pending count and flush it
    to the Tally every ``_FLUSH_BLOCK`` tuples plus once at generator
    exit.  These tests pin the contract: final counter values are
    identical to per-tuple charging — on sizes that are *not* block
    multiples, across every batched operator, and when a consumer
    closes the generator early.
    """

    N = 2 * _FLUSH_BLOCK + 89  # crosses two flush blocks, odd remainder

    def wide_db(self):
        db = Database()
        db.add(
            Relation(
                RelationSchema("big", ("a", "b")),
                [(i, i % 7) for i in range(self.N)],
            )
        )
        db.add(
            Relation(
                RelationSchema("dim", ("b", "c")),
                [(i, i * 10) for i in range(7)],
            )
        )
        return db

    def test_scan_counts_exactly(self):
        db = self.wide_db()
        stats = EngineStatistics()
        execute(ra.RelationRef("big"), db, stats)
        assert stats.facts_scanned == self.N

    def test_hash_join_probes_once_per_left_tuple(self):
        db = self.wide_db()
        stats = EngineStatistics()
        execute(
            ra.NaturalJoin(ra.RelationRef("big"), ra.RelationRef("dim")),
            db,
            stats,
        )
        assert stats.index_probes == self.N
        # big scanned once; dim scanned once for its index build.
        assert stats.facts_scanned == self.N + 7

    def test_set_ops_probe_once_per_left_tuple(self):
        db = self.wide_db()
        big = ra.RelationRef("big")
        half = ra.Selection(
            big, ra.Comparison(ra.Attr("b"), "=", ra.Const(0))
        )
        for expr in (
            ra.Difference(big, half),
            ra.Intersection(big, half),
            ra.Semijoin(big, ra.RelationRef("dim")),
            ra.Antijoin(big, ra.RelationRef("dim")),
        ):
            stats = EngineStatistics()
            execute(expr, db, stats)
            assert stats.index_probes == self.N, expr

    def test_theta_hash_probes_once_per_left_tuple(self):
        db = self.wide_db()
        stats = EngineStatistics()
        execute(
            ra.ThetaJoin(
                ra.RelationRef("big"),
                ra.Rename(ra.RelationRef("dim"), {"b": "d", "c": "e"}),
                ra.Comparison(ra.Attr("b"), "=", ra.Attr("d")),
            ),
            db,
            stats,
        )
        assert stats.index_probes == self.N

    def test_early_close_flushes_pending(self):
        db = self.wide_db()
        t = tally()
        gen = Scan(db["big"], t).tuples()
        for _ in range(10):
            next(gen)
        gen.close()
        assert t.stats.facts_scanned == 10
