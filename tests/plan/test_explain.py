"""EXPLAIN ANALYZE: output shape, cache flags, and the differential pin.

Three layers of guarantees:

* shape — on a fixed three-table SQL join, the annotated tree names the
  operators, reports correct row counts, and times are *inclusive*
  (a parent's elapsed is at least each child's);
* caches — plan/parse cache flags flip from miss to hit on the second
  run, and the counters an explained run charges equal a plain run's;
* differential — explained execution returns exactly the plain result
  on the PR 2 random-algebra generator, with tracing on and off, and
  ``explain_datalog`` agrees with ``lowered_evaluate``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.random_instances import (
    random_algebra_expression,
    random_database,
)
from repro.core.workbench import MetatheoryWorkbench
from repro.datalog import EngineStatistics, FactStore, parse_program
from repro.datalog.lowering import lowered_evaluate
from repro.obs import NULL_TRACER, Tracer
from repro.plan import canonicalize, execute, run_explained
from repro.relational import Projection, RelationRef

THREE_TABLE_SQL = (
    "SELECT emp.eid, loc.name FROM emp, dept, loc "
    "WHERE emp.dept = dept.dept AND dept.loc = loc.loc"
)

CALCULUS_TEXT = "{(x) | exists d . emp(x, d)}"

DATALOG_TEXT = "colleagues(X, Y) :- emp(X, D), emp(Y, D)."


def three_table_workbench():
    return MetatheoryWorkbench.from_dict(
        {
            "emp": (("eid", "dept"), [(1, 10), (2, 10), (3, 20)]),
            "dept": (("dept", "loc"), [(10, 100), (20, 200)]),
            "loc": (("loc", "name"), [(100, "hq"), (200, "lab")]),
        }
    )


class TestShape:
    def test_operator_names_and_row_counts(self):
        wb = three_table_workbench()
        result = wb.explain_analyze(THREE_TABLE_SQL)
        assert result.kind == "sql"
        assert result.result == wb.sql(THREE_TABLE_SQL)
        operators = result.operators()
        assert operators[0] == "Result"
        assert sum(op.startswith("Scan(") for op in operators) == 3
        assert any("Join" in op for op in operators)
        assert result.report.rows == len(result.result) == 3
        # Leaf scans report base-table cardinalities.
        by_label = {r.label: r.rows for _, r in result.report.walk()}
        assert by_label["Scan(emp)"] == 3
        assert by_label["Scan(dept)"] == 2
        assert by_label["Scan(loc)"] == 2

    def test_timing_is_inclusive_and_monotonic(self):
        wb = three_table_workbench()
        result = wb.explain_analyze(THREE_TABLE_SQL)
        for _, report in result.report.walk():
            assert report.elapsed >= 0.0
            for child in report.children:
                assert report.elapsed >= child.elapsed, report.label
        assert result.elapsed == result.report.elapsed

    def test_render_and_as_dict(self):
        wb = three_table_workbench()
        result = wb.explain_analyze(THREE_TABLE_SQL)
        text = result.render()
        assert text.startswith("EXPLAIN ANALYZE (sql)")
        assert "plan_cache=miss" in text and "parse_cache=miss" in text
        assert "Scan(emp)" in text and "rows=3" in text
        data = result.as_dict()
        assert data["kind"] == "sql"
        assert data["rows"] == 3
        assert data["plan"]["operator"] == "Result"
        assert data["totals"]["facts_scanned"] > 0

    def test_find_filters_by_label_prefix(self):
        wb = three_table_workbench()
        result = wb.explain_analyze(THREE_TABLE_SQL)
        scans = result.find("Scan(")
        assert {s.label for s in scans} == {
            "Scan(emp)", "Scan(dept)", "Scan(loc)",
        }
        assert result.find("Nope") == []


class TestCachesAndStats:
    def test_cache_flags_flip_to_hit_on_second_run(self):
        wb = three_table_workbench()
        first = wb.explain_analyze(THREE_TABLE_SQL)
        assert first.plan_cache_hit is False
        assert first.parse_cache_hit is False
        second = wb.explain_analyze(THREE_TABLE_SQL)
        assert second.plan_cache_hit is True
        assert second.parse_cache_hit is True
        assert second.result == first.result
        assert wb.plan_cache.stats()["hits"] >= 1

    def test_algebra_kind_has_no_parse_cache(self):
        wb = three_table_workbench()
        result = wb.explain_analyze(Projection(RelationRef("emp"), ("eid",)))
        assert result.kind == "algebra"
        assert result.parse_cache_hit is None
        assert result.plan_cache_hit is False

    def test_explained_stats_equal_plain_stats(self):
        wb = three_table_workbench()
        plain_stats = EngineStatistics()
        wb.sql(THREE_TABLE_SQL, stats=plain_stats)
        fresh = MetatheoryWorkbench(wb.db)
        explained_stats = EngineStatistics()
        fresh.explain_analyze(THREE_TABLE_SQL, stats=explained_stats)
        assert explained_stats == plain_stats

    def test_tracer_mirror_matches_report(self):
        tracer = Tracer()
        wb = three_table_workbench()
        result = wb.explain_analyze(THREE_TABLE_SQL, tracer=tracer)
        (execute_span,) = tracer.spans(name="execute")
        assert execute_span.attributes["kind"] == "sql"
        op_spans = [s for s in tracer.spans() if s.name.startswith("op:")]
        assert [s.name for s in op_spans] == [
            "op:%s" % label for label in result.operators()
        ]
        # Both walks are pre-order, so spans and reports pair up 1:1.
        for span, (_, report) in zip(op_spans, result.report.walk()):
            assert span.elapsed == report.elapsed
            assert span.attributes["rows"] == report.rows


class TestFrontEnds:
    def test_all_four_kinds_detected_and_explained(self):
        wb = three_table_workbench()
        cases = {
            "sql": THREE_TABLE_SQL,
            "calculus": CALCULUS_TEXT,
            "algebra": Projection(RelationRef("emp"), ("eid",)),
            "datalog": DATALOG_TEXT,
        }
        for kind, query in cases.items():
            result = wb.explain_analyze(query)
            assert result.kind == kind, query
            assert len(result.operators()) > 1

    def test_calculus_matches_query_method(self):
        wb = three_table_workbench()
        result = wb.explain_analyze(CALCULUS_TEXT)
        assert result.result == wb.calculus(CALCULUS_TEXT)
        assert result.parse_cache_hit is False
        again = wb.explain_analyze(CALCULUS_TEXT)
        assert again.parse_cache_hit is True

    def test_datalog_matches_engine(self):
        wb = three_table_workbench()
        result = wb.explain_analyze(DATALOG_TEXT)
        assert result.kind == "datalog"
        expected = wb.datalog(DATALOG_TEXT).evaluate()
        assert result.result == expected
        assert result.report.label == "Program"
        assert [c.label for c in result.report.children] == [
            "Datalog(colleagues)"
        ]
        assert result.report.children[0].rows == len(
            expected.get("colleagues")
        )

    def test_unknown_input_raises(self):
        import pytest

        wb = three_table_workbench()
        with pytest.raises(TypeError):
            wb.explain_analyze(42)
        with pytest.raises(ValueError):
            wb.explain_analyze("SELECT 1", kind="prolog")


class TestExplainDatalog:
    def test_agrees_with_lowered_evaluate(self):
        from repro.plan import explain_datalog

        program, _ = parse_program(
            """
            reach2(X, Z) :- edge(X, Y), edge(Y, Z).
            popular(Y) :- edge(X, Y), edge(Z, Y), X != Z.
            """
        )
        edb = FactStore({"edge": [(1, 2), (2, 3), (3, 4), (1, 3)]})
        plain = lowered_evaluate(program, edb)
        explained = explain_datalog(program, edb)
        assert explained.result == plain
        assert explained.report.rows == plain.count()
        # The program root sums its predicate subtrees.
        for child in explained.report.children:
            assert child.label.startswith("Datalog(")
            assert explained.report.elapsed >= 0.0


@settings(max_examples=60, deadline=None)
@given(
    db_seed=st.integers(min_value=0, max_value=10**6),
    expr_seed=st.integers(min_value=0, max_value=10**6),
    size=st.integers(min_value=1, max_value=5),
    traced=st.booleans(),
)
def test_explained_matches_plain_execution(db_seed, expr_seed, size, traced):
    """Differential pin: instrumentation never changes answers."""
    db = random_database(num_relations=3, rows=8, domain_size=5, seed=db_seed)
    expr = random_algebra_expression(db, seed=expr_seed, size=size)
    plan = canonicalize(expr, db.schema())

    plain = execute(expr, db)
    tracer = Tracer() if traced else NULL_TRACER
    stats = EngineStatistics()
    explained = run_explained(plan, db, stats=stats, tracer=tracer)
    assert explained.result == plain, expr
    assert explained.result.schema.attributes == plain.schema.attributes
    assert explained.report.rows == len(plain)
    if traced:
        assert tracer.spans(name="execute")
