"""Front-end → canonical logical plan: every language, one plan shape.

These tests pin the lowering contracts: SQL text, calculus via Codd, and
non-recursive Datalog all canonicalize to core-operator-only trees; the
same logical query arriving through different front-ends hits the same
plan-cache entry; and ``executor=False`` reproduces the legacy paths bit
for bit.
"""

import pytest

from repro.core.workbench import MetatheoryWorkbench
from repro.datalog.engine import DatalogEngine
from repro.datalog.lowering import (
    is_lowerable,
    lower_program,
    lower_rule,
    lowered_evaluate,
)
from repro.datalog.naive import naive_evaluate
from repro.datalog.parser import parse_program, parse_rule
from repro.errors import DatalogError, PlanError
from repro.plan import canonicalize, is_canonical, plan_key
from repro.relational import algebra as ra
from repro.relational.codd import calculus_to_algebra
from repro.relational.calculus_parser import parse_calculus
from repro.relational.sql_frontend import parse_sql


def company_workbench():
    return MetatheoryWorkbench.from_dict({
        "works": (
            ("emp", "dept"),
            [("ann", "toys"), ("bob", "shoes"), ("cal", "toys")],
        ),
        "located": (("dept", "city"), [("toys", "sd"), ("shoes", "la")]),
    })


class TestCanonicalization:
    def test_sql_plan_is_canonical(self):
        wb = company_workbench()
        expr = parse_sql(
            "SELECT w.emp FROM works w, located l "
            "WHERE w.dept = l.dept AND l.city = 'sd'"
        )
        assert not is_canonical(expr)
        canonical = canonicalize(expr, wb.db.schema())
        assert is_canonical(canonical)

    def test_sql_canonical_plan_shape(self):
        """SELECT e FROM r is exactly rename-project-rename-scan."""
        wb = MetatheoryWorkbench.from_dict(
            {"r": (("a", "b"), [(1, 2)])}
        )
        canonical = canonicalize(
            parse_sql("SELECT x.a FROM r x"), wb.db.schema()
        )
        expected = ra.Rename(
            ra.Projection(
                ra.Rename(
                    ra.RelationRef("r"), {"a": "x.a", "b": "x.b"}
                ),
                ("x.a",),
            ),
            {"x.a": "a"},
        )
        assert plan_key(canonical) == plan_key(expected)

    def test_calculus_plan_is_canonical(self):
        wb = company_workbench()
        query = parse_calculus(
            "{(x) | exists d. (works(x, d) and located(d, 'sd'))}"
        )
        expr = calculus_to_algebra(query, wb.db.schema())
        canonical = canonicalize(expr, wb.db.schema())
        assert is_canonical(canonical)

    def test_core_trees_pass_through_unchanged(self):
        wb = company_workbench()
        expr = ra.NaturalJoin(
            ra.RelationRef("works"), ra.RelationRef("located")
        )
        assert plan_key(canonicalize(expr, wb.db.schema())) == plan_key(expr)

    def test_unknown_node_raises_plan_error(self):
        class Alien(ra.AlgebraExpr):
            pass

        with pytest.raises(PlanError):
            canonicalize(Alien(), company_workbench().db.schema())

    def test_plan_key_rejects_non_canonical(self):
        expr = parse_sql("SELECT x.a FROM r x")
        with pytest.raises(PlanError):
            plan_key(expr)

    def test_plan_key_is_structural(self):
        left = ra.Selection(
            ra.RelationRef("works"),
            ra.Comparison(ra.Attr("emp"), "=", ra.Const("ann")),
        )
        right = ra.Selection(
            ra.RelationRef("works"),
            ra.Comparison(ra.Attr("emp"), "=", ra.Const("ann")),
        )
        assert left is not right
        assert plan_key(left) == plan_key(right)
        other = ra.Selection(
            ra.RelationRef("works"),
            ra.Comparison(ra.Attr("emp"), "=", ra.Const("bob")),
        )
        assert plan_key(left) != plan_key(other)


class TestPlanCache:
    def test_repeated_sql_hits_cache(self):
        wb = company_workbench()
        q = "SELECT w.emp FROM works w"
        wb.sql(q)
        assert wb.plan_cache.stats()["misses"] == 1
        wb.sql(q)
        wb.sql(q)
        assert wb.plan_cache.stats()["hits"] == 2
        assert wb.plan_cache.stats()["misses"] == 1

    def test_same_plan_through_different_front_ends_shares_entry(self):
        wb = company_workbench()
        expr = ra.NaturalJoin(
            ra.RelationRef("works"), ra.RelationRef("located")
        )
        wb.algebra(expr)
        assert wb.plan_cache.stats() == {"hits": 0, "misses": 1, "evictions": 0, "size": 1}
        wb.algebra(
            ra.NaturalJoin(ra.RelationRef("works"), ra.RelationRef("located"))
        )
        assert wb.plan_cache.stats()["hits"] == 1
        assert wb.plan_cache.stats()["size"] == 1

    def test_optimized_and_unoptimized_are_distinct_entries(self):
        wb = company_workbench()
        q = "SELECT w.emp FROM works w"
        wb.sql(q, optimized=True)
        wb.sql(q, optimized=False)
        assert wb.plan_cache.stats()["size"] == 2

    def test_unrelated_change_keeps_plan_cached(self):
        # Surgical invalidation: removing a relation the plan never
        # references keeps its cache entry (and scores a hit).
        wb = company_workbench()
        q = "SELECT w.emp FROM works w"
        wb.sql(q)
        wb.db.remove("located")
        wb.sql(q)
        assert wb.plan_cache.stats() == {"hits": 1, "misses": 1, "evictions": 0, "size": 1}

    def test_referenced_change_flushes_plan(self):
        # Any version bump of a referenced relation drops the plan:
        # its rewrites and estimates were built from stale statistics.
        wb = company_workbench()
        q = "SELECT w.emp FROM works w"
        wb.sql(q)
        wb.db.insert("works", [("dee", "toys")])
        wb.sql(q)
        assert wb.plan_cache.stats()["hits"] == 0
        assert wb.plan_cache.stats()["misses"] == 2

    def test_cache_capacity_evicts_fifo(self):
        from repro.plan import PlanCache

        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c") == 3


class TestLegacyEquality:
    """executor=False reproduces the legacy paths bit for bit."""

    def test_sql(self):
        wb = company_workbench()
        for q in (
            "SELECT w.emp FROM works w",
            "SELECT w.emp, l.city FROM works w, located l "
            "WHERE w.dept = l.dept",
            "SELECT * FROM works w WHERE w.dept = 'toys'",
        ):
            for optimized in (True, False):
                fast = wb.sql(q, optimized=optimized)
                legacy = wb.sql(q, optimized=optimized, executor=False)
                assert fast == legacy

    def test_calculus(self):
        wb = company_workbench()
        q = "{(x) | exists d. (works(x, d) and located(d, 'sd'))}"
        assert wb.calculus(q) == wb.calculus(q, executor=False)
        assert wb.calculus(q) == wb.calculus(q, via="direct")

    def test_algebra(self):
        wb = company_workbench()
        expr = ra.Semijoin(
            ra.RelationRef("works"),
            ra.Selection(
                ra.RelationRef("located"),
                ra.Comparison(ra.Attr("city"), "=", ra.Const("sd")),
            ),
        )
        assert wb.algebra(expr) == wb.algebra(expr, executor=False)


class TestDatalogLowering:
    def test_single_rule_plan_shape(self):
        """A one-atom rule lowers to rename-project-rename-scan."""
        rule = parse_rule("out(X) :- edge(X, Y).")
        expected = ra.Rename(
            ra.Projection(
                ra.Rename(
                    ra.RelationRef("edge"), {"c0": "__p0", "c1": "__p1"}
                ),
                ("__p0", "__p1"),
            ),
            {"__p0": "X", "__p1": "Y"},
        )
        expected = ra.Rename(
            ra.Projection(expected, ("X",)), {"X": "c0"}
        )
        assert plan_key(lower_rule(rule)) == plan_key(expected)

    def test_multi_rule_predicate_unions(self):
        program, _ = parse_program(
            "out(X) :- p(X).\nout(X) :- q(X).\n"
        )
        plans = dict(lower_program(program))
        assert isinstance(plans["out"], ra.Union)

    def test_negation_lowers_to_antijoin(self):
        program, _ = parse_program("out(X) :- p(X), not q(X).")
        plans = dict(lower_program(program))

        def has_antijoin(node):
            if isinstance(node, ra.Antijoin):
                return True
            return any(has_antijoin(c) for c in node.children())

        assert has_antijoin(plans["out"])

    def test_recursive_program_not_lowerable(self):
        program, _ = parse_program(
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Z) :- edge(X, Y), path(Y, Z).\n"
        )
        assert not is_lowerable(program)
        with pytest.raises(DatalogError):
            lower_program(program)

    @pytest.mark.parametrize("source", [
        # constants in body and head
        "out(X, 1) :- edge(X, 2).",
        # repeated variable in body atom and in head
        "loop(X) :- edge(X, X).\npair(X, X) :- edge(X, Y).",
        # comparison binding a fresh variable, and a filter
        "big(X, C) :- edge(X, Y), C = 9, X < Y.",
        # negation, including over a derived predicate
        "a(X) :- edge(X, Y).\nb(X) :- edge(Y, X), not a(X).",
        # ground negation
        "ok(X) :- edge(X, Y), not edge(2, 2).",
        # IDB predicate with program-text facts on top of rules
        "extra(9, 9).\nextra(X, Y) :- edge(X, Y).",
        # cascaded derived predicates (dependency order matters)
        "d1(X) :- edge(X, Y).\nd2(X) :- d1(X), edge(X, Y).\n"
        "d3(X, Y) :- d2(X), edge(X, Y).",
    ])
    def test_lowered_model_matches_naive(self, source):
        program, _ = parse_program(
            source + "\nedge(1, 2). edge(2, 3). edge(3, 3). edge(2, 2)."
        )
        assert is_lowerable(program)
        reference = naive_evaluate(program, None)
        lowered = lowered_evaluate(program, None)
        for predicate in set(reference.predicates()) | set(
            lowered.predicates()
        ):
            assert lowered.get(predicate) == reference.get(predicate), (
                predicate
            )

    def test_engine_routes_non_recursive_through_plans(self):
        program, _ = parse_program(
            "edge(1, 2). edge(2, 3).\nout(X) :- edge(X, Y)."
        )
        engine = DatalogEngine(program)
        engine.evaluate("seminaive")
        assert "plan" in engine._model_cache
        legacy = DatalogEngine(program, executor=False)
        legacy.evaluate("seminaive")
        assert "plan" not in legacy._model_cache
        assert legacy._model_cache["seminaive"].get("out") == (
            engine._model_cache["plan"].get("out")
        )

    def test_engine_keeps_fixpoint_for_recursion(self):
        program, _ = parse_program(
            "edge(1, 2). edge(2, 3).\n"
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Z) :- edge(X, Y), path(Y, Z).\n"
        )
        engine = DatalogEngine(program)
        model = engine.evaluate("seminaive")
        assert "plan" not in engine._model_cache
        assert (1, 3) in model.get("path")

    def test_workbench_datalog_executor_flag(self):
        wb = company_workbench()
        engine = wb.datalog("in_sd(E) :- works(E, D), located(D, sd).")
        assert engine.executor
        assert engine.query("in_sd(X)") == {("ann",), ("cal",)}
        legacy = wb.datalog(
            "in_sd(E) :- works(E, D), located(D, sd).", executor=False
        )
        assert legacy.query("in_sd(X)") == {("ann",), ("cal",)}
