"""MVCC snapshot storage and the live transaction runtime.

The mutation half of the workbench: :mod:`repro.storage.mvcc` versions
every change to a :class:`~repro.relational.database.Database` under
copy-on-write bindings (immutable relations shared across versions, so a
snapshot is a dict reference, not a copy), :mod:`repro.storage.journal`
keeps the append-only write journal (undo images for rollback plus the
``sys_versions`` observability feed), and :mod:`repro.storage.txn` runs
live interleaved transactions under pluggable concurrency control —
adapting the schedule-theoretic 2PL and timestamp modules of
:mod:`repro.transactions` to real relation-level conflicts — while
recording every execution as a
:class:`~repro.transactions.schedule.Schedule` that the theory's own
serializability and recoverability predicates check at commit time.
"""

from .journal import JournalEntry, WriteJournal
from .mvcc import MVCCStore, Snapshot
from .txn import Transaction, TransactionConflict, TransactionManager

__all__ = [
    "JournalEntry",
    "MVCCStore",
    "Snapshot",
    "Transaction",
    "TransactionConflict",
    "TransactionManager",
    "WriteJournal",
]
