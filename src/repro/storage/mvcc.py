"""MVCC bindings: copy-on-write versions of a database's relation map.

Relations are already immutable; this module makes the *bindings map*
immutable too.  Every committed mutation builds a **new** ``{name:
Relation}`` dict (sharing every unchanged Relation by reference) and
registers it here under a fresh version id.  A snapshot is therefore
just a pinned dict reference — O(1) to take, never copied, and
impervious to later writers — which is what gives readers repeatable
reads while concurrent transactions commit.

The store also keeps the bookkeeping the rest of the stack hangs off
version ids:

* per-relation version counters (``relation_versions``) — the
  workbench's surgical cache invalidation diffs these instead of
  clearing whole caches;
* the last-writer version per relation (``last_writer``) — the
  timestamp concurrency control validates read/write sets against it;
* the :class:`~repro.storage.journal.WriteJournal` and a bounded tail of
  retained :class:`Version` records (the ``sys_versions`` feed).
"""

from __future__ import annotations

from collections import deque


class Version:
    """One committed version: id plus the bindings dict it pinned."""

    __slots__ = ("vid", "bindings", "changed")

    def __init__(self, vid, bindings, changed=()):
        self.vid = vid
        self.bindings = bindings
        self.changed = tuple(changed)

    def __repr__(self):
        return "Version(v%d, %d relations, changed=%r)" % (
            self.vid, len(self.bindings), list(self.changed)
        )


class Snapshot:
    """A pinned point-in-time view of the database.

    ``db`` is a fresh :class:`~repro.relational.database.Database` whose
    bindings dict is the snapshotted version's — shared by reference
    (copy-on-write makes that safe) and never touched by later commits.
    Mutating the snapshot's database forks it: the original history is
    unaffected.
    """

    __slots__ = ("vid", "db")

    def __init__(self, vid, db):
        self.vid = vid
        self.db = db

    def __repr__(self):
        return "Snapshot(v%d, %r)" % (self.vid, self.db)


class MVCCStore:
    """Version bookkeeping for one database's copy-on-write bindings."""

    __slots__ = ("vid", "relation_versions", "last_writer", "journal",
                 "_versions", "commits")

    #: Retained committed versions (observability tail; snapshots pin
    #: their own bindings dicts, so eviction never invalidates one).
    RETAIN = 64

    def __init__(self, journal=None, retain=None):
        from .journal import WriteJournal

        self.vid = 0
        self.relation_versions = {}
        self.last_writer = {}
        self.journal = journal if journal is not None else WriteJournal()
        self._versions = deque(maxlen=retain or self.RETAIN)
        self.commits = 0

    def commit(self, bindings, changed):
        """Register a new bindings dict; returns the fresh version id.

        ``changed`` names the relations whose bindings differ from the
        previous version (added, rebound, or removed).
        """
        self.vid += 1
        self.commits += 1
        for name in changed:
            self.relation_versions[name] = (
                self.relation_versions.get(name, 0) + 1
            )
            self.last_writer[name] = self.vid
        self._versions.append(Version(self.vid, bindings, changed))
        return self.vid

    def version_of(self, name):
        """The per-relation version counter (0 for never-written names)."""
        return self.relation_versions.get(name, 0)

    def last_writer_vid(self, name):
        """Store version of the last commit that changed ``name`` (0 if
        never written since the store existed)."""
        return self.last_writer.get(name, 0)

    def versions(self):
        """Retained :class:`Version` records, oldest first."""
        return list(self._versions)

    def __repr__(self):
        return "MVCCStore(v%d, %d relations versioned)" % (
            self.vid, len(self.relation_versions)
        )
