"""Live transactions: the schedule theory run against a real database.

The :mod:`repro.transactions` subsystem is pure theory — schedulers
consume *requested* histories of abstract reads and writes.  This module
is the runtime those theorems delimit: a :class:`TransactionManager`
hands out live :class:`Transaction` handles (``wb.begin()``), mediates
real relation-level conflicts under pluggable concurrency control, and
— the point of the exercise — records every interleaved execution as an
ordinary :class:`~repro.transactions.schedule.Schedule`, so each
committed history is differentially checked against the theory's own
predicates (:func:`~repro.transactions.serializability.is_conflict_serializable`,
:func:`~repro.transactions.recovery.recovery_class`) the moment it
commits.  The theory subsystem is the oracle for the runtime.

Two concurrency controls, both at relation granularity:

* ``cc="2pl"`` — **no-wait strict two-phase locking** over the same
  :class:`~repro.transactions.locking.LockTable` the scheduler simulator
  uses: S locks on read, X locks on staged writes, all held to the
  terminal; a conflicting request aborts the requester immediately
  (no-wait, so the live system cannot deadlock).
* ``cc="timestamp"`` — **timestamp ordering with commit validation**:
  basic TO read/write checks at operation time (the classical
  ``read_ts``/``write_ts`` rules of
  :mod:`repro.transactions.timestamp`, keyed by begin order), plus
  first-committer-wins validation of the read *and* write sets against
  the MVCC store's last-writer versions at commit.

Both run the **deferred-update** model: reads are recorded when they
happen (against the committed state plus the transaction's own
overlay), writes are staged in a private overlay and recorded at commit
— so every committed history is strict by construction, and the final
database state equals a serial replay in the serialization order (the
conformance kit's live-transactions family pins this differentially).
"""

from __future__ import annotations

from ..errors import TransactionError
from ..obs.metrics import REGISTRY
from ..obs.trace import ensure_tracer
from ..transactions.locking import EXCLUSIVE, SHARED, LockTable
from ..transactions.recovery import recovery_class
from ..transactions.schedule import Op, Schedule
from ..transactions.serializability import is_conflict_serializable
from .journal import ABSENT

#: Concurrency-control modes.
CC_2PL, CC_TIMESTAMP = "2pl", "timestamp"


class TransactionConflict(TransactionError):
    """A concurrency-control conflict aborted the transaction.

    Raised by the operation (or commit) that lost: under no-wait 2PL the
    requester of an incompatible lock, under timestamp ordering a
    too-late read/write or a failed commit validation.  The transaction
    is already rolled back when this propagates; ``begin()`` a new one
    to retry.
    """


class Transaction:
    """One live transaction: a private overlay over the committed state.

    Obtained from :meth:`TransactionManager.begin` (or ``wb.begin()``).
    Reads see the committed database plus this transaction's own staged
    writes; writes stage new relation bindings in the overlay and apply
    atomically at :meth:`commit`.  ``sql()`` routes DML and queries
    through the owning workbench's shared plan pipeline against the
    transaction's view.
    """

    __slots__ = ("manager", "txn_id", "cc", "status", "start_vid",
                 "_overlay", "_base", "_read_vids", "_undo", "reads",
                 "writes", "rows_inserted", "rows_deleted", "statements")

    def __init__(self, manager, txn_id, cc, start_vid):
        self.manager = manager
        self.txn_id = txn_id
        self.cc = cc
        self.status = "active"
        self.start_vid = start_vid
        self._overlay = {}
        self._base = {}
        self._read_vids = {}
        self._undo = []
        self.reads = set()
        self.writes = set()
        self.rows_inserted = 0
        self.rows_deleted = 0
        self.statements = 0

    # -- views ------------------------------------------------------------

    def view(self):
        """A Database seeing committed state plus this txn's overlay.

        Built per statement from binding references (copy-on-write makes
        the dict copy O(names), never O(tuples)).
        """
        return self.manager.db.overlay_view(self._overlay)

    def binding(self, name):
        """The relation as this transaction sees it."""
        if name in self._overlay:
            return self._overlay[name]
        return self.manager.db[name]

    # -- operations -------------------------------------------------------

    def _require_active(self):
        if self.status != "active":
            raise TransactionError(
                "transaction %d is %s" % (self.txn_id, self.status)
            )

    def read(self, name):
        """Declare a read of relation ``name`` (CC check + recording).

        Idempotent per name: repeated reads of the same relation add no
        conflict information, so only the first is recorded.
        """
        self._require_active()
        if name in self.reads:
            return
        self.manager._check_read(self, name)
        self.reads.add(name)
        self._read_vids.setdefault(
            name, self.manager.store.last_writer_vid(name)
        )
        self.manager._record(Op.read(self.txn_id, name))

    def stage(self, name, relation, inserted=0, deleted=0, kind="update"):
        """Stage a new binding for ``name`` in this txn's overlay.

        The CC write check runs first (no-wait 2PL X lock, or the TO
        write rule); on conflict the transaction is rolled back and
        :class:`TransactionConflict` raised.  The undo image goes to the
        write journal as a ``staged`` entry the rollback path restores.
        """
        self._require_active()
        self.manager._check_write(self, name)
        previous = self._overlay.get(name, ABSENT)
        if name not in self._base:
            self._base[name] = self.manager.store.last_writer_vid(name)
        entry = self.manager.journal.append(
            None, self.txn_id, kind, name, inserted=inserted,
            deleted=deleted, undo=previous, status="staged",
        )
        self._undo.append(entry)
        self._overlay[name] = relation
        self.writes.add(name)
        self.rows_inserted += inserted
        self.rows_deleted += deleted
        return relation

    def sql(self, text, **kwargs):
        """Run a SQL statement (query or DML) inside this transaction.

        Requires the manager to be bound to a workbench (``wb.begin()``
        hands out bound transactions).
        """
        self._require_active()
        wb = self.manager.workbench
        if wb is None:
            raise TransactionError(
                "transaction manager is not bound to a workbench; "
                "use MetatheoryWorkbench.begin()"
            )
        self.statements += 1
        return wb.sql(text, txn=self, **kwargs)

    def commit(self):
        """Atomically apply the overlay; returns the commit version id.

        Raises:
            TransactionConflict: commit validation failed (timestamp
                mode); the transaction is rolled back.
        """
        self._require_active()
        return self.manager._commit(self)

    def rollback(self):
        """Discard all staged writes and release this txn's locks."""
        self._require_active()
        self.manager._abort(self, reason="rollback")

    # -- context manager: commit on success, roll back on error ----------

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if self.status != "active":
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    def __repr__(self):
        return "Transaction(#%d %s %s r=%d w=%d)" % (
            self.txn_id, self.cc, self.status,
            len(self.reads), len(self.writes),
        )


class TransactionManager:
    """Hands out transactions, mediates conflicts, records the history.

    Args:
        db: the live :class:`~repro.relational.database.Database`.
        workbench: optional owning workbench (enables ``txn.sql``).
        tracer / metrics: observability sinks (workbench defaults).
        verify_on_commit: differentially check every committed history
            against the serializability and recoverability predicates
            (the default; a violation raises — it would mean the runtime
            broke the theory it implements).
    """

    __slots__ = ("db", "workbench", "tracer", "metrics", "locks",
                 "verify_on_commit", "ops", "active", "finished",
                 "_next_id", "_read_ts", "_write_ts", "commits", "aborts",
                 "conflicts", "last_report")

    def __init__(self, db, workbench=None, tracer=None, metrics=None,
                 verify_on_commit=True):
        self.db = db
        self.workbench = workbench
        self.tracer = ensure_tracer(tracer)
        self.metrics = metrics if metrics is not None else REGISTRY
        self.locks = LockTable()
        self.verify_on_commit = verify_on_commit
        self.ops = []
        self.active = {}
        self.finished = []
        self._next_id = 1
        self._read_ts = {}
        self._write_ts = {}
        self.commits = 0
        self.aborts = 0
        self.conflicts = 0
        self.last_report = None

    @property
    def store(self):
        return self.db.store()

    @property
    def journal(self):
        return self.db.store().journal

    # -- lifecycle --------------------------------------------------------

    def begin(self, cc=CC_2PL):
        """Start a transaction under the given concurrency control."""
        if cc not in (CC_2PL, CC_TIMESTAMP):
            raise TransactionError(
                "unknown concurrency control %r (use %r or %r)"
                % (cc, CC_2PL, CC_TIMESTAMP)
            )
        txn = Transaction(self, self._next_id, cc, self.store.vid)
        self._next_id += 1
        self.active[txn.txn_id] = txn
        self.metrics.counter("txn_begins_total").inc()
        self.tracer.event("txn_begin", txn=txn.txn_id, cc=cc)
        return txn

    def _record(self, op):
        self.ops.append(op)

    # -- concurrency control ---------------------------------------------

    def _check_read(self, txn, name):
        if txn.cc == CC_2PL:
            if not self.locks.can_grant(txn.txn_id, name, SHARED):
                self._conflict(
                    txn, "S-lock on %r held by %s" % (
                        name,
                        sorted(self.locks.blockers(
                            txn.txn_id, name, SHARED
                        )),
                    )
                )
            self.locks.grant(txn.txn_id, name, SHARED)
            return
        # Timestamp ordering: a read arriving after a younger write.
        ts = txn.txn_id
        if self._write_ts.get(name, 0) > ts:
            self._conflict(
                txn, "TO read of %r after write by ts %d" % (
                    name, self._write_ts[name],
                )
            )
        self._read_ts[name] = max(self._read_ts.get(name, 0), ts)

    def _check_write(self, txn, name):
        if txn.cc == CC_2PL:
            if not self.locks.can_grant(txn.txn_id, name, EXCLUSIVE):
                self._conflict(
                    txn, "X-lock on %r held by %s" % (
                        name,
                        sorted(self.locks.blockers(
                            txn.txn_id, name, EXCLUSIVE
                        )),
                    )
                )
            self.locks.grant(txn.txn_id, name, EXCLUSIVE)
            return
        ts = txn.txn_id
        if self._read_ts.get(name, 0) > ts:
            self._conflict(
                txn, "TO write of %r after read by ts %d" % (
                    name, self._read_ts[name],
                )
            )
        if self._write_ts.get(name, 0) > ts:
            self._conflict(
                txn, "TO write of %r after write by ts %d" % (
                    name, self._write_ts[name],
                )
            )
        self._write_ts[name] = max(self._write_ts.get(name, 0), ts)

    def _validate_commit(self, txn):
        """Timestamp mode: first-committer-wins on the read/write sets.

        Writes apply at commit, so op-time TO checks alone cannot see a
        conflicting commit that landed *between* this transaction's
        operation and its commit; the MVCC store's last-writer versions
        close that window.
        """
        if txn.cc != CC_TIMESTAMP:
            return
        for name, vid in txn._base.items():
            if self.store.last_writer_vid(name) > vid:
                self._conflict(
                    txn,
                    "write set: %r committed by another txn since staging"
                    % (name,),
                )
        for name, vid in txn._read_vids.items():
            if self.store.last_writer_vid(name) > vid:
                self._conflict(
                    txn,
                    "read set: %r committed by another txn since the read"
                    % (name,),
                )

    def _conflict(self, txn, reason):
        self.conflicts += 1
        self.metrics.counter("txn_conflicts_total").inc()
        self.tracer.event("txn_conflict", txn=txn.txn_id, reason=reason)
        self._abort(txn, reason=reason)
        raise TransactionConflict(
            "transaction %d aborted: %s" % (txn.txn_id, reason)
        )

    # -- terminal operations ----------------------------------------------

    def _commit(self, txn):
        self._validate_commit(txn)
        vid = self.store.vid
        if txn._overlay:
            vid = self.db.apply_overlay(
                txn._overlay, txn=txn.txn_id, journal=False
            )
            for entry in txn._undo:
                entry.vid = vid
                entry.status = "committed"
            terminal = [
                Op.write(txn.txn_id, name) for name in sorted(txn.writes)
            ]
        else:
            terminal = []
        terminal.append(Op.commit(txn.txn_id))
        self.ops.extend(terminal)
        self._finish(txn, "committed")
        self.commits += 1
        self.metrics.counter("txn_commits_total").inc()
        self.tracer.event(
            "txn_commit", txn=txn.txn_id, vid=vid,
            writes=sorted(txn.writes),
        )
        if self.verify_on_commit:
            self.verify()
        return vid

    def _abort(self, txn, reason=""):
        for entry in reversed(txn._undo):
            if entry.undo is ABSENT:
                txn._overlay.pop(entry.name, None)
            else:
                txn._overlay[entry.name] = entry.undo
            entry.status = "rolled-back"
        self.ops.append(Op.abort(txn.txn_id))
        self._finish(txn, "aborted")
        self.aborts += 1
        self.metrics.counter("txn_aborts_total").inc()
        self.tracer.event("txn_abort", txn=txn.txn_id, reason=reason)

    def _finish(self, txn, status):
        txn.status = status
        self.locks.release_all(txn.txn_id)
        self.active.pop(txn.txn_id, None)
        self.finished.append(txn)

    # -- the theory as oracle ---------------------------------------------

    def schedule(self):
        """The recorded history as a live Schedule (may be incomplete)."""
        return Schedule(self.ops, validate=False)

    def verify(self):
        """Check the committed history against the scheduler theory.

        Returns the report dict (also kept as ``last_report``); raises
        :class:`~repro.errors.TransactionError` if the committed
        projection is not conflict serializable or not strict — either
        would mean the runtime violated the theorems it implements.
        """
        committed = self.schedule().committed_projection()
        serializable = is_conflict_serializable(committed)
        recovery = recovery_class(self.schedule())
        self.last_report = {
            "ops": len(self.ops),
            "committed": len(committed.committed()),
            "aborted": self.aborts,
            "conflict_serializable": serializable,
            "recovery_class": recovery,
        }
        self.metrics.counter("txn_verifications_total").inc()
        if not serializable:
            raise TransactionError(
                "live history violates conflict serializability: %s"
                % (committed,)
            )
        if recovery != "ST":
            raise TransactionError(
                "live history is not strict (deferred updates must be): "
                "classified %s" % (recovery,)
            )
        return self.last_report

    def rows(self):
        """``sys_transactions`` tuples: one row per txn, begin order."""
        out = []
        for txn in list(self.finished) + list(self.active.values()):
            out.append(
                (
                    txn.txn_id,
                    txn.cc,
                    txn.status,
                    len(txn.reads),
                    len(txn.writes),
                    txn.rows_inserted,
                    txn.rows_deleted,
                    txn.statements,
                )
            )
        out.sort(key=lambda row: row[0])
        return out

    def reset(self):
        """Drop the recorded history (active transactions must be done)."""
        if self.active:
            raise TransactionError(
                "cannot reset with active transactions: %s"
                % sorted(self.active)
            )
        self.ops = []
        self.finished = []
        self._read_ts.clear()
        self._write_ts.clear()
        self.last_report = None

    def __repr__(self):
        return "TransactionManager(%d active, %d committed, %d aborted)" % (
            len(self.active), self.commits, self.aborts
        )
