"""The append-only write journal: every mutation leaves a record.

One :class:`JournalEntry` per relation binding changed by a committed
(or staged) mutation, carrying the **undo image** — the previous binding
— so rollback is "restore the reference", exactly the before-image
recovery the strict schedule class licenses.  The journal itself is a
bounded ring: it exists for observability (``sys_versions`` joins it,
the flight recorder cross-references sequence numbers) and for undo of
*staged* transaction writes; correctness never depends on ring
retention, because an active transaction keeps direct references to its
own entries (eviction from the ring cannot strand a rollback).
"""

from __future__ import annotations

from collections import deque

#: The sentinel undo image for a binding that did not exist before
#: (undoing an ``add`` removes the name rather than restoring a value).
ABSENT = object()


class JournalEntry:
    """One journaled binding change.

    Attributes:
        seq: global sequence number (monotonic per journal).
        vid: the store version the change produced (None while staged).
        txn: owning transaction id, or None for autocommit mutations.
        kind: "add", "replace", "remove", "insert", "delete", "update".
        name: the relation whose binding changed.
        inserted / deleted: tuple-count deltas (0 for pure rebinds).
        undo: the previous binding (a Relation), or :data:`ABSENT`.
        status: "committed", "staged", or "rolled-back".
    """

    __slots__ = ("seq", "vid", "txn", "kind", "name", "inserted",
                 "deleted", "undo", "status")

    def __init__(self, seq, vid, txn, kind, name, inserted=0, deleted=0,
                 undo=ABSENT, status="committed"):
        self.seq = seq
        self.vid = vid
        self.txn = txn
        self.kind = kind
        self.name = name
        self.inserted = inserted
        self.deleted = deleted
        self.undo = undo
        self.status = status

    def row(self):
        """The entry as a ``sys_versions`` tuple."""
        return (
            self.seq,
            self.vid,
            self.txn,
            self.kind,
            self.name,
            self.inserted,
            self.deleted,
            self.status,
        )

    def __repr__(self):
        return "JournalEntry(#%d v%s %s %s %r +%d/-%d)" % (
            self.seq, self.vid, self.status, self.kind, self.name,
            self.inserted, self.deleted,
        )


class WriteJournal:
    """A bounded append-only ring of :class:`JournalEntry` records."""

    __slots__ = ("capacity", "_entries", "_seq", "appended")

    def __init__(self, capacity=1024):
        self.capacity = capacity
        self._entries = deque(maxlen=capacity)
        self._seq = 0
        self.appended = 0

    def append(self, vid, txn, kind, name, inserted=0, deleted=0,
               undo=ABSENT, status="committed"):
        """Journal one binding change; returns the entry."""
        entry = JournalEntry(
            self._seq, vid, txn, kind, name, inserted=inserted,
            deleted=deleted, undo=undo, status=status,
        )
        self._seq += 1
        self.appended += 1
        self._entries.append(entry)
        return entry

    def entries(self):
        """The retained entries, oldest first (a list copy)."""
        return list(self._entries)

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __repr__(self):
        return "WriteJournal(%d retained, %d appended)" % (
            len(self._entries), self.appended
        )
