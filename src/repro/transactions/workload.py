"""Synthetic transaction workloads for the concurrency-control benchmarks.

The paper's §6 claim under test: "concurrency control was a problem that
was to a large extent solved as satisfactorily as it could be — and this
was confirmed by both theoretical exploration and feedback from
practice".  The benchmark sweeps contention and compares 2PL, timestamp
ordering, and OCC — which needs a workload model:

* ``num_items`` data items, accessed with a hot-set skew (a fraction of
  accesses hit a small hot region — the standard contention knob);
* transactions of configurable length and write ratio;
* a random but per-transaction-ordered interleaving.
"""

from __future__ import annotations

import random

from .schedule import Op, Schedule


class WorkloadConfig:
    """Parameters of a synthetic workload.

    Args:
        num_transactions: how many transactions.
        ops_per_transaction: data operations per transaction.
        num_items: size of the database (item names ``x0..``).
        write_ratio: probability an operation is a write.
        hot_fraction: fraction of items forming the hot set.
        hot_access_probability: probability an access goes to the hot set
            (0 disables skew; 0.8 with hot_fraction 0.1 is the classical
            "80/10" contention).
        seed: RNG seed (workloads are reproducible).
    """

    __slots__ = (
        "num_transactions",
        "ops_per_transaction",
        "num_items",
        "write_ratio",
        "hot_fraction",
        "hot_access_probability",
        "seed",
    )

    def __init__(
        self,
        num_transactions=8,
        ops_per_transaction=4,
        num_items=16,
        write_ratio=0.5,
        hot_fraction=0.1,
        hot_access_probability=0.0,
        seed=0,
    ):
        self.num_transactions = num_transactions
        self.ops_per_transaction = ops_per_transaction
        self.num_items = num_items
        self.write_ratio = write_ratio
        self.hot_fraction = hot_fraction
        self.hot_access_probability = hot_access_probability
        self.seed = seed


def generate_transactions(config):
    """``{txn_id: [Op, ..., commit]}`` for the configuration."""
    rng = random.Random(config.seed)
    hot_count = max(1, int(config.num_items * config.hot_fraction))
    transactions = {}
    for txn in range(1, config.num_transactions + 1):
        ops = []
        for _ in range(config.ops_per_transaction):
            if rng.random() < config.hot_access_probability:
                item = "x%d" % rng.randrange(hot_count)
            else:
                item = "x%d" % rng.randrange(config.num_items)
            kind = "w" if rng.random() < config.write_ratio else "r"
            ops.append(Op(kind, txn, item))
        ops.append(Op.commit(txn))
        transactions[txn] = ops
    return transactions


def random_interleaving(transactions, seed=0):
    """A random schedule preserving each transaction's internal order."""
    rng = random.Random(seed)
    queues = {txn: list(ops) for txn, ops in transactions.items()}
    ops = []
    alive = [txn for txn, queue in queues.items() if queue]
    while alive:
        txn = rng.choice(alive)
        ops.append(queues[txn].pop(0))
        if not queues[txn]:
            alive.remove(txn)
    return Schedule(ops)


def generate_schedule(config, interleave_seed=None):
    """Convenience: transactions + interleaving in one call."""
    transactions = generate_transactions(config)
    seed = config.seed if interleave_seed is None else interleave_seed
    return random_interleaving(transactions, seed=seed)


def contention_sweep(base_config, probabilities):
    """Schedules at increasing hot-set contention (benchmark helper)."""
    schedules = []
    for probability in probabilities:
        config = WorkloadConfig(
            num_transactions=base_config.num_transactions,
            ops_per_transaction=base_config.ops_per_transaction,
            num_items=base_config.num_items,
            write_ratio=base_config.write_ratio,
            hot_fraction=base_config.hot_fraction,
            hot_access_probability=probability,
            seed=base_config.seed,
        )
        schedules.append((probability, generate_schedule(config)))
    return schedules
