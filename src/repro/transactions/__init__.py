"""Transaction processing: schedules, serializability, schedulers, recovery."""

from .locking import LockTable, TwoPhaseLockingScheduler, two_phase_lock
from .optimistic import OptimisticScheduler, optimistic
from .recovery import (
    avoids_cascading_aborts,
    cascading_abort_set,
    is_recoverable,
    is_strict,
    recovery_class,
)
from .schedule import (
    ABORT,
    COMMIT,
    READ,
    WRITE,
    Op,
    Schedule,
    parse_schedule,
    transaction,
)
from .serializability import (
    conflicts,
    equivalent_serial_schedule,
    final_writers,
    is_blind_write_free,
    is_conflict_serializable,
    is_view_serializable,
    precedence_graph,
    reads_from,
    serialization_order,
    view_equivalent,
)
from .timestamp import TimestampScheduler, timestamp_order
from .treelock import ItemTree, TreeLockingScheduler, tree_lock
from .workload import (
    WorkloadConfig,
    contention_sweep,
    generate_schedule,
    generate_transactions,
    random_interleaving,
)

__all__ = [
    "ABORT",
    "COMMIT",
    "LockTable",
    "Op",
    "OptimisticScheduler",
    "READ",
    "Schedule",
    "ItemTree",
    "TimestampScheduler",
    "TreeLockingScheduler",
    "TwoPhaseLockingScheduler",
    "WRITE",
    "WorkloadConfig",
    "avoids_cascading_aborts",
    "cascading_abort_set",
    "conflicts",
    "contention_sweep",
    "equivalent_serial_schedule",
    "final_writers",
    "generate_schedule",
    "generate_transactions",
    "is_blind_write_free",
    "is_conflict_serializable",
    "is_recoverable",
    "is_strict",
    "is_view_serializable",
    "optimistic",
    "parse_schedule",
    "precedence_graph",
    "random_interleaving",
    "reads_from",
    "recovery_class",
    "serialization_order",
    "timestamp_order",
    "tree_lock",
    "transaction",
    "two_phase_lock",
    "view_equivalent",
]
