"""Serializability: conflict, view, and the classical characterizations.

The paper points to "the prevalence of a few simple algorithms in
concurrency control … supported by negative results severely delimiting
the feasibly implementable solutions".  Both halves live here:

* **Conflict serializability** — polynomial, via the precedence
  (serialization) graph; the positive result practice adopted.
* **View serializability** — the more permissive notion, NP-complete to
  test; implemented by exhaustive permutation for small inputs, standing
  in as the delimiting negative result (the checker's exponential shape
  *is* the theorem's content, operationally).
"""

from __future__ import annotations

import itertools

from ..errors import TransactionError
from .schedule import READ, WRITE, Schedule


def conflicts(schedule):
    """Ordered conflicting pairs ``(earlier_op, later_op)``."""
    ops = schedule.data_ops()
    out = []
    for i, earlier in enumerate(ops):
        for later in ops[i + 1:]:
            if earlier.conflicts_with(later):
                out.append((earlier, later))
    return out


def precedence_graph(schedule, committed_only=True):
    """The serialization graph: edge Ti -> Tj per conflict Ti before Tj.

    Args:
        schedule: the history.
        committed_only: restrict to committed transactions (the classical
            definition); pass False to analyze in-flight histories.

    Returns:
        ``{txn: set of successor txns}`` over the relevant transactions.
    """
    base = schedule.committed_projection() if committed_only else schedule
    graph = {txn: set() for txn in base.transactions()}
    for earlier, later in conflicts(base):
        graph[earlier.txn].add(later.txn)
    return graph


def _find_cycle(graph):
    """Some cycle as a list of nodes, or None (iterative DFS)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    parent = {}
    for root in sorted(graph, key=repr):
        if color[root] != WHITE:
            continue
        stack = [(root, iter(sorted(graph[root], key=repr)))]
        color[root] = GRAY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if color[succ] == GRAY:
                    # Back edge: walk the parent chain back to the target.
                    cycle = [node]
                    walker = node
                    while walker != succ:
                        walker = parent[walker]
                        cycle.append(walker)
                    cycle.reverse()
                    return cycle
                if color[succ] == WHITE:
                    color[succ] = GRAY
                    parent[succ] = node
                    stack.append((succ, iter(sorted(graph[succ], key=repr))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def is_conflict_serializable(schedule):
    """The fundamental theorem: CSR iff the precedence graph is acyclic."""
    return _find_cycle(precedence_graph(schedule)) is None


def serialization_order(schedule):
    """A serial order witnessing conflict serializability.

    Returns:
        Transaction ids in a topological order of the precedence graph.

    Raises:
        TransactionError: if the schedule is not conflict serializable.
    """
    graph = precedence_graph(schedule)
    cycle = _find_cycle(graph)
    if cycle is not None:
        raise TransactionError(
            "schedule is not conflict serializable; cycle: %s"
            % " -> ".join(map(str, cycle))
        )
    indegree = {node: 0 for node in graph}
    for successors in graph.values():
        for succ in successors:
            indegree[succ] += 1
    ready = sorted(
        (node for node, deg in indegree.items() if deg == 0), key=repr
    )
    order = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in sorted(graph[node], key=repr):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort(key=repr)
    return order


def equivalent_serial_schedule(schedule):
    """The serial schedule in the serialization order (committed txns)."""
    base = schedule.committed_projection()
    order = serialization_order(schedule)
    by_txn = {txn: base.ops_of(txn) for txn in order}
    ops = []
    for txn in order:
        ops.extend(by_txn[txn])
    return Schedule(ops)


# ---------------------------------------------------------------------------
# View serializability
# ---------------------------------------------------------------------------


def reads_from(schedule):
    """The reads-from relation of the committed projection.

    Returns:
        ``{(reader_txn, item, position): writer_txn_or_None}`` where None
        means the read saw the initial database state.  Positions make
        multiple reads of the same item distinct.
    """
    base = schedule.committed_projection()
    last_writer = {}
    relation = {}
    read_counter = {}
    for op in base.ops:
        if op.kind == READ:
            count = read_counter.get((op.txn, op.item), 0)
            read_counter[(op.txn, op.item)] = count + 1
            relation[(op.txn, op.item, count)] = last_writer.get(op.item)
        elif op.kind == WRITE:
            last_writer[op.item] = op.txn
    return relation


def final_writers(schedule):
    """``{item: txn}`` of the last committed write per item."""
    base = schedule.committed_projection()
    out = {}
    for op in base.ops:
        if op.kind == WRITE:
            out[op.item] = op.txn
    return out


def view_equivalent(left, right):
    """Same reads-from relation and same final writers."""
    return (
        reads_from(left) == reads_from(right)
        and final_writers(left) == final_writers(right)
    )


def is_view_serializable(schedule, limit=8):
    """View serializability by serial-order enumeration.

    Testing VSR is NP-complete; this checker enumerates the permutations
    of the committed transactions, so it is exact but exponential —
    ``limit`` guards against accidental factorial blowups (raise it
    explicitly for bigger experiments).
    """
    base = schedule.committed_projection()
    txns = base.transactions()
    if len(txns) > limit:
        raise TransactionError(
            "view-serializability check over %d transactions exceeds the "
            "limit of %d (NP-complete by Papadimitriou's own theorem; "
            "raise limit= to force it)" % (len(txns), limit)
        )
    by_txn = {txn: base.ops_of(txn) for txn in txns}
    for order in itertools.permutations(txns):
        ops = []
        for txn in order:
            ops.extend(by_txn[txn])
        if view_equivalent(base, Schedule(ops)):
            return True
    return False


def is_blind_write_free(schedule):
    """No write without a preceding read of the item by the same txn.

    The classical special case: without blind writes, VSR = CSR (so the
    polynomial test is complete) — asserted by a property test.
    """
    seen_reads = set()
    for op in schedule.ops:
        if op.kind == READ:
            seen_reads.add((op.txn, op.item))
        elif op.kind == WRITE:
            if (op.txn, op.item) not in seen_reads:
                return False
    return True
