"""Recoverability: the RC ⊋ ACA ⊋ ST hierarchy.

"Reliability and recovery" is the other half of the transaction-
processing tradition.  The classical schedule classes:

* **Recoverable (RC)** — no transaction commits before every transaction
  it read from has committed (so aborts never invalidate commits).
* **Avoids cascading aborts (ACA)** — transactions read only committed
  data (so one abort never forces others).
* **Strict (ST)** — no read *or overwrite* of dirty data (so before-image
  recovery works).

The strict containments ST ⊂ ACA ⊂ RC (and their incomparability with
serializability) are property-tested, and the separating examples from
the textbooks live in the test suite as goldens.
"""

from __future__ import annotations

from .schedule import ABORT, COMMIT, READ, WRITE


def _positions(schedule):
    return {id(op): i for i, op in enumerate(schedule.ops)}


def _terminal_position(schedule, txn, kind):
    for i, op in enumerate(schedule.ops):
        if op.txn == txn and op.kind == kind:
            return i
    return None


def reads_from_pairs(schedule):
    """Pairs ``(reader, writer, item, read_position)``: reader read
    writer's (not-yet-overwritten, uncommitted-or-not) write.

    Aborts restore before-images: each item keeps a version stack, and
    aborting a transaction removes its writes from every stack, so a
    read *after* the abort is attributed to the restored version's
    writer, never to the aborted transaction.  Reads that happened
    before the abort keep their recorded pair (that is the read the
    classical RC definition quantifies over — see the
    ``w1(x) r2(x) c2 a1`` golden).  The conformance kit's scheduler
    oracle caught the earlier flat ``last_writer`` model attributing
    post-abort reads to deadlock victims, which made strict 2PL outputs
    look non-recoverable.
    """
    pairs = []
    stacks = {}
    for i, op in enumerate(schedule.ops):
        if op.kind == WRITE:
            stacks.setdefault(op.item, []).append(op.txn)
        elif op.kind == READ:
            stack = stacks.get(op.item)
            writer = stack[-1] if stack else None
            if writer is not None and writer != op.txn:
                pairs.append((op.txn, writer, op.item, i))
        elif op.kind == ABORT:
            for stack in stacks.values():
                while op.txn in stack:
                    stack.remove(op.txn)
    return pairs


def is_recoverable(schedule):
    """RC: every reader commits only after its writers committed."""
    for reader, writer, _item, _pos in reads_from_pairs(schedule):
        reader_commit = _terminal_position(schedule, reader, COMMIT)
        if reader_commit is None:
            continue  # reader never committed: nothing to violate
        writer_commit = _terminal_position(schedule, writer, COMMIT)
        if writer_commit is None or writer_commit > reader_commit:
            return False
    return True


def avoids_cascading_aborts(schedule):
    """ACA: reads only from committed transactions.

    Same version-stack abort model as :func:`reads_from_pairs`: a read
    after an abort sees the restored version, so it is not a dirty read
    of the aborted transaction.
    """
    committed_at = {}
    stacks = {}
    for i, op in enumerate(schedule.ops):
        if op.kind == COMMIT:
            committed_at[op.txn] = i
        elif op.kind == ABORT:
            for stack in stacks.values():
                while op.txn in stack:
                    stack.remove(op.txn)
        elif op.kind == WRITE:
            stacks.setdefault(op.item, []).append(op.txn)
        elif op.kind == READ:
            stack = stacks.get(op.item)
            writer = stack[-1] if stack else None
            if writer is not None and writer != op.txn:
                if writer not in committed_at:
                    return False
    return True


def is_strict(schedule):
    """ST: no reading *or overwriting* of uncommitted (dirty) data."""
    committed = set()
    aborted = set()
    last_writer = {}
    for op in schedule.ops:
        if op.kind == COMMIT:
            committed.add(op.txn)
        elif op.kind == ABORT:
            aborted.add(op.txn)
            # Its dirty writes are undone; previous committed values
            # reappear — conservatively clear its authorship.
            for item, writer in list(last_writer.items()):
                if writer == op.txn:
                    del last_writer[item]
        elif op.kind in (READ, WRITE):
            writer = last_writer.get(op.item)
            if (
                writer is not None
                and writer != op.txn
                and writer not in committed
            ):
                return False
            if op.kind == WRITE:
                last_writer[op.item] = op.txn
    return True


def recovery_class(schedule):
    """The narrowest class: "ST", "ACA", "RC", or "none".

    The containment chain makes this well-defined; a property test checks
    the chain on random schedules.
    """
    if is_strict(schedule):
        return "ST"
    if avoids_cascading_aborts(schedule):
        return "ACA"
    if is_recoverable(schedule):
        return "RC"
    return "none"


def cascading_abort_set(schedule, failed_txn):
    """Transactions transitively forced to abort when ``failed_txn`` dies.

    The operational meaning of "cascading": anyone who read from the
    failure (directly or through intermediaries) before it aborted.
    """
    doomed = {failed_txn}
    changed = True
    while changed:
        changed = False
        for reader, writer, _item, _pos in reads_from_pairs(schedule):
            if writer in doomed and reader not in doomed:
                doomed.add(reader)
                changed = True
    doomed.discard(failed_txn)
    return doomed
