"""Two-phase locking: the "simplest solution" practice adopted.

"Most database products seem to have adopted the simplest solutions [GR]
(two-phase locking, and occasionally optimistic methods or tree-based
locking)" — this module is the 2PL half of that sentence (see
``optimistic`` for the other).

The scheduler consumes a *requested* interleaving (an operation stream)
and simulates lock acquisition with shared/exclusive locks:

* **Strict 2PL** (the default, and the product reality): all locks held
  to commit.
* **Basic 2PL**: locks released after a transaction's last use of the
  item (the simulator looks ahead in the transaction's own op list, which
  is how the textbook model states it).

Blocked operations queue per transaction; deadlocks are detected on the
waits-for graph and broken by aborting the youngest transaction involved.
The classical theorem — every 2PL history is conflict serializable — is a
property test over random workloads.
"""

from __future__ import annotations

from ..errors import SchedulerError
from ..obs.trace import ensure_tracer
from .schedule import READ, WRITE, Op, Schedule

#: Lock modes.
SHARED, EXCLUSIVE = "S", "X"

_COMPATIBLE = {
    (SHARED, SHARED): True,
    (SHARED, EXCLUSIVE): False,
    (EXCLUSIVE, SHARED): False,
    (EXCLUSIVE, EXCLUSIVE): False,
}


class LockTable:
    """Shared/exclusive locks with upgrade support."""

    __slots__ = ("held",)

    def __init__(self):
        self.held = {}  # item -> {txn: mode}

    def can_grant(self, txn, item, mode):
        holders = self.held.get(item, {})
        for other, held_mode in holders.items():
            if other == txn:
                continue
            if not _COMPATIBLE[(held_mode, mode)]:
                return False
        return True

    def grant(self, txn, item, mode):
        holders = self.held.setdefault(item, {})
        current = holders.get(txn)
        if current == EXCLUSIVE:
            return  # nothing stronger to acquire
        holders[txn] = mode if current is None else (
            EXCLUSIVE if EXCLUSIVE in (current, mode) else SHARED
        )

    def blockers(self, txn, item, mode):
        """Transactions preventing the grant."""
        holders = self.held.get(item, {})
        return {
            other
            for other, held_mode in holders.items()
            if other != txn and not _COMPATIBLE[(held_mode, mode)]
        }

    def release_all(self, txn):
        for item in list(self.held):
            self.held[item].pop(txn, None)
            if not self.held[item]:
                del self.held[item]

    def release(self, txn, item):
        holders = self.held.get(item)
        if holders and txn in holders:
            del holders[txn]
            if not holders:
                del self.held[item]


class TwoPhaseLockingScheduler:
    """Simulate (strict) 2PL over a requested operation stream.

    Args:
        strict: hold all locks to the terminal operation (strict 2PL);
            when False, release each lock after the transaction's last
            use of the item (basic 2PL — still two-phase because growth
            stops at the first release, which the lookahead guarantees).

    Attributes after :meth:`run`:
        output: the executed :class:`~repro.transactions.schedule.Schedule`
            (including injected aborts for deadlock victims).
        aborted: transaction ids aborted by deadlock resolution.
        wait_events: number of times an operation had to wait.

    A ``tracer`` (default: the no-op singleton) receives a ``lock_wait``
    event per wait and a ``deadlock_abort`` event per victim, under one
    ``2pl_run`` span per :meth:`run`.
    """

    def __init__(self, strict=True, tracer=None):
        self.strict = strict
        self.tracer = ensure_tracer(tracer)
        self.output = None
        self.aborted = set()
        self.wait_events = 0

    def run(self, schedule):
        """Execute the requested schedule; returns the output schedule."""
        with self.tracer.span(
            "2pl_run", ops=len(schedule.ops), strict=self.strict
        ) as span:
            output = self._run(schedule)
            span.set(
                waits=self.wait_events, aborts=len(self.aborted)
            )
        return output

    def _run(self, schedule):
        remaining = {
            txn: list(schedule.ops_of(txn)) for txn in schedule.transactions()
        }
        # Request order: the position of each op in the input stream.
        stream = list(schedule.ops)
        locks = LockTable()
        executed = []
        blocked = {}  # txn -> blocking set snapshot (for waits-for)
        self.aborted = set()
        self.wait_events = 0

        index = 0
        while stream:
            progressed = False
            for op in list(stream):
                txn = op.txn
                if txn in self.aborted:
                    # _abort already purged the victim's ops from the
                    # live stream; snapshot entries just get skipped.
                    continue
                if remaining[txn] and remaining[txn][0] != op:
                    continue  # not this transaction's next op yet
                if txn in blocked:
                    # Re-check the blocked op first; ops behind it wait.
                    if remaining[txn][0] != op:
                        continue
                needed = self._mode(op)
                if needed is not None:
                    if not locks.can_grant(txn, op.item, needed):
                        blockers = locks.blockers(txn, op.item, needed)
                        blocked[txn] = blockers
                        self.wait_events += 1
                        self.tracer.event(
                            "lock_wait", txn=txn, item=op.item, mode=needed,
                            blockers=sorted(blockers),
                        )
                        victim = self._deadlock_victim(blocked)
                        if victim is not None:
                            self._abort(victim, locks, remaining, blocked,
                                        stream, executed)
                            progressed = True
                        continue
                    locks.grant(txn, op.item, needed)
                # Execute.
                executed.append(op)
                stream.remove(op)
                remaining[txn].pop(0)
                blocked.pop(txn, None)
                progressed = True
                if op.is_terminal():
                    locks.release_all(txn)
                elif not self.strict:
                    self._early_release(txn, locks, remaining[txn])
                index += 1
            if not progressed:
                # Everything left is blocked without a detectable cycle —
                # should be impossible; fail loudly rather than spin.
                victim = self._deadlock_victim(blocked, force=True)
                if victim is None:
                    raise SchedulerError(
                        "scheduler wedged with no deadlock cycle: %s"
                        % " ".join(map(str, stream))
                    )
                self._abort(victim, locks, remaining, blocked, stream, executed)
        self.output = Schedule(executed, validate=False)
        return self.output

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _mode(op):
        if op.kind == READ:
            return SHARED
        if op.kind == WRITE:
            return EXCLUSIVE
        return None

    @staticmethod
    def _early_release(txn, locks, remaining_ops):
        """Basic 2PL: release unneeded locks once past the lock point.

        The lock point is reached when every remaining data operation is
        already covered by a held lock of sufficient mode — from then on
        the transaction acquires nothing, so releasing is two-phase-safe.
        Locks on items the transaction will not touch again are released.
        """
        still_needed = {}
        for op in remaining_ops:
            if op.item is None:
                continue
            mode = EXCLUSIVE if op.kind == WRITE else SHARED
            if still_needed.get(op.item) != EXCLUSIVE:
                still_needed[op.item] = (
                    EXCLUSIVE
                    if mode == EXCLUSIVE
                    else still_needed.get(op.item, SHARED)
                )
        held = {
            item: holders[txn]
            for item, holders in locks.held.items()
            if txn in holders
        }
        past_lock_point = all(
            item in held
            and (held[item] == EXCLUSIVE or mode == SHARED)
            for item, mode in still_needed.items()
        )
        if not past_lock_point:
            return
        for item in list(held):
            if item not in still_needed:
                locks.release(txn, item)

    def _deadlock_victim(self, blocked, force=False):
        """Find a waits-for cycle; return the youngest participant.

        With ``force=True`` (wedged scheduler), pick any blocked txn.
        """
        graph = {txn: set(blockers) for txn, blockers in blocked.items()}
        # Detect a cycle among blocked transactions.
        for start in sorted(graph, key=repr):
            seen = set()
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for succ in graph.get(node, ()):
                    if succ == start:
                        cycle = self._collect_cycle(graph, start)
                        return max(cycle, key=repr)  # youngest-ish: max id
                    if succ not in seen:
                        seen.add(succ)
                        frontier.append(succ)
        if force and blocked:
            return max(blocked, key=repr)
        return None

    @staticmethod
    def _collect_cycle(graph, start):
        """Nodes reachable from start that can reach start (the SCC)."""
        reachable = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for succ in graph.get(node, ()):
                if succ not in reachable:
                    reachable.add(succ)
                    frontier.append(succ)
        return [
            node
            for node in reachable
            if _reaches(graph, node, start)
        ]

    def _abort(self, victim, locks, remaining, blocked, stream, executed):
        self.tracer.event("deadlock_abort", txn=victim)
        self.aborted.add(victim)
        locks.release_all(victim)
        blocked.pop(victim, None)
        remaining[victim] = []
        stream[:] = [op for op in stream if op.txn != victim]
        executed.append(Op.abort(victim))


def _reaches(graph, source, target):
    seen = {source}
    frontier = [source]
    while frontier:
        node = frontier.pop()
        for succ in graph.get(node, ()):
            if succ == target:
                return True
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return False


def two_phase_lock(schedule, strict=True, tracer=None):
    """One-shot convenience: run the 2PL scheduler on a requested schedule.

    Returns:
        ``(output_schedule, stats)`` where stats has ``aborted`` and
        ``wait_events``.
    """
    scheduler = TwoPhaseLockingScheduler(strict=strict, tracer=tracer)
    output = scheduler.run(schedule)
    return output, {
        "aborted": set(scheduler.aborted),
        "wait_events": scheduler.wait_events,
    }
