"""Transactions, operations, and schedules (histories).

The paper's second founding tradition: "transaction processing,
encompassing … concurrency control and schedulers, reliability and
recovery".  The model is the classical read/write one: a **transaction**
is a sequence of reads and writes on named items ending in commit or
abort; a **schedule** (history) is an interleaving of several
transactions' operations preserving each transaction's internal order.

Textual notation, used throughout tests and examples::

    parse_schedule("r1(x) w1(x) r2(x) w2(y) c1 c2")
"""

from __future__ import annotations

import re

from ..errors import TransactionError

#: Operation kinds.
READ, WRITE, COMMIT, ABORT = "r", "w", "c", "a"


class Op:
    """One operation: kind, transaction id, and item (None for c/a)."""

    __slots__ = ("kind", "txn", "item")

    def __init__(self, kind, txn, item=None):
        if kind not in (READ, WRITE, COMMIT, ABORT):
            raise TransactionError("unknown operation kind %r" % (kind,))
        if kind in (READ, WRITE) and item is None:
            raise TransactionError("%s operations need an item" % kind)
        if kind in (COMMIT, ABORT) and item is not None:
            raise TransactionError("%s operations take no item" % kind)
        self.kind = kind
        self.txn = txn
        self.item = item

    @classmethod
    def read(cls, txn, item):
        return cls(READ, txn, item)

    @classmethod
    def write(cls, txn, item):
        return cls(WRITE, txn, item)

    @classmethod
    def commit(cls, txn):
        return cls(COMMIT, txn)

    @classmethod
    def abort(cls, txn):
        return cls(ABORT, txn)

    def is_terminal(self):
        return self.kind in (COMMIT, ABORT)

    def conflicts_with(self, other):
        """Two data operations conflict: same item, different transactions,
        at least one write."""
        return (
            self.item is not None
            and self.item == other.item
            and self.txn != other.txn
            and (self.kind == WRITE or other.kind == WRITE)
        )

    def __eq__(self, other):
        return (
            isinstance(other, Op)
            and (other.kind, other.txn, other.item)
            == (self.kind, self.txn, self.item)
        )

    def __hash__(self):
        return hash(("Op", self.kind, self.txn, self.item))

    def __repr__(self):
        return "Op(%r, %r, %r)" % (self.kind, self.txn, self.item)

    def __str__(self):
        if self.item is None:
            return "%s%s" % (self.kind, self.txn)
        return "%s%s(%s)" % (self.kind, self.txn, self.item)


class Schedule:
    """An ordered operation sequence over several transactions."""

    __slots__ = ("ops",)

    def __init__(self, ops=(), validate=True):
        self.ops = tuple(ops)
        if validate:
            self._validate()

    def _validate(self):
        finished = set()
        for op in self.ops:
            if not isinstance(op, Op):
                raise TransactionError("Schedule holds Ops, got %r" % (op,))
            if op.txn in finished:
                raise TransactionError(
                    "operation %s after transaction %s terminated"
                    % (op, op.txn)
                )
            if op.is_terminal():
                finished.add(op.txn)

    # -- queries ---------------------------------------------------------

    def transactions(self):
        """Transaction ids, in first-appearance order."""
        seen = []
        for op in self.ops:
            if op.txn not in seen:
                seen.append(op.txn)
        return seen

    def items(self):
        """Data items touched, sorted."""
        return sorted({op.item for op in self.ops if op.item is not None})

    def ops_of(self, txn):
        return [op for op in self.ops if op.txn == txn]

    def data_ops(self):
        return [op for op in self.ops if not op.is_terminal()]

    def committed(self):
        """Ids of committed transactions."""
        return {op.txn for op in self.ops if op.kind == COMMIT}

    def aborted(self):
        return {op.txn for op in self.ops if op.kind == ABORT}

    def active(self):
        """Transactions with operations but no terminal yet."""
        return [
            t
            for t in self.transactions()
            if t not in self.committed() and t not in self.aborted()
        ]

    def is_complete(self):
        """Every transaction ended in commit or abort."""
        return not self.active()

    def committed_projection(self):
        """The schedule restricted to committed transactions.

        The classical object serializability is defined on.
        """
        keep = self.committed()
        return Schedule(
            [op for op in self.ops if op.txn in keep], validate=False
        )

    def is_serial(self):
        """No interleaving: each transaction's ops are contiguous."""
        seen_done = set()
        current = None
        for op in self.ops:
            if op.txn != current:
                if op.txn in seen_done:
                    return False
                if current is not None:
                    seen_done.add(current)
                current = op.txn
        return True

    # -- construction -------------------------------------------------------

    def append(self, op):
        """A new schedule with one more operation (validated)."""
        return Schedule(self.ops + (op,))

    @classmethod
    def serial(cls, transactions_ops, order):
        """The serial schedule running transactions in ``order``.

        Args:
            transactions_ops: ``{txn: [ops...]}`` (terminals optional —
                a commit is appended when missing).
            order: transaction ids in execution order.
        """
        ops = []
        for txn in order:
            txn_ops = list(transactions_ops[txn])
            ops.extend(txn_ops)
            if not (txn_ops and txn_ops[-1].is_terminal()):
                ops.append(Op.commit(txn))
        return cls(ops)

    def __len__(self):
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __getitem__(self, index):
        return self.ops[index]

    def __eq__(self, other):
        return isinstance(other, Schedule) and other.ops == self.ops

    def __hash__(self):
        return hash(("Schedule", self.ops))

    def __repr__(self):
        return "Schedule(%d ops, %d txns)" % (
            len(self.ops),
            len(self.transactions()),
        )

    def __str__(self):
        return " ".join(str(op) for op in self.ops)


_OP_RE = re.compile(
    r"(?P<kind>[rwca])(?P<txn>\d+)(?:\((?P<item>[^)]+)\))?"
)


def parse_schedule(text):
    """Parse the textbook notation: ``"r1(x) w2(x) c1 c2"``.

    Transaction ids are integers; items are arbitrary names.
    """
    ops = []
    for token in text.split():
        match = _OP_RE.fullmatch(token)
        if not match:
            raise TransactionError("cannot parse operation %r" % (token,))
        kind = match.group("kind")
        txn = int(match.group("txn"))
        item = match.group("item")
        if kind in (READ, WRITE):
            if item is None:
                raise TransactionError("%r needs an item" % (token,))
            ops.append(Op(kind, txn, item))
        else:
            if item is not None:
                raise TransactionError("%r takes no item" % (token,))
            ops.append(Op(kind, txn))
    return Schedule(ops)


def transaction(txn, actions):
    """Build a transaction's op list from ``[("r", "x"), ("w", "y")]``.

    A commit is appended automatically.
    """
    ops = [Op(kind, txn, item) for kind, item in actions]
    ops.append(Op.commit(txn))
    return ops
