"""Timestamp-ordering concurrency control.

The deadlock-free classical alternative to locking: every transaction
gets a timestamp at start; an operation that would violate timestamp
order (reading the "future", or overwriting data a newer transaction has
seen) aborts its transaction instead of waiting.

Supports the **Thomas write rule** (skip obsolete writes instead of
aborting), the standard refinement.
"""

from __future__ import annotations

from ..obs.trace import ensure_tracer
from .schedule import READ, WRITE, Op, Schedule


class TimestampScheduler:
    """Basic timestamp ordering over a requested operation stream.

    Timestamps are assigned by first appearance in the stream.  Aborted
    transactions are not restarted (the simulator measures abort rates;
    restart policies are a workload concern — see ``workload.py``).

    Attributes after :meth:`run`:
        output: executed schedule (with injected aborts).
        aborted: ids of aborted transactions.
        skipped_writes: writes suppressed by the Thomas write rule.

    A ``tracer`` receives a ``timestamp_abort`` event per order
    violation and a ``thomas_skip`` event per suppressed write, under a
    ``timestamp_run`` span per :meth:`run`.
    """

    def __init__(self, thomas_write_rule=False, tracer=None):
        self.thomas_write_rule = thomas_write_rule
        self.tracer = ensure_tracer(tracer)
        self.output = None
        self.aborted = set()
        self.skipped_writes = 0

    def run(self, schedule):
        with self.tracer.span(
            "timestamp_run", ops=len(schedule.ops),
            thomas=self.thomas_write_rule,
        ) as span:
            output = self._run(schedule)
            span.set(
                aborts=len(self.aborted), skipped=self.skipped_writes
            )
        return output

    def _run(self, schedule):
        timestamp = {}
        next_ts = 0
        read_ts = {}
        write_ts = {}
        executed = []
        self.aborted = set()
        self.skipped_writes = 0

        for op in schedule.ops:
            txn = op.txn
            if txn in self.aborted:
                continue
            if txn not in timestamp:
                timestamp[txn] = next_ts
                next_ts += 1
            ts = timestamp[txn]
            if op.kind == READ:
                if ts < write_ts.get(op.item, -1):
                    self._abort(txn, executed, op)
                    continue
                read_ts[op.item] = max(read_ts.get(op.item, -1), ts)
                executed.append(op)
            elif op.kind == WRITE:
                if ts < read_ts.get(op.item, -1):
                    self._abort(txn, executed, op)
                    continue
                if ts < write_ts.get(op.item, -1):
                    if self.thomas_write_rule:
                        self.skipped_writes += 1
                        self.tracer.event(
                            "thomas_skip", txn=txn, item=op.item
                        )
                        continue  # obsolete write: ignore
                    self._abort(txn, executed, op)
                    continue
                write_ts[op.item] = ts
                executed.append(op)
            else:
                executed.append(op)
        self.output = Schedule(executed, validate=False)
        return self.output

    def _abort(self, txn, executed, op):
        self.tracer.event(
            "timestamp_abort", txn=txn, item=op.item, kind=op.kind
        )
        self.aborted.add(txn)
        executed[:] = [op for op in executed if op.txn != txn]
        executed.append(Op.abort(txn))


def timestamp_order(schedule, thomas_write_rule=False, tracer=None):
    """One-shot convenience; returns ``(output, stats)``."""
    scheduler = TimestampScheduler(
        thomas_write_rule=thomas_write_rule, tracer=tracer
    )
    output = scheduler.run(schedule)
    return output, {
        "aborted": set(scheduler.aborted),
        "skipped_writes": scheduler.skipped_writes,
    }
