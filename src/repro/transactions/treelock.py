"""The tree (hierarchical) locking protocol.

The third member of §6's list of what products adopted: "two-phase
locking, and occasionally optimistic methods or **tree-based locking**".
When data items form a tree (index pages, hierarchies), the tree protocol
takes only exclusive locks and:

* a transaction's first lock may be on any node;
* subsequently a node may be locked only while holding its parent;
* a node may be released at any time, but never re-locked.

The protocol is **not two-phase** — locks are released early, before
later acquisitions — yet every history it admits is conflict
serializable, and it is deadlock-free.  Both classical properties are
asserted by the tests on random tree workloads.

The scheduler plans each transaction's lock order up front (the minimal
connected subtree spanning its items, top-down), executes lock-crabbing
releases (a node is freed once its planned children are held and its own
accesses are done), and never blocks in a cycle.
"""

from __future__ import annotations

from ..errors import SchedulerError
from .schedule import Schedule


class ItemTree:
    """A rooted tree over data items (``parent[child] = parent_item``)."""

    __slots__ = ("parent", "root")

    def __init__(self, parent):
        self.parent = dict(parent)
        roots = set()
        for child in self.parent:
            node = child
            seen = {node}
            while node in self.parent:
                node = self.parent[node]
                if node in seen:
                    raise SchedulerError("item tree contains a cycle")
                seen.add(node)
            roots.add(node)
        if len(roots) != 1:
            raise SchedulerError(
                "item tree must have exactly one root, found %s"
                % sorted(map(str, roots))
            )
        self.root = roots.pop()

    @classmethod
    def balanced(cls, depth=3, fanout=2, prefix="x"):
        """A complete tree of items named x0, x1, ... in BFS order."""
        parent = {}
        names = ["%s%d" % (prefix, 0)]
        index = 1
        frontier = [names[0]]
        for _ in range(depth):
            next_frontier = []
            for node in frontier:
                for _child in range(fanout):
                    name = "%s%d" % (prefix, index)
                    index += 1
                    parent[name] = node
                    names.append(name)
                    next_frontier.append(name)
            frontier = next_frontier
        return cls(parent), names

    def path_to_root(self, item):
        """Items from ``item`` up to (and including) the root."""
        path = [item]
        while path[-1] in self.parent:
            path.append(self.parent[path[-1]])
        return path

    def contains(self, item):
        return item == self.root or item in self.parent

    def spanning_subtree(self, items):
        """Nodes of the minimal connected subtree covering ``items``.

        Returned in top-down order (every node after its parent), rooted
        at the shallowest common ancestor.
        """
        items = list(items)
        if not items:
            return []
        paths = [list(reversed(self.path_to_root(item))) for item in items]
        # Longest common prefix of all root-paths = path to the LCA.
        lca_depth = 0
        while all(len(p) > lca_depth for p in paths) and len(
            {p[lca_depth] for p in paths}
        ) == 1:
            lca_depth += 1
        nodes = []
        seen = set()
        for path in paths:
            for node in path[lca_depth - 1:]:
                if node not in seen:
                    seen.add(node)
                    nodes.append(node)
        # Top-down order: sort by depth (stable on insertion order).
        depth_of = {node: len(self.path_to_root(node)) for node in nodes}
        return sorted(nodes, key=lambda n: depth_of[n])


class TreeLockingScheduler:
    """Simulate the tree protocol over a requested operation stream.

    All locks are exclusive (the classical protocol).  Each transaction
    locks the minimal subtree spanning its items, crabbing down and
    releasing eagerly.

    Attributes after :meth:`run`:
        output: the executed schedule.
        wait_events: number of blocked lock attempts.
        early_releases: locks released before the transaction's last
            acquisition — nonzero values witness non-two-phase behavior.
    """

    def __init__(self, tree):
        self.tree = tree
        self.output = None
        self.wait_events = 0
        self.early_releases = 0

    def run(self, schedule):
        for op in schedule.data_ops():
            if not self.tree.contains(op.item):
                raise SchedulerError(
                    "item %r is not in the item tree" % (op.item,)
                )
        plans = {}
        remaining = {}
        for txn in schedule.transactions():
            ops = schedule.ops_of(txn)
            items = [op.item for op in ops if op.item is not None]
            plans[txn] = self.tree.spanning_subtree(items)
            remaining[txn] = list(ops)

        held = {}  # item -> txn
        acquired = {txn: [] for txn in plans}  # in acquisition order
        released = {txn: set() for txn in plans}
        plan_index = {txn: 0 for txn in plans}
        stream = list(schedule.ops)
        executed = []
        self.wait_events = 0
        self.early_releases = 0

        def try_acquire(txn, target):
            """Crab from the current plan position down to ``target``.

            Returns True if the lock on ``target`` is (now) held.
            """
            plan = plans[txn]
            target_position = plan.index(target)
            while plan_index[txn] <= target_position:
                node = plan[plan_index[txn]]
                if node in released[txn]:
                    raise SchedulerError(
                        "protocol bug: re-lock of %r by %s" % (node, txn)
                    )
                holder = held.get(node)
                if holder is not None and holder != txn:
                    self.wait_events += 1
                    return False
                if holder is None:
                    parent = self.tree.parent.get(node)
                    first_lock = plan_index[txn] == 0
                    if not first_lock and held.get(parent) != txn:
                        # Parent already crabbed away: allowed only for
                        # the first lock; otherwise wait for the plan.
                        raise SchedulerError(
                            "protocol bug: %s locking %r without parent"
                            % (txn, node)
                        )
                    held[node] = txn
                    acquired[txn].append(node)
                plan_index[txn] += 1
                self._crab_release(txn, plans, plan_index, remaining,
                                   held, released, acquired)
            return held.get(target) == txn

        progressed = True
        while stream:
            if not progressed:
                raise SchedulerError(
                    "tree scheduler wedged (should be impossible: the "
                    "protocol is deadlock-free): %s"
                    % " ".join(map(str, stream))
                )
            progressed = False
            for op in list(stream):
                txn = op.txn
                if remaining[txn][0] != op:
                    continue
                if op.is_terminal():
                    for node in list(held):
                        if held[node] == txn:
                            del held[node]
                    executed.append(op)
                    stream.remove(op)
                    remaining[txn].pop(0)
                    progressed = True
                    continue
                if held.get(op.item) != txn:
                    if not try_acquire(txn, op.item):
                        continue
                executed.append(op)
                stream.remove(op)
                remaining[txn].pop(0)
                self._crab_release(txn, plans, plan_index, remaining,
                                   held, released, acquired)
                progressed = True
        self.output = Schedule(executed, validate=False)
        return self.output

    def _crab_release(self, txn, plans, plan_index, remaining, held,
                      released, acquired):
        """Release held nodes that are finished with.

        A node is finished when the transaction holds (or has already
        processed) every planned descendant-step below it that needs the
        node as its parent, and none of the transaction's remaining data
        operations touch it.  Counts early releases (before the last
        acquisition) to witness non-two-phaseness.
        """
        plan = plans[txn]
        upcoming_items = {
            op.item for op in remaining[txn] if op.item is not None
        }
        not_yet_locked = set(plan[plan_index[txn]:])
        for node in list(acquired[txn]):
            if held.get(node) != txn:
                continue
            if node in upcoming_items:
                continue
            # Still the bridge to an unlocked child?
            children_pending = any(
                self.tree.parent.get(other) == node
                for other in not_yet_locked
            )
            if children_pending:
                continue
            del held[node]
            released[txn].add(node)
            if plan_index[txn] < len(plan):
                self.early_releases += 1


def tree_lock(schedule, tree):
    """One-shot convenience; returns ``(output, stats)``."""
    scheduler = TreeLockingScheduler(tree)
    output = scheduler.run(schedule)
    return output, {
        "wait_events": scheduler.wait_events,
        "early_releases": scheduler.early_releases,
    }
