"""Optimistic (validation-based) concurrency control.

The "occasionally optimistic methods" of the paper's §6: transactions run
without locks against private workspaces, then *validate* at commit —
backward validation here (Kung–Robinson): a committing transaction checks
its read set against the write sets of transactions that committed during
its lifetime; intersection means abort.

Under low contention OCC never waits; under high contention its abort
rate explodes while 2PL degrades gracefully — the crossover the
``test_concurrency_control`` benchmark reproduces.
"""

from __future__ import annotations

from ..obs.trace import ensure_tracer
from .schedule import COMMIT, READ, WRITE, Op, Schedule


class OptimisticScheduler:
    """Backward-validation OCC over a requested operation stream.

    Reads and writes execute immediately (into a private workspace); at
    commit, the transaction validates and either commits (its writes
    become visible, conceptually) or aborts.

    Attributes after :meth:`run`:
        output: the *visible-effects* schedule — reads appear where they
            happened, but writes are buffered in the private workspace
            and emitted atomically just before the commit (OCC's write
            phase).  This is the schedule the serializability theorem is
            about, and it is conflict serializable in commit order (a
            test asserts this on random workloads).  Failed transactions
            appear as their reads followed by an abort; their writes
            never become visible.
        aborted: ids of transactions that failed validation.
        validations: number of validation events.

    A ``tracer`` receives one ``validation`` event per commit attempt
    (``ok=True/False``) under an ``occ_run`` span per :meth:`run`.
    """

    def __init__(self, tracer=None):
        self.tracer = ensure_tracer(tracer)
        self.output = None
        self.aborted = set()
        self.validations = 0

    def run(self, schedule):
        with self.tracer.span("occ_run", ops=len(schedule.ops)) as span:
            output = self._run(schedule)
            span.set(
                validations=self.validations, aborts=len(self.aborted)
            )
        return output

    def _run(self, schedule):
        start_event = {}
        read_sets = {}
        write_buffers = {}  # txn -> buffered write ops, in order
        committed = []  # (commit_event, write_set) per committed txn
        executed = []
        event = 0
        self.aborted = set()
        self.validations = 0

        for op in schedule.ops:
            txn = op.txn
            if txn in self.aborted:
                continue
            if txn not in start_event:
                start_event[txn] = event
                read_sets[txn] = set()
                write_buffers[txn] = []
            if op.kind == READ:
                read_sets[txn].add(op.item)
                executed.append(op)
            elif op.kind == WRITE:
                write_buffers[txn].append(op)  # private workspace
            elif op.kind == COMMIT:
                self.validations += 1
                conflict = any(
                    commit_event > start_event[txn]
                    and (read_sets[txn] & write_set)
                    for commit_event, write_set in committed
                )
                self.tracer.event("validation", txn=txn, ok=not conflict)
                if conflict:
                    self.aborted.add(txn)
                    executed.append(Op.abort(txn))
                else:
                    write_set = frozenset(
                        w.item for w in write_buffers[txn]
                    )
                    committed.append((event, write_set))
                    executed.extend(write_buffers[txn])  # write phase
                    executed.append(op)
            else:  # voluntary abort
                self.aborted.add(txn)
                executed.append(op)
            event += 1
        self.output = Schedule(executed, validate=False)
        return self.output


def optimistic(schedule, tracer=None):
    """One-shot convenience; returns ``(output, stats)``."""
    scheduler = OptimisticScheduler(tracer=tracer)
    output = scheduler.run(schedule)
    return output, {
        "aborted": set(scheduler.aborted),
        "validations": scheduler.validations,
    }
