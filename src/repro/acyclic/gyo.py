"""GYO reduction: the classical alpha-acyclicity test.

Graham / Yu–Ozsoyoglu reduction repeatedly applies two operations until
neither applies:

* delete an attribute occurring in exactly one hyperedge (an *isolated*
  attribute);
* delete a hyperedge contained in another (an *ear* in the reduced sense).

The scheme is **alpha-acyclic** iff the reduction empties the hypergraph.
The ear-removal order doubles as the construction order for a join tree
(``repro.acyclic.jointree``) and the reverse order drives Yannakakis'
semijoin sweeps.
"""

from __future__ import annotations


def gyo_reduce(hypergraph):
    """Run the GYO reduction.

    Returns:
        ``(residual, ears)`` where ``residual`` is the final
        :class:`~repro.acyclic.hypergraph.Hypergraph` (empty iff acyclic)
        and ``ears`` is the removal order as a list of
        ``(edge_name, parent_name_or_None)`` pairs: when an edge was
        removed because it was contained in another, the container is its
        *parent* (the join-tree attachment point).
    """
    current = hypergraph
    ears = []
    changed = True
    while changed and len(current):
        changed = False
        # Operation 1: remove isolated attributes.
        counts = {}
        for attributes in current.edges.values():
            for attribute in attributes:
                counts[attribute] = counts.get(attribute, 0) + 1
        isolated = {a for a, c in counts.items() if c == 1}
        if isolated:
            for name in list(current.names()):
                remaining = current[name] - isolated
                if remaining != current[name]:
                    if remaining:
                        current = current.restrict_edge(name, remaining)
                        changed = True
                    else:
                        # Entire edge dissolved: it is an ear with no parent
                        # (or attaches to any edge; None marks "free").
                        current = current.remove(name)
                        ears.append((name, None))
                        changed = True
        # Operation 2: remove contained edges.
        names = current.names()
        for name in names:
            if name not in current:
                continue
            container = None
            for other in names:
                if other == name or other not in current:
                    continue
                if current[name] <= current[other]:
                    container = other
                    break
            if container is not None:
                current = current.remove(name)
                ears.append((name, container))
                changed = True
    return current, ears


def is_alpha_acyclic(hypergraph):
    """Alpha-acyclicity via GYO: reduction empties the hypergraph."""
    residual, _ = gyo_reduce(hypergraph)
    return len(residual) == 0


def ear_decomposition(hypergraph):
    """The full ear order of an acyclic hypergraph.

    Returns:
        The ears list from :func:`gyo_reduce`, with edge *shrinking*
        resolved: every original edge appears exactly once.

    Raises:
        ValueError: if the hypergraph is cyclic.
    """
    residual, ears = gyo_reduce(hypergraph)
    if len(residual):
        raise ValueError(
            "hypergraph is cyclic; GYO residual: %r" % (residual,)
        )
    return ears
