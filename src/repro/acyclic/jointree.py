"""Join trees and the running intersection property.

A **join tree** of a scheme hypergraph is a tree over its hyperedges such
that for every attribute, the edges containing it form a connected
subtree (the *running intersection property*, RIP).  The classical
equivalence: a scheme has a join tree iff it is alpha-acyclic — and the
GYO ear order constructs one.
"""

from __future__ import annotations

from .gyo import ear_decomposition


class JoinTree:
    """A join forest over hyperedge names.

    Attributes:
        hypergraph: the underlying scheme hypergraph.
        parent: mapping ``edge name -> parent name`` (roots map to None).
    """

    __slots__ = ("hypergraph", "parent")

    def __init__(self, hypergraph, parent):
        self.hypergraph = hypergraph
        self.parent = dict(parent)

    @classmethod
    def build(cls, hypergraph):
        """Construct a join tree from the GYO ear decomposition.

        Raises:
            ValueError: if the hypergraph is cyclic.
        """
        ears = ear_decomposition(hypergraph)
        parent = {}
        survivors = []  # edges whose ear had no parent
        for name, container in ears:
            if container is not None:
                parent[name] = container
            else:
                parent[name] = None
                survivors.append(name)
        # Edges dissolved with no parent are roots of their components.
        return cls(hypergraph, parent)

    def roots(self):
        return sorted(n for n, p in self.parent.items() if p is None)

    def children(self, name):
        return sorted(n for n, p in self.parent.items() if p == name)

    def edges(self):
        """Tree edges as (child, parent) pairs."""
        return sorted(
            (n, p) for n, p in self.parent.items() if p is not None
        )

    def postorder(self):
        """Nodes in leaves-first order (children before parents)."""
        order = []
        visited = set()

        def visit(node):
            if node in visited:
                return
            visited.add(node)
            for child in self.children(node):
                visit(child)
            order.append(node)

        for root in self.roots():
            visit(root)
        # Defensive: include any node unreachable from a root (cannot
        # happen for GYO output, but keeps the invariant total).
        for node in sorted(self.parent):
            visit(node)
        return order

    def preorder(self):
        """Nodes in roots-first order (parents before children)."""
        return list(reversed(self.postorder()))

    def satisfies_rip(self):
        """Check the running intersection property directly.

        For every attribute, the set of tree nodes containing it must be
        connected in the forest.
        """
        for attribute in self.hypergraph.vertices():
            holders = {
                name
                for name in self.parent
                if attribute in self.hypergraph[name]
            }
            if len(holders) <= 1:
                continue
            # Connectivity within the forest, restricted to holders.
            start = next(iter(holders))
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                neighbors = set(self.children(node))
                if self.parent[node] is not None:
                    neighbors.add(self.parent[node])
                for neighbor in neighbors:
                    if neighbor in holders and neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            if seen != holders:
                return False
        return True

    def __repr__(self):
        return "JoinTree(%s)" % ", ".join(
            "%s->%s" % (n, p or "ROOT") for n, p in sorted(self.parent.items())
        )
