"""Acyclic schemes: GYO, join trees, Yannakakis' algorithm."""

from .gyo import ear_decomposition, gyo_reduce, is_alpha_acyclic
from .hypergraph import Hypergraph, chain_scheme, cycle_scheme, star_scheme
from .jointree import JoinTree
from .yannakakis import (
    full_reducer,
    naive_join,
    semijoin_program_size,
    yannakakis_join,
)

__all__ = [
    "Hypergraph",
    "JoinTree",
    "chain_scheme",
    "cycle_scheme",
    "ear_decomposition",
    "full_reducer",
    "gyo_reduce",
    "is_alpha_acyclic",
    "naive_join",
    "semijoin_program_size",
    "star_scheme",
    "yannakakis_join",
]
