"""Yannakakis' algorithm: polynomial joins over acyclic schemes.

The crown jewel of the acyclicity era: for an alpha-acyclic scheme, the
natural join of all relations can be computed in time polynomial in input
+ output, via a *full reducer* — an upward then downward sweep of
semijoins along a join tree — followed by joins that never produce a
dangling (eventually-discarded) tuple.

The ``test_acyclic_joins`` benchmark compares this against the naive
fold-the-joins plan, reproducing the classical blowup the algorithm
exists to avoid.

Physical note: :class:`~repro.relational.relation.Relation` caches its
per-key hash indexes (immutable relations never invalidate them), so the
repeated semijoin/join passes here — the same relation probed on the same
shared key during the upward sweep, the downward sweep, and the final
join phase — build each index once and reuse it, with no code in this
module having to manage that.
"""

from __future__ import annotations

from ..errors import HypergraphError
from .jointree import JoinTree


def _relations_for(hypergraph, db):
    """Validate that each hyperedge has a matching relation in ``db``."""
    relations = {}
    for name in hypergraph.names():
        relation = db[name]
        if frozenset(relation.schema.attributes) != hypergraph[name]:
            raise HypergraphError(
                "relation %r attributes %r do not match hyperedge %r"
                % (
                    name,
                    relation.schema.attributes,
                    sorted(hypergraph[name]),
                )
            )
        relations[name] = relation
    return relations


def full_reducer(hypergraph, db):
    """Apply the full reducer: semijoin sweeps up then down the join tree.

    Returns:
        ``(reduced, tree)`` — a dict of globally consistent relations
        (every remaining tuple participates in the full join) and the
        join tree used.
    """
    tree = JoinTree.build(hypergraph)
    relations = _relations_for(hypergraph, db)
    # Upward: parents lose tuples that no child supports.
    for node in tree.postorder():
        parent = tree.parent[node]
        if parent is not None:
            relations[parent] = relations[parent].semijoin(relations[node])
    # Downward: children lose tuples their parent no longer supports.
    for node in tree.preorder():
        for child in tree.children(node):
            relations[child] = relations[child].semijoin(relations[node])
    return relations, tree


def yannakakis_join(hypergraph, db):
    """The full natural join of an acyclic scheme, via Yannakakis.

    Joins are performed bottom-up along the join tree after full
    reduction, so no intermediate result contains dangling tuples.
    Disconnected components are combined with cartesian products (their
    join is genuinely a product).

    Returns:
        The join as a :class:`~repro.relational.relation.Relation`.
    """
    reduced, tree = full_reducer(hypergraph, db)
    partial = dict(reduced)
    for node in tree.postorder():
        parent = tree.parent[node]
        if parent is not None:
            partial[parent] = partial[parent].natural_join(partial[node])
    roots = tree.roots()
    result = partial[roots[0]]
    for root in roots[1:]:
        shared = set(result.schema.attributes) & set(
            partial[root].schema.attributes
        )
        if shared:
            result = result.natural_join(partial[root])
        else:
            result = result.product(partial[root])
    # Canonical column order so different plans compare equal directly.
    return result.project(sorted(result.schema.attributes))


def naive_join(hypergraph, db, order=None):
    """Baseline: fold natural joins in the given (or name) order.

    No reduction — intermediate results can dwarf both input and output,
    which is exactly the pathology Yannakakis eliminates.  When the
    scheme is disconnected, falls back to products for non-overlapping
    operands (mirroring :func:`yannakakis_join` so outputs match).
    """
    relations = _relations_for(hypergraph, db)
    names = order or hypergraph.names()
    pending = [relations[name] for name in names]
    result = pending[0]
    rest = pending[1:]
    while rest:
        # Prefer an operand sharing attributes; product only as last resort.
        index = next(
            (
                i
                for i, relation in enumerate(rest)
                if set(relation.schema.attributes)
                & set(result.schema.attributes)
            ),
            0,
        )
        operand = rest.pop(index)
        if set(operand.schema.attributes) & set(result.schema.attributes):
            result = result.natural_join(operand)
        else:
            result = result.product(operand)
    return result.project(sorted(result.schema.attributes))


def semijoin_program_size(hypergraph):
    """Number of semijoins the full reducer performs (2 * tree edges).

    A cost-model helper for the benchmarks and for the classical claim
    that the reducer is linear in the number of relations.
    """
    tree = JoinTree.build(hypergraph)
    return 2 * len(tree.edges())
