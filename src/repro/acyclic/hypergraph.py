"""Schema hypergraphs.

A database scheme is a hypergraph: vertices are attributes, hyperedges are
relation schemes.  Acyclicity of this hypergraph is the property behind
the universal-relation-era results the paper's Figure 3 files under
"relational theory" — and behind Yannakakis' algorithm, which makes joins
over acyclic schemes polynomial.
"""

from __future__ import annotations

from ..errors import HypergraphError


class Hypergraph:
    """A named-hyperedge hypergraph over attribute vertices.

    Args:
        edges: mapping ``name -> iterable of attributes``, or an iterable
            of attribute iterables (auto-named ``R0, R1, ...``).
    """

    __slots__ = ("edges",)

    def __init__(self, edges):
        self.edges = {}
        if isinstance(edges, dict):
            items = edges.items()
        else:
            items = (("R%d" % i, e) for i, e in enumerate(edges))
        for name, attributes in items:
            attributes = frozenset(attributes)
            if not attributes:
                raise HypergraphError("empty hyperedge %r" % (name,))
            if name in self.edges:
                raise HypergraphError("duplicate hyperedge name %r" % (name,))
            self.edges[name] = attributes

    @classmethod
    def from_schema(cls, db_schema):
        """Build from a :class:`~repro.relational.schema.DatabaseSchema`."""
        return cls(
            {name: schema.attributes for name, schema in db_schema.items()}
        )

    def vertices(self):
        """All attributes."""
        out = set()
        for attributes in self.edges.values():
            out |= attributes
        return frozenset(out)

    def names(self):
        return sorted(self.edges)

    def __len__(self):
        return len(self.edges)

    def __getitem__(self, name):
        try:
            return self.edges[name]
        except KeyError:
            raise HypergraphError("no hyperedge named %r" % (name,)) from None

    def __contains__(self, name):
        return name in self.edges

    def incident_edges(self, attribute):
        """Names of hyperedges containing an attribute."""
        return sorted(
            name
            for name, attributes in self.edges.items()
            if attribute in attributes
        )

    def remove(self, name):
        """A copy without the named hyperedge."""
        if name not in self.edges:
            raise HypergraphError("no hyperedge named %r" % (name,))
        remaining = {k: v for k, v in self.edges.items() if k != name}
        graph = Hypergraph.__new__(Hypergraph)
        graph.edges = remaining
        return graph

    def restrict_edge(self, name, attributes):
        """A copy with one hyperedge shrunk to ``attributes``."""
        attributes = frozenset(attributes)
        if not attributes:
            return self.remove(name)
        updated = dict(self.edges)
        updated[name] = attributes
        graph = Hypergraph.__new__(Hypergraph)
        graph.edges = updated
        return graph

    def __repr__(self):
        parts = [
            "%s{%s}" % (name, ",".join(sorted(attributes)))
            for name, attributes in sorted(self.edges.items())
        ]
        return "Hypergraph(%s)" % ", ".join(parts)


def chain_scheme(length, prefix="R"):
    """The acyclic chain scheme R0(a0,a1), R1(a1,a2), ... (bench workload)."""
    return Hypergraph(
        {
            "%s%d" % (prefix, i): ("a%d" % i, "a%d" % (i + 1))
            for i in range(length)
        }
    )


def star_scheme(rays, prefix="R"):
    """The acyclic star scheme R_i(center, a_i) (bench workload)."""
    return Hypergraph(
        {"%s%d" % (prefix, i): ("center", "a%d" % i) for i in range(rays)}
    )


def cycle_scheme(length, prefix="R"):
    """The canonical *cyclic* scheme: a ring of binary edges."""
    if length < 3:
        raise HypergraphError("a cycle scheme needs length >= 3")
    return Hypergraph(
        {
            "%s%d" % (prefix, i): (
                "a%d" % i,
                "a%d" % ((i + 1) % length),
            )
            for i in range(length)
        }
    )
