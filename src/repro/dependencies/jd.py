"""Join dependencies and fifth normal form (PJ/NF).

The last rung of the classical dependency ladder: a join dependency
``*(R1, ..., Rk)`` over scheme R asserts that R decomposes losslessly
into the components — equivalently, every instance equals the join of
its projections.  MVDs are exactly the binary JDs; the chase decides JD
implication (the decomposition tableau again), and **fifth normal form**
(projection-join normal form) says every implied nontrivial JD should
follow from the keys alone.
"""

from __future__ import annotations

from ..errors import DependencyError
from .chase import Tableau, chase
from .fd import FD, attrset, render_attrset
from .keys import candidate_keys


class JD:
    """A join dependency ``*(component_1, ..., component_k)``."""

    __slots__ = ("components",)

    def __init__(self, components):
        self.components = tuple(attrset(c) for c in components)
        if len(self.components) < 2:
            raise DependencyError("a JD needs at least two components")
        for component in self.components:
            if not component:
                raise DependencyError("JD with an empty component")

    def scheme(self):
        """The union of the components."""
        out = frozenset()
        for component in self.components:
            out |= component
        return out

    def attributes(self):
        return self.scheme()

    def is_trivial(self, scheme=None):
        """Trivial iff some component covers the whole scheme."""
        scheme = attrset(scheme) if scheme is not None else self.scheme()
        return any(scheme <= component for component in self.components)

    def holds_in(self, relation):
        """Does the instance equal the join of its projections?

        The spurious-tuple test, run literally.
        """
        projections = [
            relation.project(tuple(sorted(component)))
            for component in self.components
        ]
        joined = projections[0]
        for projection in projections[1:]:
            joined = joined.natural_join(projection)
        joined = joined.project(relation.schema.attributes)
        return joined.tuples == relation.tuples

    @classmethod
    def from_mvd(cls, mvd, scheme):
        """The binary JD equivalent to an MVD over ``scheme``."""
        scheme = attrset(scheme)
        y = (mvd.rhs & scheme) - mvd.lhs
        rest = scheme - y
        return cls([mvd.lhs | y, rest])

    def __eq__(self, other):
        return isinstance(other, JD) and set(other.components) == set(
            self.components
        )

    def __hash__(self):
        return hash(("JD", frozenset(self.components)))

    def __repr__(self):
        return "JD(%r)" % ([sorted(c) for c in self.components],)

    def __str__(self):
        return "*(%s)" % ", ".join(
            render_attrset(c) for c in self.components
        )


def chase_implies_jd(dependencies, jd, scheme=None):
    """Do the FDs/MVDs imply the JD?  (Decomposition-tableau chase.)

    Implied iff chasing the tableau with one row per component produces
    a fully distinguished row — Aho–Beeri–Ullman, verbatim.
    """
    scheme = attrset(scheme) if scheme is not None else jd.scheme()
    if not jd.scheme() <= scheme:
        raise DependencyError(
            "JD %s escapes the scheme %s" % (jd, render_attrset(scheme))
        )
    tableau = Tableau.for_decomposition(scheme, jd.components)
    chase(tableau, list(dependencies))
    return tableau.has_distinguished_row()


def key_fds(scheme, fds):
    """The FDs contributed by the candidate keys: key -> scheme."""
    scheme = attrset(scheme)
    return [
        FD(key, scheme - key)
        for key in candidate_keys(scheme, fds)
        if scheme - key
    ]


def is_5nf(scheme, fds, jds):
    """Fifth normal form over a *declared* set of JDs.

    A scheme is in 5NF (PJ/NF) w.r.t. its FDs and JDs when every
    declared nontrivial JD is already implied by the candidate keys.
    (The fully general definition quantifies over all implied JDs; the
    declared-set check is the practical criterion design texts use.)
    """
    scheme = attrset(scheme)
    keys = key_fds(scheme, fds)
    for jd in jds:
        if jd.is_trivial(scheme):
            continue
        if not chase_implies_jd(keys, jd, scheme=scheme):
            return False
    return True


def decompose_5nf(scheme, fds, jds):
    """Split along declared JDs that violate 5NF.

    Each violating JD's components become fragments (lossless by the
    JD's own semantics); fragments are then checked recursively against
    the JDs projected onto them (a JD projects onto a fragment as the
    components intersected with it, when at least two stay nonempty).
    """
    scheme = attrset(scheme)
    worklist = [scheme]
    result = []
    while worklist:
        fragment = worklist.pop()
        violating = None
        for jd in jds:
            restricted = _project_jd(jd, fragment)
            if restricted is None or restricted.is_trivial(fragment):
                continue
            keys = key_fds(fragment, fds)
            if not chase_implies_jd(keys, restricted, scheme=fragment):
                violating = restricted
                break
        if violating is None:
            result.append(fragment)
            continue
        for component in violating.components:
            if component != fragment:
                worklist.append(component)
    return sorted(set(result), key=lambda f: (len(f), sorted(f)))


def _project_jd(jd, fragment):
    components = [c & fragment for c in jd.components]
    components = [c for c in components if c]
    covered = frozenset().union(*components) if components else frozenset()
    if len(components) < 2 or covered != fragment:
        return None
    return JD(components)
