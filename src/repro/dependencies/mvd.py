"""Multivalued dependencies and fourth normal form.

An MVD ``X ->> Y`` over scheme R holds when, fixing X, the Y-values and
the (R - X - Y)-values vary independently — equivalently, R decomposes
losslessly into XY and X(R-Y).  MVDs are the dependencies of the
"non-flat data" boundary: they are exactly what join dependencies of two
components look like, and 4NF is BCNF's analogue for them.
"""

from __future__ import annotations

import itertools

from ..errors import DependencyError
from .fd import attrset, render_attrset


class MVD:
    """A multivalued dependency ``lhs ->> rhs``."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs):
        self.lhs = attrset(lhs)
        self.rhs = attrset(rhs)
        if not self.rhs:
            raise DependencyError("MVD with empty right-hand side")

    @classmethod
    def parse(cls, text):
        """Parse ``"A ->> B C"`` style MVD text."""
        if "->>" not in text:
            raise DependencyError("MVD text needs '->>': %r" % (text,))
        left, right = text.split("->>", 1)
        return cls(attrset(left), attrset(right))

    def attributes(self):
        return self.lhs | self.rhs

    def is_trivial(self, scheme):
        """Trivial iff Y ⊆ X or X ∪ Y = R."""
        scheme = attrset(scheme)
        y = self.rhs & scheme
        return y <= self.lhs or (self.lhs | y) == scheme

    def holds_in(self, relation):
        """Check the MVD against a concrete relation instance.

        Uses the exchange definition: for tuples t1, t2 agreeing on X,
        the tuple taking Y from t1 and the rest from t2 must be present.
        """
        schema = relation.schema
        scheme = frozenset(schema.attributes)
        y = (self.rhs & scheme) - self.lhs
        lhs_pos = [schema.position(a) for a in sorted(self.lhs)]
        y_pos = [schema.position(a) for a in sorted(y)]
        groups = {}
        for tup in relation.tuples:
            groups.setdefault(tuple(tup[p] for p in lhs_pos), []).append(tup)
        present = relation.tuples
        for rows in groups.values():
            for t1, t2 in itertools.product(rows, repeat=2):
                swapped = list(t2)
                for p in y_pos:
                    swapped[p] = t1[p]
                if tuple(swapped) not in present:
                    return False
        return True

    def complement(self, scheme):
        """The complementation-rule partner ``X ->> R - X - Y``."""
        scheme = attrset(scheme)
        rest = scheme - self.lhs - self.rhs
        if not rest:
            raise DependencyError(
                "complement of %s over %s is empty" % (self, sorted(scheme))
            )
        return MVD(self.lhs, rest)

    def __eq__(self, other):
        return (
            isinstance(other, MVD)
            and other.lhs == self.lhs
            and other.rhs == self.rhs
        )

    def __hash__(self):
        return hash(("MVD", self.lhs, self.rhs))

    def __repr__(self):
        return "MVD(%r, %r)" % (sorted(self.lhs), sorted(self.rhs))

    def __str__(self):
        return "%s ->> %s" % (
            render_attrset(self.lhs),
            render_attrset(self.rhs),
        )


def fd_as_mvd(fd):
    """Every FD is an MVD (the classical inclusion)."""
    return MVD(fd.lhs, fd.rhs)


def is_4nf(scheme, dependencies):
    """Is the scheme in fourth normal form?

    4NF: for every implied non-trivial MVD ``X ->> Y`` (with XY ⊆ R), X is
    a superkey.  Implication is decided by the chase over the FDs and MVDs
    given; candidate MVDs are enumerated over the scheme (exponential, as
    the definition demands — design-sized schemes only).
    """
    from .chase import chase_implies_mvd
    from .fd import FD
    from .keys import is_superkey

    scheme = attrset(scheme)
    fds = [d for d in dependencies if isinstance(d, FD)]
    members = sorted(scheme)
    for r in range(0, len(members)):
        for lhs in itertools.combinations(members, r):
            lhs_set = frozenset(lhs)
            for r2 in range(1, len(members) + 1):
                for rhs in itertools.combinations(members, r2):
                    mvd = MVD(lhs_set or frozenset(), frozenset(rhs))
                    if not mvd.lhs:
                        continue
                    if mvd.is_trivial(scheme):
                        continue
                    if not chase_implies_mvd(
                        dependencies, mvd, scheme=scheme
                    ):
                        continue
                    if not is_superkey(mvd.lhs, scheme, fds):
                        return False
    return True


def violating_mvd(scheme, dependencies):
    """A non-trivial implied MVD whose lhs is not a superkey, or None."""
    from .chase import chase_implies_mvd
    from .fd import FD
    from .keys import is_superkey

    scheme = attrset(scheme)
    fds = [d for d in dependencies if isinstance(d, FD)]
    members = sorted(scheme)
    for r in range(1, len(members)):
        for lhs in itertools.combinations(members, r):
            lhs_set = frozenset(lhs)
            if is_superkey(lhs_set, scheme, fds):
                continue
            for r2 in range(1, len(members) + 1):
                for rhs in itertools.combinations(members, r2):
                    mvd = MVD(lhs_set, frozenset(rhs))
                    if mvd.is_trivial(scheme):
                        continue
                    if chase_implies_mvd(dependencies, mvd, scheme=scheme):
                        return mvd
    return None


def decompose_4nf(scheme, dependencies):
    """Decompose a scheme into 4NF fragments (lossless by construction).

    The BCNF-style loop: while some fragment violates 4NF via MVD
    ``X ->> Y``, split it into XY and X(R - Y).
    """
    worklist = [attrset(scheme)]
    result = []
    while worklist:
        fragment = worklist.pop()
        mvd = violating_mvd(fragment, dependencies)
        if mvd is None:
            result.append(fragment)
            continue
        y = (mvd.rhs & fragment) - mvd.lhs
        left = mvd.lhs | y
        right = fragment - y
        if left == fragment or right == fragment:
            result.append(fragment)  # degenerate split; fragment is final
            continue
        worklist.append(left)
        worklist.append(right)
    return sorted(result, key=lambda f: (len(f), sorted(f)))
