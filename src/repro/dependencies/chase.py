"""The chase: tableau reasoning for dependencies.

The chase is dependency theory's universal tool — it decides losslessness
of decompositions, implication of FDs and MVDs (and join dependencies),
and underlies the universal-relation results of the era the paper's
Figure 3 charts as "relational theory".

A **tableau** is a relation of variables: *distinguished* variables (one
per attribute, shared across rows) and *nondistinguished* ones (unique per
cell unless equated).  Chasing applies dependencies as rewrite rules:

* an FD ``X -> Y`` equates the Y-variables of rows agreeing on X
  (preferring distinguished variables as representatives);
* an MVD ``X ->> Y`` adds the "swapped" row for rows agreeing on X.

For FDs alone the chase terminates and is confluent; with MVDs it still
terminates over the tableau's finite variable population (the classical
argument), which the implementation relies on.
"""

from __future__ import annotations

import itertools

from ..errors import ChaseError
from .fd import FD, attrset

# Variables are small tuples: ("d", attribute) for distinguished,
# ("n", counter) for nondistinguished.


def distinguished(attribute):
    """The distinguished variable for an attribute."""
    return ("d", attribute)


def is_distinguished(variable):
    return variable[0] == "d"


class Tableau:
    """A tableau over an ordered attribute tuple."""

    __slots__ = ("attributes", "rows", "_counter")

    def __init__(self, attributes, rows=None):
        self.attributes = tuple(attributes)
        self.rows = [tuple(row) for row in rows or []]
        self._counter = itertools.count()

    @classmethod
    def for_decomposition(cls, scheme, fragments):
        """The lossless-join tableau: one row per fragment.

        Row i has the distinguished variable in the columns of fragment i
        and fresh nondistinguished variables elsewhere (Aho–Beeri–Ullman).
        """
        scheme = tuple(sorted(attrset(scheme)))
        tableau = cls(scheme)
        for i, fragment in enumerate(fragments):
            fragment = attrset(fragment)
            if not fragment <= frozenset(scheme):
                raise ChaseError(
                    "fragment %r not contained in scheme %r"
                    % (sorted(fragment), list(scheme))
                )
            row = tuple(
                distinguished(a) if a in fragment else tableau.fresh()
                for a in scheme
            )
            tableau.rows.append(row)
        return tableau

    def fresh(self):
        return ("n", next(self._counter))

    def position(self, attribute):
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise ChaseError(
                "attribute %r not in tableau %r" % (attribute, self.attributes)
            ) from None

    def has_distinguished_row(self):
        """Does some row consist entirely of distinguished variables?"""
        return any(
            all(is_distinguished(v) for v in row) for row in self.rows
        )

    def copy(self):
        dup = Tableau(self.attributes, self.rows)
        dup._counter = itertools.count(
            max(
                (v[1] + 1 for row in self.rows for v in row if v[0] == "n"),
                default=0,
            )
        )
        return dup

    def __repr__(self):
        return "Tableau(%d cols, %d rows)" % (len(self.attributes), len(self.rows))

    def pretty(self):
        def cell(v):
            return v[1] if is_distinguished(v) else "n%d" % v[1]

        header = " | ".join(self.attributes)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(" | ".join(cell(v) for v in row))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chase steps
# ---------------------------------------------------------------------------


def _apply_fd(tableau, fd):
    """One FD chase round; returns True if anything changed."""
    lhs_pos = [tableau.position(a) for a in sorted(fd.lhs)]
    rhs_pos = [tableau.position(a) for a in sorted(fd.rhs)]
    changed = False
    groups = {}
    for row in tableau.rows:
        groups.setdefault(tuple(row[p] for p in lhs_pos), []).append(row)
    substitution = {}
    for rows in groups.values():
        if len(rows) < 2:
            continue
        for p in rhs_pos:
            variables = {_find(substitution, row[p]) for row in rows}
            if len(variables) > 1:
                representative = _choose_representative(variables)
                for variable in variables:
                    if variable != representative:
                        substitution[variable] = representative
                changed = True
    if changed:
        tableau.rows = [
            tuple(_find(substitution, v) for v in row) for row in tableau.rows
        ]
        tableau.rows = _dedupe(tableau.rows)
    return changed


def _find(substitution, variable):
    while variable in substitution:
        variable = substitution[variable]
    return variable


def _choose_representative(variables):
    """Prefer distinguished variables; break ties deterministically."""
    return min(
        variables, key=lambda v: (0 if is_distinguished(v) else 1, repr(v))
    )


def _apply_mvd(tableau, mvd):
    """One MVD chase round (tuple-generating); True if rows were added."""
    lhs_pos = [tableau.position(a) for a in sorted(mvd.lhs)]
    scheme = frozenset(tableau.attributes)
    y = mvd.rhs & scheme
    swap_pos = [tableau.position(a) for a in sorted(y - mvd.lhs)]
    existing = set(tableau.rows)
    added = False
    groups = {}
    for row in tableau.rows:
        groups.setdefault(tuple(row[p] for p in lhs_pos), []).append(row)
    for rows in groups.values():
        for r1 in rows:
            for r2 in rows:
                if r1 is r2:
                    continue
                new_row = list(r1)
                for p in swap_pos:
                    new_row[p] = r2[p]
                new_row = tuple(new_row)
                if new_row not in existing:
                    existing.add(new_row)
                    tableau.rows.append(new_row)
                    added = True
    return added


def _dedupe(rows):
    seen = set()
    out = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def chase(tableau, dependencies, max_rounds=10000):
    """Chase a tableau to fixpoint under FDs and MVDs (in place).

    Returns the tableau.  ``max_rounds`` guards against implementation
    bugs; the chase itself terminates on these dependency classes.
    """
    from .mvd import MVD

    for _ in range(max_rounds):
        changed = False
        for dependency in dependencies:
            if isinstance(dependency, FD):
                changed |= _apply_fd(tableau, dependency)
            elif isinstance(dependency, MVD):
                changed |= _apply_mvd(tableau, dependency)
            else:
                raise ChaseError(
                    "chase handles FDs and MVDs, got %r" % (dependency,)
                )
        if not changed:
            return tableau
    raise ChaseError("chase did not terminate in %d rounds" % max_rounds)


# ---------------------------------------------------------------------------
# Classical chase applications
# ---------------------------------------------------------------------------


def is_lossless_join(scheme, fragments, dependencies):
    """Aho–Beeri–Ullman test: does the decomposition have a lossless join?

    Chase the decomposition tableau; lossless iff a fully-distinguished
    row appears.
    """
    tableau = Tableau.for_decomposition(scheme, fragments)
    chase(tableau, dependencies)
    return tableau.has_distinguished_row()


def chase_implies_fd(dependencies, fd, scheme=None):
    """Does a set of FDs/MVDs imply an FD?  (Two-row tableau chase.)

    Build two rows agreeing exactly on lhs; chase; implied iff the rhs
    variables have been equated.
    """
    scheme = _infer_scheme(dependencies, fd, scheme)
    tableau = Tableau(scheme)
    row1 = tuple(distinguished(a) for a in scheme)
    row2 = tuple(
        distinguished(a) if a in fd.lhs else tableau.fresh() for a in scheme
    )
    tableau.rows = [row1, row2]
    chase(tableau, dependencies)
    rhs_pos = [tableau.position(a) for a in sorted(fd.rhs)]
    for r1 in tableau.rows:
        for r2 in tableau.rows:
            lhs_pos = [tableau.position(a) for a in sorted(fd.lhs)]
            if all(r1[p] == r2[p] for p in lhs_pos):
                if not all(r1[p] == r2[p] for p in rhs_pos):
                    return False
    return True


def chase_implies_mvd(dependencies, mvd, scheme=None):
    """Does a set of FDs/MVDs imply an MVD?  (Two-row tableau chase.)

    Implied iff the chased tableau contains the "swapped" target row.
    """
    scheme = _infer_scheme(dependencies, mvd, scheme)
    tableau = Tableau(scheme)
    row1 = tuple(distinguished(a) for a in scheme)
    fresh = {a: tableau.fresh() for a in scheme}
    row2 = tuple(
        distinguished(a) if a in mvd.lhs else fresh[a] for a in scheme
    )
    tableau.rows = [row1, row2]
    chase(tableau, dependencies)
    y = (mvd.rhs & frozenset(scheme)) - mvd.lhs
    target = tuple(
        distinguished(a)
        if a in mvd.lhs or a in y
        else fresh[a]
        for a in scheme
    )
    return target in set(tableau.rows)


def _infer_scheme(dependencies, dependency, scheme):
    if scheme is not None:
        return tuple(sorted(attrset(scheme)))
    attributes = set(dependency.attributes())
    for d in dependencies:
        attributes |= d.attributes()
    return tuple(sorted(attributes))
