"""Candidate keys and prime attributes.

A key of scheme R under F is a minimal attribute set whose closure is all
of R.  Key enumeration is the gateway test for every normal form, and is
NP-hard in general — the implementation uses the standard pruning (seeds
from attributes missing from all right sides) and is comfortably fast on
design-sized schemes.
"""

from __future__ import annotations

import itertools

from .armstrong import attribute_closure
from .fd import attrset, fds_attributes


def is_superkey(attributes, scheme, fds):
    """Does ``attributes`` functionally determine the whole scheme?"""
    return attrset(scheme) <= attribute_closure(attributes, fds)


def is_candidate_key(attributes, scheme, fds):
    """Superkey with no proper superkey subset."""
    attributes = attrset(attributes)
    if not is_superkey(attributes, scheme, fds):
        return False
    return all(
        not is_superkey(attributes - {a}, scheme, fds) for a in attributes
    )


def candidate_keys(scheme, fds):
    """All candidate keys of ``scheme`` under ``fds``.

    Every key must contain the attributes that appear in no FD right side
    (nothing else can derive them); the search enumerates extensions of
    that core by subset size, pruning supersets of found keys.

    Returns:
        A list of frozensets, sorted by (size, lexicographic).
    """
    scheme = attrset(scheme)
    in_rhs = set()
    for fd in fds:
        in_rhs |= fd.rhs & scheme
    core = scheme - in_rhs  # attributes derivable only from themselves
    candidates = []
    others = sorted(scheme - core)
    if is_superkey(core, scheme, fds):
        return [frozenset(core)]
    for r in range(1, len(others) + 1):
        for extra in itertools.combinations(others, r):
            candidate = core | frozenset(extra)
            if any(key <= candidate for key in candidates):
                continue
            if is_superkey(candidate, scheme, fds):
                candidates.append(frozenset(candidate))
    return sorted(candidates, key=lambda k: (len(k), sorted(k)))


def prime_attributes(scheme, fds):
    """Attributes belonging to at least one candidate key."""
    out = set()
    for key in candidate_keys(scheme, fds):
        out |= key
    return frozenset(out)


def key_of(fds, scheme=None):
    """One (arbitrary but deterministic) candidate key.

    The classical shrink algorithm: start from the full scheme, drop
    attributes while the rest remains a superkey.  Linear number of
    closure computations — used where any key will do (e.g. the 3NF
    synthesis "ensure a key scheme" step).
    """
    if scheme is None:
        scheme = fds_attributes(fds)
    scheme = attrset(scheme)
    key = set(scheme)
    for attribute in sorted(scheme):
        if is_superkey(key - {attribute}, scheme, fds):
            key.discard(attribute)
    return frozenset(key)
