"""Minimal covers of FD sets.

A *minimal (canonical) cover* of F is an equivalent FD set in which every
right side is a single attribute, no left side has a redundant attribute,
and no FD is redundant.  Design algorithms (3NF synthesis in particular)
start from a minimal cover, and the classical theorem says one always
exists.
"""

from __future__ import annotations

from .armstrong import attribute_closure, equivalent, implies
from .fd import FD


def split_rhs(fds):
    """Replace each FD by its single-attribute-rhs decomposition."""
    out = []
    for fd in fds:
        out.extend(fd.decompose())
    return out


def remove_extraneous_lhs(fds):
    """Drop attributes from left sides that the rest of F can supply.

    An attribute A in X of ``X -> B`` is extraneous when
    ``(X - A)+ ⊇ {B}`` under F.
    """
    fds = list(fds)
    changed = True
    while changed:
        changed = False
        for i, fd in enumerate(fds):
            if len(fd.lhs) <= 1:
                continue
            for attribute in sorted(fd.lhs):
                reduced = fd.lhs - {attribute}
                if fd.rhs <= attribute_closure(reduced, fds):
                    fds[i] = FD(reduced, fd.rhs)
                    changed = True
                    break
            if changed:
                break
    return fds


def remove_redundant_fds(fds):
    """Drop FDs implied by the others."""
    fds = list(fds)
    i = 0
    while i < len(fds):
        candidate = fds[i]
        rest = fds[:i] + fds[i + 1:]
        if implies(rest, candidate):
            fds = rest
        else:
            i += 1
    return fds


def minimal_cover(fds):
    """A minimal cover of F (single-attribute right sides).

    The classical three-phase algorithm: split right sides, minimize left
    sides, drop redundant FDs.  The result is equivalent to F (asserted by
    a property test) and deterministic given the input order.
    """
    out = split_rhs(fds)
    out = remove_extraneous_lhs(out)
    out = remove_redundant_fds(out)
    return out


def canonical_cover(fds):
    """A minimal cover with same-lhs FDs merged back together.

    Some texts call this the canonical form; 3NF synthesis uses it so that
    each left side yields a single scheme.
    """
    minimal = minimal_cover(fds)
    grouped = {}
    for fd in minimal:
        grouped.setdefault(fd.lhs, set()).update(fd.rhs)
    return [
        FD(lhs, rhs)
        for lhs, rhs in sorted(
            grouped.items(), key=lambda kv: (sorted(kv[0]), sorted(kv[1]))
        )
    ]


def is_minimal(fds):
    """Check the three minimality conditions directly."""
    if any(len(fd.rhs) != 1 for fd in fds):
        return False
    if remove_extraneous_lhs(list(fds)) != list(fds):
        return False
    return len(remove_redundant_fds(list(fds))) == len(list(fds))


def cover_is_equivalent(original, cover):
    """Sanity helper: is ``cover`` equivalent to ``original``?"""
    return equivalent(list(original), list(cover))
