"""Functional dependencies and attribute-set utilities.

The raw material of "the need and importance of normalization in
relational databases, and the role played by dependencies in it" (§2(c)).
An FD ``X -> Y`` over a relation scheme says: tuples agreeing on X agree
on Y.  Attribute sets are frozensets of attribute names throughout the
package.
"""

from __future__ import annotations

from ..errors import DependencyError


def attrset(attributes):
    """Normalize to a frozenset of attribute names.

    Accepts an iterable of names, a whitespace/comma-separated string
    (``"A B"`` or ``"A,B"``), or a single name.
    """
    if isinstance(attributes, str):
        parts = attributes.replace(",", " ").split()
        return frozenset(parts)
    return frozenset(attributes)


def render_attrset(attributes):
    """Deterministic display form of an attribute set."""
    return "".join(sorted(attributes)) if attributes else "{}"


class FD:
    """A functional dependency ``lhs -> rhs``.

    Both sides are attribute sets; the right side may not be empty
    (trivially empty FDs carry no information and only complicate
    algorithms).
    """

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs):
        self.lhs = attrset(lhs)
        self.rhs = attrset(rhs)
        if not self.rhs:
            raise DependencyError("FD with empty right-hand side")

    @classmethod
    def parse(cls, text):
        """Parse ``"A B -> C"`` / ``"AB→C"`` style FD text."""
        arrow = "->" if "->" in text else ("→" if "→" in text else None)
        if arrow is None:
            raise DependencyError("FD text needs an arrow: %r" % (text,))
        left, right = text.split(arrow, 1)
        return cls(attrset(left), attrset(right))

    def is_trivial(self):
        """Trivial iff rhs ⊆ lhs (holds in every relation)."""
        return self.rhs <= self.lhs

    def attributes(self):
        return self.lhs | self.rhs

    def decompose(self):
        """Split into single-attribute-rhs FDs (Armstrong decomposition)."""
        return [FD(self.lhs, {a}) for a in sorted(self.rhs)]

    def holds_in(self, relation):
        """Check the FD against a concrete relation instance."""
        positions_lhs = [relation.schema.position(a) for a in sorted(self.lhs)]
        positions_rhs = [relation.schema.position(a) for a in sorted(self.rhs)]
        seen = {}
        for tup in relation.tuples:
            key = tuple(tup[p] for p in positions_lhs)
            image = tuple(tup[p] for p in positions_rhs)
            if seen.setdefault(key, image) != image:
                return False
        return True

    def __eq__(self, other):
        return (
            isinstance(other, FD)
            and other.lhs == self.lhs
            and other.rhs == self.rhs
        )

    def __hash__(self):
        return hash(("FD", self.lhs, self.rhs))

    def __repr__(self):
        return "FD(%r, %r)" % (sorted(self.lhs), sorted(self.rhs))

    def __str__(self):
        return "%s -> %s" % (render_attrset(self.lhs), render_attrset(self.rhs))


def parse_fds(text):
    """Parse semicolon- or newline-separated FDs.

    Example::

        parse_fds("A -> B; B -> C")
    """
    fds = []
    for chunk in text.replace(";", "\n").splitlines():
        chunk = chunk.strip()
        if chunk:
            fds.append(FD.parse(chunk))
    return fds


def fds_attributes(fds):
    """All attributes mentioned by a collection of FDs."""
    out = set()
    for fd in fds:
        out |= fd.attributes()
    return frozenset(out)


def satisfies_all(relation, fds):
    """Does the relation satisfy every FD?"""
    return all(fd.holds_in(relation) for fd in fds)


def violations(relation, fds):
    """The FDs the relation violates (for design-tool reporting)."""
    return [fd for fd in fds if not fd.holds_in(relation)]
