"""Armstrong's axioms: closure, implication, derivations, Armstrong relations.

The inference system {reflexivity, augmentation, transitivity} is sound and
complete for FDs — the founding theorem of dependency theory.  This module
provides:

* :func:`attribute_closure` — the linear-ish closure algorithm X+;
* :func:`implies` / :func:`closure` — FD implication and the (exponential)
  full closure F+;
* :func:`derive` — an explicit axiom-by-axiom derivation certificate for an
  implied FD, demonstrating completeness constructively;
* :func:`armstrong_relation` — a witness relation satisfying *exactly* the
  dependencies in F+ (Armstrong's existence theorem), the classical tool
  for showing non-implication.
"""

from __future__ import annotations

import itertools

from ..errors import DependencyError
from .fd import FD, attrset, fds_attributes


def attribute_closure(attributes, fds):
    """X+ — all attributes functionally determined by ``attributes``.

    The standard fixpoint: repeatedly fire FDs whose left side is covered.
    """
    closure_set = set(attrset(attributes))
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.lhs <= closure_set and not fd.rhs <= closure_set:
                closure_set |= fd.rhs
                changed = True
    return frozenset(closure_set)


def implies(fds, fd):
    """Does F logically imply ``fd``?  (Via X+ — sound and complete.)"""
    return fd.rhs <= attribute_closure(fd.lhs, fds)


def equivalent(fds_a, fds_b):
    """Do two FD sets imply each other (F ≡ G)?"""
    return all(implies(fds_a, fd) for fd in fds_b) and all(
        implies(fds_b, fd) for fd in fds_a
    )


def closure(fds, attributes=None):
    """F+ restricted to ``attributes`` — every implied non-trivial FD.

    Exponential in the number of attributes by necessity; intended for the
    small schemes of design problems and tests.
    """
    if attributes is None:
        attributes = fds_attributes(fds)
    attributes = attrset(attributes)
    out = set()
    members = sorted(attributes)
    for r in range(1, len(members) + 1):
        for lhs in itertools.combinations(members, r):
            lhs_set = frozenset(lhs)
            closed = attribute_closure(lhs_set, fds) & attributes
            rhs = closed - lhs_set
            if rhs:
                out.add(FD(lhs_set, rhs))
    return out


def project(fds, attributes):
    """Projection of F onto a subset of attributes: {X->Y in F+ : XY ⊆ Z}.

    This is what decomposition hands each fragment; dependency
    preservation compares the union of projections against F.
    """
    attributes = attrset(attributes)
    projected = set()
    members = sorted(attributes)
    for r in range(1, len(members) + 1):
        for lhs in itertools.combinations(members, r):
            lhs_set = frozenset(lhs)
            rhs = (attribute_closure(lhs_set, fds) & attributes) - lhs_set
            if rhs:
                projected.add(FD(lhs_set, rhs))
    return projected


# ---------------------------------------------------------------------------
# Derivations: constructive completeness
# ---------------------------------------------------------------------------


class DerivationStep:
    """One application of an Armstrong axiom.

    Attributes:
        fd: the derived FD.
        rule: ``"given"``, ``"reflexivity"``, ``"augmentation"``,
            ``"transitivity"``, or ``"union"`` (the standard derived rule,
            itself expandable into the primitives).
        premises: indices of earlier steps used.
    """

    __slots__ = ("fd", "rule", "premises")

    def __init__(self, fd, rule, premises=()):
        self.fd = fd
        self.rule = rule
        self.premises = tuple(premises)

    def __repr__(self):
        return "DerivationStep(%s, %s, %r)" % (self.fd, self.rule, self.premises)

    def __str__(self):
        if self.premises:
            return "%s  [%s from %s]" % (
                self.fd,
                self.rule,
                ",".join(str(p) for p in self.premises),
            )
        return "%s  [%s]" % (self.fd, self.rule)


def derive(fds, goal):
    """A derivation of ``goal`` from ``fds`` using Armstrong's axioms.

    Mirrors the closure computation, recording which FD fired when, then
    assembles transitivity/augmentation steps.  Returns a list of
    :class:`DerivationStep`; raises :class:`DependencyError` if the goal
    is not implied.
    """
    if not implies(fds, goal):
        raise DependencyError(
            "%s is not implied by the given FDs" % (goal,)
        )
    steps = []
    index_of = {}

    def add(fd, rule, premises=()):
        key = (fd.lhs, fd.rhs)
        if key in index_of:
            return index_of[key]
        steps.append(DerivationStep(fd, rule, premises))
        index_of[key] = len(steps) - 1
        return len(steps) - 1

    # Step 0: X -> X by reflexivity.
    current = frozenset(goal.lhs)
    current_step = add(FD(goal.lhs, goal.lhs), "reflexivity")
    # Fire FDs as in the closure loop; each firing is augmentation (to pad
    # the left side up to the current closure) followed by transitivity.
    changed = True
    while changed and not goal.rhs <= current:
        changed = False
        for fd in fds:
            if fd.lhs <= current and not fd.rhs <= current:
                given = add(fd, "given")
                # Augment the given FD's both sides by (current - lhs):
                # current -> current ∪ rhs.
                pad = current - fd.lhs
                augmented = FD(fd.lhs | pad, fd.rhs | pad)
                aug_step = add(augmented, "augmentation", (given,))
                new_set = current | fd.rhs
                trans = FD(goal.lhs, new_set)
                current_step = add(
                    trans, "transitivity", (current_step, aug_step)
                )
                current = frozenset(new_set)
                changed = True
    # Final projection: goal.lhs -> goal.rhs by reflexivity+transitivity
    # (decomposition, presented as the derived "union/decomposition" rule).
    if goal.rhs != current:
        proj = add(FD(current, goal.rhs), "reflexivity")
        add(goal, "transitivity", (current_step, proj))
    return steps


# ---------------------------------------------------------------------------
# Armstrong relations
# ---------------------------------------------------------------------------


def armstrong_relation(fds, attributes=None, name="armstrong"):
    """A relation satisfying exactly F+ (Armstrong's existence theorem).

    Construction: one "agreement tuple" per closed attribute set — for each
    X+, add a tuple agreeing with the base tuple precisely on X+.  The
    resulting instance satisfies every FD in F+ and violates every
    non-implied FD.

    Returns:
        A :class:`~repro.relational.relation.Relation`.
    """
    from ..relational.relation import Relation
    from ..relational.schema import RelationSchema

    if attributes is None:
        attributes = fds_attributes(fds)
    attributes = sorted(attrset(attributes))
    if not attributes:
        raise DependencyError("need at least one attribute")

    closed_sets = {frozenset(attributes)}
    for r in range(0, len(attributes) + 1):
        for subset in itertools.combinations(attributes, r):
            closed_sets.add(attribute_closure(subset, fds) & frozenset(attributes))

    schema = RelationSchema(name, attributes)
    tuples = [tuple(0 for _ in attributes)]  # base tuple
    for i, closed in enumerate(
        sorted(closed_sets, key=lambda s: (len(s), sorted(s))), start=1
    ):
        row = tuple(
            0 if attribute in closed else i
            for attribute in attributes
        )
        tuples.append(row)
    return Relation(schema, tuples)


def verify_armstrong(relation, fds):
    """Check the defining property of an Armstrong relation.

    Returns:
        ``(satisfied_ok, violated_ok)`` — whether every implied FD holds
        and every non-implied FD (over the relation's attributes) fails.
    """
    attributes = frozenset(relation.schema.attributes)
    implied = closure(fds, attributes)
    satisfied_ok = all(fd.holds_in(relation) for fd in implied)
    violated_ok = True
    members = sorted(attributes)
    for r in range(1, len(members)):
        for lhs in itertools.combinations(members, r):
            lhs_set = frozenset(lhs)
            for rhs_attr in members:
                if rhs_attr in lhs_set:
                    continue
                fd = FD(lhs_set, {rhs_attr})
                if not implies(fds, fd) and fd.holds_in(relation):
                    violated_ok = False
    return satisfied_ok, violated_ok
