"""Normal forms: tests, BCNF decomposition, and 3NF synthesis.

"Normalization and dependency theory, for all its innumerable tangents,
has reached practice in the form of database design tools" (§6) — these
are the algorithms those tools run:

* normal-form *tests* for 2NF, 3NF, and BCNF;
* the classical **BCNF decomposition** loop (lossless, not always
  dependency preserving);
* the classical **3NF synthesis** from a canonical cover (lossless *and*
  dependency preserving — the textbook trade-off, which the tests assert
  on random schemas).
"""

from __future__ import annotations

from ..errors import NormalizationError
from .armstrong import attribute_closure, project
from .chase import is_lossless_join
from .cover import canonical_cover
from .fd import FD, attrset
from .keys import candidate_keys, is_superkey, key_of, prime_attributes

# ---------------------------------------------------------------------------
# Tests
# ---------------------------------------------------------------------------


def violates_bcnf(scheme, fds):
    """A non-trivial FD (over the scheme) whose lhs is not a superkey.

    Checks the *projected* dependencies via attribute closures, so it is
    correct for fragments of a decomposition, not only whole schemes.
    Returns the violating FD (with maximal rhs) or None.
    """
    scheme = attrset(scheme)
    import itertools

    members = sorted(scheme)
    for r in range(1, len(members)):
        for lhs in itertools.combinations(members, r):
            lhs_set = frozenset(lhs)
            closed = attribute_closure(lhs_set, fds) & scheme
            rhs = closed - lhs_set
            if rhs and not scheme <= attribute_closure(lhs_set, fds):
                return FD(lhs_set, rhs)
    return None


def is_bcnf(scheme, fds):
    """Boyce–Codd normal form: every determinant is a superkey."""
    return violates_bcnf(scheme, fds) is None


def is_3nf(scheme, fds):
    """Third normal form: lhs superkey or rhs attributes prime.

    Checked over the projection of F onto the scheme.
    """
    scheme = attrset(scheme)
    prime = prime_attributes(scheme, list(project(fds, scheme)))
    for fd in project(fds, scheme):
        if fd.is_trivial():
            continue
        if is_superkey(fd.lhs, scheme, fds):
            continue
        if not (fd.rhs - fd.lhs) <= prime:
            return False
    return True


def is_2nf(scheme, fds):
    """Second normal form: no partial dependency of a non-prime attribute.

    A non-prime attribute may not depend on a *proper subset* of a
    candidate key.
    """
    scheme = attrset(scheme)
    projected = list(project(fds, scheme))
    keys = candidate_keys(scheme, projected)
    prime = prime_attributes(scheme, projected)
    non_prime = scheme - prime
    import itertools

    for key in keys:
        if len(key) < 2:
            continue
        for r in range(1, len(key)):
            for part in itertools.combinations(sorted(key), r):
                closed = attribute_closure(part, projected) & scheme
                if (closed - frozenset(part)) & non_prime:
                    return False
    return True


def normal_form_level(scheme, fds):
    """Highest classical normal form satisfied: "1NF", "2NF", "3NF", "BCNF".

    (1NF is free in the relational model — attributes are atomic by
    construction.)
    """
    if is_bcnf(scheme, fds):
        return "BCNF"
    if is_3nf(scheme, fds):
        return "3NF"
    if is_2nf(scheme, fds):
        return "2NF"
    return "1NF"


# ---------------------------------------------------------------------------
# BCNF decomposition
# ---------------------------------------------------------------------------


def bcnf_decompose(scheme, fds):
    """Lossless BCNF decomposition by the classical splitting loop.

    While a fragment has a violating FD ``X -> Y``, replace it by
    ``X ∪ (closure(X) ∩ fragment)`` and ``fragment - (closure - X)``.
    Lossless at every step (each split is along an FD); dependency
    preservation is *not* guaranteed — :func:`preserves_dependencies`
    reports whether it happened to hold, as a design tool would.
    """
    worklist = [attrset(scheme)]
    result = []
    while worklist:
        fragment = worklist.pop()
        if len(fragment) <= 2:
            result.append(fragment)
            continue
        violation = violates_bcnf(fragment, fds)
        if violation is None:
            result.append(fragment)
            continue
        closed = attribute_closure(violation.lhs, fds) & fragment
        left = closed
        right = (fragment - closed) | violation.lhs
        if left == fragment or right == fragment:
            result.append(fragment)
            continue
        worklist.append(left)
        worklist.append(right)
    return sorted(set(result), key=lambda f: (len(f), sorted(f)))


# ---------------------------------------------------------------------------
# 3NF synthesis
# ---------------------------------------------------------------------------


def synthesize_3nf(scheme, fds):
    """The 3NF synthesis algorithm (Bernstein): lossless and preserving.

    1. Compute a canonical cover.
    2. One scheme per distinct left side (lhs ∪ rhs).
    3. If no scheme contains a candidate key, add one.
    4. Drop schemes contained in others.
    """
    scheme = attrset(scheme)
    cover = canonical_cover(fds)
    fragments = []
    for fd in cover:
        fragment = (fd.lhs | fd.rhs) & scheme
        if fragment:
            fragments.append(frozenset(fragment))
    # Attributes not touched by any FD must still be stored somewhere.
    covered = frozenset().union(*fragments) if fragments else frozenset()
    orphans = scheme - covered
    if orphans:
        fragments.append(frozenset(orphans))
    if not any(is_superkey(f, scheme, fds) for f in fragments):
        fragments.append(key_of(fds, scheme))
    # Remove subsumed fragments.
    fragments = sorted(set(fragments), key=len, reverse=True)
    kept = []
    for fragment in fragments:
        if not any(fragment < other for other in kept):
            kept.append(fragment)
    return sorted(kept, key=lambda f: (len(f), sorted(f)))


# ---------------------------------------------------------------------------
# Decomposition quality
# ---------------------------------------------------------------------------


def preserves_dependencies(scheme, fragments, fds):
    """Is the union of projected FDs equivalent to F?

    Uses the polynomial membership test (closure under the projected
    union) rather than materializing the projections' closures.
    """
    scheme = attrset(scheme)
    for fd in fds:
        # Iteratively close fd.lhs under the projections.
        current = set(fd.lhs)
        changed = True
        while changed:
            changed = False
            for fragment in fragments:
                fragment = attrset(fragment)
                gain = (
                    attribute_closure(current & fragment, fds) & fragment
                )
                if not gain <= current:
                    current |= gain
                    changed = True
        if not fd.rhs <= current:
            return False
    return True


def decomposition_report(scheme, fragments, fds):
    """Summary dict a design tool would print for a proposed decomposition."""
    scheme = attrset(scheme)
    return {
        "fragments": [frozenset(f) for f in fragments],
        "lossless": is_lossless_join(scheme, fragments, fds),
        "dependency_preserving": preserves_dependencies(
            scheme, fragments, fds
        ),
        "fragment_normal_forms": {
            frozenset(f): normal_form_level(f, list(project(fds, attrset(f))))
            for f in fragments
        },
    }


def check_decomposition(scheme, fragments):
    """Structural sanity: fragments cover the scheme exactly."""
    scheme = attrset(scheme)
    union = frozenset()
    for fragment in fragments:
        fragment = attrset(fragment)
        if not fragment <= scheme:
            raise NormalizationError(
                "fragment %r escapes scheme %r"
                % (sorted(fragment), sorted(scheme))
            )
        union |= fragment
    if union != scheme:
        raise NormalizationError(
            "fragments lose attributes: missing %r" % sorted(scheme - union)
        )
    return True
