"""The database design toolkit: the "twenty design tools" facade.

The paper counts normalization as the theory that demonstrably reached
practice: "[BCN] mentions more than twenty database design tools that do
some form of normalization".  :class:`DesignTool` is one of those tools as
a library object — feed it a scheme and its dependencies, get back the
full design report: keys, normal-form diagnosis, both classical
decompositions, and quality guarantees for each.
"""

from __future__ import annotations

from .armstrong import attribute_closure
from .cover import canonical_cover, minimal_cover
from .fd import attrset, parse_fds, render_attrset
from .keys import candidate_keys, prime_attributes
from .normal_forms import (
    bcnf_decompose,
    decomposition_report,
    normal_form_level,
    synthesize_3nf,
)


class DesignTool:
    """A relational schema design assistant.

    Args:
        scheme: the universal scheme's attributes (any
            :func:`~repro.dependencies.fd.attrset` input form).
        fds: an iterable of :class:`~repro.dependencies.fd.FD` or a text
            block parseable by :func:`~repro.dependencies.fd.parse_fds`.

    Example::

        tool = DesignTool("A B C D", "A -> B; B -> C")
        tool.normal_form()          # "1NF"
        tool.bcnf()                 # lossless BCNF decomposition + report
        tool.third_normal_form()    # lossless, preserving 3NF synthesis
    """

    def __init__(self, scheme, fds):
        self.scheme = attrset(scheme)
        if isinstance(fds, str):
            fds = parse_fds(fds)
        self.fds = list(fds)
        for fd in self.fds:
            if not fd.attributes() <= self.scheme:
                raise ValueError(
                    "FD %s mentions attributes outside the scheme %s"
                    % (fd, render_attrset(self.scheme))
                )

    # -- analysis ----------------------------------------------------------

    def keys(self):
        """All candidate keys of the scheme."""
        return candidate_keys(self.scheme, self.fds)

    def primes(self):
        """The prime attributes."""
        return prime_attributes(self.scheme, self.fds)

    def closure_of(self, attributes):
        """X+ for any attribute set."""
        return attribute_closure(attributes, self.fds)

    def normal_form(self):
        """The scheme's normal-form level: "1NF".."BCNF"."""
        return normal_form_level(self.scheme, self.fds)

    def minimal_cover(self):
        """A minimal cover of the FDs."""
        return minimal_cover(self.fds)

    def canonical_cover(self):
        """Minimal cover with merged left sides."""
        return canonical_cover(self.fds)

    # -- decompositions ----------------------------------------------------

    def bcnf(self):
        """BCNF decomposition with its quality report.

        Returns:
            A report dict: ``fragments`` (list of frozensets),
            ``lossless`` (always True for this algorithm — asserted, not
            assumed), ``dependency_preserving`` (may be False: the
            classical trade-off), ``fragment_normal_forms``.
        """
        fragments = bcnf_decompose(self.scheme, self.fds)
        return decomposition_report(self.scheme, fragments, self.fds)

    def third_normal_form(self):
        """3NF synthesis with its quality report (lossless + preserving)."""
        fragments = synthesize_3nf(self.scheme, self.fds)
        return decomposition_report(self.scheme, fragments, self.fds)

    # -- presentation ------------------------------------------------------------

    def report(self):
        """The full design report as a formatted string."""
        lines = []
        lines.append("Scheme: %s" % render_attrset(self.scheme))
        lines.append(
            "FDs: %s" % "; ".join(str(fd) for fd in self.fds)
        )
        lines.append(
            "Candidate keys: %s"
            % ", ".join(render_attrset(k) for k in self.keys())
        )
        lines.append("Prime attributes: %s" % render_attrset(self.primes()))
        lines.append("Normal form: %s" % self.normal_form())
        for title, report in (
            ("BCNF decomposition", self.bcnf()),
            ("3NF synthesis", self.third_normal_form()),
        ):
            lines.append("%s:" % title)
            lines.append(
                "  fragments: %s"
                % ", ".join(
                    render_attrset(f) for f in report["fragments"]
                )
            )
            lines.append("  lossless join: %s" % report["lossless"])
            lines.append(
                "  dependency preserving: %s"
                % report["dependency_preserving"]
            )
        return "\n".join(lines)

    def __repr__(self):
        return "DesignTool(%s, %d FDs)" % (
            render_attrset(self.scheme),
            len(self.fds),
        )


def design(scheme, fds):
    """Shorthand: build a :class:`DesignTool` and return its report text."""
    return DesignTool(scheme, fds).report()
