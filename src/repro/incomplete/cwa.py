"""The closed-world assumption (Reiter) and its classical failure mode.

CWA: what a (definite) database does not say is false.  For complete
relational databases this is unproblematic and is exactly the semantics
the calculus/algebra evaluators implement.  The classical observation this
module demonstrates executably: under *disjunctive* (incomplete)
information the CWA becomes inconsistent — asserting ``p or q`` while
concluding ``not p`` and ``not q`` from the absence of each.

Disjunctive databases are modeled as what they denote: finite sets of
possible worlds.
"""

from __future__ import annotations

import itertools

from ..errors import IncompleteInformationError


def cwa_negations(facts, predicate, arity, domain):
    """The CWA-negative literals of a predicate over a finite domain.

    Args:
        facts: set of ground tuples asserted for ``predicate``.
        predicate: name (used only in the output).
        arity: tuple width.
        domain: finite active domain.

    Returns:
        Set of ``("not", predicate, tuple)`` triples.
    """
    out = set()
    for values in itertools.product(sorted(domain, key=repr), repeat=arity):
        if values not in facts:
            out.add(("not", predicate, values))
    return out


class DisjunctiveDatabase:
    """A finite set of possible worlds (each: ``{predicate: set(tuples)}``).

    The denotation of a disjunctive database such as ``p(a) or p(b)``:
    two worlds, one with each fact.
    """

    __slots__ = ("worlds",)

    def __init__(self, worlds):
        self.worlds = [dict(w) for w in worlds]
        if not self.worlds:
            raise IncompleteInformationError(
                "a disjunctive database needs at least one world"
            )

    def certainly_holds(self, predicate, values):
        """True in every world."""
        values = tuple(values)
        return all(
            values in world.get(predicate, set()) for world in self.worlds
        )

    def possibly_holds(self, predicate, values):
        """True in some world."""
        values = tuple(values)
        return any(
            values in world.get(predicate, set()) for world in self.worlds
        )

    def facts(self):
        """All (predicate, tuple) pairs appearing in some world."""
        out = set()
        for world in self.worlds:
            for predicate, tuples in world.items():
                out.update((predicate, tup) for tup in tuples)
        return out

    def cwa_consequences(self):
        """Positive certain facts + CWA negations of non-certain facts."""
        positive = {
            (predicate, tup)
            for predicate, tup in self.facts()
            if self.certainly_holds(predicate, tup)
        }
        negative = {
            ("not", predicate, tup)
            for predicate, tup in self.facts()
            if not self.certainly_holds(predicate, tup)
        }
        return positive, negative

    def cwa_is_consistent(self):
        """Reiter's observation, executably.

        The CWA is consistent iff some world satisfies all CWA
        consequences: every certain positive fact, and *none* of the
        CWA-negated facts.  For a definite database (one world) this
        always holds; for genuinely disjunctive information it fails.
        """
        positive, negative = self.cwa_consequences()
        for world in self.worlds:
            world_facts = {
                (predicate, tup)
                for predicate, tuples in world.items()
                for tup in tuples
            }
            if not positive <= world_facts:
                continue
            if any(
                (predicate, tup) in world_facts
                for _not, predicate, tup in negative
            ):
                continue
            return True
        return False

    def is_definite(self):
        """Exactly one world (a plain database)."""
        return len(self.worlds) == 1

    def __repr__(self):
        return "DisjunctiveDatabase(%d worlds)" % len(self.worlds)


def disjunctive_fact(predicate, alternatives):
    """The denotation of ``predicate(a1) or predicate(a2) or ...``."""
    return DisjunctiveDatabase(
        [{predicate: {tuple(alt)}} for alt in alternatives]
    )
