"""Certain and possible answers over tables with nulls.

The classical semantics of querying incomplete information: the *certain*
answers are the tuples in the query's answer in **every** possible world;
the *possible* answers appear in **some** world.

The classical positive result (Imielinski–Lipski): for *positive*
relational algebra (select/project/join/union — no difference) over naive
tables, certain answers are computed by **naive evaluation** — run the
query with nulls as ordinary values, keep the null-free answers.  This
module implements both that fast path and the brute-force possible-worlds
oracle the tests compare it against.
"""

from __future__ import annotations

from ..errors import IncompleteInformationError
from ..relational import algebra as ra
from ..relational.algebra import evaluate
from .tables import Null


def is_positive(expr):
    """Is the algebra expression in the positive fragment?

    Positive: relation refs, selections with equality-only conditions (no
    negation, no inequality on nulls' behalf), projections, renames,
    products, natural/theta joins, unions, intersections.  Difference,
    antijoin, and division are not.
    """
    if isinstance(expr, (ra.Difference, ra.Antijoin, ra.Division)):
        return False
    if isinstance(expr, ra.Selection) and not _positive_condition(
        expr.condition
    ):
        return False
    if isinstance(expr, ra.ThetaJoin) and not _positive_condition(
        expr.condition
    ):
        return False
    return all(is_positive(child) for child in expr.children())


def _positive_condition(condition):
    if isinstance(condition, ra.Comparison):
        return condition.op == "="
    if isinstance(condition, (ra.And, ra.Or)):
        return all(_positive_condition(p) for p in condition.parts)
    return False  # Not, or anything unknown


def naive_certain_answers(expr, table_db):
    """Certain answers by naive evaluation (positive queries only).

    Run the query over the tables with nulls as constants; the null-free
    result tuples are exactly the certain answers (Imielinski–Lipski).

    Raises:
        IncompleteInformationError: if the query is not positive — naive
            evaluation is unsound there, and the library refuses to guess.
    """
    if not is_positive(expr):
        raise IncompleteInformationError(
            "naive evaluation computes certain answers only for positive "
            "queries; use brute_force_certain_answers for this one"
        )
    db = table_db.as_database_with_null_constants()
    result = evaluate(expr, db)
    certain = {
        tup
        for tup in result.tuples
        if not any(isinstance(v, Null) for v in tup)
    }
    from ..relational.relation import Relation

    return Relation(result.schema, certain, validate=False)


def brute_force_certain_answers(expr, table_db, domain=None):
    """Certain answers by possible-worlds intersection (the oracle).

    Args:
        domain: substitution domain for nulls; defaults to the tables'
            constants plus one fresh value per null (sufficient for
            generic queries, and what makes the oracle finite).
    """
    if domain is None:
        domain = _default_domain(table_db)
    answer = None
    schema = None
    for world in table_db.possible_worlds(domain):
        result = evaluate(expr, world)
        schema = result.schema
        answer = (
            set(result.tuples)
            if answer is None
            else answer & set(result.tuples)
        )
        if not answer:
            break
    from ..relational.relation import Relation

    if schema is None:
        raise IncompleteInformationError("table database has no worlds")
    return Relation(schema, answer or set(), validate=False)


def brute_force_possible_answers(expr, table_db, domain=None):
    """Possible answers by possible-worlds union."""
    if domain is None:
        domain = _default_domain(table_db)
    answer = set()
    schema = None
    for world in table_db.possible_worlds(domain):
        result = evaluate(expr, world)
        schema = result.schema
        answer |= set(result.tuples)
    from ..relational.relation import Relation

    if schema is None:
        raise IncompleteInformationError("table database has no worlds")
    return Relation(schema, answer, validate=False)


def _default_domain(table_db):
    constants = set(table_db.constants())
    # One fresh value per null lets unknowns be mutually distinct and
    # distinct from every known constant, and one *extra* fresh value
    # keeps the domain from degenerating: with exactly as many values as
    # nulls (worst case: a single null, singleton domain) every world
    # would force the same coincidences and the intersection would
    # manufacture spurious "certain" answers the infinite-domain
    # semantics rejects.
    fresh_needed = len(table_db.nulls()) + 1
    for i in range(max(fresh_needed, 2)):
        constants.add("fresh#%d" % i)
    return constants
