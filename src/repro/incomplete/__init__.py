"""Incomplete information: nulls, tables, certain answers, CWA."""

from .certain import (
    brute_force_certain_answers,
    brute_force_possible_answers,
    is_positive,
    naive_certain_answers,
)
from .cwa import DisjunctiveDatabase, cwa_negations, disjunctive_fact
from .tables import Null, Table, TableDatabase, fresh_null

__all__ = [
    "DisjunctiveDatabase",
    "Null",
    "Table",
    "TableDatabase",
    "brute_force_certain_answers",
    "brute_force_possible_answers",
    "cwa_negations",
    "disjunctive_fact",
    "fresh_null",
    "is_positive",
    "naive_certain_answers",
]
