"""Tables with nulls: Codd tables and naive tables.

The paper's §6 traces a lineage: "incomplete information (basically null
values, and then disjunctive databases and closed-world assumptions,
which later developed into deductive databases and DATALOG)".  This
package is the start of that lineage.

A **naive table** is a relation whose cells may contain *labelled nulls*
(variables); the same null may repeat, expressing equality between
unknowns.  A **Codd table** restricts every null to a single occurrence
(the SQL ``NULL`` picture).  A table *represents* the set of complete
relations obtained by substituting constants for nulls — its possible
worlds.
"""

from __future__ import annotations

import itertools

from ..errors import IncompleteInformationError
from ..relational.relation import Relation


class Null:
    """A labelled null (marked variable).  Identity is the label."""

    __slots__ = ("label",)

    def __init__(self, label):
        self.label = label

    def __eq__(self, other):
        return isinstance(other, Null) and other.label == self.label

    def __hash__(self):
        return hash(("Null", self.label))

    def __repr__(self):
        return "Null(%r)" % (self.label,)

    def __str__(self):
        return "_%s" % self.label


_fresh_counter = itertools.count()


def fresh_null():
    """A new null with a globally fresh label."""
    return Null("n%d" % next(_fresh_counter))


class Table:
    """A naive table: a Relation whose tuples may contain Null cells."""

    __slots__ = ("relation",)

    def __init__(self, relation):
        if not isinstance(relation, Relation):
            raise IncompleteInformationError(
                "Table wraps a Relation, got %r" % (relation,)
            )
        self.relation = relation

    @property
    def schema(self):
        return self.relation.schema

    def nulls(self):
        """All distinct nulls occurring in the table."""
        out = set()
        for tup in self.relation.tuples:
            out.update(v for v in tup if isinstance(v, Null))
        return out

    def is_codd_table(self):
        """Codd table: every null occurs exactly once."""
        seen = set()
        for tup in self.relation.tuples:
            for value in tup:
                if isinstance(value, Null):
                    if value in seen:
                        return False
                    seen.add(value)
        return True

    def is_complete(self):
        """No nulls at all."""
        return not self.nulls()

    def constants(self):
        """Non-null values occurring in the table."""
        out = set()
        for tup in self.relation.tuples:
            out.update(v for v in tup if not isinstance(v, Null))
        return out

    def apply_valuation(self, valuation):
        """Substitute constants for nulls; returns a complete Relation.

        Args:
            valuation: ``{Null: constant}`` covering every null.
        """
        missing = self.nulls() - set(valuation)
        if missing:
            raise IncompleteInformationError(
                "valuation misses nulls: %s"
                % ", ".join(sorted(str(n) for n in missing))
            )
        tuples = []
        for tup in self.relation.tuples:
            tuples.append(
                tuple(
                    valuation[v] if isinstance(v, Null) else v for v in tup
                )
            )
        return Relation(self.schema, tuples, validate=False)

    def possible_worlds(self, domain):
        """All complete relations the table represents over ``domain``.

        Exponential in the number of nulls — the oracle for tests, not a
        production path (that is what certain-answer evaluation is for).
        """
        nulls = sorted(self.nulls(), key=lambda n: str(n.label))
        domain = sorted(domain, key=repr)
        if not nulls:
            yield self.apply_valuation({})
            return
        for assignment in itertools.product(domain, repeat=len(nulls)):
            yield self.apply_valuation(dict(zip(nulls, assignment)))

    def null_free_tuples(self):
        """Tuples containing no nulls (the "sure" rows)."""
        return {
            tup
            for tup in self.relation.tuples
            if not any(isinstance(v, Null) for v in tup)
        }

    def __len__(self):
        return len(self.relation)

    def __repr__(self):
        return "Table(%s, %d rows, %d nulls)" % (
            self.schema.name,
            len(self.relation),
            len(self.nulls()),
        )


class TableDatabase:
    """A database whose relations are (possibly incomplete) tables."""

    __slots__ = ("tables",)

    def __init__(self, tables=()):
        self.tables = {}
        for table in tables:
            name = table.schema.name
            if name in self.tables:
                raise IncompleteInformationError(
                    "duplicate table name %r" % (name,)
                )
            self.tables[name] = table

    def __getitem__(self, name):
        try:
            return self.tables[name]
        except KeyError:
            raise IncompleteInformationError(
                "no table named %r" % (name,)
            ) from None

    def names(self):
        return sorted(self.tables)

    def nulls(self):
        out = set()
        for table in self.tables.values():
            out |= table.nulls()
        return out

    def constants(self):
        out = set()
        for table in self.tables.values():
            out |= table.constants()
        return out

    def as_database_with_null_constants(self):
        """View nulls as plain (distinct) constants — "naive evaluation".

        Nulls are hashable, so they simply ride along as values in an
        ordinary :class:`~repro.relational.database.Database`.
        """
        from ..relational.database import Database

        db = Database()
        for name in self.names():
            db.add(self.tables[name].relation)
        return db

    def possible_worlds(self, domain):
        """All complete databases represented, over ``domain``.

        Nulls shared across tables are substituted consistently.
        """
        from ..relational.database import Database

        nulls = sorted(self.nulls(), key=lambda n: str(n.label))
        domain = sorted(domain, key=repr)
        assignments = (
            itertools.product(domain, repeat=len(nulls))
            if nulls
            else [()]
        )
        for assignment in assignments:
            valuation = dict(zip(nulls, assignment))
            db = Database()
            for name in self.names():
                db.add(self.tables[name].apply_valuation(valuation))
            yield db

    def __repr__(self):
        return "TableDatabase(%s)" % ", ".join(self.names())
