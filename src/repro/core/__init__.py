"""The unified workbench and the empirical-equivalence harness."""

from .equivalence import (
    ExperimentReport,
    chase_vs_armstrong,
    codd_experiment,
    datalog_experiment,
    optimizer_experiment,
    random_safe_query,
    run_all,
)
from .random_instances import (
    chain_edges,
    cycle_edges,
    edge_database,
    edge_store,
    random_database,
    random_edb,
    random_fds,
    random_graph_edges,
    random_positive_program,
    same_generation_program,
    same_generation_store,
    transitive_closure_program,
    tree_edges,
)
from .workbench import MetatheoryWorkbench

__all__ = [
    "ExperimentReport",
    "MetatheoryWorkbench",
    "chain_edges",
    "chase_vs_armstrong",
    "codd_experiment",
    "cycle_edges",
    "datalog_experiment",
    "edge_database",
    "edge_store",
    "optimizer_experiment",
    "random_database",
    "random_edb",
    "random_fds",
    "random_graph_edges",
    "random_positive_program",
    "random_safe_query",
    "run_all",
    "same_generation_program",
    "same_generation_store",
    "transitive_closure_program",
    "tree_edges",
]
