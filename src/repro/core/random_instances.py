"""Random instances: databases, queries, programs, FD sets, graphs.

The shared workload factory for the test suite (property tests need
generators) and the benchmarks (parameter sweeps need scalable inputs).
All generators are seeded and deterministic.
"""

from __future__ import annotations

import random

from ..datalog.ast import Atom, Literal, Program, Rule
from ..datalog.facts import FactStore
from ..dependencies.fd import FD
from ..relational import algebra as ra
from ..relational.database import Database
from ..relational.relation import Relation
from ..relational.schema import RelationSchema

# ---------------------------------------------------------------------------
# Graph EDBs (the Datalog benchmark workloads)
# ---------------------------------------------------------------------------


def chain_edges(n):
    """A path: 0 -> 1 -> ... -> n."""
    return [(i, i + 1) for i in range(n)]


def cycle_edges(n):
    """A directed cycle of n nodes."""
    return [(i, (i + 1) % n) for i in range(n)]


def tree_edges(n, branching=2):
    """A complete-ish tree with n nodes, edges parent -> child."""
    return [((i - 1) // branching, i) for i in range(1, n)]


def random_graph_edges(n, m, seed=0):
    """m distinct random directed edges over n nodes (no self loops)."""
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    while len(edges) < m and attempts < 50 * m:
        a = rng.randrange(n)
        b = rng.randrange(n)
        attempts += 1
        if a != b:
            edges.add((a, b))
    return sorted(edges)


def edge_store(edges, predicate="edge"):
    """Edges as a Datalog :class:`~repro.datalog.facts.FactStore`."""
    return FactStore({predicate: edges})


def edge_database(edges, name="edge"):
    """Edges as a relational database with schema (src, dst)."""
    schema = RelationSchema(name, ("src", "dst"))
    return Database([Relation(schema, edges)])


# ---------------------------------------------------------------------------
# Datalog programs
# ---------------------------------------------------------------------------


def transitive_closure_program(linear=True):
    """The canonical recursive program, linear or nonlinear variant."""
    if linear:
        rules = [
            Rule(Atom("path", ("X", "Y")), [Literal(Atom("edge", ("X", "Y")))]),
            Rule(
                Atom("path", ("X", "Z")),
                [
                    Literal(Atom("edge", ("X", "Y"))),
                    Literal(Atom("path", ("Y", "Z"))),
                ],
            ),
        ]
    else:
        rules = [
            Rule(Atom("path", ("X", "Y")), [Literal(Atom("edge", ("X", "Y")))]),
            Rule(
                Atom("path", ("X", "Z")),
                [
                    Literal(Atom("path", ("X", "Y"))),
                    Literal(Atom("path", ("Y", "Z"))),
                ],
            ),
        ]
    return Program(rules)


def same_generation_program():
    """The other canonical benchmark program (up/flat/down)."""
    return Program(
        [
            Rule(Atom("sg", ("X", "Y")), [Literal(Atom("flat", ("X", "Y")))]),
            Rule(
                Atom("sg", ("X", "Y")),
                [
                    Literal(Atom("up", ("X", "U"))),
                    Literal(Atom("sg", ("U", "V"))),
                    Literal(Atom("down", ("V", "Y"))),
                ],
            ),
        ]
    )


def same_generation_store(depth, width, seed=0):
    """A layered up/flat/down EDB for the same-generation program."""
    rng = random.Random(seed)
    up, down, flat = [], [], []
    for layer in range(depth):
        for i in range(width):
            child = "n_%d_%d" % (layer, i)
            parent = "n_%d_%d" % (layer + 1, rng.randrange(width))
            up.append((child, parent))
            down.append((parent, "n_%d_%d" % (layer, rng.randrange(width))))
    top = depth
    for i in range(width):
        for j in range(width):
            if rng.random() < 0.3:
                flat.append(("n_%d_%d" % (top, i), "n_%d_%d" % (top, j)))
    return FactStore({"up": up, "down": down, "flat": flat})


def random_positive_program(
    num_idb=3, num_edb=2, rules_per_idb=2, max_body=3, arity=2, seed=0
):
    """A random safe positive Datalog program (for engine cross-checks).

    Heads use distinct variables; bodies chain variables so every head
    variable is bound (safety by construction).
    """
    rng = random.Random(seed)
    idb = ["p%d" % i for i in range(num_idb)]
    edb = ["e%d" % i for i in range(num_edb)]
    variables = ["X", "Y", "Z", "W", "V"]
    rules = []
    for pred_index, predicate in enumerate(idb):
        for _ in range(rules_per_idb):
            head_vars = variables[:arity]
            body = []
            bound = set()
            body_len = rng.randint(1, max_body)
            # Lower-indexed IDB predicates and EDB predicates only, so the
            # program is guaranteed stratifiable and terminating quickly.
            candidates = edb + idb[: pred_index + 1]
            for position in range(body_len):
                pred = rng.choice(candidates)
                if position == 0:
                    args = head_vars
                    bound.update(args)
                else:
                    args = [
                        rng.choice(sorted(bound) + variables[:arity + 1])
                        for _ in range(arity)
                    ]
                    bound.update(args)
                body.append(Literal(Atom(pred, args)))
            unbound = set(head_vars) - {
                t.name
                for item in body
                for t in item.atom.terms
                if hasattr(t, "name")
            }
            if unbound:
                body.insert(0, Literal(Atom(rng.choice(edb), head_vars)))
            rules.append(Rule(Atom(predicate, head_vars), body))
    return Program(rules)


def random_edb(predicates, domain_size=8, facts_per_pred=12, arity=2, seed=0):
    """A random EDB over a small integer domain."""
    rng = random.Random(seed)
    store = FactStore()
    for predicate in predicates:
        for _ in range(facts_per_pred):
            store.add(
                predicate,
                tuple(rng.randrange(domain_size) for _ in range(arity)),
            )
    return store


# ---------------------------------------------------------------------------
# Relational databases and FD sets
# ---------------------------------------------------------------------------


def random_database(
    num_relations=3, arity=2, rows=10, domain_size=6, seed=0, prefix="r"
):
    """A random relational database with attribute names a0, a1, ...

    Relations share attribute names, so natural joins are meaningful.
    """
    rng = random.Random(seed)
    db = Database()
    for index in range(num_relations):
        attrs = tuple(
            "a%d" % ((index + offset) % (arity + num_relations - 1))
            for offset in range(arity)
        )
        schema = RelationSchema("%s%d" % (prefix, index), attrs)
        tuples = {
            tuple(rng.randrange(domain_size) for _ in range(arity))
            for _ in range(rows)
        }
        db.add(Relation(schema, tuples))
    return db


def random_algebra_expression(db, seed=0, size=4):
    """A random, schema-valid algebra expression over ``db``.

    Covers every core operator — selection, projection, rename, natural
    join, theta join, product, union, difference, intersection,
    semijoin, antijoin, division — with operands constructed so the
    expression always type-checks (disjoint schemas for products,
    union-compatible sides for set operations, proper-subset divisors).
    Deterministic in ``seed``; the differential executor tests sweep
    seeds to compare the streaming executor against the legacy tree
    walk on the results.

    The conformance kit's coverage tracker audits this generator against
    the full construct universe (see
    :data:`repro.conformance.coverage.ALGEBRA_UNIVERSE`); it exposed
    three blind spots the original version could never emit — compound
    Or/Not selection conditions, theta joins with more than one
    cross-side conjunct (in particular multi-equi bundles, which are
    what the executor's equi-conjunct extraction is for), and division
    by multi-attribute divisors — all now generated.
    """
    rng = random.Random(seed)
    db_schema = db.schema()
    names = db.names()
    domain = sorted(db.active_domain()) or [0, 1]
    counter = [0]
    comparison_ops = ("=", "!=", "<", "<=", ">", ">=")

    def fresh():
        counter[0] += 1
        return "x%d" % counter[0]

    def fresh_base():
        """A base relation with every attribute renamed fresh (so its
        schema is disjoint from anything built so far)."""
        name = rng.choice(names)
        mapping = {a: fresh() for a in db_schema[name].attributes}
        return ra.Rename(ra.RelationRef(name), mapping), tuple(
            mapping[a] for a in db_schema[name].attributes
        )

    def atomic_condition(attrs):
        left = ra.Attr(rng.choice(attrs))
        if rng.random() < 0.4 and len(attrs) > 1:
            right = ra.Attr(rng.choice(attrs))
        else:
            right = ra.Const(rng.choice(domain))
        return ra.Comparison(left, rng.choice(comparison_ops), right)

    def random_condition(attrs):
        condition = atomic_condition(attrs)
        roll = rng.random()
        if roll < 0.15:
            condition = ra.And(condition, atomic_condition(attrs))
        elif roll < 0.30:
            condition = ra.Or(condition, atomic_condition(attrs))
        elif roll < 0.40:
            condition = ra.Not(condition)
        return condition

    def theta_condition(left_attrs, right_attrs):
        """1-3 conjuncts; the first always crosses sides, extras are a
        mix of cross-side equalities (multi-equi bundles exercise the
        executor's equi-conjunct extraction), cross-side non-equi
        comparisons, and right-side/constant guards."""
        conjuncts = [
            ra.Comparison(
                ra.Attr(rng.choice(left_attrs)),
                rng.choice(comparison_ops),
                ra.Attr(rng.choice(right_attrs)),
            )
        ]
        while len(conjuncts) < 3 and rng.random() < 0.45:
            roll = rng.random()
            if roll < 0.4:
                operator = "="
            elif roll < 0.7:
                operator = rng.choice(("!=", "<", "<=", ">", ">="))
            else:
                conjuncts.append(
                    ra.Comparison(
                        ra.Attr(rng.choice(right_attrs)),
                        rng.choice(comparison_ops),
                        ra.Const(rng.choice(domain)),
                    )
                )
                continue
            conjuncts.append(
                ra.Comparison(
                    ra.Attr(rng.choice(left_attrs)),
                    operator,
                    ra.Attr(rng.choice(right_attrs)),
                )
            )
        if len(conjuncts) == 1:
            return conjuncts[0]
        return ra.And(*conjuncts)

    expr = ra.RelationRef(rng.choice(names))
    for _ in range(size):
        attrs = list(expr.schema(db_schema).attributes)
        kinds = [
            "select", "project", "rename", "join", "semijoin", "antijoin",
            "union", "difference", "intersection", "theta", "product",
        ]
        if len(attrs) >= 2:
            kinds.append("divide")
        kind = rng.choice(kinds)
        if kind == "select":
            expr = ra.Selection(expr, random_condition(attrs))
        elif kind == "project":
            keep = [a for a in attrs if rng.random() < 0.7] or attrs[:1]
            expr = ra.Projection(expr, tuple(keep))
        elif kind == "rename":
            expr = ra.Rename(expr, {rng.choice(attrs): fresh()})
        elif kind == "join":
            expr = ra.NaturalJoin(expr, ra.RelationRef(rng.choice(names)))
        elif kind == "semijoin":
            expr = ra.Semijoin(expr, ra.RelationRef(rng.choice(names)))
        elif kind == "antijoin":
            expr = ra.Antijoin(expr, ra.RelationRef(rng.choice(names)))
        elif kind in ("union", "difference", "intersection"):
            node = {
                "union": ra.Union,
                "difference": ra.Difference,
                "intersection": ra.Intersection,
            }[kind]
            # A filtered copy of the expression itself is always
            # union-compatible with it (subtrees are immutable, sharing
            # is safe).
            expr = node(expr, ra.Selection(expr, random_condition(attrs)))
        elif kind == "theta":
            right, right_attrs = fresh_base()
            expr = ra.ThetaJoin(
                expr, right, theta_condition(attrs, right_attrs)
            )
        elif kind == "product":
            right, _ = fresh_base()
            expr = ra.Product(expr, right)
        else:  # divide
            # Divisor attributes must form a proper subset of the
            # dividend's; multi-attribute divisors (arity 2) exercise
            # the positional-match path of division.
            max_arity = min(2, len(attrs) - 1)
            divisor_arity = rng.randint(1, max_arity)
            divisor_attrs = tuple(rng.sample(attrs, divisor_arity))
            rows = {
                tuple(rng.choice(domain) for _ in divisor_attrs)
                for _ in range(rng.randint(1, 2))
            }
            divisor = Relation(
                RelationSchema("divisor", divisor_attrs), sorted(rows)
            )
            expr = ra.Division(expr, ra.ConstantRelation(divisor))
    return expr


def random_fds(attributes, count=4, max_side=2, seed=0):
    """Random FDs over an attribute list."""
    rng = random.Random(seed)
    attributes = list(attributes)
    fds = []
    for _ in range(count):
        lhs_size = rng.randint(1, min(max_side, len(attributes) - 1))
        lhs = rng.sample(attributes, lhs_size)
        remaining = [a for a in attributes if a not in lhs]
        rhs = rng.sample(remaining, rng.randint(1, min(max_side, len(remaining))))
        fds.append(FD(lhs, rhs))
    return fds
