"""Empirical equivalence checking across engines and formalisms.

The paper's §3: "positive results … must be validated experimentally and
can therefore be considered as mere invitations to experiment."  This
module accepts the invitations programmatically:

* :func:`codd_experiment` — Codd's Theorem on random safe queries over
  random databases (calculus semantics vs translated algebra);
* :func:`datalog_experiment` — all four Datalog strategies on random
  programs/EDBs/queries;
* :func:`optimizer_experiment` — the rewrite pipeline preserves results;
* :func:`executor_experiment` — the streaming executor agrees with the
  legacy tree walk, with and without the optimizer, on random plans;
* :func:`chase_vs_armstrong` — the chase and the closure algorithm agree
  on FD implication.

Each returns an :class:`ExperimentReport`; a failure carries the exact
counterexample, which is how the library's own bugs were found during
development — theory working as quality assurance.
"""

from __future__ import annotations

import random

from ..relational import algebra as ra
from ..relational.algebra import evaluate
from ..relational.calculus import (
    AndF,
    Exists,
    NotF,
    Query,
    RelAtom,
    Var,
    evaluate_query,
    is_safe_range,
)
from ..relational.codd import calculus_to_algebra
from ..relational.optimizer import optimize


class ExperimentReport:
    """Outcome of an equivalence experiment.

    Attributes:
        trials: number of instances checked.
        failures: list of counterexample descriptions (empty = confirmed).
    """

    __slots__ = ("name", "trials", "failures")

    def __init__(self, name, trials, failures):
        self.name = name
        self.trials = trials
        self.failures = list(failures)

    @property
    def confirmed(self):
        return not self.failures

    def __repr__(self):
        return "ExperimentReport(%s: %d trials, %d failures)" % (
            self.name,
            self.trials,
            len(self.failures),
        )


def random_safe_query(db, seed=0, allow_negation=True):
    """A random safe-range calculus query over the database's relations.

    Built as a join of 1-3 atoms over shared variables, optionally with a
    negated atom over already-bound variables, then existentially closing
    a random subset of variables.
    """
    rng = random.Random(seed)
    names = db.names()
    variables = ["x", "y", "z", "w"]
    atoms = []
    bound = []
    for _ in range(rng.randint(1, 3)):
        name = rng.choice(names)
        arity = db[name].schema.arity
        args = []
        for _ in range(arity):
            if bound and rng.random() < 0.5:
                args.append(Var(rng.choice(bound)))
            else:
                var = rng.choice(variables)
                args.append(Var(var))
                if var not in bound:
                    bound.append(var)
        atoms.append(RelAtom(name, args))
    formula_parts = list(atoms)
    if allow_negation and rng.random() < 0.4 and bound:
        name = rng.choice(names)
        arity = db[name].schema.arity
        args = [Var(rng.choice(bound)) for _ in range(arity)]
        formula_parts.append(NotF(RelAtom(name, args)))
    formula = (
        AndF(*formula_parts) if len(formula_parts) > 1 else formula_parts[0]
    )
    free = sorted(formula.free_variables())
    to_close = [v for v in free if rng.random() < 0.4]
    if to_close and len(to_close) < len(free):
        formula = Exists(to_close, formula)
    head = sorted(formula.free_variables())
    return Query(head, formula)


def codd_experiment(trials=25, seed=0):
    """Random safe queries: calculus semantics == translated algebra."""
    from .random_instances import random_database

    failures = []
    rng = random.Random(seed)
    for trial in range(trials):
        db = random_database(
            num_relations=rng.randint(2, 3),
            rows=rng.randint(3, 8),
            domain_size=4,
            seed=rng.randrange(10**6),
        )
        query = random_safe_query(db, seed=rng.randrange(10**6))
        if not is_safe_range(query.formula):
            continue
        reference = evaluate_query(query, db)
        expr = calculus_to_algebra(query, db.schema())
        translated = evaluate(expr, db)
        if set(reference.tuples) != set(translated.tuples):
            failures.append(
                "trial %d: %s -> calculus %d tuples, algebra %d tuples"
                % (trial, query, len(reference), len(translated))
            )
    return ExperimentReport("codd", trials, failures)


def datalog_experiment(trials=10, seed=0):
    """All four strategies agree on random positive programs."""
    from ..datalog.engine import cross_check
    from ..datalog.ast import Atom
    from .random_instances import random_edb, random_positive_program

    failures = []
    rng = random.Random(seed)
    for trial in range(trials):
        program = random_positive_program(seed=rng.randrange(10**6))
        edb = random_edb(
            sorted(program.edb_predicates()), seed=rng.randrange(10**6)
        )
        idb = sorted(program.idb_predicates())
        if not idb:
            continue
        target = rng.choice(idb)
        constant = rng.randrange(8)
        query = Atom(target, (constant, "X"))
        results = cross_check(program, edb, query)
        values = list(results.values())
        if any(v != values[0] for v in values):
            failures.append(
                "trial %d: %s disagree: %s"
                % (
                    trial,
                    query,
                    {k: len(v) for k, v in results.items()},
                )
            )
    return ExperimentReport("datalog", trials, failures)


def optimizer_experiment(trials=20, seed=0):
    """optimize() preserves query results on random expressions."""
    from .random_instances import random_database

    failures = []
    rng = random.Random(seed)
    for trial in range(trials):
        db = random_database(
            num_relations=3, rows=8, domain_size=5, seed=rng.randrange(10**6)
        )
        expr = _random_expression(db, rng)
        before = evaluate(expr, db)
        after = evaluate(optimize(expr, db), db)
        from ..relational.relation import same_content

        if not same_content(before, after):
            failures.append(
                "trial %d: optimize changed result (%d vs %d tuples)"
                % (trial, len(before), len(after))
            )
    return ExperimentReport("optimizer", trials, failures)


def _random_expression(db, rng):
    names = db.names()
    expr = ra.RelationRef(rng.choice(names))
    schema = expr.schema(db.schema())
    for _ in range(rng.randint(1, 3)):
        choice = rng.random()
        if choice < 0.4:
            attr = rng.choice(schema.attributes)
            expr = ra.Selection(
                expr, ra.Comparison(ra.Attr(attr), "=", ra.Const(rng.randrange(5)))
            )
        elif choice < 0.7:
            other = ra.RelationRef(rng.choice(names))
            expr = ra.NaturalJoin(expr, other)
            schema = expr.schema(db.schema())
        else:
            keep = [
                a for a in schema.attributes if rng.random() < 0.7
            ] or [schema.attributes[0]]
            expr = ra.Projection(expr, tuple(dict.fromkeys(keep)))
            schema = expr.schema(db.schema())
    return expr


def executor_experiment(trials=100, seed=0):
    """Streaming executor ≡ legacy tree walk ≡ optimized plan.

    Random algebra expressions (every core operator) over random
    databases; the executor must reproduce the tree walk *bit for bit*
    (same attribute order, same tuples), and the optimized plan must
    match up to column order.
    """
    from ..plan import canonicalize, execute
    from ..relational.relation import same_content
    from .random_instances import random_algebra_expression, random_database

    failures = []
    rng = random.Random(seed)
    for trial in range(trials):
        db = random_database(
            num_relations=3, rows=8, domain_size=5, seed=rng.randrange(10**6)
        )
        expr = random_algebra_expression(
            db, seed=rng.randrange(10**6), size=4
        )
        legacy = evaluate(expr, db)
        streamed = execute(expr, db)
        if streamed != legacy:
            failures.append(
                "trial %d: executor diverged from tree walk "
                "(%d vs %d tuples) on %s"
                % (trial, len(streamed), len(legacy), expr)
            )
            continue
        optimized = optimize(canonicalize(expr, db.schema()), db)
        if not same_content(execute(optimized, db), legacy):
            failures.append(
                "trial %d: optimized plan diverged on %s" % (trial, expr)
            )
    return ExperimentReport("executor", trials, failures)


def chase_vs_armstrong(trials=30, seed=0):
    """FD implication: attribute closure == two-row chase."""
    from ..dependencies.armstrong import implies
    from ..dependencies.chase import chase_implies_fd
    from ..dependencies.fd import FD
    from .random_instances import random_fds

    failures = []
    rng = random.Random(seed)
    attributes = ["A", "B", "C", "D", "E"]
    for trial in range(trials):
        fds = random_fds(attributes, count=4, seed=rng.randrange(10**6))
        lhs = rng.sample(attributes, rng.randint(1, 2))
        rhs = rng.sample(attributes, 1)
        goal = FD(lhs, rhs)
        via_closure = implies(fds, goal)
        via_chase = chase_implies_fd(fds, goal, scheme=attributes)
        if via_closure != via_chase:
            failures.append(
                "trial %d: %s given %s: closure=%s chase=%s"
                % (
                    trial,
                    goal,
                    "; ".join(map(str, fds)),
                    via_closure,
                    via_chase,
                )
            )
    return ExperimentReport("chase-vs-armstrong", trials, failures)


def run_all(seed=0):
    """Run every equivalence experiment; returns the report list."""
    return [
        codd_experiment(seed=seed),
        datalog_experiment(seed=seed),
        optimizer_experiment(seed=seed),
        executor_experiment(seed=seed),
        chase_vs_armstrong(seed=seed),
    ]
