"""The MetatheoryWorkbench: one facade over the whole corpus.

The library's front door.  A workbench holds one relational database and
offers every query language and analysis the paper surveys:

* SQL, relational algebra, safe relational calculus (with Codd
  translation between the latter two);
* Datalog over the same data, under any of the four strategies;
* schema analysis: dependencies, keys, normal forms, decompositions,
  acyclicity, Yannakakis joins;
* the metascience models, as static methods (they need no data).

See ``examples/quickstart.py`` for the guided tour.
"""

from __future__ import annotations

from ..acyclic.gyo import is_alpha_acyclic
from ..acyclic.hypergraph import Hypergraph
from ..acyclic.yannakakis import naive_join, yannakakis_join
from ..datalog.engine import DatalogEngine
from ..datalog.facts import FactStore
from ..datalog.parser import parse_program
from ..dependencies.design import DesignTool
from ..plan.cache import PlanCache
from ..plan.executor import execute_physical
from ..plan.logical import canonicalize, plan_key
from ..relational.algebra import evaluate
from ..relational.calculus import evaluate_query
from ..relational.codd import (
    algebra_to_calculus,
    calculus_to_algebra,
    check_codd_equivalence,
)
from ..relational.database import Database
from ..relational.optimizer import optimize
from ..relational.sql_frontend import parse_sql


class MetatheoryWorkbench:
    """A database plus every classical way of querying and analyzing it."""

    def __init__(self, db=None, plan_cache_size=128):
        self.db = db if db is not None else Database()
        self.plan_cache = PlanCache(plan_cache_size)
        self._parse_cache = {}
        self._parse_cache_token = None

    @classmethod
    def from_dict(cls, data):
        """Build from ``{name: (attributes, rows)}`` (see Database)."""
        return cls(Database.from_dict(data))

    # -- querying ------------------------------------------------------------
    #
    # Every relational entry point compiles into one pipeline:
    # front-end -> canonical logical plan -> optimizer -> physical plan ->
    # streaming executor.  ``executor=False`` falls back to the legacy
    # materialize-everything tree walk (the differential oracle),
    # mirroring the ``indexed=False`` opt-out of the Datalog layer.

    def _sync_caches(self):
        """Flush compiled-plan caches when the database schema changed."""
        token = self.db.schema_token()
        if token != self._parse_cache_token:
            self._parse_cache.clear()
            self.plan_cache.clear()
            self._parse_cache_token = token

    def _run_pipeline(self, expr, optimized, stats):
        self._sync_caches()
        canonical = canonicalize(expr, self.db.schema())
        key = (plan_key(canonical), bool(optimized))
        plan = self.plan_cache.get(key)
        if plan is None:
            plan = (
                canonicalize(optimize(canonical, self.db), self.db.schema())
                if optimized
                else canonical
            )
            self.plan_cache.put(key, plan)
        relation, _tally = execute_physical(plan, self.db, stats)
        return relation

    def _cached_parse(self, kind, text, parse):
        self._sync_caches()
        key = (kind, text)
        expr = self._parse_cache.get(key)
        if expr is None:
            expr = parse(text)
            self._parse_cache[key] = expr
        return expr

    def sql(self, text, optimized=True, executor=True, stats=None):
        """Run a SQL statement; returns a Relation.

        Args:
            text: the SQL text.
            optimized: run the algebraic optimizer over the canonical
                plan.
            executor: compile through the shared pipeline and run on the
                streaming executor (default); False reproduces the
                legacy tree-walk path bit for bit.
            stats: optional
                :class:`~repro.datalog.stats.EngineStatistics` charged
                with the executor's work.
        """
        if executor:
            expr = self._cached_parse("sql", text, parse_sql)
            return self._run_pipeline(expr, optimized, stats)
        expr = parse_sql(text)
        if optimized:
            expr = optimize(expr, self.db)
        return evaluate(expr, self.db)

    def algebra(self, expr, optimized=False, executor=True, stats=None):
        """Evaluate a relational-algebra expression."""
        if executor:
            return self._run_pipeline(expr, optimized, stats)
        if optimized:
            expr = optimize(expr, self.db)
        return evaluate(expr, self.db)

    def calculus(self, query, via="algebra", optimized=False, executor=True,
                 stats=None):
        """Evaluate a safe calculus query.

        Args:
            query: a :class:`~repro.relational.calculus.Query` or query
                text like ``"{(x) | person(x)}"``.
            via: "algebra" compiles through Codd's translation (the
                production path); "direct" uses active-domain enumeration
                (the semantics oracle).
            optimized: run the algebraic optimizer (algebra path only).
            executor: run the compiled algebra on the streaming executor
                (default); False uses the legacy tree walk.
            stats: optional EngineStatistics charged with executor work.
        """
        if isinstance(query, str):
            from ..relational.calculus_parser import parse_calculus

            query = parse_calculus(query)
        if via == "direct":
            return evaluate_query(query, self.db)
        expr = calculus_to_algebra(query, self.db.schema())
        if executor:
            return self._run_pipeline(expr, optimized, stats)
        if optimized:
            expr = optimize(expr, self.db)
        return evaluate(expr, self.db)

    def codd_check(self, query):
        """Run :func:`~repro.relational.codd.check_codd_equivalence`.

        Accepts a Query object or calculus text.
        """
        if isinstance(query, str):
            from ..relational.calculus_parser import parse_calculus

            query = parse_calculus(query)
        return check_codd_equivalence(query, self.db)

    def to_calculus(self, expr):
        """Translate an algebra expression to an equivalent calculus query."""
        return algebra_to_calculus(expr, self.db.schema())

    # -- Datalog ------------------------------------------------------------------

    def datalog(self, source, executor=True):
        """A Datalog engine whose EDB is this workbench's database.

        Any ``?-`` queries in the source are ignored here; use the
        returned engine's ``.query``.  Non-recursive programs run as
        algebra plans on the shared streaming executor by default;
        ``executor=False`` forces the fixpoint machinery.
        """
        program, _queries = parse_program(source)
        return DatalogEngine(
            program, FactStore.from_database(self.db), executor=executor
        )

    # -- schema analysis ----------------------------------------------------------

    def design(self, scheme, fds):
        """A :class:`~repro.dependencies.design.DesignTool` for a scheme."""
        return DesignTool(scheme, fds)

    def schema_hypergraph(self):
        """The database schema as a hypergraph."""
        return Hypergraph.from_schema(self.db.schema())

    def is_acyclic(self):
        """Alpha-acyclicity of the schema."""
        return is_alpha_acyclic(self.schema_hypergraph())

    def full_join(self, method="yannakakis"):
        """Natural join of all relations (acyclic schemas only for
        "yannakakis"; "naive" works on anything join-connected)."""
        hypergraph = self.schema_hypergraph()
        if method == "yannakakis":
            return yannakakis_join(hypergraph, self.db)
        return naive_join(hypergraph, self.db)

    def __repr__(self):
        return "MetatheoryWorkbench(%r)" % (self.db,)
