"""The MetatheoryWorkbench: one facade over the whole corpus.

The library's front door.  A workbench holds one relational database and
offers every query language and analysis the paper surveys:

* SQL, relational algebra, safe relational calculus (with Codd
  translation between the latter two);
* Datalog over the same data, under any of the four strategies;
* schema analysis: dependencies, keys, normal forms, decompositions,
  acyclicity, Yannakakis joins;
* the metascience models, as static methods (they need no data).

See ``examples/quickstart.py`` for the guided tour.
"""

from __future__ import annotations

import time

from ..acyclic.gyo import is_alpha_acyclic
from ..acyclic.hypergraph import Hypergraph
from ..acyclic.yannakakis import naive_join, yannakakis_join
from ..compile import KernelCache
from ..datalog.engine import DatalogEngine
from ..datalog.facts import FactStore
from ..datalog.lowering import is_lowerable
from ..datalog.parser import parse_program
from ..datalog.stats import EngineStatistics
from ..dependencies.design import DesignTool
from ..obs.history import make_history
from ..obs.introspect import install_introspection, materialize_system_facts
from ..obs.metrics import REGISTRY
from ..obs.trace import ensure_tracer
from ..opt import Optimizer
from ..plan.cache import PlanCache
from ..plan.executor import execute_physical
from ..plan.explain import annotate_estimates, explain_datalog, run_explained
from ..plan.logical import canonicalize, plan_key
from ..relational.algebra import evaluate, relation_names
from ..relational.calculus import evaluate_query
from ..relational.codd import (
    algebra_to_calculus,
    calculus_to_algebra,
    check_codd_equivalence,
)
from ..relational.database import Database, is_system_name
from ..relational.dml import DMLResult, DMLStatement
from ..relational.optimizer import optimize
from ..relational.relation import Relation
from ..relational.sql_frontend import parse_sql
from ..storage.txn import TransactionManager


class MetatheoryWorkbench:
    """A database plus every classical way of querying and analyzing it.

    Observability surfaces (all zero-cost until used):

    * ``tracer`` — span collection (default: the null tracer);
    * ``metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry`
      (default: the process-global ``REGISTRY``);
    * ``history`` — the query-history flight recorder
      (:class:`~repro.obs.history.QueryHistory`); pass ``history=True``
      to record every query, and/or ``slow_query_ms=N`` to arm the
      slow-query threshold (implies recording; slow queries carry their
      full per-operator OpReport tree);
    * the ``sys_`` system relations (``sys_metrics``, ``sys_spans``,
      ``sys_query_log``, ``sys_plan_cache``, ``sys_kernels``,
      ``sys_catalog_stats``, ``sys_workers``, ``sys_transactions``,
      ``sys_versions``) — registered on the database at construction
      and queryable through every front-end.

    Mutation goes through the same machinery: SQL DML statements
    (:meth:`sql`) plan their relational side on the shared pipeline and
    commit deltas through the MVCC store; :meth:`begin` opens a live
    transaction whose interleaved history replays into the scheduler
    theory; :meth:`snapshot` pins the committed state at O(1) cost.
    """

    def __init__(self, db=None, plan_cache_size=128, tracer=None,
                 optimizer=None, history=None, slow_query_ms=None,
                 metrics=None):
        self.db = db if db is not None else Database()
        self.plan_cache = PlanCache(plan_cache_size)
        self.kernel_cache = KernelCache()
        self.tracer = ensure_tracer(tracer)
        self.optimizer = optimizer if optimizer is not None else Optimizer()
        self.metrics = metrics if metrics is not None else REGISTRY
        self.history = make_history(
            history, slow_query_ms, registry=self.metrics
        )
        self._recording = False
        self._parse_cache = {}
        self._cache_version = None
        self._cache_state = None
        self._parallel_backends = {}
        self.txns = TransactionManager(
            self.db, workbench=self, tracer=self.tracer,
            metrics=self.metrics,
        )
        self.system_relations = install_introspection(self)

    @classmethod
    def from_dict(cls, data):
        """Build from ``{name: (attributes, rows)}`` (see Database)."""
        return cls(Database.from_dict(data))

    # -- parallel execution --------------------------------------------------

    def parallel_backend(self, workers=None):
        """The session's :class:`~repro.parallel.ParallelBackend`.

        One backend (and hence one worker pool) is cached per worker
        count, so repeated parallel queries reuse the same processes.
        ``workers=None`` means the visible CPU count.
        """
        from ..parallel import ParallelBackend

        if workers is None:
            import os

            workers = max(1, os.cpu_count() or 1)
        workers = max(1, int(workers))
        backend = self._parallel_backends.get(workers)
        if backend is None:
            backend = ParallelBackend(workers=workers)
            self._parallel_backends[workers] = backend
        return backend

    def _resolve_parallel(self, executor, workers):
        """Map the ``executor``/``workers`` arguments to a backend or None."""
        if executor == "compiled":
            return None
        if executor == "parallel" or (executor and workers is not None):
            return self.parallel_backend(workers)
        return None

    def close(self):
        """Shut down any worker pools this workbench spawned."""
        for backend in self._parallel_backends.values():
            backend.close()

    # -- querying ------------------------------------------------------------
    #
    # Every relational entry point compiles into one pipeline:
    # front-end -> canonical logical plan -> optimizer -> physical plan ->
    # streaming executor.  ``executor=False`` falls back to the legacy
    # materialize-everything tree walk (the differential oracle),
    # mirroring the ``indexed=False`` opt-out of the Datalog layer.

    def _sync_caches(self):
        """Surgically invalidate caches for relations that changed.

        The MVCC store's version id is the fast path: unchanged means
        nothing to do (one int compare per query).  On a bump, the
        per-relation ``(version, attributes)`` state is diffed against
        the last sync: plans referencing a changed relation are dropped
        (their cardinality estimates and rewrites are stale), kernels
        only when the relation's *schema* changed (they re-fetch tuples
        by name, so content deltas keep compiled read paths hot).  The
        parse cache survives everything — parse output is
        schema-independent by construction (deferred-resolution nodes).
        """
        vid = self.db.version_id()
        if self._cache_state is not None and vid == self._cache_version:
            return
        state = self.db.relation_state()
        old = self._cache_state
        if old is not None:
            changed = {
                name
                for name in set(old) | set(state)
                if old.get(name) != state.get(name)
            }
            if changed:
                self.plan_cache.invalidate_relations(changed)
                reshaped = {
                    name
                    for name in changed
                    if (old.get(name) or (0, None))[1]
                    != (state.get(name) or (0, None))[1]
                }
                if reshaped:
                    self.kernel_cache.invalidate_relations(reshaped)
        self._cache_version = vid
        self._cache_state = state

    def _plan_for(self, canonical, optimized, capture=None):
        """Resolve the cached physical-ready plan (and optimizer info).

        Cache entries are ``(plan, OptimizationInfo | None)`` keyed on
        the canonical structure, the optimized flag, *and* the
        optimizer's configuration token — changing the enabled rule set
        or cost profile must never serve a stale plan.

        ``capture``, when given, receives the cache outcome, the key's
        fingerprint (joinable against ``sys_plan_cache``), and the fired
        optimizer rules — the flight recorder's per-query breadcrumbs.
        """
        key = (
            plan_key(canonical),
            bool(optimized),
            self.optimizer.config_token() if optimized else None,
        )
        cached = self.plan_cache.get(key)
        hit = cached is not None
        if cached is None:
            if optimized:
                plan, info = self.optimizer.optimize_info(canonical, self.db)
                plan = canonicalize(plan, self.db.schema())
            else:
                plan, info = canonical, None
            cached = (plan, info)
            self.plan_cache.put(key, cached)
        if capture is not None:
            capture["plan_cache_hit"] = hit
            capture["plan_fingerprint"] = PlanCache.fingerprint(key)
            if cached[1] is not None:
                capture["rules"] = cached[1].fired
        return cached[0], cached[1], hit, key

    def _run_pipeline(self, expr, optimized, stats, parallel=None,
                      capture=None, compiled=False, db=None, txn=None):
        self._sync_caches()
        base = self.db if db is None else db
        canonical = canonicalize(expr, base.schema())
        if txn is not None:
            # Declare the statement's read set before executing: the
            # concurrency-control check and the Op.read record both
            # happen at relation granularity, first touch per name.
            for name in sorted(relation_names(canonical)):
                if not is_system_name(name):
                    txn.read(name)
        plan, _info, _hit, key = self._plan_for(canonical, optimized, capture)
        route = None
        if compiled:
            kernel, _reason = self.kernel_cache.resolve(plan, base)
            if kernel is not None:
                relation, _tally = kernel.execute(base, stats)
                self.plan_cache.note_route(
                    key, "compiled", kernel=kernel.fingerprint
                )
                if capture is not None:
                    capture["route"] = "compiled"
                    capture["kernel"] = kernel.fingerprint
                return relation
            # Unsupported plan shape: interpret instead, loudly.
            self.metrics.counter("compile_fallbacks_total").inc()
            route = "compiled-fallback"
        if parallel is not None:
            self.plan_cache.note_route(key, "parallel")
            if capture is not None:
                capture["route"] = "parallel"
            relation, _info = parallel.execute_plan(
                plan, base, stats=stats, tracer=self.tracer
            )
            return relation
        route = route or "streaming"
        self.plan_cache.note_route(key, route)
        if capture is not None:
            capture["route"] = route
            if capture.get("instrument"):
                # The flight recorder is armed: run the instrumented
                # twin (identical answers, pinned by the differential
                # suite) so a slow query's OpReport already exists.
                explained = run_explained(
                    plan, base, stats=stats, tracer=self.tracer
                )
                capture["report"] = explained.report
                capture["instrumented"] = True
                return explained.result
        relation, _tally = execute_physical(plan, base, stats)
        return relation

    def _cached_parse(self, kind, text, parse, capture=None):
        key = (kind, text)
        expr = self._parse_cache.get(key)
        if capture is not None:
            capture["parse_cache_hit"] = expr is not None
        if expr is None:
            expr = parse(text)
            self._parse_cache[key] = expr
        return expr

    def sql(self, text, optimized=True, executor=True, stats=None,
            workers=None, txn=None):
        """Run a SQL statement; returns a Relation (or a DMLResult).

        ``INSERT``/``DELETE``/``UPDATE`` statements run their relational
        side (the INSERT source, the matched-row scan of a WHERE) through
        the same plan pipeline as queries — planned, optimized, cached,
        and executable on any route including ``executor="compiled"`` —
        then commit the tuple delta through the versioned store.  They
        return a :class:`~repro.relational.dml.DMLResult`.

        Args:
            text: the SQL text.
            optimized: run the algebraic optimizer over the canonical
                plan.
            executor: compile through the shared pipeline and run on the
                streaming executor (default); ``"compiled"`` generates a
                fused Python kernel for the plan (interpreting, and
                counting ``compile_fallbacks_total``, when the plan has
                an unsupported shape); ``"parallel"`` additionally
                hash-partitions large plans across a worker pool; False
                reproduces the legacy tree-walk path bit for bit.
            stats: optional
                :class:`~repro.datalog.stats.EngineStatistics` charged
                with the executor's work.
            workers: worker count for parallel execution (implies
                ``executor="parallel"``; None = CPU count).
            txn: a live :class:`~repro.storage.txn.Transaction` (from
                :meth:`begin`); the statement sees the transaction's
                view and its writes stage in the transaction's overlay.
                ``txn.sql(...)`` is the usual spelling.
        """
        if self.history.enabled and not self._recording:
            return self._recorded(
                "sql", text, optimized, executor, stats, workers, txn=txn
            )
        return self._sql(text, optimized, executor, stats, workers, txn=txn)

    def _sql(self, text, optimized, executor, stats, workers, capture=None,
             txn=None):
        if executor or txn is not None:
            expr = self._cached_parse("sql", text, parse_sql, capture)
            if isinstance(expr, DMLStatement):
                return self._dml(
                    expr, optimized, executor, stats, workers,
                    capture=capture, txn=txn,
                )
            return self._run_pipeline(
                expr, optimized, stats,
                parallel=self._resolve_parallel(executor, workers),
                capture=capture, compiled=executor == "compiled",
                db=txn.view() if txn is not None else None, txn=txn,
            )
        if capture is not None:
            capture["route"] = "treewalk"
        expr = parse_sql(text)
        if isinstance(expr, DMLStatement):
            return self._dml(
                expr, optimized, executor, stats, workers, capture=capture
            )
        if optimized:
            expr = optimize(expr, self.db)
        return evaluate(expr, self.db)

    def _dml(self, stmt, optimized, executor, stats, workers, capture=None,
             txn=None):
        """Run a DML statement: pipeline the relational side, apply the
        delta.

        Autocommit (no ``txn``) applies through
        :meth:`~repro.relational.database.Database.apply_delta` — one
        journaled version, incremental catalog maintenance.  Inside a
        transaction the delta stages in the overlay instead and commits
        (or rolls back) with the transaction.  There is no tree-walk
        twin for mutation; ``executor=False`` still plans through the
        pipeline.
        """
        if not executor:
            executor = True
        db = txn.view() if txn is not None else self.db
        target = stmt.target
        with self.tracer.span("dml", kind=stmt.kind, target=target) as span:
            executed = self._run_pipeline(
                stmt.source_expr(), optimized, stats,
                parallel=self._resolve_parallel(executor, workers),
                capture=capture, compiled=executor == "compiled",
                db=db, txn=txn,
            )
            if txn is not None:
                # The delta is computed against the target's current
                # content (set semantics: a duplicate INSERT or identity
                # UPDATE is a no-op), so the target belongs to the
                # statement's read set even when the source expression
                # never mentions it — e.g. INSERT ... VALUES.  Without
                # this the no-op decision is an unrecorded read: no
                # lock, no timestamp, no Op in the history, and the
                # final state can diverge from a serial replay.
                txn.read(target)
            target_rel = db[target]
            insert_rows, delete_rows, matched = stmt.delta(
                executed, target_rel
            )
            if txn is not None:
                old = set(target_rel.tuples)
                final = (old - set(delete_rows)) | set(insert_rows)
                added = final - old
                removed = old - final
                if added or removed:
                    txn.stage(
                        target, Relation(target_rel.schema, final),
                        inserted=len(added), deleted=len(removed),
                        kind=stmt.kind,
                    )
                relation = txn.binding(target)
            else:
                relation, added, removed = self.db.apply_delta(
                    target, insert_rows=insert_rows,
                    delete_rows=delete_rows, kind=stmt.kind,
                )
            span.set(
                rows_matched=matched, rows_inserted=len(added),
                rows_deleted=len(removed),
            )
        self.metrics.counter("dml_statements_total", kind=stmt.kind).inc()
        self.metrics.counter("dml_rows_total").inc(len(added) + len(removed))
        if capture is not None:
            capture["route"] = "dml:%s:%s" % (
                stmt.kind, capture.get("route") or "streaming"
            )
        return DMLResult(
            stmt.kind, target, matched, len(added), len(removed), relation
        )

    # -- transactions --------------------------------------------------------

    def begin(self, cc="2pl"):
        """Begin a live transaction (``cc="2pl"`` or ``"timestamp"``).

        Returns a :class:`~repro.storage.txn.Transaction`: use it as a
        context manager (commit on success, rollback on error) or call
        ``commit()``/``rollback()`` yourself.  ``txn.sql(...)`` runs
        queries and DML inside the transaction; every interleaved
        execution is recorded as a
        :class:`~repro.transactions.schedule.Schedule` and the committed
        history is checked against the theory's serializability and
        recoverability predicates on every commit.
        """
        return self.txns.begin(cc=cc)

    def snapshot(self):
        """An immutable snapshot of the committed state (MVCC pin).

        O(1): copy-on-write versioning means a snapshot is a reference
        to the current bindings, never a data copy.  The snapshot's
        ``.db`` answers queries identically no matter what commits
        afterwards.
        """
        return self.db.snapshot()

    def algebra(self, expr, optimized=False, executor=True, stats=None,
                workers=None):
        """Evaluate a relational-algebra expression."""
        if self.history.enabled and not self._recording:
            return self._recorded(
                "algebra", expr, optimized, executor, stats, workers
            )
        return self._algebra(expr, optimized, executor, stats, workers)

    def _algebra(self, expr, optimized, executor, stats, workers,
                 capture=None):
        if executor:
            return self._run_pipeline(
                expr, optimized, stats,
                parallel=self._resolve_parallel(executor, workers),
                capture=capture, compiled=executor == "compiled",
            )
        if capture is not None:
            capture["route"] = "treewalk"
        if optimized:
            expr = optimize(expr, self.db)
        return evaluate(expr, self.db)

    def calculus(self, query, via="algebra", optimized=False, executor=True,
                 stats=None, workers=None):
        """Evaluate a safe calculus query.

        Args:
            query: a :class:`~repro.relational.calculus.Query` or query
                text like ``"{(x) | person(x)}"``.
            via: "algebra" compiles through Codd's translation (the
                production path); "direct" uses active-domain enumeration
                (the semantics oracle).
            optimized: run the algebraic optimizer (algebra path only).
            executor: run the compiled algebra on the streaming executor
                (default); False uses the legacy tree walk.
            stats: optional EngineStatistics charged with executor work.
        """
        if self.history.enabled and not self._recording:
            return self._recorded(
                "calculus", query, optimized, executor, stats, workers,
                via=via,
            )
        return self._calculus(query, via, optimized, executor, stats, workers)

    def _calculus(self, query, via, optimized, executor, stats, workers,
                  capture=None):
        if isinstance(query, str):
            from ..relational.calculus_parser import parse_calculus

            query = parse_calculus(query)
        if via == "direct":
            if capture is not None:
                capture["route"] = "direct"
            return evaluate_query(query, self.db)
        expr = calculus_to_algebra(query, self.db.schema())
        if executor:
            return self._run_pipeline(
                expr, optimized, stats,
                parallel=self._resolve_parallel(executor, workers),
                capture=capture, compiled=executor == "compiled",
            )
        if capture is not None:
            capture["route"] = "treewalk"
        if optimized:
            expr = optimize(expr, self.db)
        return evaluate(expr, self.db)

    def run(self, query, kind=None, optimized=True, executor=True,
            stats=None, workers=None):
        """Run a query in any front-end language; auto-detects the kind.

        The one-call surface for parallel execution::

            wb.run("SELECT ...", executor="parallel", workers=4)
            wb.run("path(X,Z) :- ...", executor="parallel", workers=4)

        Relational kinds (SQL / algebra / calculus) return a
        :class:`~repro.relational.relation.Relation`; Datalog source is
        fully evaluated and returns the model as a
        :class:`~repro.datalog.facts.FactStore`.

        Args:
            query: SQL text, an algebra expression, a calculus query
                (object or ``{...}`` text), or Datalog source.
            kind: force the front-end ("sql", "algebra", "calculus",
                "datalog") instead of auto-detecting.
            optimized: run the algebraic optimizer (relational kinds).
            executor: as in :meth:`sql` — ``"parallel"`` enables the
                partitioned backend; queries below its cost gate still
                run serially without spawning workers.
            stats: optional EngineStatistics.
            workers: worker count for parallel execution (implies
                ``executor="parallel"``; None = CPU count).
        """
        if kind is None:
            kind = self._detect_kind(query)
        if kind == "sql":
            return self.sql(
                query, optimized=optimized, executor=executor, stats=stats,
                workers=workers,
            )
        if kind == "algebra":
            return self.algebra(
                query, optimized=optimized, executor=executor, stats=stats,
                workers=workers,
            )
        if kind == "calculus":
            return self.calculus(
                query, optimized=optimized, executor=executor, stats=stats,
                workers=workers,
            )
        if kind == "datalog":
            if self.history.enabled and not self._recording:
                return self._recorded(
                    "datalog", query, optimized, executor, stats, workers
                )
            return self._datalog_eval(query, executor, workers, stats)
        raise ValueError("unknown query kind %r" % (kind,))

    def _datalog_eval(self, source, executor, workers, stats, capture=None):
        engine = self.datalog(source, executor=executor, workers=workers)
        lowerable = bool(executor) and is_lowerable(engine.program)
        if capture is not None:
            if lowerable:
                capture["route"] = (
                    "datalog:compiled"
                    if engine.kernel_cache is not None
                    else "datalog:lowered"
                )
            else:
                capture["route"] = "datalog:fixpoint"
        fallbacks_before = self.kernel_cache.fallback_runs
        try:
            return engine.evaluate(stats=stats)
        finally:
            fallen = self.kernel_cache.fallback_runs - fallbacks_before
            if fallen:
                self.metrics.counter("compile_fallbacks_total").inc(fallen)

    # -- observability ------------------------------------------------------------

    def _recorded(self, kind, query, optimized, executor, stats, workers,
                  via="algebra", txn=None):
        """Run one query under the flight recorder.

        The recording path of every public query method: sets the
        reentrancy guard (``run`` delegating to ``sql`` must leave one
        record, not two), allocates the capture dict and — when the
        caller passed none — the statistics object, and appends the
        record in a ``finally`` so failed queries are captured too.
        """
        capture = {}
        if (
            self.history.slow_ms is not None
            and executor is True
            and workers is None
            and kind != "datalog"
            and not (kind == "calculus" and via == "direct")
        ):
            # Arm the instrumented executor so a slow query's OpReport
            # exists without a re-run.  Parallel/tree-walk/fixpoint
            # routes have no per-operator reports; they record wall
            # time and counters only.
            capture["instrument"] = True
        own_stats = stats if stats is not None else EngineStatistics()
        self._recording = True
        start = time.perf_counter()
        error = None
        result = None
        try:
            result = self._dispatch(
                kind, query, optimized, executor, own_stats, workers, via,
                capture, txn,
            )
            return result
        except Exception as exc:
            error = exc
            raise
        finally:
            self._recording = False
            elapsed = time.perf_counter() - start
            self.history.add(
                kind, query, elapsed, result=result, stats=own_stats,
                capture=capture, error=error,
            )

    def _dispatch(self, kind, query, optimized, executor, stats, workers,
                  via, capture, txn=None):
        if kind == "sql":
            return self._sql(
                query, optimized, executor, stats, workers, capture, txn=txn
            )
        if kind == "algebra":
            return self._algebra(
                query, optimized, executor, stats, workers, capture
            )
        if kind == "calculus":
            return self._calculus(
                query, via, optimized, executor, stats, workers, capture
            )
        if kind == "datalog":
            return self._datalog_eval(query, executor, workers, stats,
                                      capture)
        raise ValueError("unknown query kind %r" % (kind,))

    def _detect_kind(self, query):
        from ..relational.algebra import AlgebraExpr
        from ..relational.calculus import Query

        if isinstance(query, AlgebraExpr):
            return "algebra"
        if isinstance(query, Query):
            return "calculus"
        if isinstance(query, str):
            text = query.strip()
            if text.startswith("{"):
                return "calculus"
            if ":-" in text or "?-" in text:
                return "datalog"
            return "sql"
        raise TypeError(
            "cannot explain %r; pass SQL/calculus/Datalog text, an "
            "algebra expression, or a calculus Query" % (query,)
        )

    def explain_analyze(self, query, kind=None, optimized=True, stats=None,
                        tracer=None):
        """Run a query with per-operator instrumentation: EXPLAIN ANALYZE.

        Accepts the same inputs as the query methods — SQL text, an
        algebra expression, a calculus query (object or ``{...}`` text),
        or Datalog source — and returns an
        :class:`~repro.plan.explain.ExplainResult`: the ordinary query
        result plus an annotated operator tree (rows, wall-clock time,
        scan/probe/build/materialize counters, peak buffers per
        operator) and the plan/parse cache outcomes for this run.

        The result is identical to the uninstrumented path (the
        differential tests pin this); only the accounting differs.

        Args:
            query: the query, in any front-end.
            kind: force the front-end ("sql", "algebra", "calculus",
                "datalog") instead of auto-detecting from the input.
            optimized: run the algebraic optimizer (relational kinds).
            stats: optional EngineStatistics; charged the same work an
                uninstrumented run would charge.
            tracer: optional :class:`~repro.obs.trace.Tracer`; the
                annotated tree is mirrored into it as nested spans.
                Defaults to the workbench's tracer (a no-op unless one
                was passed at construction).

        Raises:
            DatalogError: for recursive Datalog programs, which need the
                fixpoint engines (trace those via
                :meth:`datalog` with a tracer-carrying engine).
        """
        tracer = ensure_tracer(tracer) if tracer is not None else self.tracer
        if kind is None:
            kind = self._detect_kind(query)

        if kind == "datalog":
            program, _queries = parse_program(query)
            edb = materialize_system_facts(
                self.db, program, FactStore.from_database(self.db)
            )
            return explain_datalog(
                program,
                edb=edb,
                stats=stats,
                tracer=tracer,
            )

        self._sync_caches()
        parse_cache_hit = None
        if kind == "sql":
            parse_cache_hit = ("sql", query) in self._parse_cache
            expr = self._cached_parse("sql", query, parse_sql)
            if isinstance(expr, DMLStatement):
                return self._explain_dml(
                    expr, optimized, stats, tracer, parse_cache_hit
                )
        elif kind == "calculus":
            if isinstance(query, str):
                from ..relational.calculus_parser import parse_calculus

                parse_cache_hit = ("calculus", query) in self._parse_cache
                query = self._cached_parse("calculus", query, parse_calculus)
            expr = calculus_to_algebra(query, self.db.schema())
        elif kind == "algebra":
            expr = query
        else:
            raise ValueError("unknown query kind %r" % (kind,))

        canonical = canonicalize(expr, self.db.schema())
        plan, info, plan_cache_hit, _key = self._plan_for(canonical, optimized)
        result = run_explained(
            plan, self.db, stats=stats, tracer=tracer, kind=kind
        )
        result.plan_cache_hit = plan_cache_hit
        result.parse_cache_hit = parse_cache_hit
        result.optimizer = info
        result.kernel = self._kernel_status(plan)
        annotate_estimates(
            result.report,
            plan,
            self.db,
            self.optimizer.context(self.db).cost,
        )
        return result

    def _explain_dml(self, stmt, optimized, stats, tracer, parse_cache_hit):
        """EXPLAIN ANALYZE for DML.

        ANALYZE executes: the relational side runs instrumented (the
        OpReport tree covers the INSERT source or the matched-row scan)
        and the delta **is applied**, so ``result`` is the same
        :class:`~repro.relational.dml.DMLResult` the plain statement
        returns, alongside the plan/kernel fingerprints.
        """
        source = stmt.source_expr()
        canonical = canonicalize(source, self.db.schema())
        plan, info, plan_cache_hit, _key = self._plan_for(canonical, optimized)
        explained = run_explained(
            plan, self.db, stats=stats, tracer=tracer,
            kind="dml:%s" % stmt.kind,
        )
        insert_rows, delete_rows, matched = stmt.delta(
            explained.result, self.db[stmt.target]
        )
        relation, added, removed = self.db.apply_delta(
            stmt.target, insert_rows=insert_rows, delete_rows=delete_rows,
            kind=stmt.kind,
        )
        explained.plan_cache_hit = plan_cache_hit
        explained.parse_cache_hit = parse_cache_hit
        explained.optimizer = info
        explained.kernel = self._kernel_status(plan)
        annotate_estimates(
            explained.report,
            plan,
            self.db,
            self.optimizer.context(self.db).cost,
        )
        explained.result = DMLResult(
            stmt.kind, stmt.target, matched, len(added), len(removed),
            relation,
        )
        return explained

    def _kernel_status(self, plan):
        """Compiled-kernel status of a plan for EXPLAIN ANALYZE.

        Peeks the kernel cache without compiling: ``status`` is
        "compiled", "fallback" (with the refusal reason), or "cold"
        when no ``executor="compiled"`` run has seen this plan yet.
        """
        entry, fingerprint = self.kernel_cache.peek(plan, self.db)
        if entry is None:
            return {"fingerprint": fingerprint, "status": "cold"}
        reason = getattr(entry, "reason", None)
        if reason is not None:
            return {
                "fingerprint": fingerprint,
                "status": "fallback",
                "reason": reason,
            }
        return {
            "fingerprint": fingerprint,
            "status": "compiled",
            "pipelines": entry.pipelines,
            "hits": entry.hits,
        }

    def codd_check(self, query):
        """Run :func:`~repro.relational.codd.check_codd_equivalence`.

        Accepts a Query object or calculus text.
        """
        if isinstance(query, str):
            from ..relational.calculus_parser import parse_calculus

            query = parse_calculus(query)
        return check_codd_equivalence(query, self.db)

    def to_calculus(self, expr):
        """Translate an algebra expression to an equivalent calculus query."""
        return algebra_to_calculus(expr, self.db.schema())

    # -- Datalog ------------------------------------------------------------------

    def datalog(self, source, executor=True, workers=None):
        """A Datalog engine whose EDB is this workbench's database.

        Any ``?-`` queries in the source are ignored here; use the
        returned engine's ``.query``.  Non-recursive programs run as
        algebra plans on the shared streaming executor by default;
        ``executor=False`` forces the fixpoint machinery everywhere.
        ``executor="parallel"`` (or an explicit ``workers=N``) attaches
        the workbench's worker pool, sharding large semi-naive rounds.

        The EDB is the database's *user* relations; any ``sys_`` system
        relation named in a rule body is snapshotted in as well (and a
        ``sys_`` rule head raises — the namespace is read-only).
        """
        program, _queries = parse_program(source)
        store = materialize_system_facts(
            self.db, program, FactStore.from_database(self.db)
        )
        return DatalogEngine(
            program, store,
            executor=bool(executor), tracer=self.tracer,
            parallel=self._resolve_parallel(executor, workers),
            kernel_cache=(
                self.kernel_cache if executor == "compiled" else None
            ),
        )

    # -- schema analysis ----------------------------------------------------------

    def design(self, scheme, fds):
        """A :class:`~repro.dependencies.design.DesignTool` for a scheme."""
        return DesignTool(scheme, fds)

    def schema_hypergraph(self):
        """The database schema as a hypergraph (user relations only —
        the ``sys_`` virtual relations are not part of the data's
        structure)."""
        return Hypergraph.from_schema(self.db.schema(virtual=False))

    def is_acyclic(self):
        """Alpha-acyclicity of the schema."""
        return is_alpha_acyclic(self.schema_hypergraph())

    def full_join(self, method="yannakakis"):
        """Natural join of all relations (acyclic schemas only for
        "yannakakis"; "naive" works on anything join-connected)."""
        hypergraph = self.schema_hypergraph()
        if method == "yannakakis":
            return yannakakis_join(hypergraph, self.db)
        return naive_join(hypergraph, self.db)

    def __repr__(self):
        return "MetatheoryWorkbench(%r)" % (self.db,)
