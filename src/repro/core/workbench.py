"""The MetatheoryWorkbench: one facade over the whole corpus.

The library's front door.  A workbench holds one relational database and
offers every query language and analysis the paper surveys:

* SQL, relational algebra, safe relational calculus (with Codd
  translation between the latter two);
* Datalog over the same data, under any of the four strategies;
* schema analysis: dependencies, keys, normal forms, decompositions,
  acyclicity, Yannakakis joins;
* the metascience models, as static methods (they need no data).

See ``examples/quickstart.py`` for the guided tour.
"""

from __future__ import annotations

from ..acyclic.gyo import is_alpha_acyclic
from ..acyclic.hypergraph import Hypergraph
from ..acyclic.yannakakis import naive_join, yannakakis_join
from ..datalog.engine import DatalogEngine
from ..datalog.facts import FactStore
from ..datalog.parser import parse_program
from ..dependencies.design import DesignTool
from ..relational.algebra import evaluate
from ..relational.calculus import evaluate_query
from ..relational.codd import (
    algebra_to_calculus,
    calculus_to_algebra,
    check_codd_equivalence,
)
from ..relational.database import Database
from ..relational.optimizer import optimize
from ..relational.sql_frontend import parse_sql


class MetatheoryWorkbench:
    """A database plus every classical way of querying and analyzing it."""

    def __init__(self, db=None):
        self.db = db if db is not None else Database()

    @classmethod
    def from_dict(cls, data):
        """Build from ``{name: (attributes, rows)}`` (see Database)."""
        return cls(Database.from_dict(data))

    # -- querying ------------------------------------------------------------

    def sql(self, text, optimized=True):
        """Run a SQL statement; returns a Relation."""
        expr = parse_sql(text)
        if optimized:
            expr = optimize(expr, self.db)
        return evaluate(expr, self.db)

    def algebra(self, expr, optimized=False):
        """Evaluate a relational-algebra expression."""
        if optimized:
            expr = optimize(expr, self.db)
        return evaluate(expr, self.db)

    def calculus(self, query, via="algebra"):
        """Evaluate a safe calculus query.

        Args:
            query: a :class:`~repro.relational.calculus.Query` or query
                text like ``"{(x) | person(x)}"``.
            via: "algebra" compiles through Codd's translation (the
                production path); "direct" uses active-domain enumeration
                (the semantics oracle).
        """
        if isinstance(query, str):
            from ..relational.calculus_parser import parse_calculus

            query = parse_calculus(query)
        if via == "direct":
            return evaluate_query(query, self.db)
        expr = calculus_to_algebra(query, self.db.schema())
        return evaluate(expr, self.db)

    def codd_check(self, query):
        """Run :func:`~repro.relational.codd.check_codd_equivalence`.

        Accepts a Query object or calculus text.
        """
        if isinstance(query, str):
            from ..relational.calculus_parser import parse_calculus

            query = parse_calculus(query)
        return check_codd_equivalence(query, self.db)

    def to_calculus(self, expr):
        """Translate an algebra expression to an equivalent calculus query."""
        return algebra_to_calculus(expr, self.db.schema())

    # -- Datalog ------------------------------------------------------------------

    def datalog(self, source):
        """A Datalog engine whose EDB is this workbench's database.

        Any ``?-`` queries in the source are ignored here; use the
        returned engine's ``.query``.
        """
        program, _queries = parse_program(source)
        return DatalogEngine(program, FactStore.from_database(self.db))

    # -- schema analysis ----------------------------------------------------------

    def design(self, scheme, fds):
        """A :class:`~repro.dependencies.design.DesignTool` for a scheme."""
        return DesignTool(scheme, fds)

    def schema_hypergraph(self):
        """The database schema as a hypergraph."""
        return Hypergraph.from_schema(self.db.schema())

    def is_acyclic(self):
        """Alpha-acyclicity of the schema."""
        return is_alpha_acyclic(self.schema_hypergraph())

    def full_join(self, method="yannakakis"):
        """Natural join of all relations (acyclic schemas only for
        "yannakakis"; "naive" works on anything join-connected)."""
        hypergraph = self.schema_hypergraph()
        if method == "yannakakis":
            return yannakakis_join(hypergraph, self.db)
        return naive_join(hypergraph, self.db)

    def __repr__(self):
        return "MetatheoryWorkbench(%r)" % (self.db,)
