"""The kernel cache: compile once per (plan, schema) pair.

Keyed by the canonical :func:`~repro.plan.logical.plan_key` plus the
schema sub-token of just the relations the plan references, so a kernel
survives arbitrary *content* changes (it re-fetches relations by name
at call time) **and** schema changes to relations it never touches; it
is invalidated the moment a schema it resolved attribute positions
against changes.  The 12-hex fingerprint
shown in ``sys_kernels`` and EXPLAIN ANALYZE derives from the plan key
alone; ``sys_plan_cache`` records it per entry (``kernel_fingerprint``)
whenever a compiled kernel serves a cached plan, so the two relations
join.

Fallback verdicts are cached negatively: a plan the generator refused
once is refused from the cache thereafter without re-walking it, and
every fallback *resolution* (first or cached) counts in
``fallback_runs`` so the workbench's ``compile_fallbacks_total`` metric
never under-reports.
"""

from __future__ import annotations

from ..plan.cache import PlanCache
from ..plan.logical import plan_key
from ..relational.algebra import relation_names
from .codegen import CompileFallback, compile_plan


class _FallbackEntry:
    """Negative cache entry: the generator refused this plan."""

    __slots__ = ("reason", "hits")

    def __init__(self, reason):
        self.reason = reason
        self.hits = 0


class KernelCache:
    """Bounded FIFO-evicting cache of compiled kernels.

    Counter semantics: ``hits``/``misses`` count resolutions against the
    cache; ``codegens`` counts actual code generation runs (the
    zero-codegen-on-repeat test pins this); ``fallbacks`` counts
    distinct refused plans and ``fallback_runs`` every resolution that
    ended in a fallback, cached or not.
    """

    __slots__ = (
        "capacity",
        "hits",
        "misses",
        "evictions",
        "codegens",
        "fallbacks",
        "fallback_runs",
        "_entries",
    )

    def __init__(self, capacity=256):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.codegens = 0
        self.fallbacks = 0
        self.fallback_runs = 0
        self._entries = {}

    def __len__(self):
        return len(self._entries)

    @staticmethod
    def key_for(plan, db):
        """``(plan_key, referenced-relations sub-schema-token)``.

        Narrowing the schema token to the plan's own relations means an
        unrelated ``add``/``remove``/reshape elsewhere in the database
        cannot orphan this kernel — mutation-heavy sessions keep their
        compiled read paths hot.
        """
        schema = db.schema()
        return (
            plan_key(plan),
            tuple(
                (name, schema[name].attributes)
                for name in sorted(relation_names(plan))
                if name in schema
            ),
        )

    @staticmethod
    def fingerprint(key):
        """12-hex kernel fingerprint (from the plan key alone)."""
        return PlanCache.fingerprint(key[0])

    def resolve(self, plan, db):
        """The kernel for a canonical plan, compiling on first sight.

        Returns:
            ``(kernel, None)`` when the plan compiled (now or earlier),
            ``(None, reason)`` when it falls back to interpretation.
        """
        key = self.key_for(plan, db)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            entry.hits += 1
            if isinstance(entry, _FallbackEntry):
                self.fallback_runs += 1
                return None, entry.reason
            return entry, None
        self.misses += 1
        try:
            kernel = compile_plan(
                plan, db.schema(), fingerprint=self.fingerprint(key)
            )
        except CompileFallback as exc:
            self.fallbacks += 1
            self.fallback_runs += 1
            entry = _FallbackEntry(str(exc))
            self._put(key, entry)
            return None, entry.reason
        self.codegens += 1
        self._put(key, kernel)
        return kernel, None

    def peek(self, plan, db):
        """``(entry, fingerprint)`` without compiling or counting.

        ``entry`` is a :class:`~repro.compile.codegen.CompiledKernel`, a
        fallback entry (``reason`` attribute), or None when cold.
        """
        key = self.key_for(plan, db)
        return self._entries.get(key), self.fingerprint(key)

    def _put(self, key, entry):
        if key not in self._entries and len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        self._entries[key] = entry

    def entries(self):
        """``(index, fingerprint, status, pipelines, hits)`` per entry,
        insertion order — the ``sys_kernels`` rows."""
        rows = []
        for index, (key, entry) in enumerate(self._entries.items()):
            if isinstance(entry, _FallbackEntry):
                rows.append(
                    (index, self.fingerprint(key), "fallback", None,
                     entry.hits)
                )
            else:
                rows.append(
                    (index, self.fingerprint(key), "compiled",
                     entry.pipelines, entry.hits)
                )
        return rows

    def invalidate_relations(self, names):
        """Drop kernels whose schema sub-token mentions ``names``.

        Content-only changes never call this (kernels re-fetch tuples by
        name); reshaping or removing a relation does, so ``sys_kernels``
        never shows a kernel compiled against a dead schema.  Returns
        the number of entries dropped.
        """
        names = set(names)
        if not names:
            return 0
        dropped = 0
        for key in list(self._entries):
            if any(name in names for name, _attrs in key[1]):
                del self._entries[key]
                dropped += 1
        return dropped

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "codegens": self.codegens,
            "fallbacks": self.fallbacks,
            "fallback_runs": self.fallback_runs,
            "size": len(self._entries),
        }

    def publish(self, registry, name="kernel_cache", **labels):
        """Record the current counters into a metrics registry."""
        for field, value in self.stats().items():
            registry.gauge("%s_%s" % (name, field), **labels).set(value)
        return registry

    def clear(self):
        """Drop all entries and reset every counter (schema changed)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.codegens = 0
        self.fallbacks = 0
        self.fallback_runs = 0


def execute_compiled(plan, db, stats=None, cache=None):
    """Compile (or fetch) a kernel for a canonical plan and run it.

    Mirrors :func:`~repro.plan.executor.execute_physical`'s signature
    and return shape.

    Raises:
        CompileFallback: when the plan has an unsupported shape.
    """
    if cache is None:
        kernel = compile_plan(plan, db.schema())
        return kernel.execute(db, stats)
    kernel, reason = cache.resolve(plan, db)
    if kernel is None:
        raise CompileFallback(reason)
    return kernel.execute(db, stats)
