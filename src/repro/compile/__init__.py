"""Query compilation: fused Python kernels generated from plans.

The produce/consume code generator (:mod:`.codegen`) turns a canonical
logical plan into one specialized Python function — pipelines fused
into plain loops, conditions and projections inlined, work counters
batched — and the :class:`KernelCache` (:mod:`.cache`) compiles each
(plan, schema) pair exactly once.  The workbench exposes it all as
``executor="compiled"`` on every front-end, falling back to the
interpreted streaming executor (and counting it) on any plan shape the
generator refuses.
"""

from .cache import KernelCache, execute_compiled
from .codegen import CompiledKernel, CompileFallback, compile_plan

__all__ = [
    "CompileFallback",
    "CompiledKernel",
    "KernelCache",
    "compile_plan",
    "execute_compiled",
]
