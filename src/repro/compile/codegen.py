"""Code generation: canonical logical plans to fused Python kernels.

The streaming executor (:mod:`repro.plan.physical`) pays a generator
frame plus a :class:`~repro.plan.physical.Tally` method call per tuple
per operator.  This module removes both: it walks a canonical plan in
the produce/consume style of HyPer-era query compilers and emits one
specialized Python function per plan, with

* scan -> filter -> project chains fused into a single ``for`` loop,
* hash-join build and probe sides as separate fused loops,
* dedup, set operations, and division as pipeline breakers, and
* selection conditions and projection maps inlined as expressions
  whose attribute references are resolved to tuple indexes at codegen
  time (no per-tuple closure or dict lookup survives).

Work accounting is batched: each kernel accumulates plain-int local
counters and flushes them to the caller's ``Tally``/``EngineStatistics``
once, in a ``finally`` block.  The flush preserves the *exact* counter
semantics of the interpreted operators — the differential suite in
``tests/compile`` pins ``facts_scanned``, ``index_probes``,
``index_builds``, ``tuples_materialized``, and ``peak_buffer`` equal on
both legs.  (``peak_buffer`` batches soundly because every interpreted
buffer grows monotonically, so the running maximum it reports equals
the maximum over buffers of their final size.)

Plans the generator cannot fuse raise :class:`CompileFallback`; callers
run the interpreted executor instead and count the fallback.  The one
semantic hole is a semijoin/antijoin with no shared attributes: the
interpreted operator pulls a *single* right tuple and stops, so its
``facts_scanned`` is data-dependent in a way a batched kernel cannot
reproduce without re-implementing early termination — it stays
interpreted.

Equality comparisons inline as ``==``/``!=`` (no value produced by the
front-ends raises :class:`TypeError` from equality); ordered
comparisons go through tiny guarded helpers that mirror the
interpreted ``TypeError -> False`` contract per comparison.
"""

from __future__ import annotations

import math
import operator

from ..relational import algebra as ra
from ..relational.relation import Relation


class CompileFallback(Exception):
    """The plan contains a shape the kernel generator does not fuse.

    Callers catch this and run the interpreted executor; the message
    names the offending operator so fallbacks are observable.
    """


def _guarded(op):
    def compare(a, b):
        try:
            return op(a, b)
        except TypeError:
            return False

    return compare


_ORDERED_HELPERS = {
    "<": ("_lt", _guarded(operator.lt)),
    "<=": ("_le", _guarded(operator.le)),
    ">": ("_gt", _guarded(operator.gt)),
    ">=": ("_ge", _guarded(operator.ge)),
}

_SIMPLE_CONST_TYPES = (int, float, str, bytes, bool, type(None))


class CompiledKernel:
    """One plan, compiled: a closed-over function plus its metadata."""

    __slots__ = (
        "fingerprint",
        "schema",
        "source",
        "pipelines",
        "ops",
        "hits",
        "_fn",
    )

    def __init__(self, fn, schema, source, pipelines, ops, fingerprint):
        self._fn = fn
        self.schema = schema
        self.source = source
        self.pipelines = pipelines
        self.ops = ops
        self.fingerprint = fingerprint
        self.hits = 0

    def execute(self, db, stats=None):
        """Run the kernel over ``db``; return ``(relation, tally)``.

        Mirrors :func:`~repro.plan.executor.execute_physical`: relations
        are fetched from ``db`` by name at call time, so a kernel stays
        valid across content changes under the same schema token.
        """
        # Imported here to match repro.plan.executor: the stats module
        # lives in repro.datalog, whose package __init__ would otherwise
        # cycle back into repro.plan at import time.
        from ..datalog.stats import EngineStatistics
        from ..plan.physical import Tally

        tally = Tally(stats if stats is not None else EngineStatistics())
        out = self._fn(db, tally)
        return Relation(self.schema, out, validate=False), tally

    def __repr__(self):
        return "CompiledKernel(%s, %d pipelines, %d ops)" % (
            self.fingerprint,
            self.pipelines,
            self.ops,
        )


class _KernelBuilder:
    """Produce/consume walker that emits the kernel body.

    ``produce(node, consume)`` emits the loop(s) that enumerate
    ``node``'s tuples; ``consume(var)`` is called at the innermost point
    with the name of the variable holding the current tuple and emits
    the downstream code.  Streaming operators extend the current loop
    body; pipeline breakers drain their input into a local structure
    first.
    """

    def __init__(self, db_schema):
        self.db_schema = db_schema
        self.lines = []
        self.depth = 2  # inside `def kernel` -> `try:`
        self.env = {}
        self.pipelines = 0
        self.ops = 0
        self._n = 0

    # -- emission helpers ------------------------------------------------

    def fresh(self, prefix):
        self._n += 1
        return "_%s%d" % (prefix, self._n)

    def emit(self, line):
        self.lines.append("    " * self.depth + line)

    def bind(self, prefix, value):
        name = self.fresh(prefix)
        self.env[name] = value
        return name

    def const_expr(self, value):
        if isinstance(value, float) and not math.isfinite(value):
            return self.bind("c", value)
        if isinstance(value, _SIMPLE_CONST_TYPES):
            return repr(value)
        return self.bind("c", value)

    def tuple_expr(self, var, positions, arity=None):
        """Source for ``tuple(var[p] for p in positions)``, specialized.

        When ``positions`` is the identity over a tuple of ``arity``
        fields the variable itself is returned (no rebuild).
        """
        positions = list(positions)
        if arity is not None and positions == list(range(arity)):
            return var
        if not positions:
            return "()"
        return "(%s,)" % ", ".join("%s[%d]" % (var, p) for p in positions)

    # -- conditions ------------------------------------------------------

    def operand_expr(self, operand, schema, var):
        if isinstance(operand, ra.Attr):
            return "%s[%d]" % (var, schema.position(operand.name))
        if isinstance(operand, ra.Const):
            return self.const_expr(operand.value)
        raise CompileFallback(
            "unsupported operand %s" % type(operand).__name__
        )

    def cond_expr(self, condition, schema, var):
        if isinstance(condition, ra.Comparison):
            left = self.operand_expr(condition.left, schema, var)
            right = self.operand_expr(condition.right, schema, var)
            if condition.op == "=":
                return "(%s == %s)" % (left, right)
            if condition.op == "!=":
                return "(%s != %s)" % (left, right)
            helper = _ORDERED_HELPERS.get(condition.op)
            if helper is None:
                raise CompileFallback(
                    "unsupported comparison %r" % (condition.op,)
                )
            name, fn = helper
            self.env[name] = fn
            return "%s(%s, %s)" % (name, left, right)
        if isinstance(condition, ra.And):
            if not condition.parts:
                return "True"
            return "(%s)" % " and ".join(
                self.cond_expr(p, schema, var) for p in condition.parts
            )
        if isinstance(condition, ra.Or):
            if not condition.parts:
                return "False"
            return "(%s)" % " or ".join(
                self.cond_expr(p, schema, var) for p in condition.parts
            )
        if isinstance(condition, ra.Not):
            return "(not %s)" % self.cond_expr(condition.part, schema, var)
        raise CompileFallback(
            "unsupported condition %s" % type(condition).__name__
        )

    # -- scans and index builds ------------------------------------------

    def scan(self, node, consume):
        """Drive a loop over a stored or literal relation.

        Matches ``Scan``: every yielded tuple charges ``facts_scanned``,
        and the fused subset always drains its scans completely, so the
        charge hoists to one ``len()``.
        """
        if isinstance(node, ra.RelationRef):
            rel = self.fresh("rel")
            self.emit("%s = _db[%r]" % (rel, node.name))
        else:
            rel = self.bind("lit", node.relation)
        self.emit("_scanned += len(%s.tuples)" % rel)
        self.pipelines += 1
        t = self.fresh("t")
        self.emit("for %s in %s.tuples:" % (t, rel))
        self.depth += 1
        consume(t)
        self.depth -= 1

    def base_index(self, name, positions):
        """Probe handle over a base relation's cached key index.

        Matches ``_BaseIndex.mapping()``: the build cost (one index
        build plus a full scan) is charged only when the pattern is not
        already cached on the relation.
        """
        rel = self.fresh("rel")
        self.emit("%s = _db[%r]" % (rel, name))
        self.emit(
            "if %r not in set(%s.cached_index_patterns()):"
            % (tuple(positions), rel)
        )
        self.depth += 1
        self.emit("_built += 1")
        self.emit("_scanned += len(%s)" % rel)
        self.depth -= 1
        idx = self.fresh("idx")
        self.emit("%s = %s._key_index(%r)" % (idx, rel, tuple(positions)))
        return idx

    def built_index(self, node, positions):
        """Drain ``node`` once into a fresh hash table (a pipeline
        breaker).  Matches ``_BuiltIndex.mapping()``: one index build,
        every drained tuple (duplicates included) materializes, and the
        table's final size is a peak-buffer candidate."""
        schema = node.schema(self.db_schema)
        idx = self.fresh("idx")
        cnt = self.fresh("cnt")
        self.emit("%s = {}" % idx)
        self.emit("%s = 0" % cnt)
        self.emit("_built += 1")

        def build(var):
            key = self.tuple_expr(var, positions, len(schema.attributes))
            self.emit("%s.setdefault(%s, []).append(%s)" % (idx, key, var))
            self.emit("%s += 1" % cnt)

        self.produce(node, build)
        self.emit("_mat += %s" % cnt)
        self.emit("if %s > _peak: _peak = %s" % (cnt, cnt))
        return idx

    # -- operators -------------------------------------------------------

    def produce(self, node, consume):
        self.ops += 1
        method = self._DISPATCH.get(type(node))
        if method is None:
            raise CompileFallback(
                "unsupported operator %s" % type(node).__name__
            )
        method(self, node, consume)

    def _produce_scan(self, node, consume):
        self.scan(node, consume)

    def _produce_selection(self, node, consume):
        schema = node.child.schema(self.db_schema)

        def filtered(var):
            self.emit(
                "if %s:" % self.cond_expr(node.condition, schema, var)
            )
            self.depth += 1
            consume(var)
            self.depth -= 1

        self.produce(node.child, filtered)

    def _produce_projection(self, node, consume):
        child_schema = node.child.schema(self.db_schema)
        positions = [child_schema.position(a) for a in node.attributes]
        seen = self.fresh("seen")
        self.emit("%s = set()" % seen)

        def project(var):
            expr = self.tuple_expr(
                var, positions, len(child_schema.attributes)
            )
            if expr == var:
                out = var
            else:
                out = self.fresh("t")
                self.emit("%s = %s" % (out, expr))
            self.emit("if %s not in %s:" % (out, seen))
            self.depth += 1
            self.emit("%s.add(%s)" % (seen, out))
            consume(out)
            self.depth -= 1

        self.produce(node.child, project)
        self.emit("_mat += len(%s)" % seen)
        self.emit("if len(%s) > _peak: _peak = len(%s)" % (seen, seen))

    def _produce_rename(self, node, consume):
        # Pure schema change: attribute order is preserved, so every
        # downstream position computed against the renamed schema is
        # valid against the child's tuples unchanged.
        self.produce(node.child, consume)

    def _produce_natural_join(self, node, consume):
        left_schema = node.left.schema(self.db_schema)
        right_schema = node.right.schema(self.db_schema)
        shared = left_schema.shared_attributes(right_schema)
        right_positions = tuple(right_schema.position(a) for a in shared)
        if isinstance(node.right, ra.RelationRef):
            idx = self.base_index(node.right.name, right_positions)
        else:
            idx = self.built_index(node.right, right_positions)
        left_positions = [left_schema.position(a) for a in shared]
        extra_positions = [
            right_schema.position(a)
            for a in right_schema.attributes
            if a not in left_schema
        ]

        def probe(svar):
            self.emit("_probed += 1")
            u = self.fresh("u")
            self.emit(
                "for %s in %s.get(%s, ()):"
                % (u, idx, self.tuple_expr(svar, left_positions))
            )
            self.depth += 1
            if extra_positions:
                out = self.fresh("t")
                self.emit(
                    "%s = %s + %s"
                    % (out, svar, self.tuple_expr(u, extra_positions))
                )
                consume(out)
            else:
                consume(svar)
            self.depth -= 1

        self.produce(node.left, probe)

    def _produce_theta_join(self, node, consume):
        from ..plan.physical import _split_equi_conjuncts

        left_schema = node.left.schema(self.db_schema)
        right_schema = node.right.schema(self.db_schema)
        out_schema = left_schema.concat(right_schema)
        equi, residual = _split_equi_conjuncts(
            node.condition,
            set(left_schema.attributes),
            set(right_schema.attributes),
        )

        def joined(svar, tvar):
            out = self.fresh("t")
            self.emit("%s = %s + %s" % (out, svar, tvar))
            if residual is not None:
                self.emit(
                    "if %s:" % self.cond_expr(residual, out_schema, out)
                )
                self.depth += 1
                consume(out)
                self.depth -= 1
            else:
                consume(out)

        if equi:
            right_positions = [right_schema.position(b) for _, b in equi]
            left_positions = [left_schema.position(a) for a, _ in equi]
            idx = self.built_index(node.right, right_positions)

            def probe(svar):
                self.emit("_probed += 1")
                u = self.fresh("u")
                self.emit(
                    "for %s in %s.get(%s, ()):"
                    % (u, idx, self.tuple_expr(svar, left_positions))
                )
                self.depth += 1
                joined(svar, u)
                self.depth -= 1

            self.produce(node.left, probe)
        else:
            buf = self._buffer_list(node.right)

            def loop(svar):
                u = self.fresh("u")
                self.emit("for %s in %s:" % (u, buf))
                self.depth += 1
                joined(svar, u)
                self.depth -= 1

            self.produce(node.left, loop)

    def _buffer_list(self, node):
        """Drain ``node`` into a list (theta-loop/product right side).

        Matches the interpreted buffering: every drained tuple
        materializes and the list's final length is a peak candidate.
        """
        buf = self.fresh("buf")
        self.emit("%s = []" % buf)
        self.produce(node, lambda var: self.emit("%s.append(%s)" % (buf, var)))
        self.emit("_mat += len(%s)" % buf)
        self.emit("if len(%s) > _peak: _peak = len(%s)" % (buf, buf))
        return buf

    def _produce_product(self, node, consume):
        buf = self._buffer_list(node.right)

        def loop(svar):
            u = self.fresh("u")
            self.emit("for %s in %s:" % (u, buf))
            self.depth += 1
            out = self.fresh("t")
            self.emit("%s = %s + %s" % (out, svar, u))
            consume(out)
            self.depth -= 1

        self.produce(node.left, loop)

    def _produce_union(self, node, consume):
        seen = self.fresh("seen")
        self.emit("%s = set()" % seen)

        def dedup(var):
            self.emit("if %s not in %s:" % (var, seen))
            self.depth += 1
            self.emit("%s.add(%s)" % (seen, var))
            consume(var)
            self.depth -= 1

        self.produce(node.left, dedup)
        self.produce(node.right, dedup)
        self.emit("_mat += len(%s)" % seen)
        self.emit("if len(%s) > _peak: _peak = len(%s)" % (seen, seen))

    def _right_member_set(self, node):
        """Drain ``node`` into a membership set (difference /
        intersection right side).  Duplicate adds still materialize,
        matching ``_RightSetOp._right_set``."""
        members = self.fresh("members")
        cnt = self.fresh("cnt")
        self.emit("%s = set()" % members)
        self.emit("%s = 0" % cnt)

        def collect(var):
            self.emit("%s.add(%s)" % (members, var))
            self.emit("%s += 1" % cnt)

        self.produce(node, collect)
        self.emit("_mat += %s" % cnt)
        self.emit(
            "if len(%s) > _peak: _peak = len(%s)" % (members, members)
        )
        return members

    def _produce_difference(self, node, consume):
        self._produce_membership(node, consume, "not in")

    def _produce_intersection(self, node, consume):
        self._produce_membership(node, consume, "in")

    def _produce_membership(self, node, consume, op):
        members = self._right_member_set(node.right)

        def probe(var):
            self.emit("_probed += 1")
            self.emit("if %s %s %s:" % (var, op, members))
            self.depth += 1
            consume(var)
            self.depth -= 1

        self.produce(node.left, probe)

    def _produce_semijoin(self, node, consume):
        negated = isinstance(node, ra.Antijoin)
        left_schema = node.left.schema(self.db_schema)
        right_schema = node.right.schema(self.db_schema)
        shared = left_schema.shared_attributes(right_schema)
        if not shared:
            # The interpreted operator pulls exactly one right tuple and
            # stops — a data-dependent early termination whose counters
            # a batched kernel cannot reproduce.
            raise CompileFallback(
                "%s with no shared attributes"
                % ("antijoin" if negated else "semijoin")
            )
        positions = tuple(right_schema.position(a) for a in shared)
        if isinstance(node.right, ra.RelationRef):
            idx = self.base_index(node.right.name, positions)
        else:
            idx = self.built_index(node.right, positions)
        left_positions = [left_schema.position(a) for a in shared]
        op = "not in" if negated else "in"

        def probe(var):
            self.emit("_probed += 1")
            self.emit(
                "if %s %s %s:"
                % (self.tuple_expr(var, left_positions), op, idx)
            )
            self.depth += 1
            consume(var)
            self.depth -= 1

        self.produce(node.left, probe)

    def _materialize_set(self, node):
        """Drain ``node`` into a set, charging like ``_materialize``:
        every input tuple (duplicates included) materializes and the
        set's final size is a peak candidate."""
        out = self.fresh("side")
        cnt = self.fresh("cnt")
        self.emit("%s = set()" % out)
        self.emit("%s = 0" % cnt)

        def collect(var):
            self.emit("%s.add(%s)" % (out, var))
            self.emit("%s += 1" % cnt)

        self.produce(node, collect)
        self.emit("_mat += %s" % cnt)
        self.emit("if len(%s) > _peak: _peak = len(%s)" % (out, out))
        return out

    def _produce_division(self, node, consume):
        left_schema = node.left.schema(self.db_schema)
        right_schema = node.right.schema(self.db_schema)
        left_set = self._materialize_set(node.left)
        right_set = self._materialize_set(node.right)
        self.env["_Relation"] = Relation
        ls = self.bind("schema", left_schema)
        rs = self.bind("schema", right_schema)
        self.pipelines += 1
        t = self.fresh("t")
        self.emit(
            "for %s in _Relation(%s, %s, validate=False)"
            ".divide(_Relation(%s, %s, validate=False)).tuples:"
            % (t, ls, left_set, rs, right_set)
        )
        self.depth += 1
        consume(t)
        self.depth -= 1

    _DISPATCH = {
        ra.RelationRef: _produce_scan,
        ra.ConstantRelation: _produce_scan,
        ra.Selection: _produce_selection,
        ra.Projection: _produce_projection,
        ra.Rename: _produce_rename,
        ra.NaturalJoin: _produce_natural_join,
        ra.ThetaJoin: _produce_theta_join,
        ra.Product: _produce_product,
        ra.Union: _produce_union,
        ra.Difference: _produce_difference,
        ra.Intersection: _produce_intersection,
        ra.Semijoin: _produce_semijoin,
        ra.Antijoin: _produce_semijoin,
        ra.Division: _produce_division,
    }


def compile_plan(plan, db_schema, fingerprint="adhoc"):
    """Compile a canonical plan into a :class:`CompiledKernel`.

    Args:
        plan: a canonical algebra expression (``canonicalize`` first).
        db_schema: the database schema the plan was canonicalized
            against; attribute positions are resolved against it.
        fingerprint: display name for the kernel (the cache passes the
            12-hex plan fingerprint; it also names the pseudo-file the
            source compiles under, so tracebacks identify the kernel).

    Returns:
        The compiled kernel.

    Raises:
        CompileFallback: when the plan contains an unsupported shape.
    """
    builder = _KernelBuilder(db_schema)
    schema = plan.schema(db_schema)
    builder.produce(plan, lambda var: builder.emit("_out.add(%s)" % var))
    lines = [
        "def kernel(_db, _tally):",
        "    _scanned = 0",
        "    _probed = 0",
        "    _built = 0",
        "    _mat = 0",
        "    _peak = 0",
        "    _out = set()",
        "    try:",
    ]
    lines.extend(builder.lines)
    lines.extend(
        [
            "        _mat += len(_out)",
            "        if len(_out) > _peak: _peak = len(_out)",
            "    finally:",
            "        _stats = _tally.stats",
            "        _stats.facts_scanned += _scanned",
            "        _stats.index_probes += _probed",
            "        _stats.index_builds += _built",
            "        _stats.tuples_materialized += _mat",
            "        if _peak > _tally.peak_buffer:",
            "            _tally.peak_buffer = _peak",
            "    return _out",
        ]
    )
    source = "\n".join(lines) + "\n"
    namespace = dict(builder.env)
    exec(  # noqa: S102 - the source is generated here, not user input
        compile(source, "<kernel %s>" % fingerprint, "exec"), namespace
    )
    return CompiledKernel(
        namespace["kernel"],
        schema,
        source,
        builder.pipelines,
        builder.ops,
        fingerprint,
    )
