"""Rule-body matching: the physical layer shared by all Datalog engines.

Rule evaluation is a pipeline of hash joins over binding lists: each
positive literal indexes its fact set on the currently-bound positions and
probes it with every binding; comparisons and negated literals filter as
soon as their variables are bound (safety guarantees they eventually are).

Both the naive and semi-naive engines call :func:`evaluate_rule`; the
semi-naive engine additionally designates one body position to read from a
*delta* store (the differential trick that gives it its edge — see the
``test_datalog_strategies`` benchmark).
"""

from __future__ import annotations

from ..errors import DatalogError
from .ast import Comparison, Constant, Literal, Variable


def extend_bindings(bindings, atom, tuples):
    """Hash-join a binding list with the facts for one positive literal.

    Args:
        bindings: list of dicts (variable name -> value); all dicts bind
            the same variable set (an invariant of left-to-right rule
            evaluation).
        atom: the literal's atom.
        tuples: the fact set for the literal's predicate.

    Returns:
        The extended binding list.
    """
    if not bindings:
        return []
    bound_vars = set(bindings[0])
    key_specs = []  # (position, kind, payload): kind in const|var|dup
    out_specs = []  # (position, variable name) for newly bound variables
    first_position = {}
    for i, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            key_specs.append((i, "const", term.value))
        elif term.name in bound_vars:
            key_specs.append((i, "var", term.name))
        elif term.name in first_position:
            key_specs.append((i, "dup", first_position[term.name]))
        else:
            first_position[term.name] = i
            out_specs.append((i, term.name))

    var_names = [payload for _, kind, payload in key_specs if kind == "var"]
    index = {}
    for tup in tuples:
        admissible = True
        for position, kind, payload in key_specs:
            if kind == "const" and tup[position] != payload:
                admissible = False
                break
            if kind == "dup" and tup[position] != tup[payload]:
                admissible = False
                break
        if not admissible:
            continue
        key = tuple(
            tup[position]
            for position, kind, _ in key_specs
            if kind == "var"
        )
        index.setdefault(key, []).append(tup)

    extended = []
    for binding in bindings:
        key = tuple(binding[name] for name in var_names)
        for tup in index.get(key, ()):
            new_binding = dict(binding)
            for position, name in out_specs:
                new_binding[name] = tup[position]
            extended.append(new_binding)
    return extended


def _filter_negative(bindings, atom, tuples):
    """Keep bindings under which the (fully bound) atom is absent."""
    kept = []
    for binding in bindings:
        if atom.ground_tuple(binding) not in tuples:
            kept.append(binding)
    return kept


def _filter_comparison(bindings, comparison):
    return [b for b in bindings if comparison.evaluate(b)]


def evaluate_rule(rule, lookup, delta_lookup=None, delta_at=None):
    """All head tuples derivable by one rule against the given fact views.

    Args:
        rule: the rule to fire.
        lookup: callable ``predicate -> set of tuples`` (the full store).
        delta_lookup: optional callable for the differential store.
        delta_at: index into ``rule.body``; that positive literal reads
            from ``delta_lookup`` instead of ``lookup`` (semi-naive mode).

    Returns:
        A set of ground head tuples.
    """
    bindings = [{}]
    pending = []  # comparisons / negative literals awaiting their variables

    def flush_pending():
        nonlocal bindings, pending
        still = []
        bound = set(bindings[0]) if bindings else set()
        for item in pending:
            if not bindings:
                return
            if item.variables() <= bound:
                if isinstance(item, Comparison):
                    bindings = _filter_comparison(bindings, item)
                else:
                    bindings = _filter_negative(
                        bindings, item.atom, lookup(item.atom.predicate)
                    )
            else:
                still.append(item)
        pending = still

    for i, item in enumerate(rule.body):
        if not bindings:
            return set()
        if isinstance(item, Literal) and item.positive:
            source = (
                delta_lookup
                if delta_at is not None and i == delta_at
                else lookup
            )
            bindings = extend_bindings(
                bindings, item.atom, source(item.atom.predicate)
            )
            flush_pending()
        elif isinstance(item, Comparison):
            bound = set(bindings[0]) if bindings else set()
            if item.variables() <= bound:
                bindings = _filter_comparison(bindings, item)
            elif item.op == "=" and _binds_fresh(item, bound):
                bindings = _apply_binding_equality(bindings, item)
            else:
                pending.append(item)
        elif isinstance(item, Literal):
            bound = set(bindings[0]) if bindings else set()
            if item.variables() <= bound:
                bindings = _filter_negative(
                    bindings, item.atom, lookup(item.atom.predicate)
                )
            else:
                pending.append(item)
        else:
            raise DatalogError("unknown body item %r" % (item,))

    flush_pending()
    if pending:
        raise DatalogError(
            "rule %s left unbound body items %s (safety bug)"
            % (rule, "; ".join(map(str, pending)))
        )
    return {rule.head.ground_tuple(b) for b in bindings}


def _binds_fresh(comparison, bound):
    """Is this an ``X = c`` (or ``c = X``) that can bind a fresh variable?"""
    left, right = comparison.left, comparison.right
    if isinstance(left, Variable) and left.name not in bound:
        return isinstance(right, Constant) or (
            isinstance(right, Variable) and right.name in bound
        )
    if isinstance(right, Variable) and right.name not in bound:
        return isinstance(left, Constant) or (
            isinstance(left, Variable) and left.name in bound
        )
    return False


def _apply_binding_equality(bindings, comparison):
    """Extend bindings through an ``X = value`` equality."""
    left, right = comparison.left, comparison.right
    bound = set(bindings[0]) if bindings else set()
    if isinstance(left, Variable) and left.name not in bound:
        fresh, other = left, right
    else:
        fresh, other = right, left
    extended = []
    for binding in bindings:
        if isinstance(other, Constant):
            value = other.value
        else:
            value = binding[other.name]
        new_binding = dict(binding)
        new_binding[fresh.name] = value
        extended.append(new_binding)
    return extended
