"""Rule-body matching: the physical layer shared by all Datalog engines.

Rule evaluation is a pipeline of hash joins over binding lists: each
positive literal indexes its fact set on the currently-bound positions and
probes it with every binding; comparisons and negated literals filter as
soon as their variables are bound (safety guarantees they eventually are).

Two physical regimes coexist:

* **Scan** — the fact source is a plain tuple collection; a transient
  hash index is built per call (the seed behaviour, kept as the
  measurable baseline and as the fallback for unindexed stores and
  pattern-free probes).
* **Probe** — the fact source is a
  :class:`~repro.datalog.indexing.PredicateView`; the store's persistent
  index for the atom's bound-position pattern is fetched (built once,
  maintained incrementally) and probed per binding.

On top of either regime, :func:`evaluate_rule` can run the greedy
join-order planner (``planned=True``, the default): positive literals
execute most-bound/smallest-first with an early exit when any positive
source is empty, while comparisons and negations still apply at the
earliest point their variables are bound.  ``planned=False`` reproduces
the seed's left-to-right pipeline exactly.

All engines call :func:`evaluate_rule`; the semi-naive engine
additionally designates one body position to read from a *delta* store
(the differential trick that gives it its edge — see the
``test_datalog_strategies`` benchmark).  Work is charged to an optional
:class:`~repro.datalog.stats.EngineStatistics`.
"""

from __future__ import annotations

from ..errors import DatalogError
from .ast import Comparison, Constant, Literal, Variable
from .planner import has_empty_source, plan_order


def _key_specs(atom, bound_vars):
    """Classify each atom position against the current bound set.

    Returns:
        ``(key_specs, out_specs)`` where ``key_specs`` holds
        ``(position, kind, payload)`` with kind in ``const|var|dup`` and
        ``out_specs`` holds ``(position, name)`` for fresh variables.
    """
    key_specs = []
    out_specs = []
    first_position = {}
    for i, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            key_specs.append((i, "const", term.value))
        elif term.name in bound_vars:
            key_specs.append((i, "var", term.name))
        elif term.name in first_position:
            key_specs.append((i, "dup", first_position[term.name]))
        else:
            first_position[term.name] = i
            out_specs.append((i, term.name))
    return key_specs, out_specs


def extend_bindings(bindings, atom, tuples, stats=None):
    """Hash-join a binding list with the facts for one positive literal.

    Args:
        bindings: list of dicts (variable name -> value); all dicts bind
            the same variable set (an invariant of rule evaluation).
        atom: the literal's atom.
        tuples: the fact source for the literal's predicate — a plain
            tuple collection (scan regime) or a
            :class:`~repro.datalog.indexing.PredicateView` (probe
            regime).
        stats: optional work counters.

    Returns:
        The extended binding list.
    """
    if not bindings or not len(tuples):
        return []
    bound_vars = set(bindings[0])
    key_specs, out_specs = _key_specs(atom, bound_vars)
    probe_specs = [spec for spec in key_specs if spec[1] != "dup"]
    dup_specs = [
        (position, payload)
        for position, kind, payload in key_specs
        if kind == "dup"
    ]

    index_for = getattr(tuples, "index_for", None)
    extended = []
    if index_for is not None and probe_specs:
        # Probe regime: persistent index on the bound-position pattern.
        table = index_for(tuple(spec[0] for spec in probe_specs), stats)
        for binding in bindings:
            key = tuple(
                payload if kind == "const" else binding[payload]
                for _, kind, payload in probe_specs
            )
            if stats is not None:
                stats.index_probes += 1
            for tup in table.get(key, ()):
                if any(tup[p] != tup[q] for p, q in dup_specs):
                    continue
                new_binding = dict(binding)
                for position, name in out_specs:
                    new_binding[name] = tup[position]
                extended.append(new_binding)
    else:
        # Scan regime: one transient index per call (the seed path).
        var_names = [payload for _, kind, payload in probe_specs if kind == "var"]
        index = {}
        scanned = 0
        for tup in tuples:
            scanned += 1
            admissible = True
            for position, kind, payload in key_specs:
                if kind == "const" and tup[position] != payload:
                    admissible = False
                    break
                if kind == "dup" and tup[position] != tup[payload]:
                    admissible = False
                    break
            if not admissible:
                continue
            key = tuple(
                tup[position]
                for position, kind, _ in key_specs
                if kind == "var"
            )
            index.setdefault(key, []).append(tup)
        if stats is not None:
            stats.facts_scanned += scanned
        for binding in bindings:
            key = tuple(binding[name] for name in var_names)
            for tup in index.get(key, ()):
                new_binding = dict(binding)
                for position, name in out_specs:
                    new_binding[name] = tup[position]
                extended.append(new_binding)
    if stats is not None:
        stats.tuples_materialized += len(extended)
    return extended


def _filter_negative(bindings, atom, tuples):
    """Keep bindings under which the (fully bound) atom is absent."""
    kept = []
    for binding in bindings:
        if atom.ground_tuple(binding) not in tuples:
            kept.append(binding)
    return kept


def _filter_comparison(bindings, comparison):
    return [b for b in bindings if comparison.evaluate(b)]


def evaluate_rule(
    rule,
    lookup,
    delta_lookup=None,
    delta_at=None,
    stats=None,
    planned=True,
):
    """All head tuples derivable by one rule against the given fact views.

    Args:
        rule: the rule to fire.
        lookup: callable ``predicate -> fact source`` (the full store);
            sources may be plain tuple sets or indexed views.
        delta_lookup: optional callable for the differential store.
        delta_at: index into ``rule.body``; that positive literal reads
            from ``delta_lookup`` instead of ``lookup`` (semi-naive mode).
        stats: optional :class:`~repro.datalog.stats.EngineStatistics`.
        planned: run the greedy join-order planner (default) or the
            seed's left-to-right pipeline.

    Returns:
        A set of ground head tuples.
    """
    if stats is not None:
        stats.rule_firings += 1
    if planned:
        bindings = _evaluate_planned(rule, lookup, delta_lookup, delta_at, stats)
    else:
        bindings = _evaluate_inorder(rule, lookup, delta_lookup, delta_at, stats)
    return {rule.head.ground_tuple(b) for b in bindings}


def _source_for(lookup, delta_lookup, delta_at, position):
    if delta_at is not None and position == delta_at:
        return delta_lookup
    return lookup


def _split_body(rule):
    """Partition the body into positive literals and deferred guards."""
    positives = []
    guards = []
    for i, item in enumerate(rule.body):
        if isinstance(item, Literal) and item.positive:
            positives.append((i, item))
        elif isinstance(item, (Literal, Comparison)):
            guards.append(item)
        else:
            raise DatalogError("unknown body item %r" % (item,))
    return positives, guards


def _require_resolved(rule, pending, bindings):
    """Safety postcondition: no guard may remain once bindings survive."""
    if pending and bindings:
        raise DatalogError(
            "rule %s left unbound body items %s (safety bug)"
            % (rule, "; ".join(map(str, pending)))
        )


def _evaluate_planned(rule, lookup, delta_lookup, delta_at, stats):
    """Greedy-ordered evaluation with eager guards and early exit."""
    positives, pending = _split_body(rule)

    def settle(bindings):
        """Apply every guard whose variables are bound; repeat to fixpoint.

        Binding equalities (``X = c``) may bind fresh variables, which can
        unlock further guards — hence the loop.
        """
        nonlocal pending
        progress = True
        while progress and bindings and pending:
            progress = False
            still = []
            bound = set(bindings[0])
            for item in pending:
                if isinstance(item, Comparison):
                    if item.variables() <= bound:
                        bindings = _filter_comparison(bindings, item)
                        progress = True
                    elif item.op == "=" and _binds_fresh(item, bound):
                        bindings = _apply_binding_equality(bindings, item)
                        bound = set(bindings[0]) if bindings else bound
                        progress = True
                    else:
                        still.append(item)
                elif item.variables() <= bound:
                    bindings = _filter_negative(
                        bindings, item.atom, lookup(item.atom.predicate)
                    )
                    progress = True
                else:
                    still.append(item)
            pending = still
        return bindings

    sources = {
        i: _source_for(lookup, delta_lookup, delta_at, i)(item.atom.predicate)
        for i, item in positives
    }
    # Early exit: an empty positive source proves the body unsatisfiable.
    if has_empty_source(positives, sources):
        return []

    bindings = settle([{}])
    sizes = {i: len(sources[i]) for i, _ in positives}
    for i, item in plan_order(positives, sizes, delta_at):
        if not bindings:
            return []
        bindings = extend_bindings(bindings, item.atom, sources[i], stats)
        bindings = settle(bindings)
    _require_resolved(rule, pending, bindings)
    return bindings


def _evaluate_inorder(rule, lookup, delta_lookup, delta_at, stats):
    """The seed's left-to-right pipeline (the measurable baseline)."""
    bindings = [{}]
    pending = []  # comparisons / negative literals awaiting their variables

    def flush_pending():
        nonlocal bindings, pending
        still = []
        bound = set(bindings[0]) if bindings else set()
        for item in pending:
            if not bindings:
                return
            if item.variables() <= bound:
                if isinstance(item, Comparison):
                    bindings = _filter_comparison(bindings, item)
                else:
                    bindings = _filter_negative(
                        bindings, item.atom, lookup(item.atom.predicate)
                    )
            else:
                still.append(item)
        pending = still

    for i, item in enumerate(rule.body):
        if not bindings:
            return []
        if isinstance(item, Literal) and item.positive:
            source = _source_for(lookup, delta_lookup, delta_at, i)
            bindings = extend_bindings(
                bindings, item.atom, source(item.atom.predicate), stats
            )
            flush_pending()
        elif isinstance(item, Comparison):
            bound = set(bindings[0]) if bindings else set()
            if item.variables() <= bound:
                bindings = _filter_comparison(bindings, item)
            elif item.op == "=" and _binds_fresh(item, bound):
                bindings = _apply_binding_equality(bindings, item)
            else:
                pending.append(item)
        elif isinstance(item, Literal):
            bound = set(bindings[0]) if bindings else set()
            if item.variables() <= bound:
                bindings = _filter_negative(
                    bindings, item.atom, lookup(item.atom.predicate)
                )
            else:
                pending.append(item)
        else:
            raise DatalogError("unknown body item %r" % (item,))

    flush_pending()
    _require_resolved(rule, pending, bindings)
    return bindings


def _binds_fresh(comparison, bound):
    """Is this an ``X = c`` (or ``c = X``) that can bind a fresh variable?"""
    left, right = comparison.left, comparison.right
    if isinstance(left, Variable) and left.name not in bound:
        return isinstance(right, Constant) or (
            isinstance(right, Variable) and right.name in bound
        )
    if isinstance(right, Variable) and right.name not in bound:
        return isinstance(left, Constant) or (
            isinstance(left, Variable) and left.name in bound
        )
    return False


def _apply_binding_equality(bindings, comparison):
    """Extend bindings through an ``X = value`` equality."""
    left, right = comparison.left, comparison.right
    bound = set(bindings[0]) if bindings else set()
    if isinstance(left, Variable) and left.name not in bound:
        fresh, other = left, right
    else:
        fresh, other = right, left
    extended = []
    for binding in bindings:
        if isinstance(other, Constant):
            value = other.value
        else:
            value = binding[other.name]
        new_binding = dict(binding)
        new_binding[fresh.name] = value
        extended.append(new_binding)
    return extended
