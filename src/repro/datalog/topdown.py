"""Top-down Datalog evaluation with tabling (QSQ style).

The Prolog-style alternative to bottom-up evaluation: resolve the query
goal against rule heads, recursively solving subgoals — but with
*memoization tables* keyed by (predicate, binding pattern, bound values),
so recursion terminates and each subgoal is solved once.  This is the
query-subquery (QSQ) family of methods; magic sets is its bottom-up
simulation, and a classical result says the two explore the same relevant
facts.

The implementation runs a worklist fixpoint over the table of subgoals:
each pass re-resolves every discovered subgoal against the current answer
tables, which is the simplest terminating formulation of tabling (answers
grow monotonically, so the fixpoint is the correct minimal model restricted
to relevant subgoals).

Scope: positive programs, like the magic module (and for the same
classical reasons).
"""

from __future__ import annotations

from ..errors import DatalogError
from .ast import Comparison, Constant
from .magic import match_query


class _Subgoal:
    """A call pattern: predicate plus per-position bound values (or None)."""

    __slots__ = ("predicate", "pattern")

    def __init__(self, predicate, pattern):
        self.predicate = predicate
        self.pattern = tuple(pattern)

    def key(self):
        return (self.predicate, self.pattern)

    def matches(self, values):
        return all(
            p is None or p == v for p, v in zip(self.pattern, values)
        )

    def __repr__(self):
        rendered = ",".join(
            "_" if p is None else repr(p) for p in self.pattern
        )
        return "%s(%s)" % (self.predicate, rendered)


class TopDownEngine:
    """Tabled top-down evaluation of one program over one EDB.

    The engine is reusable across queries; tables persist and accumulate
    (sound, since Datalog is monotone).
    """

    def __init__(self, program, edb):
        if program.has_negation():
            raise DatalogError(
                "top-down tabling is implemented for positive programs"
            )
        self.program = program
        self.edb = edb
        self.idb = program.idb_predicates()
        self.tables = {}  # subgoal key -> set of answer tuples
        self.subgoals = {}  # subgoal key -> _Subgoal
        self._new_subgoals = False
        self._program_facts = {}
        for predicate, values in program.facts():
            self._program_facts.setdefault(predicate, set()).add(values)

    # -- public API ------------------------------------------------------

    def query(self, query_atom):
        """All ground tuples of the query predicate matching the atom."""
        subgoal = self._subgoal_for(query_atom)
        if query_atom.predicate not in self.idb:
            facts = self._edb_facts(query_atom.predicate)
            return {t for t in facts if subgoal.matches(t)}
        self._register(subgoal)
        self._fixpoint()
        answers = self.tables[subgoal.key()]
        # Repeated variables in the query still need filtering.
        pseudo = match_query(_StoreView(query_atom.predicate, answers), query_atom)
        return pseudo

    def table_count(self):
        """Number of distinct subgoals tabled so far (work measure)."""
        return len(self.tables)

    # -- internals -------------------------------------------------------------

    def _edb_facts(self, predicate):
        base = set(self.edb.get(predicate))
        base |= self._program_facts.get(predicate, set())
        return base

    def _subgoal_for(self, atom, binding=None):
        binding = binding or {}
        pattern = []
        for term in atom.terms:
            if isinstance(term, Constant):
                pattern.append(term.value)
            elif term.name in binding:
                pattern.append(binding[term.name])
            else:
                pattern.append(None)
        return _Subgoal(atom.predicate, pattern)

    def _register(self, subgoal):
        key = subgoal.key()
        if key not in self.tables:
            self.tables[key] = set()
            self.subgoals[key] = subgoal
            self._new_subgoals = True
            return True
        return False

    def _fixpoint(self):
        changed = True
        while changed:
            changed = False
            self._new_subgoals = False
            # Iterate over a snapshot: resolution can add subgoals.
            for key in list(self.tables):
                subgoal = self.subgoals[key]
                before = len(self.tables[key])
                self._resolve(subgoal)
                if len(self.tables[key]) != before:
                    changed = True
            # A freshly discovered subgoal needs at least one resolution
            # pass even if no table grew this round.
            changed = changed or self._new_subgoals

    def _resolve(self, subgoal):
        for rule in self.program.rules_for(subgoal.predicate):
            bindings = self._unify_head(rule.head, subgoal)
            if bindings is None:
                continue
            bindings = [bindings]
            for item in rule.body:
                if not bindings:
                    break
                if isinstance(item, Comparison):
                    bindings = [b for b in bindings if item.evaluate(b)]
                    continue
                bindings = self._solve_literal(item, bindings)
            for binding in bindings:
                self.tables[subgoal.key()].add(
                    rule.head.ground_tuple(binding)
                )

    def _unify_head(self, head, subgoal):
        """Unify the head with the call pattern; None on clash."""
        binding = {}
        for term, bound in zip(head.terms, subgoal.pattern):
            if bound is None:
                continue
            if isinstance(term, Constant):
                if term.value != bound:
                    return None
            else:
                if binding.setdefault(term.name, bound) != bound:
                    return None
        return binding

    def _solve_literal(self, literal, bindings):
        atom = literal.atom
        out = []
        if atom.predicate in self.idb:
            # Group bindings by call pattern so each subgoal is registered
            # once; consume current table contents (the fixpoint loop
            # re-resolves until stable).
            for binding in bindings:
                subgoal = self._subgoal_for(atom, binding)
                self._register(subgoal)
                answers = self.tables[subgoal.key()]
                out.extend(self._extend(binding, atom, answers))
        else:
            facts = self._edb_facts(atom.predicate)
            for binding in bindings:
                out.extend(self._extend(binding, atom, facts))
        return out

    @staticmethod
    def _extend(binding, atom, tuples):
        for tup in tuples:
            new_binding = dict(binding)
            ok = True
            for term, value in zip(atom.terms, tup):
                if isinstance(term, Constant):
                    if term.value != value:
                        ok = False
                        break
                else:
                    if new_binding.setdefault(term.name, value) != value:
                        ok = False
                        break
            if ok:
                yield new_binding


class _StoreView:
    """Minimal FactStore-like view over one predicate's tuple set."""

    __slots__ = ("predicate", "tuples")

    def __init__(self, predicate, tuples):
        self.predicate = predicate
        self.tuples = tuples

    def get(self, predicate):
        if predicate == self.predicate:
            return self.tuples
        return frozenset()


def topdown_query(program, edb, query_atom):
    """One-shot top-down query (fresh tables)."""
    return TopDownEngine(program, edb).query(query_atom)
