"""Top-down Datalog evaluation with tabling (QSQ style).

The Prolog-style alternative to bottom-up evaluation: resolve the query
goal against rule heads, recursively solving subgoals — but with
*memoization tables* keyed by (predicate, binding pattern, bound values),
so recursion terminates and each subgoal is solved once.  This is the
query-subquery (QSQ) family of methods; magic sets is its bottom-up
simulation, and a classical result says the two explore the same relevant
facts.

The implementation runs a worklist fixpoint over the table of subgoals:
each pass re-resolves every discovered subgoal against the current answer
tables, which is the simplest terminating formulation of tabling (answers
grow monotonically, so the fixpoint is the correct minimal model restricted
to relevant subgoals).

The physical layer is shared with the bottom-up engines: EDB facts live
in an :class:`~repro.datalog.indexing.IndexedFactStore` (when ``indexed``,
the default) and every literal is solved through
:func:`~repro.datalog.matching.extend_bindings`, so EDB literals with
bound arguments become persistent-index probes instead of scans.  Body
order is *not* replanned: in top-down evaluation the literal order is the
sideways-information-passing strategy that decides which subgoals get
tabled, so it is part of the method, not a free physical choice
(``planned`` is accepted for interface symmetry and affects nothing).

Scope: positive programs, like the magic module (and for the same
classical reasons).
"""

from __future__ import annotations

from ..errors import DatalogError
from ..obs.trace import NULL_TRACER
from .ast import Comparison, Constant
from .facts import FactStore
from .indexing import IndexedFactStore
from .magic import match_query
from .matching import extend_bindings


class _Subgoal:
    """A call pattern: predicate plus per-position bound values (or None)."""

    __slots__ = ("predicate", "pattern")

    def __init__(self, predicate, pattern):
        self.predicate = predicate
        self.pattern = tuple(pattern)

    def key(self):
        return (self.predicate, self.pattern)

    def matches(self, values):
        return all(
            p is None or p == v for p, v in zip(self.pattern, values)
        )

    def __repr__(self):
        rendered = ",".join(
            "_" if p is None else repr(p) for p in self.pattern
        )
        return "%s(%s)" % (self.predicate, rendered)


class TopDownEngine:
    """Tabled top-down evaluation of one program over one EDB.

    The engine is reusable across queries; tables persist and accumulate
    (sound, since Datalog is monotone).
    """

    def __init__(self, program, edb, stats=None, indexed=True, planned=True,
                 tracer=NULL_TRACER):
        if program.has_negation():
            raise DatalogError(
                "top-down tabling is implemented for positive programs"
            )
        self.program = program
        self.idb = program.idb_predicates()
        self.stats = stats
        self.tracer = tracer
        self.tables = {}  # subgoal key -> set of answer tuples
        self.subgoals = {}  # subgoal key -> _Subgoal
        self._new_subgoals = False
        # EDB + program-text facts, in one (indexed) store.  Text facts
        # for IDB predicates seed the answer tables instead (resolution
        # only fires body-ful rules, so they would otherwise be lost —
        # the differential suite pins this).
        facts = IndexedFactStore() if indexed else FactStore()
        if edb is not None:
            for predicate in edb.predicates():
                facts.add_all(predicate, edb.get(predicate))
        self._idb_facts = {}
        for predicate, values in program.facts():
            if predicate in self.idb:
                self._idb_facts.setdefault(predicate, set()).add(values)
            else:
                facts.add(predicate, values)
        self.edb = facts
        self._lookup = facts.view if indexed else facts.get

    # -- public API ------------------------------------------------------

    def query(self, query_atom):
        """All ground tuples of the query predicate matching the atom."""
        subgoal = self._subgoal_for(query_atom)
        if query_atom.predicate not in self.idb:
            facts = self._edb_facts(query_atom.predicate)
            return {t for t in facts if subgoal.matches(t)}
        with self.tracer.span(
            "topdown_query", stats=self.stats, goal=repr(subgoal)
        ) as span:
            self._register(subgoal)
            self._fixpoint()
            answers = self.tables[subgoal.key()]
            span.set(tables=len(self.tables), answers=len(answers))
        # Repeated variables in the query still need filtering.
        pseudo = match_query(_StoreView(query_atom.predicate, answers), query_atom)
        return pseudo

    def table_count(self):
        """Number of distinct subgoals tabled so far (work measure)."""
        return len(self.tables)

    # -- internals -------------------------------------------------------------

    def _edb_facts(self, predicate):
        return self._lookup(predicate)

    def _subgoal_for(self, atom, binding=None):
        binding = binding or {}
        pattern = []
        for term in atom.terms:
            if isinstance(term, Constant):
                pattern.append(term.value)
            elif term.name in binding:
                pattern.append(binding[term.name])
            else:
                pattern.append(None)
        return _Subgoal(atom.predicate, pattern)

    def _register(self, subgoal):
        key = subgoal.key()
        if key not in self.tables:
            self.tables[key] = {
                values
                for values in self._idb_facts.get(subgoal.predicate, ())
                if subgoal.matches(values)
            }
            self.subgoals[key] = subgoal
            self._new_subgoals = True
            return True
        return False

    def _fixpoint(self):
        changed = True
        rounds = 0
        while changed:
            changed = False
            self._new_subgoals = False
            rounds += 1
            if self.stats is not None:
                self.stats.iterations += 1
            with self.tracer.span(
                "iteration", stats=self.stats, round=rounds
            ) as span:
                grew = 0
                # Iterate over a snapshot: resolution can add subgoals.
                for key in list(self.tables):
                    subgoal = self.subgoals[key]
                    before = len(self.tables[key])
                    self._resolve(subgoal)
                    after = len(self.tables[key])
                    if after != before:
                        changed = True
                        grew += after - before
                span.set(subgoals=len(self.tables), new_answers=grew)
            # A freshly discovered subgoal needs at least one resolution
            # pass even if no table grew this round.
            changed = changed or self._new_subgoals

    def _resolve(self, subgoal):
        for rule in self.program.rules_for(subgoal.predicate):
            if self.stats is not None:
                self.stats.rule_firings += 1
            bindings = self._unify_head(rule.head, subgoal)
            if bindings is None:
                continue
            bindings = [bindings]
            for item in rule.body:
                if not bindings:
                    break
                if isinstance(item, Comparison):
                    bindings = [b for b in bindings if item.evaluate(b)]
                    continue
                bindings = self._solve_literal(item, bindings)
            for binding in bindings:
                self.tables[subgoal.key()].add(
                    rule.head.ground_tuple(binding)
                )

    def _unify_head(self, head, subgoal):
        """Unify the head with the call pattern; None on clash."""
        binding = {}
        for term, bound in zip(head.terms, subgoal.pattern):
            if bound is None:
                continue
            if isinstance(term, Constant):
                if term.value != bound:
                    return None
            else:
                if binding.setdefault(term.name, bound) != bound:
                    return None
        return binding

    def _solve_literal(self, literal, bindings):
        atom = literal.atom
        if atom.predicate not in self.idb:
            return extend_bindings(
                bindings, atom, self._edb_facts(atom.predicate), self.stats
            )
        # Group bindings by call pattern so each subgoal is registered
        # (and its answer table joined) once; the fixpoint loop
        # re-resolves until the tables are stable.
        groups = {}
        for binding in bindings:
            subgoal = self._subgoal_for(atom, binding)
            self._register(subgoal)
            groups.setdefault(subgoal.key(), []).append(binding)
        out = []
        for key, group in groups.items():
            out.extend(
                extend_bindings(group, atom, self.tables[key], self.stats)
            )
        return out


class _StoreView:
    """Minimal FactStore-like view over one predicate's tuple set."""

    __slots__ = ("predicate", "tuples")

    def __init__(self, predicate, tuples):
        self.predicate = predicate
        self.tuples = tuples

    def get(self, predicate):
        if predicate == self.predicate:
            return self.tuples
        return frozenset()


def topdown_query(
    program, edb, query_atom, stats=None, indexed=True, planned=True,
    tracer=NULL_TRACER,
):
    """One-shot top-down query (fresh tables)."""
    engine = TopDownEngine(
        program, edb, stats=stats, indexed=indexed, planned=planned,
        tracer=tracer,
    )
    return engine.query(query_atom)
